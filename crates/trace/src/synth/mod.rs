//! Synthetic workload generators.
//!
//! Production CDN traces are proprietary, so the reproduction generates
//! synthetic traces that preserve the properties the paper's evaluation
//! depends on: Zipf-like popularity skew, heavy-tailed object sizes, Poisson
//! or modulated arrival processes, and per-trace quirks (one-hit wonders,
//! live-video concentration, ...). See `DESIGN.md` for the substitution
//! rationale.
//!
//! - [`zipf`] — Zipf popularity distributions and samplers.
//! - [`size`] — object size models (fixed, lognormal, bounded Pareto,
//!   bimodal web/video mixes).
//! - [`irm`] — independent-reference-model traces with Poisson arrivals.
//! - [`markov`] — the Markov-modulated "Syn One" / "Syn Two" workloads from
//!   §7.6 of the paper.
//! - [`renewal`] — per-object renewal processes with non-exponential IRTs
//!   (the stress test for HRO's Poisson approximation).
//! - [`production`] — the four production-like traces calibrated to Table 1.

pub mod irm;
pub mod markov;
pub mod production;
pub mod renewal;
pub mod size;
pub mod zipf;

pub use irm::IrmConfig;
pub use markov::{syn_one, syn_two, MarkovConfig};
pub use production::{cdn_a, cdn_b, cdn_c, wiki, ProductionScale};
pub use renewal::{bursty_trace, IrtLaw, RenewalConfig};
pub use size::SizeModel;
pub use zipf::ZipfSampler;
