//! Minimal property-based testing: random generators with shrinking and
//! the [`prop_check!`] macro. Replaces `proptest` for this workspace.
//!
//! A property is an ordinary block of assertions over one or more named
//! inputs, each drawn from a [`Gen`]. On failure the framework **shrinks**:
//! it greedily walks each input toward its simplest form (integers toward
//! the range start, vectors toward shorter ones) as long as the property
//! keeps failing, then panics with the minimized counterexample, the case
//! number, and the seed.
//!
//! Runs are fully deterministic: the master seed is a fixed constant,
//! overridable with the `LHR_PROP_SEED` env var; the case count is
//! overridable with `LHR_PROP_CASES`.
//!
//! # Example
//!
//! ```
//! use lhr_util::{prop_check, prop_assert, prop_assert_eq, prop};
//!
//! // Reversing twice is the identity; addition commutes.
//! prop_check!(cases: 64, (xs in prop::vec(prop::range(0u64..100), 0..20),
//!                          a in prop::range(0u64..1000),
//!                          b in prop::range(0u64..1000)) => {
//!     let mut twice = xs.clone();
//!     twice.reverse();
//!     twice.reverse();
//!     prop_assert_eq!(&twice, &xs);
//!     prop_assert!(a + b == b + a, "addition must commute: {} {}", a, b);
//! });
//! ```

use crate::rng::{Rng, SeedableRng, UniformRange, Xoshiro256pp};
use std::ops::Range;
use std::rc::Rc;

/// Default number of cases when `prop_check!` is invoked without `cases:`.
pub const DEFAULT_CASES: usize = 256;

/// Master seed used when `LHR_PROP_SEED` is not set. Fixed so CI failures
/// reproduce locally with no extra flags.
pub const DEFAULT_SEED: u64 = 0xC0FF_EE00_D15E_A5E5;

/// A reusable value generator: a sampling function plus a shrinker that
/// proposes strictly "simpler" candidates for a failing value.
pub struct Gen<T> {
    sample: Rc<dyn Fn(&mut Xoshiro256pp) -> T>,
    shrink: Rc<dyn Fn(&T) -> Vec<T>>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen {
            sample: Rc::clone(&self.sample),
            shrink: Rc::clone(&self.shrink),
        }
    }
}

impl<T> Gen<T> {
    /// Builds a generator from a sampler and a shrinker. The shrinker must
    /// eventually return no (new) candidates so shrinking terminates; the
    /// driver additionally caps shrink rounds.
    pub fn new(
        sample: impl Fn(&mut Xoshiro256pp) -> T + 'static,
        shrink: impl Fn(&T) -> Vec<T> + 'static,
    ) -> Self {
        Gen {
            sample: Rc::new(sample),
            shrink: Rc::new(shrink),
        }
    }

    /// Draws one value.
    pub fn sample(&self, rng: &mut Xoshiro256pp) -> T {
        (self.sample)(rng)
    }

    /// Simpler candidates for `value` (possibly empty).
    pub fn shrink(&self, value: &T) -> Vec<T> {
        (self.shrink)(value)
    }
}

/// Types usable with [`range`]: uniform sampling over `lo..hi` plus
/// shrinking toward `lo`.
pub trait Arbitrary: UniformRange + Copy + PartialEq + 'static {
    /// Candidates strictly between `lo` (inclusive) and `value`
    /// (exclusive), simplest first.
    fn shrink_toward(lo: Self, value: Self) -> Vec<Self>;
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn shrink_toward(lo: Self, value: Self) -> Vec<Self> {
                let mut out = Vec::new();
                if value > lo {
                    out.push(lo);
                    let half = lo + (value - lo) / 2;
                    if half != lo && half != value {
                        out.push(half);
                    }
                    if value - 1 != half && value - 1 != lo {
                        out.push(value - 1);
                    }
                }
                out
            }
        }
    )+};
}

arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! arbitrary_float {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn shrink_toward(lo: Self, value: Self) -> Vec<Self> {
                let mut out = Vec::new();
                let span = value - lo;
                // Stop proposing once the value is within a relative hair of
                // `lo`, so greedy shrinking terminates.
                if span > <$t>::EPSILON * (1.0 + lo.abs()) * 4.0 {
                    out.push(lo);
                    out.push(lo + span / 2.0);
                }
                out
            }
        }
    )+};
}

arbitrary_float!(f32, f64);

/// Uniform generator over the half-open range `lo..hi`, shrinking toward
/// `lo`.
pub fn range<T: Arbitrary>(r: Range<T>) -> Gen<T> {
    let lo = r.start;
    Gen::new(
        move |rng| rng.gen_range(r.clone()),
        move |v| T::shrink_toward(lo, *v),
    )
}

/// Full-range `u64` (ids, seeds), shrinking toward 0 by halving.
pub fn any_u64() -> Gen<u64> {
    Gen::new(
        |rng| rng.next_u64(),
        |&v| {
            let mut out = Vec::new();
            if v > 0 {
                out.push(0);
                if v > 1 {
                    out.push(v / 2);
                    out.push(v - 1);
                }
            }
            out
        },
    )
}

/// Vector generator: length uniform in `len` (half-open), elements drawn
/// from `elem`. Shrinks by truncating toward the minimum length, dropping
/// single elements, and shrinking individual elements.
pub fn vec<T: Clone + PartialEq + 'static>(elem: Gen<T>, len: Range<usize>) -> Gen<Vec<T>> {
    assert!(len.start < len.end, "vec: empty length range");
    let min_len = len.start;
    let shrink_elem = elem.clone();
    Gen::new(
        move |rng| {
            let n = rng.gen_range(len.clone());
            (0..n).map(|_| elem.sample(rng)).collect()
        },
        move |v: &Vec<T>| {
            let mut out: Vec<Vec<T>> = Vec::new();
            let n = v.len();
            if n > min_len {
                // Truncations: minimum, halfway.
                out.push(v[..min_len].to_vec());
                let half = min_len + (n - min_len) / 2;
                if half != min_len && half != n {
                    out.push(v[..half].to_vec());
                }
                // Dropping one element (first / last).
                let mut headless = v.clone();
                headless.remove(0);
                out.push(headless);
                if n > 1 {
                    out.push(v[..n - 1].to_vec());
                }
            }
            // Element-wise: replace each of the first few elements with its
            // first shrink candidate.
            for i in 0..n.min(8) {
                if let Some(simpler) = shrink_elem.shrink(&v[i]).into_iter().next() {
                    let mut copy = v.clone();
                    copy[i] = simpler;
                    out.push(copy);
                }
            }
            out.retain(|c| c != v);
            out
        },
    )
}

/// Fixed-length vector generator (no length shrinking; elements shrink).
pub fn vec_exact<T: Clone + PartialEq + 'static>(elem: Gen<T>, n: usize) -> Gen<Vec<T>> {
    let shrink_elem = elem.clone();
    Gen::new(
        move |rng| (0..n).map(|_| elem.sample(rng)).collect(),
        move |v: &Vec<T>| {
            let mut out = Vec::new();
            for i in 0..v.len().min(8) {
                if let Some(simpler) = shrink_elem.shrink(&v[i]).into_iter().next() {
                    let mut copy = v.clone();
                    copy[i] = simpler;
                    out.push(copy);
                }
            }
            out.retain(|c| c != v);
            out
        },
    )
}

/// Reads a `usize` configuration override from the environment.
pub fn env_usize(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads a `u64` configuration override from the environment.
pub fn env_u64(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Derives the per-case RNG from the master seed and case index.
pub fn case_rng(master: u64, case: usize) -> Xoshiro256pp {
    Xoshiro256pp::seed_from_u64(
        master.wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    )
}

/// A tuple of generators, drivable as one unit — what [`prop_check!`]
/// expands onto. Implemented for 1- to 6-tuples of [`Gen`].
pub trait GenTuple {
    /// The tuple of generated values.
    type Values: Clone;

    /// Samples every component.
    fn sample(&self, rng: &mut Xoshiro256pp) -> Self::Values;

    /// One greedy shrink pass: for each component in turn, adopts the first
    /// candidate that still fails `prop` (updating `msg`). Returns whether
    /// anything was adopted.
    fn shrink_round(
        &self,
        vals: &mut Self::Values,
        prop: &dyn Fn(&Self::Values) -> Result<(), String>,
        msg: &mut String,
    ) -> bool;
}

macro_rules! gen_tuple {
    ($(($($T:ident $idx:tt),+);)+) => {$(
        impl<$($T: Clone + 'static),+> GenTuple for ($(Gen<$T>,)+) {
            type Values = ($($T,)+);

            fn sample(&self, rng: &mut Xoshiro256pp) -> Self::Values {
                ($(self.$idx.sample(rng),)+)
            }

            fn shrink_round(
                &self,
                vals: &mut Self::Values,
                prop: &dyn Fn(&Self::Values) -> Result<(), String>,
                msg: &mut String,
            ) -> bool {
                let mut improved = false;
                $(
                    for cand in self.$idx.shrink(&vals.$idx) {
                        let saved = std::mem::replace(&mut vals.$idx, cand);
                        match prop(vals) {
                            Err(e) => {
                                *msg = e;
                                improved = true;
                                break;
                            }
                            Ok(()) => vals.$idx = saved,
                        }
                    }
                )+
                improved
            }
        }
    )+};
}

gen_tuple! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// The [`prop_check!`] driver: runs `prop` over `cases` sampled inputs,
/// shrinking the first failure to a local minimum before panicking with
/// `show`'s rendering of the counterexample.
pub fn run_cases<G, P, S>(cases: usize, master: u64, gens: G, prop: P, show: S)
where
    G: GenTuple,
    P: Fn(&G::Values) -> Result<(), String>,
    S: Fn(&G::Values) -> String,
{
    for case in 0..cases {
        let mut rng = case_rng(master, case);
        let mut vals = gens.sample(&mut rng);
        if let Err(first) = prop(&vals) {
            let mut msg = first;
            let mut rounds = 0usize;
            while gens.shrink_round(&mut vals, &prop, &mut msg) {
                rounds += 1;
                if rounds >= 200 {
                    break;
                }
            }
            panic!(
                "property failed (case {case}/{cases}, master seed {master}):\n  {msg}\n  minimized arguments:\n{}",
                show(&vals)
            );
        }
    }
}

/// Runs a property over `cases` random inputs and shrinks failures.
///
/// Syntax mirrors a closure whose parameters are drawn from generators:
///
/// ```text
/// prop_check!(cases: 64, (x in prop::range(0u64..10), ys in prop::vec(...)) => {
///     prop_assert!(...);
/// });
/// ```
///
/// Inside the body each name is an **owned clone** of the generated value,
/// and [`prop_assert!`]/[`prop_assert_eq!`] abort the case with a message
/// instead of panicking (so the shrinker can re-run the body). The
/// minimized counterexample is reported via `panic!`, with the case index
/// and seed needed to replay it.
#[macro_export]
macro_rules! prop_check {
    (($($name:ident in $gen:expr),+ $(,)?) => $body:block) => {
        $crate::prop_check!(cases: $crate::prop::DEFAULT_CASES, ($($name in $gen),+) => $body)
    };
    (cases: $cases:expr, ($($name:ident in $gen:expr),+ $(,)?) => $body:block) => {{
        let __cases: usize = $crate::prop::env_usize("LHR_PROP_CASES", $cases);
        let __master: u64 = $crate::prop::env_u64("LHR_PROP_SEED", $crate::prop::DEFAULT_SEED);
        let __gens = ($($gen,)+);
        $crate::prop::run_cases(
            __cases,
            __master,
            __gens,
            |__vals| {
                let ($($name,)+) = ::std::clone::Clone::clone(__vals);
                $(let _ = &$name;)+
                { $body }
                ::std::result::Result::Ok(())
            },
            |__vals| {
                let ($(ref $name,)+) = *__vals;
                [$(format!("    {} = {:?}", stringify!($name), $name)),+].join("\n")
            },
        );
    }};
}

/// Fails the current property case unless the condition holds. Only usable
/// inside a [`prop_check!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}:{})", stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "{} ({}:{})", format!($($fmt)+), file!(), line!()
            ));
        }
    };
}

/// Equality form of [`prop_assert!`], printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if __l != __r {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {}\n    left: {:?}\n   right: {:?} ({}:{})",
                stringify!($left), stringify!($right), __l, __r, file!(), line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if __l != __r {
            return ::std::result::Result::Err(format!(
                "{}\n    left: {:?}\n   right: {:?} ({}:{})",
                format!($($fmt)+), __l, __r, file!(), line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        prop_check!(cases: 50, (x in range(0u64..100), y in range(0u64..100)) => {
            prop_assert!(x + y < 200);
            prop_assert_eq!(x + y, y + x);
        });
    }

    #[test]
    fn generators_respect_ranges() {
        prop_check!(cases: 200, (x in range(5usize..10), f in range(-1.5f64..1.5)) => {
            prop_assert!((5..10).contains(&x), "usize escaped: {}", x);
            prop_assert!((-1.5..1.5).contains(&f), "f64 escaped: {}", f);
        });
    }

    #[test]
    fn vec_lengths_respect_range() {
        prop_check!(cases: 100, (v in vec(range(0u8..3), 2..7)) => {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 3));
        });
    }

    #[test]
    fn vec_exact_is_exact() {
        prop_check!(cases: 50, (v in vec_exact(range(-5.0f32..5.0), 4)) => {
            prop_assert_eq!(v.len(), 4);
        });
    }

    #[test]
    fn failure_shrinks_to_the_boundary() {
        // The property "x < 70" over 0..100 must minimize to exactly 70.
        let caught = std::panic::catch_unwind(|| {
            prop_check!(cases: 300, (x in range(0u64..100)) => {
                prop_assert!(x < 70);
            });
        });
        let msg = *caught
            .expect_err("property should fail")
            .downcast::<String>()
            .unwrap();
        assert!(msg.contains("x = 70"), "shrinker stopped early: {msg}");
    }

    #[test]
    fn failure_shrinks_vectors() {
        // "no vector contains a 9" minimizes to a single-element [9].
        let caught = std::panic::catch_unwind(|| {
            prop_check!(cases: 300, (v in vec(range(0u64..10), 1..50)) => {
                prop_assert!(!v.contains(&9));
            });
        });
        let msg = *caught
            .expect_err("property should fail")
            .downcast::<String>()
            .unwrap();
        assert!(msg.contains("v = [9]"), "shrinker stopped early: {msg}");
    }

    #[test]
    fn runs_are_deterministic() {
        let mut a = Vec::new();
        let mut rng = case_rng(DEFAULT_SEED, 3);
        let g = range(0u64..1000);
        for _ in 0..10 {
            a.push(g.sample(&mut rng));
        }
        let mut rng = case_rng(DEFAULT_SEED, 3);
        let b: Vec<u64> = (0..10).map(|_| g.sample(&mut rng)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn any_u64_shrinks_toward_zero() {
        let g = any_u64();
        let c = g.shrink(&100);
        assert!(c.contains(&0) && c.contains(&50) && c.contains(&99));
        assert!(g.shrink(&0).is_empty());
    }
}
