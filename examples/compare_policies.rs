//! Compare every implemented policy across a sweep of cache sizes on a
//! production-like workload (a miniature Figure 8).
//!
//! ```text
//! cargo run --release --example compare_policies
//! ```

use lhr_repro::core::cache::{LhrCache, LhrConfig};
use lhr_repro::policies::{
    s4lru, slru, AdaptSize, Arc, BLru, Fifo, Gdsf, Hawkeye, Hyperbolic, Lfo, LfuDa, Lhd, Lrb, Lru,
    LruK, PopCache, RandomEviction, RlCache, TinyLfu, WTinyLfu,
};
use lhr_repro::sim::sweep::{run_grid, Cell, PolicyFactory};
use lhr_repro::sim::SimConfig;
use lhr_repro::trace::synth::{production, ProductionScale};
use lhr_repro::trace::TraceStats;

fn main() {
    let trace = production::cdn_a(ProductionScale::Tiny, 11);
    let unique = TraceStats::compute(&trace).unique_bytes_requested as f64;
    let window = (trace.duration().as_secs_f64() / 4.0).max(60.0);
    let seed = 11u64;

    let factories: Vec<PolicyFactory> = vec![
        PolicyFactory::new("LHR", move |c| {
            Box::new(LhrCache::new(
                c,
                LhrConfig {
                    seed,
                    ..LhrConfig::default()
                },
            ))
        }),
        PolicyFactory::new("LRU", |c| Box::new(Lru::new(c))),
        PolicyFactory::new("FIFO", |c| Box::new(Fifo::new(c))),
        PolicyFactory::new("Random", move |c| Box::new(RandomEviction::new(c, seed))),
        PolicyFactory::new("LRU-4", |c| Box::new(LruK::new(c, 4))),
        PolicyFactory::new("LFU-DA", |c| Box::new(LfuDa::new(c))),
        PolicyFactory::new("GDSF", |c| Box::new(Gdsf::new(c))),
        PolicyFactory::new("ARC", |c| Box::new(Arc::new(c))),
        PolicyFactory::new("AdaptSize", move |c| Box::new(AdaptSize::new(c, seed))),
        PolicyFactory::new("B-LRU", |c| Box::new(BLru::new(c, 1 << 16))),
        PolicyFactory::new("TinyLFU", |c| Box::new(TinyLfu::new(c, 1 << 16))),
        PolicyFactory::new("W-TinyLFU", |c| Box::new(WTinyLfu::new(c, 1 << 16))),
        PolicyFactory::new("SLRU", |c| Box::new(slru(c))),
        PolicyFactory::new("S4LRU", |c| Box::new(s4lru(c))),
        PolicyFactory::new("Hyperbolic", move |c| Box::new(Hyperbolic::new(c, seed))),
        PolicyFactory::new("LHD", move |c| Box::new(Lhd::new(c, seed))),
        PolicyFactory::new("LFO", |c| Box::new(Lfo::new(c, 4_096))),
        PolicyFactory::new("RL-Cache", move |c| Box::new(RlCache::new(c, window, seed))),
        PolicyFactory::new("PopCache", move |c| {
            Box::new(PopCache::new(c, window, seed))
        }),
        PolicyFactory::new("LRB", move |c| Box::new(Lrb::new(c, window, seed))),
        PolicyFactory::new("Hawkeye", |c| Box::new(Hawkeye::new(c))),
    ];

    // Cache sizes: 2%, 6%, and 12% of the unique bytes.
    let capacities: Vec<u64> = [0.02, 0.06, 0.12]
        .iter()
        .map(|f| (unique * f) as u64)
        .collect();
    let trace_ref = &trace;
    let cells: Vec<Cell<'_>> = capacities
        .iter()
        .flat_map(|&capacity| {
            (0..factories.len()).map(move |policy| Cell {
                policy,
                trace: trace_ref,
                capacity,
            })
        })
        .collect();
    let config = SimConfig {
        warmup_requests: trace.len() / 5,
        series_every: None,
    };
    let results = run_grid(&factories, &cells, &config, 8);

    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "policy",
        format!("{:.1}GB", capacities[0] as f64 / 1e9),
        format!("{:.1}GB", capacities[1] as f64 / 1e9),
        format!("{:.1}GB", capacities[2] as f64 / 1e9)
    );
    for (i, factory) in factories.iter().enumerate() {
        let hits: Vec<String> = (0..capacities.len())
            .map(|c| {
                let r = &results[c * factories.len() + i];
                format!("{:6.2}%", r.metrics.object_hit_ratio() * 100.0)
            })
            .collect();
        println!(
            "{:<10} {:>12} {:>12} {:>12}",
            factory.name, hits[0], hits[1], hits[2]
        );
    }
}
