//! A wall-clock micro-benchmark harness (the workspace's `criterion`
//! replacement).
//!
//! Each bench binary in `crates/bench/benches/` is a plain `main()`
//! (`harness = false`) that builds a [`Bench`] group, registers closures,
//! and calls [`Bench::finish`]. Per registered function the harness:
//!
//! 1. **warms up** for [`Bench::warmup_ms`] milliseconds (JIT-free Rust
//!    still needs cache/branch-predictor warmup and lazy allocs),
//! 2. runs timed batches until [`Bench::measure_ms`] of samples exist,
//! 3. reports min / mean / max ns per iteration, plus throughput when
//!    [`Bench::throughput_elems`] was set.
//!
//! Set `LHR_BENCH_JSON=<path>` to also append one machine-readable JSON
//! line per group (via [`crate::json`]) — the format the experiment scripts
//! consume.
//!
//! Timings are wall-clock: pin the process and quiesce the machine for
//! stable numbers. Unlike criterion there is no statistical outlier
//! rejection — the goal is a dependency-free harness that is honest about
//! being a stopwatch.
//!
//! # Example
//!
//! ```
//! use lhr_util::bench::{black_box, Bench};
//!
//! let mut group = Bench::new("example_sum");
//! group.warmup_ms(1).measure_ms(5); // keep the doctest fast
//! group.bench("sum_1k", || (0..1000u64).map(black_box).sum::<u64>());
//! let results = group.finish();
//! assert_eq!(results[0].name, "sum_1k");
//! assert!(results[0].mean_ns > 0.0);
//! ```

use crate::json::{Json, ToJson};
use std::time::Instant;

pub use std::hint::black_box;

/// One benchmarked function's timing summary.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Function label within the group.
    pub name: String,
    /// Total timed iterations.
    pub iters: u64,
    /// Fastest observed batch, per iteration.
    pub min_ns: f64,
    /// Mean over all timed batches.
    pub mean_ns: f64,
    /// Slowest observed batch, per iteration.
    pub max_ns: f64,
    /// Elements processed per iteration (when declared).
    pub elems_per_iter: Option<u64>,
}

impl BenchResult {
    /// Throughput in elements/second, when an element count was declared.
    pub fn elems_per_sec(&self) -> Option<f64> {
        self.elems_per_iter.map(|n| n as f64 * 1e9 / self.mean_ns)
    }
}

impl ToJson for BenchResult {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name".to_string(), self.name.to_json()),
            ("iters".to_string(), self.iters.to_json()),
            ("min_ns".to_string(), self.min_ns.to_json()),
            ("mean_ns".to_string(), self.mean_ns.to_json()),
            ("max_ns".to_string(), self.max_ns.to_json()),
        ];
        if let Some(n) = self.elems_per_iter {
            fields.push(("elems_per_iter".to_string(), n.to_json()));
        }
        Json::Object(fields)
    }
}

/// A named group of benchmark functions sharing warmup/measurement budgets.
pub struct Bench {
    group: String,
    warmup_ms: u64,
    measure_ms: u64,
    throughput: Option<u64>,
    results: Vec<BenchResult>,
}

impl Bench {
    /// A new group; budgets default to 300 ms warmup / 1 s measurement per
    /// function (override with `LHR_BENCH_WARMUP_MS` / `LHR_BENCH_MEASURE_MS`).
    pub fn new(group: impl Into<String>) -> Self {
        Bench {
            group: group.into(),
            warmup_ms: crate::prop::env_u64("LHR_BENCH_WARMUP_MS", 300),
            measure_ms: crate::prop::env_u64("LHR_BENCH_MEASURE_MS", 1_000),
            throughput: None,
            results: Vec::new(),
        }
    }

    /// Sets the warmup budget in milliseconds.
    pub fn warmup_ms(&mut self, ms: u64) -> &mut Self {
        self.warmup_ms = ms;
        self
    }

    /// Sets the measurement budget in milliseconds.
    pub fn measure_ms(&mut self, ms: u64) -> &mut Self {
        self.measure_ms = ms;
        self
    }

    /// Declares how many elements one iteration processes; subsequent
    /// [`bench`](Self::bench) calls report throughput.
    pub fn throughput_elems(&mut self, elems: u64) -> &mut Self {
        self.throughput = Some(elems);
        self
    }

    /// Times `f`, printing a one-line summary immediately.
    pub fn bench<T>(&mut self, name: impl Into<String>, mut f: impl FnMut() -> T) -> &mut Self {
        let name = name.into();

        // Warmup: also estimates the per-iteration cost so measurement
        // batches are sized to ~10 samples per budget.
        let warmup_budget = std::time::Duration::from_millis(self.warmup_ms.max(1));
        let start = Instant::now();
        let mut warmup_iters = 0u64;
        while start.elapsed() < warmup_budget {
            black_box(f());
            warmup_iters += 1;
        }
        let est_ns = (start.elapsed().as_nanos() as f64 / warmup_iters as f64).max(1.0);

        let measure_budget = std::time::Duration::from_millis(self.measure_ms.max(1));
        let batch =
            ((measure_budget.as_nanos() as f64 / 10.0 / est_ns).round() as u64).clamp(1, 1 << 24);

        let mut iters = 0u64;
        let mut min_ns = f64::INFINITY;
        let mut max_ns = 0.0f64;
        let measure_start = Instant::now();
        while measure_start.elapsed() < measure_budget {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let per_iter = t.elapsed().as_nanos() as f64 / batch as f64;
            min_ns = min_ns.min(per_iter);
            max_ns = max_ns.max(per_iter);
            iters += batch;
        }
        let mean_ns = measure_start.elapsed().as_nanos() as f64 / iters as f64;

        let result = BenchResult {
            name,
            iters,
            min_ns,
            mean_ns,
            max_ns,
            elems_per_iter: self.throughput,
        };
        let throughput = match result.elems_per_sec() {
            Some(eps) => format!("  ({:.2} Melem/s)", eps / 1e6),
            None => String::new(),
        };
        println!(
            "{}/{:<24} {:>12.1} ns/iter  (min {:.1}, max {:.1}, {} iters){}",
            self.group,
            result.name,
            result.mean_ns,
            result.min_ns,
            result.max_ns,
            result.iters,
            throughput
        );
        self.results.push(result);
        self
    }

    /// Finishes the group: optionally appends a JSON line to
    /// `LHR_BENCH_JSON`, then returns the collected results.
    pub fn finish(self) -> Vec<BenchResult> {
        if let Ok(path) = std::env::var("LHR_BENCH_JSON") {
            let record = Json::Object(vec![
                ("group".to_string(), self.group.to_json()),
                ("results".to_string(), self.results.to_json()),
            ]);
            let line = format!("{record}\n");
            if let Err(e) = append_to(&path, &line) {
                eprintln!("warning: could not write {path}: {e}");
            }
        }
        self.results
    }
}

fn append_to(path: &str, text: &str) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    f.write_all(text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something() {
        let mut b = Bench::new("test_group");
        b.warmup_ms(1).measure_ms(5).throughput_elems(100);
        b.bench("noop_sum", || (0..100u64).sum::<u64>());
        let results = b.finish();
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert!(r.iters > 0);
        assert!(r.min_ns <= r.mean_ns && r.mean_ns <= r.max_ns * 1.01);
        assert!(r.elems_per_sec().unwrap() > 0.0);
    }

    #[test]
    fn result_json_shape() {
        let r = BenchResult {
            name: "x".into(),
            iters: 10,
            min_ns: 1.0,
            mean_ns: 2.0,
            max_ns: 3.0,
            elems_per_iter: Some(5),
        };
        let v = r.to_json();
        assert_eq!(v.get("name").unwrap().as_str().unwrap(), "x");
        assert_eq!(v.get("elems_per_iter").unwrap(), &Json::UInt(5));
    }
}
