//! Per-request throughput of every cache policy (the compute side of the
//! paper's Figure 9 / Table 2 overhead story).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lhr_bench::harness::{all_factories, Options};
use lhr_sim::{SimConfig, Simulator};
use lhr_trace::synth::{IrmConfig, SizeModel};

fn bench_policies(c: &mut Criterion) {
    let trace = IrmConfig::new(2_000, 50_000)
        .zipf_alpha(0.9)
        .size_model(SizeModel::BoundedPareto { alpha: 1.2, min: 10_000, max: 10_000_000 })
        .seed(7)
        .generate();
    let capacity = 200_000_000u64; // ~4% of unique bytes
    let options = Options::default();

    let mut group = c.benchmark_group("policy_requests");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.sample_size(10);
    for factory in all_factories(&trace, options.seed) {
        group.bench_with_input(
            BenchmarkId::from_parameter(&factory.name),
            &factory,
            |b, factory| {
                b.iter(|| {
                    let mut policy = (factory.build)(capacity);
                    Simulator::new(SimConfig::default()).run(&mut policy, &trace)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
