//! Segmented LRU (SLRU) and Facebook's S4LRU (Huang et al., SOSP '13).
//!
//! SLRU splits the cache into a *probation* and a *protected* segment:
//! first-time objects enter probation; a hit promotes to protected;
//! protected overflow demotes back to probation's MRU. S4LRU generalizes
//! to four levels: insert at level 0, each hit promotes one level, each
//! level's overflow cascades down, and level 0's overflow leaves the
//! cache.

use crate::util::{Handle, LruList, ObjectTable};
use lhr_sim::{CachePolicy, Outcome};
use lhr_trace::{ObjectId, Request};

/// A multi-level segmented LRU; `Slru` and `S4lru` are thin constructors.
#[derive(Debug)]
pub struct SegmentedLru {
    name: String,
    capacity: u64,
    /// Per-level byte budgets (equal split).
    level_cap: Vec<u64>,
    levels: Vec<LruList<(ObjectId, u64)>>,
    level_bytes: Vec<u64>,
    map: ObjectTable<(Handle, usize)>,
    evictions: u64,
}

impl SegmentedLru {
    /// A segmented LRU with `n_levels` equal segments.
    pub fn new(name: impl Into<String>, capacity: u64, n_levels: usize) -> Self {
        assert!(n_levels >= 1);
        let per = (capacity / n_levels as u64).max(1);
        let mut level_cap = vec![per; n_levels];
        // Give the remainder to the highest level.
        level_cap[n_levels - 1] += capacity - per * n_levels as u64;
        SegmentedLru {
            name: name.into(),
            capacity,
            level_cap,
            levels: (0..n_levels).map(|_| LruList::new()).collect(),
            level_bytes: vec![0; n_levels],
            map: ObjectTable::new(),
            evictions: 0,
        }
    }

    fn used(&self) -> u64 {
        self.level_bytes.iter().sum()
    }

    /// Cascades overflow from `level` downward; level 0 overflow evicts.
    fn cascade(&mut self, mut level: usize) {
        loop {
            if self.level_bytes[level] <= self.level_cap[level] {
                if level == 0 {
                    return;
                }
                level -= 1;
                continue;
            }
            let (id, size) = self.levels[level].pop_back().expect("over budget");
            self.level_bytes[level] -= size;
            if level == 0 {
                self.map.remove(id);
                self.evictions += 1;
            } else {
                let h = self.levels[level - 1].push_front((id, size));
                self.level_bytes[level - 1] += size;
                self.map.insert(id, (h, level - 1));
            }
        }
    }

    fn insert_at(&mut self, level: usize, id: ObjectId, size: u64) {
        let h = self.levels[level].push_front((id, size));
        self.level_bytes[level] += size;
        self.map.insert(id, (h, level));
        self.cascade(level);
    }
}

impl CachePolicy for SegmentedLru {
    fn name(&self) -> &str {
        &self.name
    }
    fn capacity(&self) -> u64 {
        self.capacity
    }
    fn used_bytes(&self) -> u64 {
        self.used()
    }
    fn contains(&self, id: ObjectId) -> bool {
        self.map.contains_key(id)
    }

    fn hit_check(&mut self, req: &Request) -> Option<Outcome> {
        // Single probe on hit: level + handle come out of the fused table.
        let &(handle, level) = self.map.get(req.id)?;
        let top = self.levels.len() - 1;
        if level == top {
            self.levels[level].move_to_front(handle);
        } else {
            let (id, size) = self.levels[level].remove(handle);
            self.level_bytes[level] -= size;
            self.insert_at(level + 1, id, size);
        }
        Some(Outcome::Hit)
    }

    fn handle(&mut self, req: &Request) -> Outcome {
        if let Some(&(handle, level)) = self.map.get(req.id) {
            let top = self.levels.len() - 1;
            if level == top {
                self.levels[level].move_to_front(handle);
            } else {
                // Promote one level.
                let (id, size) = self.levels[level].remove(handle);
                self.level_bytes[level] -= size;
                self.insert_at(level + 1, id, size);
            }
            return Outcome::Hit;
        }
        // Objects enter at level 0, so anything larger than the level-0
        // budget can never be admitted (each level's budget bounds the
        // total, which is what keeps the cache within capacity).
        if req.size > self.level_cap[0] {
            return Outcome::MissBypassed;
        }
        self.insert_at(0, req.id, req.size);
        Outcome::MissAdmitted
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }

    fn metadata_overhead_bytes(&self) -> u64 {
        self.map.len() as u64 * 56
    }
}

/// Classic two-segment SLRU (probation + protected).
pub fn slru(capacity: u64) -> SegmentedLru {
    SegmentedLru::new("SLRU", capacity, 2)
}

/// Facebook's S4LRU (four segments).
pub fn s4lru(capacity: u64) -> SegmentedLru {
    SegmentedLru::new("S4LRU", capacity, 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhr_trace::Time;

    fn req(t: u64, id: ObjectId, size: u64) -> Request {
        Request::new(Time::from_secs(t), id, size)
    }

    #[test]
    fn new_objects_enter_level_zero() {
        let mut c = slru(400);
        c.handle(&req(0, 1, 100));
        assert_eq!(c.map.get(1).expect("cached").1, 0);
    }

    #[test]
    fn hits_promote_one_level() {
        let mut c = s4lru(800);
        c.handle(&req(0, 1, 100));
        c.handle(&req(1, 1, 100));
        assert_eq!(c.map.get(1).expect("cached").1, 1);
        c.handle(&req(2, 1, 100));
        assert_eq!(c.map.get(1).expect("cached").1, 2);
        c.handle(&req(3, 1, 100));
        assert_eq!(c.map.get(1).expect("cached").1, 3);
        c.handle(&req(4, 1, 100)); // already at top
        assert_eq!(c.map.get(1).expect("cached").1, 3);
    }

    #[test]
    fn scan_does_not_displace_protected() {
        let mut c = slru(400);
        // Promote 1 and 2 to protected.
        for t in 0..4 {
            c.handle(&req(2 * t, 1, 100));
            c.handle(&req(2 * t + 1, 2, 100));
        }
        // Scan of one-shot objects churns probation only.
        for i in 0..20u64 {
            c.handle(&req(100 + i, 1_000 + i, 100));
        }
        assert!(
            c.contains(1) && c.contains(2),
            "protected objects evicted by a scan"
        );
    }

    #[test]
    fn capacity_respected() {
        let mut c = s4lru(1_000);
        for i in 0..3_000u64 {
            c.handle(&req(i, i % 37, 90 + (i % 4) * 30));
            assert!(c.used_bytes() <= 1_000, "overflow at {i}");
        }
        assert!(c.evictions() > 0);
    }

    #[test]
    fn level_budgets_hold_after_promotions() {
        let mut c = s4lru(800);
        for i in 0..200u64 {
            c.handle(&req(2 * i, i % 11, 100));
            c.handle(&req(2 * i + 1, i % 7, 100));
        }
        for (l, &bytes) in c.level_bytes.iter().enumerate() {
            assert!(
                bytes <= c.level_cap[l] || l == 0,
                "level {l} over budget: {bytes} > {}",
                c.level_cap[l]
            );
        }
    }

    #[test]
    fn oversized_bypassed() {
        let mut c = slru(100);
        assert_eq!(c.handle(&req(0, 1, 200)), Outcome::MissBypassed);
    }
}
