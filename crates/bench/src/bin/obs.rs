//! Observability overhead microbenchmark — replays the same trace through
//! the simulator bare, with an attached [`lhr_obs::Obs`] recorder, and with
//! the recorder plus 1/64 request-path trace sampling, and reports the
//! relative overheads, which the obs layer budgets at < 5 %:
//!
//! ```text
//! cargo run --release -p lhr-bench --bin obs -- --scale small
//! ```
//!
//! The variants are *interleaved* round-robin — each measurement round
//! times one replay of every variant back to back — so thermal and
//! frequency drift lands on all of them equally instead of biasing
//! whichever ran last, and the overhead is computed from per-variant
//! minimums (the least-noisy estimator for a deterministic workload).
//! Set `LHR_BENCH_JSON=<path>` to append machine-readable results plus
//! `obs_overhead` summary lines (the format committed as `BENCH_obs.json`).

use lhr_obs::{Obs, ObsConfig, ObsWindow};
use lhr_policies::Lru;
use lhr_sim::{SimConfig, Simulator};
use lhr_trace::synth::{IrmConfig, ProductionScale, SizeModel};
use lhr_trace::Trace;
use lhr_util::bench::{black_box, BenchResult};
use lhr_util::json::{Json, ToJson};
use std::io::Write;
use std::time::{Duration, Instant};

/// One replay of `trace` through an LRU simulator, optionally observed.
fn replay(trace: &Trace, capacity: u64, obs: Option<ObsConfig>) -> u64 {
    let mut policy = Lru::new(capacity);
    let mut sim = Simulator::new(SimConfig::default());
    match obs {
        None => sim.run(&mut policy, black_box(trace)).metrics.hits,
        Some(config) => {
            let obs = Obs::new(config);
            sim = sim.with_obs(obs.clone());
            sim.run(&mut policy, black_box(trace));
            obs.to_jsonl().len() as u64
        }
    }
}

fn env_ms(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let options = lhr_bench::harness::Options::from_args();
    let requests = match options.scale {
        ProductionScale::Tiny => 50_000,
        ProductionScale::Small => 200_000,
        ProductionScale::Medium => 800_000,
        ProductionScale::Full => 3_000_000,
    };
    let trace = IrmConfig::new(10_000, requests)
        .zipf_alpha(0.9)
        .size_model(SizeModel::BoundedPareto {
            alpha: 1.2,
            min: 10_000,
            max: 10_000_000,
        })
        .seed(options.seed)
        .generate();
    // Small enough relative to the working set that the eviction path (the
    // part the obs watermark samples) stays hot.
    let capacity = 25_000_000;

    let obs_config = || ObsConfig {
        window: ObsWindow::Requests(10_000),
        deterministic: true,
        ..ObsConfig::default()
    };
    let traced_config = || ObsConfig {
        trace_sample: 64,
        ..obs_config()
    };
    let variants: Vec<(&str, Box<dyn Fn() -> u64>)> = vec![
        ("plain", Box::new(|| replay(&trace, capacity, None))),
        (
            "obs",
            Box::new(|| replay(&trace, capacity, Some(obs_config()))),
        ),
        (
            "trace_sampled",
            Box::new(|| replay(&trace, capacity, Some(traced_config()))),
        ),
    ];

    // Warmup: one full round-robin pass per budget slice, then measured
    // rounds timing each variant once, back to back, until the budget
    // (scaled by variant count so each gets its usual share) runs out.
    let warmup = Duration::from_millis(env_ms("LHR_BENCH_WARMUP_MS", 300));
    let measure =
        Duration::from_millis(env_ms("LHR_BENCH_MEASURE_MS", 1_000) * variants.len() as u64);
    let start = Instant::now();
    while start.elapsed() < warmup {
        for (_, f) in &variants {
            black_box(f());
        }
    }

    let mut iters = 0u64;
    let mut min_ns = vec![f64::INFINITY; variants.len()];
    let mut max_ns = vec![0.0f64; variants.len()];
    let mut total_ns = vec![0.0f64; variants.len()];
    let measure_start = Instant::now();
    while measure_start.elapsed() < measure || iters < 2 {
        for (k, (_, f)) in variants.iter().enumerate() {
            let t = Instant::now();
            black_box(f());
            let ns = t.elapsed().as_nanos() as f64;
            min_ns[k] = min_ns[k].min(ns);
            max_ns[k] = max_ns[k].max(ns);
            total_ns[k] += ns;
        }
        iters += 1;
    }

    let results: Vec<BenchResult> = variants
        .iter()
        .enumerate()
        .map(|(k, (name, _))| BenchResult {
            name: format!("{requests}_{name}"),
            iters,
            min_ns: min_ns[k],
            mean_ns: total_ns[k] / iters as f64,
            max_ns: max_ns[k],
            elems_per_iter: Some(requests as u64),
        })
        .collect();
    for r in &results {
        println!(
            "sim_lru_replay/{:<24} {:>14.1} ns/iter  (min {:.1}, max {:.1}, {} iters)",
            r.name, r.mean_ns, r.min_ns, r.max_ns, r.iters
        );
    }

    let mut overhead_lines = Vec::new();
    for (k, (name, _)) in variants.iter().enumerate().skip(1) {
        let overhead_pct = (min_ns[k] / min_ns[0] - 1.0) * 100.0;
        println!(
            "{name} overhead: {overhead_pct:+.2}%  (plain {:.2} ms/replay, {name} {:.2} ms/replay, min-of-{iters})",
            min_ns[0] / 1e6,
            min_ns[k] / 1e6,
        );
        overhead_lines.push(Json::Object(vec![
            ("group".to_string(), "obs_overhead".to_json()),
            ("variant".to_string(), (*name).to_json()),
            ("requests".to_string(), (requests as u64).to_json()),
            ("plain_min_ns".to_string(), min_ns[0].to_json()),
            ("variant_min_ns".to_string(), min_ns[k].to_json()),
            ("overhead_pct".to_string(), overhead_pct.to_json()),
        ]));
    }

    if let Ok(path) = std::env::var("LHR_BENCH_JSON") {
        let group = Json::Object(vec![
            ("group".to_string(), "sim_lru_replay".to_json()),
            ("results".to_string(), results.to_json()),
        ]);
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| {
                writeln!(f, "{group}")?;
                for line in &overhead_lines {
                    writeln!(f, "{line}")?;
                }
                Ok(())
            });
        if let Err(e) = appended {
            eprintln!("warning: could not write {path}: {e}");
        }
    }
    lhr_bench::harness::write_obs(&options);
}
