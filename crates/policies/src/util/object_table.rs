//! A fused open-addressing object table — the hit path of the classic
//! policies in one probe.
//!
//! `std::collections::HashMap<ObjectId, Handle>` pays for generality the
//! recency policies don't need: SipHash, a two-array control/slot layout,
//! and `Option`-returning APIs that force a second lookup on the
//! miss→insert path. [`ObjectTable`] specializes for this repo's shape —
//! key is always an `ObjectId` (u64), value is a small inline payload (an
//! [`super::LruList`] `Handle`, optionally with a size or segment index) —
//! and stores key, state, and payload in a single slot, so a hit is one
//! hashed probe over a contiguous array followed by one list splice.
//!
//! Scheme: power-of-two capacity, linear probing with the fixed-seed
//! [`lhr_util::hash::hash_u64`] hash, byte-tagged slots (empty / full /
//! tombstone). Deletions leave tombstones; probes skip them, inserts
//! reuse the first one seen, and the table rehashes (dropping all
//! tombstones) when live + dead slots exceed ⅞ of capacity. Iteration
//! order is slot order — arbitrary and **never load-bearing** (see
//! DESIGN.md, "Hot-path memory layout"); decision paths sort before use.
//!
//! # Example
//!
//! ```
//! use lhr_policies::util::ObjectTable;
//!
//! let mut t: ObjectTable<u64> = ObjectTable::new();
//! t.insert(7, 700);
//! assert_eq!(t.get(7), Some(&700));
//! assert_eq!(t.remove(7), Some(700));
//! assert_eq!(t.get(7), None);
//! ```

use lhr_trace::ObjectId;
use lhr_util::hash::hash_u64;

const EMPTY: u8 = 0;
const FULL: u8 = 1;
const TOMB: u8 = 2;
/// Transient marker used only inside [`ObjectTable::rehash_in_place`]: a
/// live entry that has not been re-placed yet.
const PENDING: u8 = 3;

const MIN_CAPACITY: usize = 8;

#[derive(Debug, Clone)]
struct Slot<V> {
    ctrl: u8,
    key: ObjectId,
    value: Option<V>,
}

impl<V> Slot<V> {
    fn empty() -> Self {
        Slot {
            ctrl: EMPTY,
            key: 0,
            value: None,
        }
    }
}

/// Open-addressing hash table keyed by [`ObjectId`] with the payload
/// inline in the slot. See the module docs for the scheme.
#[derive(Debug, Clone)]
pub struct ObjectTable<V> {
    slots: Vec<Slot<V>>,
    mask: usize,
    len: usize,
    /// Dead (tombstoned) slots — counted against the load factor so probe
    /// chains stay short even under heavy churn.
    tombs: usize,
}

impl<V> Default for ObjectTable<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> ObjectTable<V> {
    /// An empty table (no allocation until the first insert).
    pub fn new() -> Self {
        ObjectTable {
            slots: Vec::new(),
            mask: 0,
            len: 0,
            tombs: 0,
        }
    }

    /// An empty table pre-sized so `capacity` objects fit without rehash.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut t = Self::new();
        if capacity > 0 {
            // ⅞ load factor ⇒ size for capacity * 8/7, rounded up to a
            // power of two.
            let want = (capacity * 8 / 7 + 1).max(MIN_CAPACITY).next_power_of_two();
            t.allocate(want);
        }
        t
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slot-array size (for tests and load-factor introspection).
    pub fn slot_capacity(&self) -> usize {
        self.slots.len()
    }

    fn allocate(&mut self, capacity: usize) {
        debug_assert!(capacity.is_power_of_two());
        self.slots = (0..capacity).map(|_| Slot::empty()).collect();
        self.mask = capacity - 1;
        self.tombs = 0;
    }

    #[inline]
    fn index_of(&self, id: ObjectId) -> usize {
        hash_u64(id) as usize & self.mask
    }

    /// Finds the slot holding `id`, if present. One linear probe chain.
    #[inline]
    fn probe(&self, id: ObjectId) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let mut i = self.index_of(id);
        loop {
            let slot = &self.slots[i];
            match slot.ctrl {
                EMPTY => return None,
                FULL if slot.key == id => return Some(i),
                _ => i = (i + 1) & self.mask,
            }
        }
    }

    /// True when `id` is present.
    #[inline]
    pub fn contains_key(&self, id: ObjectId) -> bool {
        self.probe(id).is_some()
    }

    /// The payload for `id`, if present.
    #[inline]
    pub fn get(&self, id: ObjectId) -> Option<&V> {
        self.probe(id)
            .map(|i| self.slots[i].value.as_ref().expect("full slot has value"))
    }

    /// Mutable payload for `id`, if present — the policy hit path.
    #[inline]
    pub fn get_mut(&mut self, id: ObjectId) -> Option<&mut V> {
        self.probe(id)
            .map(|i| self.slots[i].value.as_mut().expect("full slot has value"))
    }

    /// Inserts or replaces, returning the previous payload if any.
    pub fn insert(&mut self, id: ObjectId, value: V) -> Option<V> {
        self.reserve_one();
        let mut i = self.index_of(id);
        let mut first_tomb: Option<usize> = None;
        loop {
            let slot = &self.slots[i];
            match slot.ctrl {
                FULL if slot.key == id => {
                    return self.slots[i].value.replace(value);
                }
                FULL => {}
                TOMB => {
                    if first_tomb.is_none() {
                        first_tomb = Some(i);
                    }
                }
                _ => {
                    // EMPTY terminates the chain: `id` is absent. Prefer
                    // recycling the first tombstone passed on the way.
                    let dst = first_tomb.unwrap_or(i);
                    if self.slots[dst].ctrl == TOMB {
                        self.tombs -= 1;
                    }
                    self.slots[dst] = Slot {
                        ctrl: FULL,
                        key: id,
                        value: Some(value),
                    };
                    self.len += 1;
                    return None;
                }
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Removes `id`, returning its payload. Leaves a tombstone.
    pub fn remove(&mut self, id: ObjectId) -> Option<V> {
        let i = self.probe(id)?;
        let slot = &mut self.slots[i];
        slot.ctrl = TOMB;
        slot.key = 0;
        self.len -= 1;
        self.tombs += 1;
        slot.value.take()
    }

    /// Drops all entries, keeping the allocation.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            slot.ctrl = EMPTY;
            slot.key = 0;
            slot.value = None;
        }
        self.len = 0;
        self.tombs = 0;
    }

    /// Iterates live `(id, &payload)` pairs in slot order — arbitrary;
    /// never let decisions or reports depend on it without sorting.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &V)> {
        self.slots
            .iter()
            .filter(|s| s.ctrl == FULL)
            .map(|s| (s.key, s.value.as_ref().expect("full slot has value")))
    }

    /// Grows or compacts ahead of one insertion so the probe loop always
    /// terminates at an EMPTY slot and chains stay short.
    fn reserve_one(&mut self) {
        if self.slots.is_empty() {
            self.allocate(MIN_CAPACITY);
            return;
        }
        let cap = self.slots.len();
        if (self.len + self.tombs + 1) * 8 <= cap * 7 {
            return;
        }
        // Mostly-live table ⇒ grow; tombstone-heavy ⇒ rehash in place at
        // the same capacity (churny steady state never grows unboundedly
        // — and never allocates: growth is the only allocating path).
        if (self.len + 1) * 2 > cap {
            let old = std::mem::take(&mut self.slots);
            self.allocate(cap * 2);
            self.len = 0;
            for slot in old {
                if slot.ctrl == FULL {
                    self.insert(slot.key, slot.value.expect("full slot has value"));
                }
            }
        } else {
            self.rehash_in_place();
        }
    }

    /// Drops every tombstone and re-places the live entries without
    /// touching the allocator — the steady-state half of [`Self::reserve_one`].
    ///
    /// Classic pending-swap scheme: mark live slots `PENDING`, clear the
    /// rest, then re-probe each pending entry from its home slot. A probe
    /// that lands on another pending entry swaps with it and re-places the
    /// displaced entry next, so each step retires one pending slot and the
    /// loop terminates.
    fn rehash_in_place(&mut self) {
        for slot in &mut self.slots {
            slot.ctrl = if slot.ctrl == FULL { PENDING } else { EMPTY };
            if slot.ctrl == EMPTY {
                slot.key = 0;
            }
        }
        self.tombs = 0;
        for i in 0..self.slots.len() {
            if self.slots[i].ctrl != PENDING {
                continue;
            }
            self.slots[i].ctrl = EMPTY;
            let mut key = std::mem::replace(&mut self.slots[i].key, 0);
            let mut value = self.slots[i].value.take();
            loop {
                let mut j = self.index_of(key);
                while self.slots[j].ctrl == FULL {
                    j = (j + 1) & self.mask;
                }
                let dst = &mut self.slots[j];
                if dst.ctrl == EMPTY {
                    dst.ctrl = FULL;
                    dst.key = key;
                    dst.value = value;
                    break;
                }
                // PENDING: this slot's entry hasn't found its place yet —
                // displace it and re-place it in turn.
                dst.ctrl = FULL;
                key = std::mem::replace(&mut dst.key, key);
                value = std::mem::replace(&mut dst.value, value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t: ObjectTable<u32> = ObjectTable::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(10, 1), None);
        assert_eq!(t.insert(20, 2), None);
        assert_eq!(t.insert(10, 3), Some(1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(10), Some(&3));
        assert_eq!(t.get(30), None);
        assert_eq!(t.remove(10), Some(3));
        assert_eq!(t.remove(10), None);
        assert_eq!(t.len(), 1);
        assert!(t.contains_key(20) && !t.contains_key(10));
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut t: ObjectTable<u64> = ObjectTable::new();
        t.insert(5, 100);
        *t.get_mut(5).expect("present") += 1;
        assert_eq!(t.get(5), Some(&101));
        assert_eq!(t.get_mut(6), None);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut t: ObjectTable<u64> = ObjectTable::with_capacity(4);
        for i in 0..10_000u64 {
            t.insert(i, i * 2);
        }
        assert_eq!(t.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(t.get(i), Some(&(i * 2)), "key {i}");
        }
    }

    #[test]
    fn churn_reuses_tombstones_without_growing() {
        // Steady-state eviction churn: bounded live set, endless
        // insert/remove. The table must stabilize at a bounded slot count
        // (tombstone rehash-in-place), not grow forever.
        let mut t: ObjectTable<u64> = ObjectTable::with_capacity(64);
        for i in 0..64u64 {
            t.insert(i, i);
        }
        let mut high_water = t.slot_capacity();
        for round in 0..10_000u64 {
            t.remove(round % 64 + (round / 64) * 64);
            t.insert(round + 64, round);
            high_water = high_water.max(t.slot_capacity());
            assert_eq!(t.len(), 64);
        }
        assert!(
            high_water <= 256,
            "table grew to {high_water} slots under churn"
        );
        // The in-place rehashes along the way must not lose or corrupt
        // entries: exactly keys 10_000..10_064 survive the churn.
        for key in 10_000..10_064u64 {
            assert!(t.contains_key(key), "lost key {key} across rehashes");
        }
        assert!(!t.contains_key(9_999));
    }

    #[test]
    fn zero_and_max_ids_are_ordinary_keys() {
        // 0 is also the scrubbed key of empty/tombstone slots — it must
        // still work as a real key (state lives in the ctrl byte).
        let mut t: ObjectTable<&str> = ObjectTable::new();
        t.insert(0, "zero");
        t.insert(u64::MAX, "max");
        assert_eq!(t.get(0), Some(&"zero"));
        assert_eq!(t.get(u64::MAX), Some(&"max"));
        assert_eq!(t.remove(0), Some("zero"));
        assert_eq!(t.get(0), None);
        assert_eq!(t.get(u64::MAX), Some(&"max"));
    }

    #[test]
    fn iter_sees_exactly_the_live_entries() {
        let mut t: ObjectTable<u64> = ObjectTable::new();
        for i in 0..100u64 {
            t.insert(i, i);
        }
        for i in 0..50u64 {
            t.remove(i * 2);
        }
        let mut got: Vec<ObjectId> = t.iter().map(|(id, _)| id).collect();
        got.sort_unstable();
        let want: Vec<ObjectId> = (0..100).filter(|i| i % 2 == 1).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn clear_keeps_allocation() {
        let mut t: ObjectTable<u64> = ObjectTable::with_capacity(100);
        let cap = t.slot_capacity();
        for i in 0..100u64 {
            t.insert(i, i);
        }
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.slot_capacity(), cap.max(t.slot_capacity()));
        assert_eq!(t.get(5), None);
        t.insert(5, 5);
        assert_eq!(t.len(), 1);
    }
}
