//! Shared data structures used by several policies.

pub mod bloom;
pub mod cms;
pub mod list;
pub mod object_table;
pub mod ordf64;

pub use bloom::BloomFilter;
pub use cms::CountMinSketch;
pub use list::{Handle, LruList};
pub use object_table::ObjectTable;
pub use ordf64::OrdF64;
