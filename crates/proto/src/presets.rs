//! Prototype constructors matching the paper's three servers.

use crate::fault::{FaultConfig, ResilienceConfig};
use crate::server::{CdnServer, ServerConfig};
use lhr::cache::{LhrCache, LhrConfig};
use lhr_policies::{Lru, WTinyLfu};

/// The unmodified-ATS stand-in: the CDN serving path with ATS's default
/// LRU cache (§6.1 — the paper replaces ATS's lookup structures with LHR;
/// the baseline keeps them).
pub fn ats_server(capacity: u64, config: ServerConfig) -> CdnServer<Lru> {
    CdnServer::new(Lru::new(capacity), config)
}

/// The LHR prototype: the same serving path with the LHR cache (§6.1).
pub fn lhr_server(
    capacity: u64,
    lhr_config: LhrConfig,
    config: ServerConfig,
) -> CdnServer<LhrCache> {
    CdnServer::new(LhrCache::new(capacity, lhr_config), config)
}

/// The Caffeine stand-in (Appendix A.3): an in-memory cache running
/// W-TinyLFU, Caffeine's policy. In-memory caches skip origin freshness
/// checks, so the default config disables them.
pub fn caffeine_server(capacity: u64, mut config: ServerConfig) -> CdnServer<WTinyLfu> {
    config.freshness_secs = None;
    CdnServer::new(WTinyLfu::new(capacity, 1 << 18), config)
}

/// The LHR-in-Caffeine prototype (Appendix A.3): LHR on the in-memory
/// serving path.
pub fn lhr_caffeine_server(
    capacity: u64,
    lhr_config: LhrConfig,
    mut config: ServerConfig,
) -> CdnServer<LhrCache> {
    config.freshness_secs = None;
    CdnServer::new(LhrCache::new(capacity, lhr_config), config)
}

/// A [`ServerConfig`] with the named fault preset (see
/// [`FaultConfig::preset_names`]) scaled to a trace of `duration_secs`,
/// and the full graceful-degradation stack enabled
/// ([`ResilienceConfig::hardened`]). `None` for an unknown preset name.
pub fn fault_preset(name: &str, seed: u64, duration_secs: f64) -> Option<ServerConfig> {
    let faults = FaultConfig::preset(name, seed, duration_secs)?;
    Some(ServerConfig {
        faults,
        resilience: ResilienceConfig::hardened(),
        ..ServerConfig::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhr_sim::CachePolicy;
    use lhr_trace::synth::IrmConfig;

    #[test]
    fn presets_have_expected_policies() {
        let ats = ats_server(1 << 20, ServerConfig::default());
        assert_eq!(ats.policy().name(), "LRU");
        let caffeine = caffeine_server(1 << 20, ServerConfig::default());
        assert_eq!(caffeine.policy().name(), "W-TinyLFU");
        let lhr = lhr_server(1 << 20, lhr::LhrConfig::default(), ServerConfig::default());
        assert_eq!(lhr.policy().name(), "LHR");
    }

    #[test]
    fn lhr_prototype_beats_or_matches_nothing_crashes_end_to_end() {
        let trace = IrmConfig::new(200, 5_000)
            .zipf_alpha(1.0)
            .seed(1)
            .generate();
        let mut ats = ats_server(20 << 20, ServerConfig::default());
        let ats_report = ats.replay(&trace);
        let mut lhr = lhr_server(20 << 20, lhr::LhrConfig::default(), ServerConfig::default());
        let lhr_report = lhr.replay(&trace);
        assert!(ats_report.content_hit_pct >= 0.0);
        assert!(lhr_report.content_hit_pct >= 0.0);
        assert!(lhr_report.mean_latency_ms > 0.0);
    }

    #[test]
    fn fault_presets_resolve_and_harden() {
        for name in FaultConfig::preset_names() {
            let cfg = fault_preset(name, 42, 1_000.0).expect(name);
            assert_eq!(cfg.faults.seed, 42);
            assert!(cfg.resilience.stale_if_error_secs > 0.0);
        }
        assert!(fault_preset("bogus", 42, 1_000.0).is_none());
        // The outage preset scales its window to the trace duration.
        let outage = fault_preset("outage", 1, 1_000.0).unwrap();
        assert_eq!(outage.faults.outages, vec![(400.0, 600.0)]);
    }
}
