//! Core trace types: [`Time`], [`ObjectId`], [`Request`], and [`Trace`].
//!
//! Timestamps are stored as integer microseconds so that every type in the
//! workspace is `Ord + Hash` and simulations are bit-for-bit deterministic.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in trace time, stored as integer microseconds since the start of
/// the trace.
///
/// `Time` is deliberately *not* a wall-clock instant: algorithm logic in this
/// workspace must be driven exclusively by trace time so that runs are
/// reproducible. Wall-clock measurement is confined to resource accounting in
/// `lhr-proto` and the bench harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

lhr_util::impl_json!(newtype Time);

impl Time {
    /// The origin of trace time.
    pub const ZERO: Time = Time(0);
    /// The largest representable time; useful as an "infinitely far in the
    /// future" sentinel (e.g. Belady's "never requested again").
    pub const MAX: Time = Time(u64::MAX);

    /// Builds a `Time` from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        Time(secs * 1_000_000)
    }

    /// Builds a `Time` from fractional seconds, saturating at [`Time::MAX`].
    ///
    /// Negative inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            return Time::ZERO;
        }
        let micros = secs * 1e6;
        if micros >= u64::MAX as f64 {
            Time::MAX
        } else {
            Time(micros as u64)
        }
    }

    /// Builds a `Time` from integer microseconds.
    pub fn from_micros(micros: u64) -> Self {
        Time(micros)
    }

    /// This time expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This time expressed in integer microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Saturating subtraction: `self - other`, or [`Time::ZERO`] if `other`
    /// is later than `self`.
    pub fn saturating_sub(self, other: Time) -> Time {
        Time(self.0.saturating_sub(other.0))
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}

impl Sub for Time {
    type Output = Time;
    /// Panics in debug builds on underflow; use [`Time::saturating_sub`] when
    /// the ordering is not guaranteed.
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// Identifier of a cached object (content). Opaque `u64`, typically a hash of
/// the URL in production systems; synthetic generators just use dense ids.
pub type ObjectId = u64;

/// A single content request: the unit every cache policy consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Request {
    /// Time at which the request arrives (trace clock).
    pub ts: Time,
    /// The requested object.
    pub id: ObjectId,
    /// Size of the requested object in bytes. The trace is the source of
    /// truth for sizes; policies must use this value, never a guess.
    pub size: u64,
}

lhr_util::impl_json!(struct Request { ts, id, size });

impl Request {
    /// Convenience constructor.
    pub fn new(ts: Time, id: ObjectId, size: u64) -> Self {
        Request { ts, id, size }
    }
}

/// An ordered sequence of requests plus a human-readable name.
///
/// Invariant (checked by [`Trace::validate`] and maintained by all generators
/// and readers in this crate): timestamps are monotone non-decreasing and
/// every request for a given object id carries the same size as its most
/// recent prior request (sizes may change over a trace in real CDNs, but our
/// simulators treat a size change as a new version of the object and the
/// generators never produce one).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Display name, e.g. `"CDN-A"` or `"zipf-0.9"`.
    pub name: String,
    /// The requests, in arrival order.
    pub requests: Vec<Request>,
}

lhr_util::impl_json!(struct Trace { name, requests });

impl Trace {
    /// Creates an empty trace with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Trace {
            name: name.into(),
            requests: Vec::new(),
        }
    }

    /// Creates a trace from parts. Prefer this over struct literal syntax so
    /// call sites read uniformly.
    pub fn from_requests(name: impl Into<String>, requests: Vec<Request>) -> Self {
        Trace {
            name: name.into(),
            requests,
        }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the trace holds no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Iterates over the requests in arrival order.
    pub fn iter(&self) -> std::slice::Iter<'_, Request> {
        self.requests.iter()
    }

    /// Appends a request, asserting (in debug builds) that time does not go
    /// backwards.
    pub fn push(&mut self, req: Request) {
        debug_assert!(
            self.requests.last().is_none_or(|last| last.ts <= req.ts),
            "trace timestamps must be monotone non-decreasing"
        );
        self.requests.push(req);
    }

    /// Total bytes requested (sum of sizes over all requests, with repeats).
    pub fn total_bytes(&self) -> u128 {
        self.requests.iter().map(|r| r.size as u128).sum()
    }

    /// Duration between the first and last request.
    pub fn duration(&self) -> Time {
        match (self.requests.first(), self.requests.last()) {
            (Some(first), Some(last)) => last.ts.saturating_sub(first.ts),
            _ => Time::ZERO,
        }
    }

    /// Checks the trace invariants, returning the index of the first
    /// violation if any: non-monotone timestamp, zero size, or an object
    /// whose size changed mid-trace.
    pub fn validate(&self) -> Result<(), TraceError> {
        let mut sizes = std::collections::HashMap::new();
        let mut prev_ts = Time::ZERO;
        for (idx, req) in self.requests.iter().enumerate() {
            if req.ts < prev_ts {
                return Err(TraceError::NonMonotoneTimestamp { index: idx });
            }
            prev_ts = req.ts;
            if req.size == 0 {
                return Err(TraceError::ZeroSize { index: idx });
            }
            match sizes.insert(req.id, req.size) {
                Some(prev) if prev != req.size => {
                    return Err(TraceError::SizeChanged {
                        index: idx,
                        id: req.id,
                    })
                }
                _ => {}
            }
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Request;
    type IntoIter = std::slice::Iter<'a, Request>;
    fn into_iter(self) -> Self::IntoIter {
        self.requests.iter()
    }
}

/// Invariant violations reported by [`Trace::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceError {
    /// A request's timestamp precedes its predecessor's.
    NonMonotoneTimestamp {
        /// Index of the offending request.
        index: usize,
    },
    /// A request has `size == 0`, which no policy can account for.
    ZeroSize {
        /// Index of the offending request.
        index: usize,
    },
    /// An object's size differs from an earlier request for the same object.
    SizeChanged {
        /// Index of the offending request.
        index: usize,
        /// The object whose size changed.
        id: ObjectId,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::NonMonotoneTimestamp { index } => {
                write!(f, "timestamp at request {index} precedes its predecessor")
            }
            TraceError::ZeroSize { index } => write!(f, "request {index} has zero size"),
            TraceError::SizeChanged { index, id } => {
                write!(f, "object {id} changed size at request {index}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_roundtrips_seconds() {
        let t = Time::from_secs_f64(1.5);
        assert_eq!(t.as_micros(), 1_500_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(Time::from_secs(2), Time::from_micros(2_000_000));
    }

    #[test]
    fn time_from_secs_clamps() {
        assert_eq!(Time::from_secs_f64(-3.0), Time::ZERO);
        assert_eq!(Time::from_secs_f64(f64::MAX), Time::MAX);
    }

    #[test]
    fn time_saturating_sub_does_not_underflow() {
        let a = Time::from_secs(1);
        let b = Time::from_secs(2);
        assert_eq!(a.saturating_sub(b), Time::ZERO);
        assert_eq!(b.saturating_sub(a), Time::from_secs(1));
    }

    #[test]
    fn time_add_saturates() {
        assert_eq!(Time::MAX + Time::from_secs(1), Time::MAX);
    }

    #[test]
    fn trace_push_and_metrics() {
        let mut t = Trace::new("t");
        t.push(Request::new(Time::from_secs(0), 1, 100));
        t.push(Request::new(Time::from_secs(1), 2, 200));
        t.push(Request::new(Time::from_secs(3), 1, 100));
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_bytes(), 400);
        assert_eq!(t.duration(), Time::from_secs(3));
        assert!(t.validate().is_ok());
    }

    #[test]
    fn validate_rejects_non_monotone() {
        let t = Trace::from_requests(
            "bad",
            vec![
                Request::new(Time::from_secs(2), 1, 10),
                Request::new(Time::from_secs(1), 2, 10),
            ],
        );
        assert_eq!(
            t.validate(),
            Err(TraceError::NonMonotoneTimestamp { index: 1 })
        );
    }

    #[test]
    fn validate_rejects_zero_size() {
        let t = Trace::from_requests("bad", vec![Request::new(Time::ZERO, 1, 0)]);
        assert_eq!(t.validate(), Err(TraceError::ZeroSize { index: 0 }));
    }

    #[test]
    fn validate_rejects_size_change() {
        let t = Trace::from_requests(
            "bad",
            vec![
                Request::new(Time::ZERO, 7, 10),
                Request::new(Time::from_secs(1), 7, 11),
            ],
        );
        assert_eq!(
            t.validate(),
            Err(TraceError::SizeChanged { index: 1, id: 7 })
        );
    }

    #[test]
    fn empty_trace_has_zero_duration() {
        let t = Trace::new("empty");
        assert!(t.is_empty());
        assert_eq!(t.duration(), Time::ZERO);
        assert_eq!(t.total_bytes(), 0);
        assert!(t.validate().is_ok());
    }
}
