//! GBM training/prediction microbenchmark binary — the perf-trajectory
//! companion to `benches/gbm.rs`, runnable via plain `cargo run` so
//! `scripts/verify.sh` (smoke) and `scripts/bench_gbm.sh` (baseline
//! recording) can drive it:
//!
//! ```text
//! cargo run --release -p lhr-bench --bin gbm -- --scale medium
//! ```
//!
//! Measures `Gbm::fit` with one thread and with `--threads` workers, the
//! quantized serving path (`predict_dataset`, the `gbm_predict_batch`
//! group the committed baseline tracks), and the remaining predict paths
//! (reference walk, branchless single-row, raw-f32 blocked batch) for
//! per-path attribution, at a per-scale row count. Set
//! `LHR_BENCH_JSON=<path>` to append machine-readable results plus a
//! `gbm_predict_summary` line recording `host_cpus` (the format committed
//! as `BENCH_gbm.json`).

use lhr_gbm::{Dataset, Gbm, GbmParams};
use lhr_trace::synth::ProductionScale;
use lhr_util::bench::{black_box, Bench};
use lhr_util::json::{Json, ToJson};
use lhr_util::rng::rngs::StdRng;
use lhr_util::rng::{Rng, SeedableRng};
use std::io::Write;

/// LHR-shaped synthetic training set: ~10% missing values, 23 features,
/// binary labels keyed on the first feature.
fn synthetic_dataset(rows: usize, features: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Dataset::new(features);
    for _ in 0..rows {
        let row: Vec<f32> = (0..features)
            .map(|_| {
                if rng.gen_bool(0.1) {
                    f32::NAN
                } else {
                    rng.gen::<f32>() * 10.0
                }
            })
            .collect();
        let label = if row[0].is_nan() || row[0] > 5.0 {
            1.0
        } else {
            0.0
        };
        data.push_row(&row, label);
    }
    data
}

fn main() {
    let options = lhr_bench::harness::Options::from_args();
    let rows = match options.scale {
        ProductionScale::Tiny => 2_048,
        ProductionScale::Small => 8_192,
        ProductionScale::Medium => 32_768,
        ProductionScale::Full => 131_072,
    };
    let data = synthetic_dataset(rows, 23, options.seed);
    let params = GbmParams {
        n_trees: 25,
        max_depth: 6,
        ..GbmParams::default()
    };

    let mut fit = Bench::new("gbm_fit");
    fit.throughput_elems(rows as u64);
    fit.bench(format!("{rows}_t1"), || {
        Gbm::fit(
            black_box(&data),
            &GbmParams {
                threads: 1,
                ..params.clone()
            },
        )
    });
    if options.threads > 1 {
        fit.bench(format!("{rows}_t{}", options.threads), || {
            Gbm::fit(
                black_box(&data),
                &GbmParams {
                    threads: options.threads,
                    ..params.clone()
                },
            )
        });
    }
    fit.finish();

    let model = Gbm::fit(&data, &params);

    // The serving path: predict_dataset rides the quantized-code tables
    // (u16 compares on pre-binned rows). Group name matches the committed
    // baseline so BENCH_gbm.json stays a like-for-like trajectory.
    let mut predict = Bench::new("gbm_predict_batch");
    predict.throughput_elems(rows as u64);
    predict.bench(format!("{rows}_t{}", options.threads), || {
        model.predict_dataset(black_box(&data), options.threads)
    });
    let quant_results = predict.finish();

    // The remaining predict paths, for per-path attribution: the original
    // per-tree reference walk (the pre-flattening serving path), the
    // branchless single-row traversal, and the lane-blocked raw-f32 batch.
    let raw_rows: Vec<Vec<f32>> = (0..rows).map(|i| data.row(i).to_vec()).collect();
    let mut paths = Bench::new("gbm_predict_paths");
    paths.throughput_elems(rows as u64);
    paths.bench(format!("reference_{rows}"), || {
        let mut acc = 0f32;
        for row in black_box(&raw_rows) {
            acc += model.predict_reference(row);
        }
        acc
    });
    paths.bench(format!("row_{rows}"), || {
        let mut acc = 0f32;
        for row in black_box(&raw_rows) {
            acc += model.predict(row);
        }
        acc
    });
    paths.bench(format!("batch_raw_{rows}_t{}", options.threads), || {
        model.predict_batch(black_box(&raw_rows), options.threads)
    });
    let path_results = paths.finish();

    // Machine-readable summary: host_cpus pins the thread counts to what
    // the hardware can actually deliver, and the speedup column is the
    // serving path against the reference walk on this same host.
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let reference_ns = path_results.first().map_or(0.0, |r| r.mean_ns);
    let quant_ns = quant_results.first().map_or(0.0, |r| r.mean_ns);
    let speedup = reference_ns / quant_ns.max(1e-9);
    println!(
        "gbm predict on {host_cpus} host cpu(s): reference {reference_ns:.0} ns, \
         quantized batch {quant_ns:.0} ns ({speedup:.2}x)"
    );
    if let Ok(path) = std::env::var("LHR_BENCH_JSON") {
        let mut fields = vec![
            ("group".to_string(), "gbm_predict_summary".to_json()),
            ("rows".to_string(), (rows as u64).to_json()),
            ("host_cpus".to_string(), (host_cpus as u64).to_json()),
            ("reference_mean_ns".to_string(), reference_ns.to_json()),
            ("batch_quant_mean_ns".to_string(), quant_ns.to_json()),
        ];
        for r in &path_results[1..] {
            fields.push((format!("{}_mean_ns", r.name), r.mean_ns.to_json()));
        }
        fields.push(("speedup_vs_reference".to_string(), speedup.to_json()));
        let record = Json::Object(fields);
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| writeln!(f, "{record}"));
        if let Err(e) = appended {
            eprintln!("warning: could not write {path}: {e}");
        }
    }
    lhr_bench::harness::write_obs(&options);
}
