//! The Che approximation (Che, Tung & Wang 2002), byte-capacity variant.
//!
//! Under the independent reference model with per-object Poisson request
//! rates `λ_i` and sizes `s_i`, an LRU cache of `C` bytes behaves as if
//! every object were evicted exactly `T_C` seconds after its last request,
//! where the *characteristic time* `T_C` solves
//!
//! ```text
//! Σ_i s_i · (1 − e^{−λ_i T_C}) = C
//! ```
//!
//! Object `i`'s hit probability is then `1 − e^{−λ_i T_C}` and the
//! aggregate (object) hit ratio is the rate-weighted mean. The
//! approximation is remarkably accurate for realistic populations and is
//! the standard analytic tool for CDN capacity planning.

use lhr_trace::Trace;
use std::collections::HashMap;

/// A fitted IRM population: per-object rates and sizes.
#[derive(Debug, Clone)]
pub struct CheModel {
    /// Per-object `(rate λ_i in requests/sec, size in bytes)`.
    pub objects: Vec<(f64, u64)>,
    /// Total request rate, Σ λ_i.
    pub total_rate: f64,
}

impl CheModel {
    /// Builds a model directly from rates and sizes.
    pub fn new(objects: Vec<(f64, u64)>) -> Self {
        assert!(!objects.is_empty(), "need at least one object");
        assert!(
            objects.iter().all(|&(rate, size)| rate > 0.0 && size > 0),
            "rates and sizes must be positive"
        );
        let total_rate = objects.iter().map(|&(r, _)| r).sum();
        CheModel {
            objects,
            total_rate,
        }
    }

    /// Estimates rates from a trace: `λ_i = count_i / duration`.
    pub fn from_trace(trace: &Trace) -> Self {
        assert!(trace.len() >= 2, "need at least two requests");
        let duration = trace.duration().as_secs_f64().max(1e-9);
        let mut counts: HashMap<u64, (u64, u64)> = HashMap::new();
        for req in trace.iter() {
            let e = counts.entry(req.id).or_insert((0, req.size));
            e.0 += 1;
        }
        Self::new(
            counts
                .into_values()
                .map(|(count, size)| (count as f64 / duration, size))
                .collect(),
        )
    }

    /// Expected bytes in cache if every object lived `t` seconds past its
    /// last request.
    fn expected_bytes(&self, t: f64) -> f64 {
        self.objects
            .iter()
            .map(|&(rate, size)| size as f64 * (1.0 - (-rate * t).exp()))
            .sum()
    }

    /// Solves for the characteristic time `T_C` of a `capacity`-byte cache
    /// by bisection. Returns `f64::INFINITY` when the cache fits the whole
    /// population.
    pub fn characteristic_time(&self, capacity: u64) -> f64 {
        let total_bytes: f64 = self.objects.iter().map(|&(_, s)| s as f64).sum();
        if capacity as f64 >= total_bytes {
            return f64::INFINITY;
        }
        let target = capacity as f64;
        let mut lo = 0.0f64;
        let mut hi = 1.0f64;
        while self.expected_bytes(hi) < target {
            hi *= 2.0;
            if hi > 1e18 {
                return f64::INFINITY;
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.expected_bytes(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Predicted LRU object hit ratio at `capacity` bytes.
    pub fn lru_hit_ratio(&self, capacity: u64) -> f64 {
        let t = self.characteristic_time(capacity);
        if t.is_infinite() {
            return 1.0;
        }
        let hit_rate: f64 = self
            .objects
            .iter()
            .map(|&(rate, _)| rate * (1.0 - (-rate * t).exp()))
            .sum();
        hit_rate / self.total_rate
    }

    /// Predicted LRU *byte* hit ratio at `capacity` bytes.
    pub fn lru_byte_hit_ratio(&self, capacity: u64) -> f64 {
        let t = self.characteristic_time(capacity);
        if t.is_infinite() {
            return 1.0;
        }
        let byte_hit: f64 = self
            .objects
            .iter()
            .map(|&(rate, size)| rate * size as f64 * (1.0 - (-rate * t).exp()))
            .sum();
        let byte_total: f64 = self
            .objects
            .iter()
            .map(|&(rate, size)| rate * size as f64)
            .sum();
        byte_hit / byte_total
    }

    /// Predicted hit ratio of *ideal LFU* (cache the highest `λ_i/s_i`
    /// densities first — the IRM optimum for static populations, and the
    /// quantity HRO's hazard ordering converges to on IRM traces).
    pub fn lfu_hit_ratio(&self, capacity: u64) -> f64 {
        let mut by_density: Vec<&(f64, u64)> = self.objects.iter().collect();
        by_density.sort_unstable_by(|a, b| {
            (b.0 / b.1 as f64)
                .partial_cmp(&(a.0 / a.1 as f64))
                .expect("finite")
        });
        let mut used = 0u64;
        let mut hit_rate = 0.0;
        for &&(rate, size) in &by_density {
            if used + size > capacity {
                continue;
            }
            used += size;
            hit_rate += rate;
        }
        hit_rate / self.total_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhr_sim::{SimConfig, Simulator};
    use lhr_trace::synth::{IrmConfig, SizeModel};

    #[test]
    fn characteristic_time_grows_with_capacity() {
        let model = CheModel::new((1..=100).map(|i| (1.0 / i as f64, 100)).collect());
        let t1 = model.characteristic_time(1_000);
        let t2 = model.characteristic_time(5_000);
        assert!(t2 > t1, "{t1} !< {t2}");
    }

    #[test]
    fn full_capacity_hits_everything() {
        let model = CheModel::new(vec![(1.0, 100), (2.0, 200)]);
        assert_eq!(model.lru_hit_ratio(300), 1.0);
        assert_eq!(model.lru_byte_hit_ratio(1_000), 1.0);
    }

    #[test]
    fn matches_lru_simulation_on_irm() {
        // The headline property: Che ≈ simulated LRU on an IRM trace.
        let trace = IrmConfig::new(500, 100_000)
            .zipf_alpha(0.8)
            .size_model(SizeModel::Fixed { bytes: 1_000 })
            .requests_per_sec(100.0)
            .seed(5)
            .generate();
        let model = CheModel::from_trace(&trace);
        for capacity in [20_000u64, 50_000, 100_000] {
            let predicted = model.lru_hit_ratio(capacity);
            let mut lru = lhr_policies::Lru::new(capacity);
            let cfg = SimConfig {
                warmup_requests: 20_000,
                series_every: None,
            };
            let simulated = Simulator::new(cfg)
                .run(&mut lru, &trace)
                .metrics
                .object_hit_ratio();
            assert!(
                (predicted - simulated).abs() < 0.04,
                "capacity {capacity}: Che {predicted:.4} vs sim {simulated:.4}"
            );
        }
    }

    #[test]
    fn matches_lru_simulation_with_variable_sizes() {
        let trace = IrmConfig::new(400, 80_000)
            .zipf_alpha(0.9)
            .size_model(SizeModel::BoundedPareto {
                alpha: 1.5,
                min: 100,
                max: 10_000,
            })
            .requests_per_sec(50.0)
            .seed(6)
            .generate();
        let model = CheModel::from_trace(&trace);
        let capacity = 100_000u64;
        let predicted = model.lru_hit_ratio(capacity);
        let mut lru = lhr_policies::Lru::new(capacity);
        let cfg = SimConfig {
            warmup_requests: 16_000,
            series_every: None,
        };
        let simulated = Simulator::new(cfg)
            .run(&mut lru, &trace)
            .metrics
            .object_hit_ratio();
        assert!(
            (predicted - simulated).abs() < 0.05,
            "Che {predicted:.4} vs sim {simulated:.4}"
        );
    }

    #[test]
    fn lfu_dominates_lru_prediction() {
        let model = CheModel::new(
            (1..=200)
                .map(|i| (1.0 / (i as f64).powf(0.8), 50))
                .collect(),
        );
        for capacity in [500u64, 2_000, 5_000] {
            assert!(
                model.lfu_hit_ratio(capacity) >= model.lru_hit_ratio(capacity) - 1e-9,
                "capacity {capacity}"
            );
        }
    }

    #[test]
    #[should_panic]
    fn zero_rate_rejected() {
        CheModel::new(vec![(0.0, 10)]);
    }
}
