//! The simulated CDN server and its resource report.

use crate::latency::LatencyModel;
use lhr_sim::{CachePolicy, Outcome};
use lhr_trace::{ObjectId, Time, Trace};
use std::collections::HashMap;
use std::time::Instant;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The latency/throughput model.
    pub latency: LatencyModel,
    /// Content freshness lifetime in seconds (ATS §6.1 step 2); `None`
    /// disables freshness checks (the Caffeine in-memory setting).
    pub freshness_secs: Option<f64>,
    /// Probability that a revalidated content is still fresh (no refetch).
    /// Deterministic per (object, epoch) — no RNG on the serving path.
    pub revalidate_fresh_prob: f64,
    /// Leading requests excluded from the report (cache warmup).
    pub warmup_requests: usize,
    /// Record a hit-ratio series point every this many requests (Figures 7
    /// and 13); `None` disables.
    pub series_every: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            latency: LatencyModel::default(),
            freshness_secs: Some(3_600.0),
            revalidate_fresh_prob: 0.9,
            warmup_requests: 0,
            series_every: None,
        }
    }
}

/// Everything the prototype experiments report (Tables 2–4).
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Policy (prototype) name.
    pub name: String,
    /// Trace name.
    pub trace: String,
    /// Content (object) hit ratio, percent.
    pub content_hit_pct: f64,
    /// "max" experiment throughput in Gbps: total bytes served over the
    /// serving path's busy time.
    pub throughput_gbps: f64,
    /// Peak CPU percent: policy compute time over serving busy time.
    pub peak_cpu_pct: f64,
    /// Peak memory in GB: policy metadata + server bookkeeping.
    pub peak_mem_gb: f64,
    /// P90 user latency, ms ("normal" replay).
    pub p90_latency_ms: f64,
    /// P99 user latency, ms.
    pub p99_latency_ms: f64,
    /// Mean user latency, ms.
    pub mean_latency_ms: f64,
    /// Average WAN traffic in Gbps over the trace duration.
    pub wan_gbps: f64,
    /// Hit-ratio time series (cumulative), if requested.
    pub series: Vec<(u64, f64)>,
    /// Wall-clock seconds the replay took (simulation cost, not modeled
    /// time).
    pub replay_wall_secs: f64,
}

lhr_util::impl_json!(struct ServerReport {
    name,
    trace,
    content_hit_pct,
    throughput_gbps,
    peak_cpu_pct,
    peak_mem_gb,
    p90_latency_ms,
    p99_latency_ms,
    mean_latency_ms,
    wan_gbps,
    series,
    replay_wall_secs,
});

/// A CDN server wrapping a cache policy.
pub struct CdnServer<P: CachePolicy> {
    policy: P,
    config: ServerConfig,
    /// Admission time of cached contents (for freshness).
    admitted_at: HashMap<ObjectId, Time>,
}

impl<P: CachePolicy> CdnServer<P> {
    /// Wraps `policy` in a server with the given configuration.
    pub fn new(policy: P, config: ServerConfig) -> Self {
        CdnServer {
            policy,
            config,
            admitted_at: HashMap::new(),
        }
    }

    /// Access to the wrapped policy (e.g. to read LHR stats afterwards).
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Replays `trace` through the serving path, producing the full report.
    pub fn replay(&mut self, trace: &Trace) -> ServerReport {
        let mut latencies: Vec<f64> = Vec::with_capacity(trace.len());
        let mut busy_ms = 0.0f64;
        let mut compute_ms_total = 0.0f64;
        let mut bytes_served = 0u128;
        let mut wan_bytes = 0u128;
        let mut hits = 0u64;
        let mut measured = 0u64;
        let mut peak_meta = 0u64;
        let mut series = Vec::new();
        let wall = Instant::now();

        for (i, req) in trace.iter().enumerate() {
            let t0 = Instant::now();
            let outcome = self.policy.handle(req);
            let compute_ms = t0.elapsed().as_secs_f64() * 1e3;

            // Freshness (ATS step 2): a cached hit older than the lifetime
            // must revalidate with the origin; a deterministic per-object
            // hash decides whether it changed (refetch) or not.
            let lat = &self.config.latency;
            let (latency_ms, service_ms, wan) = match outcome {
                Outcome::Hit => {
                    let stale = match (self.config.freshness_secs, self.admitted_at.get(&req.id)) {
                        (Some(limit), Some(&admitted)) => {
                            req.ts.saturating_sub(admitted).as_secs_f64() > limit
                        }
                        _ => false,
                    };
                    if stale {
                        let epoch = (req.ts.as_secs_f64()
                            / self.config.freshness_secs.unwrap_or(f64::INFINITY))
                            as u64;
                        let still_fresh =
                            pseudo_uniform(req.id, epoch) < self.config.revalidate_fresh_prob;
                        self.admitted_at.insert(req.id, req.ts);
                        if still_fresh {
                            (
                                lat.revalidate_latency_ms(req.size, compute_ms),
                                lat.service_ms(req.size, true, compute_ms),
                                0u64,
                            )
                        } else {
                            // Changed at origin: refetch (WAN traffic) and
                            // deliver.
                            (
                                lat.miss_latency_ms(req.size, compute_ms),
                                lat.service_ms(req.size, false, compute_ms),
                                req.size,
                            )
                        }
                    } else {
                        (
                            lat.hit_latency_ms(req.size, compute_ms),
                            lat.service_ms(req.size, true, compute_ms),
                            0,
                        )
                    }
                }
                Outcome::MissAdmitted => {
                    self.admitted_at.insert(req.id, req.ts);
                    (
                        lat.miss_latency_ms(req.size, compute_ms),
                        lat.service_ms(req.size, false, compute_ms),
                        req.size,
                    )
                }
                Outcome::MissBypassed => (
                    lat.miss_latency_ms(req.size, compute_ms),
                    lat.service_ms(req.size, false, compute_ms),
                    req.size,
                ),
            };

            if i % 512 == 0 {
                peak_meta = peak_meta.max(self.policy.metadata_overhead_bytes());
                // Opportunistic cleanup of freshness entries for evicted
                // contents.
                if self.admitted_at.len() > 4 * 1024 * 1024 {
                    let policy = &self.policy;
                    self.admitted_at.retain(|&id, _| policy.contains(id));
                }
            }

            if i < self.config.warmup_requests {
                continue;
            }
            measured += 1;
            bytes_served += req.size as u128;
            wan_bytes += wan as u128;
            busy_ms += service_ms;
            compute_ms_total += compute_ms;
            if outcome.is_hit() {
                hits += 1;
            }
            latencies.push(latency_ms);
            if let Some(every) = self.config.series_every {
                if measured.is_multiple_of(every as u64) {
                    series.push((measured, hits as f64 / measured as f64));
                }
            }
        }

        peak_meta = peak_meta.max(self.policy.metadata_overhead_bytes());
        latencies.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
        let pct = |p: f64| -> f64 {
            if latencies.is_empty() {
                return 0.0;
            }
            let idx = ((latencies.len() as f64 * p).ceil() as usize).clamp(1, latencies.len());
            latencies[idx - 1]
        };
        let mean = if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        };
        let duration = trace.duration().as_secs_f64().max(1e-9);

        ServerReport {
            name: self.policy.name().to_string(),
            trace: trace.name.clone(),
            content_hit_pct: if measured == 0 {
                0.0
            } else {
                hits as f64 / measured as f64 * 100.0
            },
            throughput_gbps: if busy_ms <= 0.0 {
                0.0
            } else {
                bytes_served as f64 * 8.0 / (busy_ms / 1e3) / 1e9
            },
            peak_cpu_pct: if busy_ms <= 0.0 {
                0.0
            } else {
                (compute_ms_total / busy_ms * 100.0).min(100.0)
            },
            peak_mem_gb: peak_meta as f64 / 1e9,
            p90_latency_ms: pct(0.90),
            p99_latency_ms: pct(0.99),
            mean_latency_ms: mean,
            wan_gbps: wan_bytes as f64 * 8.0 / duration / 1e9,
            series,
            replay_wall_secs: wall.elapsed().as_secs_f64(),
        }
    }
}

/// Deterministic pseudo-uniform draw in [0, 1) from (id, epoch).
fn pseudo_uniform(id: ObjectId, epoch: u64) -> f64 {
    let mut x = id ^ epoch.wrapping_mul(0xA076_1D64_78BD_642F);
    x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 29;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 32;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhr_policies::Lru;
    use lhr_trace::Request;

    fn trace(n: usize, objects: u64, size: u64) -> Trace {
        let mut t = Trace::new("t");
        for i in 0..n {
            t.push(Request::new(
                Time::from_secs(i as u64),
                i as u64 % objects,
                size,
            ));
        }
        t
    }

    #[test]
    fn report_counts_hits_and_wan() {
        let mut server = CdnServer::new(
            Lru::new(10 << 20),
            ServerConfig {
                freshness_secs: None,
                ..ServerConfig::default()
            },
        );
        let report = server.replay(&trace(100, 2, 1 << 20));
        assert!((report.content_hit_pct - 98.0).abs() < 1e-9);
        // WAN carried exactly the two compulsory misses.
        let wan_bytes = report.wan_gbps * 99.0 * 1e9 / 8.0;
        assert!(
            (wan_bytes - 2.0 * (1 << 20) as f64).abs() < 1.0,
            "{wan_bytes}"
        );
    }

    #[test]
    fn latency_percentiles_are_ordered() {
        let mut server = CdnServer::new(Lru::new(5 << 20), ServerConfig::default());
        let report = server.replay(&trace(500, 50, 1 << 20));
        // Percentiles are order statistics (the mean may exceed P90 under
        // heavy skew, so only these orderings are guaranteed).
        assert!(report.p90_latency_ms <= report.p99_latency_ms);
        assert!(report.mean_latency_ms <= report.p99_latency_ms);
        assert!(report.mean_latency_ms > 0.0);
    }

    #[test]
    fn stale_contents_revalidate() {
        // Freshness 10 s; object re-requested every 30 s → always stale.
        let mut t = Trace::new("stale");
        for i in 0..20u64 {
            t.push(Request::new(Time::from_secs(i * 30), 1, 1 << 20));
        }
        let cfg = ServerConfig {
            freshness_secs: Some(10.0),
            revalidate_fresh_prob: 1.0,
            ..ServerConfig::default()
        };
        let mut server = CdnServer::new(Lru::new(10 << 20), cfg);
        let report = server.replay(&t);
        // All hits, but every one pays the revalidation RTT: mean latency
        // exceeds the pure-hit latency by about one origin RTT.
        let pure_hit = LatencyModel::default().hit_latency_ms(1 << 20, 0.0);
        assert!(report.content_hit_pct > 90.0);
        assert!(
            report.mean_latency_ms > pure_hit + 0.9 * LatencyModel::default().origin_rtt_ms,
            "mean {} vs pure hit {}",
            report.mean_latency_ms,
            pure_hit
        );
    }

    #[test]
    fn changed_contents_count_as_wan_traffic() {
        let mut t = Trace::new("stale");
        for i in 0..50u64 {
            t.push(Request::new(Time::from_secs(i * 100), 1, 1 << 20));
        }
        let cfg = ServerConfig {
            freshness_secs: Some(10.0),
            revalidate_fresh_prob: 0.0, // every revalidation refetches
            ..ServerConfig::default()
        };
        let mut server = CdnServer::new(Lru::new(10 << 20), cfg);
        let report = server.replay(&t);
        // All 50 requests move a full object across the WAN (1 compulsory
        // miss + 49 refetches).
        let wan_bytes = report.wan_gbps * t.duration().as_secs_f64() * 1e9 / 8.0;
        assert!(
            (wan_bytes - 50.0 * (1 << 20) as f64).abs() < 10.0,
            "{wan_bytes}"
        );
    }

    #[test]
    fn warmup_excluded_from_hit_ratio() {
        let cfg = ServerConfig {
            warmup_requests: 2,
            freshness_secs: None,
            ..ServerConfig::default()
        };
        let mut server = CdnServer::new(Lru::new(10 << 20), cfg);
        let report = server.replay(&trace(10, 2, 1 << 20));
        assert!((report.content_hit_pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn series_is_recorded() {
        let cfg = ServerConfig {
            series_every: Some(10),
            freshness_secs: None,
            ..ServerConfig::default()
        };
        let mut server = CdnServer::new(Lru::new(10 << 20), cfg);
        let report = server.replay(&trace(100, 2, 1 << 20));
        assert_eq!(report.series.len(), 10);
        assert!(report.series.last().expect("non-empty").1 > 0.9);
    }

    #[test]
    fn pseudo_uniform_is_in_range_and_spread() {
        let mut below = 0;
        for id in 0..10_000u64 {
            let u = pseudo_uniform(id, 3);
            assert!((0.0..1.0).contains(&u));
            if u < 0.5 {
                below += 1;
            }
        }
        assert!((4_000..6_000).contains(&below), "{below}");
    }
}
