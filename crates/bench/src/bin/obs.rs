//! Observability overhead microbenchmark — replays the same trace through
//! the simulator with and without an attached [`lhr_obs::Obs`] recorder and
//! reports the relative overhead, which the obs layer budgets at < 5 %:
//!
//! ```text
//! cargo run --release -p lhr-bench --bin obs -- --scale small
//! ```
//!
//! The instrumented side measures the full cost an `--obs` CLI run pays:
//! per-request series accumulation, the eviction-counter watermark, and the
//! end-of-run JSONL export. Set `LHR_BENCH_JSON=<path>` to append
//! machine-readable results plus an `obs_overhead` summary line (the format
//! committed as `BENCH_obs.json`).

use lhr_obs::{Obs, ObsConfig, ObsWindow};
use lhr_policies::Lru;
use lhr_sim::{SimConfig, Simulator};
use lhr_trace::synth::{IrmConfig, ProductionScale, SizeModel};
use lhr_util::bench::{black_box, Bench};
use lhr_util::json::{Json, ToJson};
use std::io::Write;

fn main() {
    let options = lhr_bench::harness::Options::from_args();
    let requests = match options.scale {
        ProductionScale::Tiny => 50_000,
        ProductionScale::Small => 200_000,
        ProductionScale::Medium => 800_000,
        ProductionScale::Full => 3_000_000,
    };
    let trace = IrmConfig::new(10_000, requests)
        .zipf_alpha(0.9)
        .size_model(SizeModel::BoundedPareto {
            alpha: 1.2,
            min: 10_000,
            max: 10_000_000,
        })
        .seed(options.seed)
        .generate();
    // Small enough relative to the working set that the eviction path (the
    // part the obs watermark samples) stays hot.
    let capacity = 25_000_000;

    let mut sim = Bench::new("sim_lru_replay");
    sim.throughput_elems(requests as u64);
    sim.bench(format!("{requests}_plain"), || {
        let mut policy = Lru::new(capacity);
        Simulator::new(SimConfig::default())
            .run(&mut policy, black_box(&trace))
            .metrics
            .hits
    });
    sim.bench(format!("{requests}_obs"), || {
        let obs = Obs::new(ObsConfig {
            window: ObsWindow::Requests(10_000),
            deterministic: true,
            ..ObsConfig::default()
        });
        let mut policy = Lru::new(capacity);
        Simulator::new(SimConfig::default())
            .with_obs(obs.clone())
            .run(&mut policy, black_box(&trace));
        obs.to_jsonl().len()
    });
    let results = sim.finish();

    let (plain, instrumented) = (&results[0], &results[1]);
    let overhead_pct = (instrumented.mean_ns / plain.mean_ns - 1.0) * 100.0;
    println!(
        "obs overhead: {overhead_pct:+.2}%  (plain {:.2} ms/replay, obs {:.2} ms/replay)",
        plain.mean_ns / 1e6,
        instrumented.mean_ns / 1e6,
    );
    if let Ok(path) = std::env::var("LHR_BENCH_JSON") {
        let record = Json::Object(vec![
            ("group".to_string(), "obs_overhead".to_json()),
            ("requests".to_string(), (requests as u64).to_json()),
            ("plain_mean_ns".to_string(), plain.mean_ns.to_json()),
            ("obs_mean_ns".to_string(), instrumented.mean_ns.to_json()),
            ("overhead_pct".to_string(), overhead_pct.to_json()),
        ]);
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| writeln!(f, "{record}"));
        if let Err(e) = appended {
            eprintln!("warning: could not write {path}: {e}");
        }
    }
    lhr_bench::harness::write_obs(&options);
}
