//! Capacity planning with the analysis toolkit: given a workload, how big
//! must the cache be for a target hit ratio? Combines the working-set
//! profile, the exact LRU miss-ratio curve, and the Che approximation —
//! then sanity-checks the answer against an actual simulation and shows
//! how much less capacity LHR needs for the same hit ratio.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use lhr_repro::analysis::che::CheModel;
use lhr_repro::analysis::mrc::{lru_mrc, MrcConfig};
use lhr_repro::analysis::workingset::peak_working_set_bytes;
use lhr_repro::core::cache::{LhrCache, LhrConfig};
use lhr_repro::policies::Lru;
use lhr_repro::sim::{SimConfig, Simulator};
use lhr_repro::trace::synth::{production, ProductionScale};
use lhr_repro::trace::TraceStats;

fn main() {
    let trace = production::cdn_a(ProductionScale::Tiny, 3);
    let stats = TraceStats::compute(&trace);
    println!(
        "workload: {} ({} requests, {:.1} GB unique bytes)",
        stats.name,
        stats.total_requests,
        stats.unique_bytes_requested as f64 / 1e9
    );

    // 1. Working set: how much is "hot" over an hour?
    let hour_ws = peak_working_set_bytes(&trace, 3_600.0);
    println!("peak 1-hour working set: {:.2} GB", hour_ws as f64 / 1e9);

    // 2. Miss-ratio curve: hit ratio at each capacity, one pass.
    let unique = stats.unique_bytes_requested as u64;
    let capacities: Vec<u64> = (1..=12).map(|k| unique * k / 24).collect();
    let curve = lru_mrc(&trace, &MrcConfig::exact(capacities.clone()));
    let che = CheModel::from_trace(&trace);

    let target = 0.45;
    println!(
        "\n{:<14} {:>9} {:>9}",
        "capacity(GB)", "MRC hit%", "Che hit%"
    );
    let mut planned: Option<u64> = None;
    for &(capacity, hit) in &curve.points {
        println!(
            "{:<14.2} {:>9.2} {:>9.2}",
            capacity as f64 / 1e9,
            hit * 100.0,
            che.lru_hit_ratio(capacity) * 100.0
        );
        if planned.is_none() && hit >= target {
            planned = Some(capacity);
        }
    }
    let Some(capacity) = planned else {
        println!(
            "\ntarget {:.0}% not reachable with LRU in the swept range",
            target * 100.0
        );
        return;
    };
    println!(
        "\nsmallest swept LRU capacity reaching {:.0}% hits: {:.2} GB",
        target * 100.0,
        capacity as f64 / 1e9
    );

    // 3. Verify by simulation, and compare what LHR does with the same
    //    budget.
    let config = SimConfig {
        warmup_requests: trace.len() / 5,
        series_every: None,
    };
    let mut lru = Lru::new(capacity);
    let lru_hit = Simulator::new(config.clone())
        .run(&mut lru, &trace)
        .metrics
        .object_hit_ratio();
    let mut lhr = LhrCache::new(capacity, LhrConfig::default());
    let lhr_hit = Simulator::new(config)
        .run(&mut lhr, &trace)
        .metrics
        .object_hit_ratio();
    println!(
        "simulated at that capacity: LRU {:.2}%  LHR {:.2}%",
        lru_hit * 100.0,
        lhr_hit * 100.0
    );
    println!("(the gap is the capacity a learned policy hands back to the operator)");
}
