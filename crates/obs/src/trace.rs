//! Deterministic request-path tracing: sampled per-request step lists.
//!
//! A trace answers the question aggregates and events cannot: *what did
//! this one request go through* — which edge node it hit, whether it
//! failed over, probed a peer hint, fell through to the shield tier,
//! how many origin attempts it took and with what backoff. Recording
//! every request would dwarf the serving work, so the recorder samples
//! `1/N` of requests with a decision that is a **pure function of
//! `(object_id, trace_time)`** hashed through the workspace's fixed-seed
//! [`FastHasher`] — never wall clock, never thread id — so the sampled
//! set, and therefore the whole `--obs` export, is byte-identical at any
//! thread count (the determinism contract's seventh clause).
//!
//! Each sampled request becomes one [`TraceRecord`]: an ordered list of
//! [`TraceStep`]s stamped with *simulated* milliseconds since the request
//! started (the same latency-model components that build the request's
//! final latency) and byte sizes. Records serialize as the
//! `{"record":"trace",...}` JSONL tag and merge shard-deterministically
//! in [`crate::Obs::absorb_shards`] by their globally unique request
//! index.
//!
//! *Exemplars* connect traces back to the windowed series: at export
//! time the worst-latency sampled trace of each metric window is marked
//! `"exemplar":true` (see [`mark_exemplars`]), so a spike in a window's
//! story line comes with a concrete request to look at.

use lhr_util::hash::FastHasher;
use lhr_util::json::{FromJson, Json, JsonError, ToJson};
use std::hash::Hasher;

/// One step of a sampled request's journey.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStep {
    /// Step name: `edge_lookup`, `failover`, `peer_hint`, `shield_lookup`,
    /// `origin_fetch`, `breaker`, `stale_serve`, `coalesce`.
    pub step: String,
    /// Simulated milliseconds since the request started (trace-time
    /// latency-model deltas, never wall clock).
    pub dt_ms: f64,
    /// Bytes involved in the step (0 when not meaningful).
    pub bytes: u64,
    /// Step-specific payload in insertion order, e.g. `{node, hit}` for
    /// `edge_lookup` or `{attempt, outcome, backoff_ms}` for
    /// `origin_fetch`.
    pub detail: Vec<(String, Json)>,
}

impl ToJson for TraceStep {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("step".to_string(), self.step.to_json()),
            ("dt_ms".to_string(), self.dt_ms.to_json()),
            ("bytes".to_string(), self.bytes.to_json()),
            ("detail".to_string(), Json::Object(self.detail.clone())),
        ])
    }
}

impl FromJson for TraceStep {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let detail = match v.get("detail") {
            Some(Json::Object(fields)) => fields.clone(),
            Some(other) => return Err(JsonError::new(format!("bad step detail: {other}"))),
            None => Vec::new(),
        };
        Ok(TraceStep {
            step: lhr_util::json::field(v, "step")?,
            dt_ms: lhr_util::json::field(v, "dt_ms")?,
            bytes: lhr_util::json::field(v, "bytes")?,
            detail,
        })
    }
}

/// One sampled request's full path.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Trace id: the request's global index in the replayed trace —
    /// unique, stable across thread counts, and what `obs trace --id`
    /// looks up.
    pub id: u64,
    /// Object id the request asked for.
    pub object: u64,
    /// Trace time of the request, seconds.
    pub t: f64,
    /// Object size in bytes.
    pub bytes: u64,
    /// Metric window index the request was credited to.
    pub window: u64,
    /// Total simulated latency of the request, milliseconds.
    pub latency_ms: f64,
    /// Whether this is the worst-latency sampled trace of its window
    /// (set at export time by [`mark_exemplars`]).
    pub exemplar: bool,
    /// The ordered step list.
    pub steps: Vec<TraceStep>,
}

impl ToJson for TraceRecord {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("id".to_string(), self.id.to_json()),
            ("object".to_string(), self.object.to_json()),
            ("t".to_string(), self.t.to_json()),
            ("bytes".to_string(), self.bytes.to_json()),
            ("window".to_string(), self.window.to_json()),
            ("latency_ms".to_string(), self.latency_ms.to_json()),
            ("exemplar".to_string(), self.exemplar.to_json()),
            (
                "steps".to_string(),
                Json::Array(self.steps.iter().map(|s| s.to_json()).collect()),
            ),
        ])
    }
}

impl FromJson for TraceRecord {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let steps = match v.get("steps") {
            Some(Json::Array(items)) => items
                .iter()
                .map(TraceStep::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            Some(other) => return Err(JsonError::new(format!("bad trace steps: {other}"))),
            None => Vec::new(),
        };
        Ok(TraceRecord {
            id: lhr_util::json::field(v, "id")?,
            object: lhr_util::json::field(v, "object")?,
            t: lhr_util::json::field(v, "t")?,
            bytes: lhr_util::json::field(v, "bytes")?,
            window: lhr_util::json::field(v, "window")?,
            latency_ms: lhr_util::json::field(v, "latency_ms")?,
            exemplar: lhr_util::json::field(v, "exemplar")?,
            steps,
        })
    }
}

/// Parses the CLI `--trace-sample` syntax: `1/64` (sample one request in
/// 64) or a bare integer `64` meaning the same. `1/1` traces everything;
/// `0` and `off` disable tracing.
pub fn parse_sample(raw: &str) -> Result<u64, String> {
    let raw = raw.trim();
    if raw.eq_ignore_ascii_case("off") {
        return Ok(0);
    }
    let denom = match raw.split_once('/') {
        Some((num, denom)) if num.trim() == "1" => denom.trim(),
        Some(_) => return Err(format!("bad sample rate `{raw}` (want `1/N`, e.g. `1/64`)")),
        None => raw,
    };
    denom
        .parse::<u64>()
        .map_err(|_| format!("bad sample rate `{raw}` (want `1/N`, e.g. `1/64`)"))
}

/// The pure sampling decision: hash `(object, t_micros)` through the
/// fixed-seed [`FastHasher`] and keep one residue class out of `every`.
/// `every == 0` disables sampling; `every == 1` samples everything.
///
/// Both inputs are trace data — the decision cannot depend on thread
/// count, shard layout, or wall clock, so the sampled set is identical
/// in every replay of the same trace.
#[inline]
pub fn sampled(object: u64, t_micros: u64, every: u64) -> bool {
    match every {
        0 => false,
        1 => true,
        _ => {
            let mut h = FastHasher::default();
            h.write_u64(object);
            h.write_u64(t_micros);
            h.finish() % every == 0
        }
    }
}

/// Per-run tracing front-end held by an instrumented replay loop: owns
/// the sampling rate and mints [`TraceBuilder`]s for sampled requests.
#[derive(Debug, Clone, Copy)]
pub struct TraceRecorder {
    every: u64,
}

impl TraceRecorder {
    /// A recorder sampling one request in `every` (0 disables).
    pub fn new(every: u64) -> Self {
        TraceRecorder { every }
    }

    /// Whether any request can be sampled at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.every > 0
    }

    /// Starts a trace for the request iff `(object, t_micros)` falls in
    /// the sampled class. `id` is the request's global trace index.
    #[inline]
    pub fn begin(&self, id: u64, object: u64, t_micros: u64, bytes: u64) -> Option<TraceBuilder> {
        if sampled(object, t_micros, self.every) {
            Some(TraceBuilder::new(id, object, t_micros, bytes))
        } else {
            None
        }
    }
}

/// In-flight step collector for one sampled request. Threaded as
/// `Option<&mut TraceBuilder>` through the serving path; `None` costs one
/// branch per hook point.
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    id: u64,
    object: u64,
    t_micros: u64,
    bytes: u64,
    /// Simulated milliseconds elapsed since the request started.
    cursor_ms: f64,
    steps: Vec<TraceStep>,
}

impl TraceBuilder {
    /// A builder for request `id` on `object` at trace time `t_micros`.
    pub fn new(id: u64, object: u64, t_micros: u64, bytes: u64) -> Self {
        TraceBuilder {
            id,
            object,
            t_micros,
            bytes,
            cursor_ms: 0.0,
            steps: Vec::new(),
        }
    }

    /// Advances the simulated clock by `ms` (latency-model components).
    #[inline]
    pub fn advance(&mut self, ms: f64) {
        self.cursor_ms += ms;
    }

    /// Appends a step stamped at the current simulated offset.
    #[inline]
    pub fn push(&mut self, step: &str, bytes: u64, detail: Vec<(String, Json)>) {
        self.steps.push(TraceStep {
            step: step.to_string(),
            dt_ms: self.cursor_ms,
            bytes,
            detail,
        });
    }

    /// Seals the trace with the request's final latency and the metric
    /// window it was credited to.
    pub fn finish(self, latency_ms: f64, window: u64) -> TraceRecord {
        TraceRecord {
            id: self.id,
            object: self.object,
            t: self.t_micros as f64 / 1e6,
            bytes: self.bytes,
            window,
            latency_ms,
            exemplar: false,
            steps: self.steps,
        }
    }
}

/// Marks, per metric window, the worst-latency trace as the window's
/// exemplar (ties break toward the smaller trace id, which comes first
/// in the id-sorted export). Runs at export time over the complete
/// merged trace list so the marks are independent of thread count.
pub fn mark_exemplars(traces: &mut [TraceRecord]) {
    use std::collections::BTreeMap;
    let mut best: BTreeMap<u64, usize> = BTreeMap::new();
    for (i, t) in traces.iter().enumerate() {
        match best.get(&t.window) {
            Some(&j) if traces[j].latency_ms >= t.latency_ms => {}
            _ => {
                best.insert(t.window, i);
            }
        }
    }
    for t in traces.iter_mut() {
        t.exemplar = false;
    }
    for (_, i) in best {
        traces[i].exemplar = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> TraceRecord {
        TraceRecord {
            id: 1234,
            object: 0xDEAD_BEEF,
            t: 17.25,
            bytes: 1_000_000,
            window: 3,
            latency_ms: 182.5,
            exemplar: true,
            steps: vec![
                TraceStep {
                    step: "edge_lookup".to_string(),
                    dt_ms: 0.0,
                    bytes: 1_000_000,
                    detail: vec![
                        ("node".to_string(), 2u64.to_json()),
                        ("hit".to_string(), false.to_json()),
                    ],
                },
                TraceStep {
                    step: "origin_fetch".to_string(),
                    dt_ms: 12.5,
                    bytes: 1_000_000,
                    detail: vec![
                        ("attempt".to_string(), 1u64.to_json()),
                        ("outcome".to_string(), "timeout".to_json()),
                        ("backoff_ms".to_string(), 50u64.to_json()),
                    ],
                },
            ],
        }
    }

    #[test]
    fn trace_record_roundtrips_byte_identically() {
        let t = sample_trace();
        let text = t.to_json().to_string();
        let back = TraceRecord::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.to_json().to_string(), text);
    }

    #[test]
    fn sampling_is_a_pure_function_and_roughly_one_in_n() {
        // Identical inputs, identical decision — across recorder instances.
        for every in [2u64, 16, 64] {
            for id in 0..64u64 {
                let a = sampled(id, id * 1_000_003, every);
                let b = sampled(id, id * 1_000_003, every);
                assert_eq!(a, b);
            }
        }
        // Rough rate check at 1/16 over a larger population.
        let hits = (0..100_000u64)
            .filter(|&i| sampled(i.wrapping_mul(0x9E37_79B9), i * 131, 16))
            .count();
        assert!(
            (3_000..10_000).contains(&hits),
            "1/16 sampling wildly off: {hits}/100000"
        );
    }

    #[test]
    fn sample_rate_parses() {
        assert_eq!(parse_sample("1/64").unwrap(), 64);
        assert_eq!(parse_sample(" 1 / 8 ").unwrap(), 8);
        assert_eq!(parse_sample("64").unwrap(), 64);
        assert_eq!(parse_sample("1/1").unwrap(), 1);
        assert_eq!(parse_sample("0").unwrap(), 0);
        assert_eq!(parse_sample("off").unwrap(), 0);
        for bad in ["2/64", "1/", "x", "1/x", ""] {
            assert!(parse_sample(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn builder_stamps_simulated_offsets() {
        let mut b = TraceBuilder::new(7, 42, 2_500_000, 100);
        b.push(
            "edge_lookup",
            100,
            vec![("hit".to_string(), false.to_json())],
        );
        b.advance(12.0);
        b.push("origin_fetch", 100, Vec::new());
        b.advance(3.5);
        let t = b.finish(15.5, 2);
        assert_eq!(t.id, 7);
        assert_eq!(t.t, 2.5);
        assert_eq!(t.window, 2);
        assert!(!t.exemplar);
        assert_eq!(t.steps[0].dt_ms, 0.0);
        assert_eq!(t.steps[1].dt_ms, 12.0);
        assert_eq!(t.latency_ms, 15.5);
    }

    #[test]
    fn exemplars_mark_worst_latency_per_window_with_smallest_id_ties() {
        let mk = |id: u64, window: u64, latency_ms: f64| TraceRecord {
            id,
            window,
            latency_ms,
            ..sample_trace()
        };
        let mut traces = vec![
            mk(1, 0, 10.0),
            mk(2, 0, 50.0),
            mk(3, 0, 50.0), // tie: id 2 keeps the mark
            mk(4, 1, 5.0),
        ];
        mark_exemplars(&mut traces);
        let marked: Vec<u64> = traces.iter().filter(|t| t.exemplar).map(|t| t.id).collect();
        assert_eq!(marked, vec![2, 4]);
    }

    #[test]
    fn disabled_recorder_samples_nothing() {
        let rec = TraceRecorder::new(0);
        assert!(!rec.enabled());
        assert!(rec.begin(0, 1, 2, 3).is_none());
        let all = TraceRecorder::new(1);
        assert!(all.begin(0, 1, 2, 3).is_some());
    }
}
