//! Training and prediction cost of the gradient-boosting model — the
//! dominant term in LHR's retraining time (§7.4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lhr_gbm::{Dataset, Gbm, GbmParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn synthetic_dataset(rows: usize, features: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Dataset::new(features);
    for _ in 0..rows {
        let row: Vec<f32> = (0..features)
            .map(|_| if rng.gen_bool(0.1) { f32::NAN } else { rng.gen::<f32>() * 10.0 })
            .collect();
        let label = if row[0].is_nan() || row[0] > 5.0 { 1.0 } else { 0.0 };
        data.push_row(&row, label);
    }
    data
}

fn bench_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("gbm_fit");
    group.sample_size(10);
    for &rows in &[2_048usize, 8_192, 32_768] {
        let data = synthetic_dataset(rows, 23, 1);
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(BenchmarkId::from_parameter(rows), &data, |b, data| {
            let params = GbmParams { n_trees: 25, max_depth: 6, ..GbmParams::default() };
            b.iter(|| Gbm::fit(data, &params));
        });
    }
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let data = synthetic_dataset(8_192, 23, 2);
    let params = GbmParams { n_trees: 25, max_depth: 6, ..GbmParams::default() };
    let model = Gbm::fit(&data, &params);
    let mut group = c.benchmark_group("gbm_predict");
    group.throughput(Throughput::Elements(data.n_rows() as u64));
    group.bench_function("8192_rows", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for i in 0..data.n_rows() {
                acc += model.predict(data.row(i));
            }
            acc
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fit, bench_predict);
criterion_main!(benches);
