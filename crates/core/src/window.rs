//! Non-overlapping sliding windows measured in unique bytes.
//!
//! The paper sizes windows so that the unique bytes of the requests they
//! contain equal a multiple (default 4×) of the cache size (§5.1,
//! Figure 5), and the windows do not overlap (§3.2 footnote 3).

use lhr_trace::{ObjectId, Request, Time};
use lhr_util::hash::FastMap;

/// One completed window's worth of requests.
#[derive(Debug, Clone)]
pub struct WindowData {
    /// Sequential window index (0-based).
    pub index: u64,
    /// The requests, in arrival order: `(timestamp, id, size)`.
    pub requests: Vec<(Time, ObjectId, u64)>,
    /// Per-content request counts within the window. Iteration order is
    /// arbitrary — consumers sort before any order-sensitive use.
    pub counts: FastMap<ObjectId, u32>,
    /// Unique bytes accumulated.
    pub unique_bytes: u64,
    /// First and last timestamps.
    pub span: (Time, Time),
}

impl WindowData {
    /// Window duration in seconds (at least `1 µs` to avoid division by
    /// zero in rate estimates).
    pub fn span_secs(&self) -> f64 {
        (self.span.1.saturating_sub(self.span.0).as_secs_f64()).max(1e-6)
    }
}

/// Accumulates requests until the unique-bytes target is reached, then
/// yields the completed [`WindowData`].
#[derive(Debug)]
pub struct WindowTracker {
    target_unique_bytes: u64,
    min_requests: usize,
    current: WindowData,
    sizes: FastMap<ObjectId, u64>,
    /// A recycled window shell (cleared vectors/maps with their capacity
    /// intact) handed back via [`WindowTracker::recycle`]; reused when the
    /// next window opens so steady-state replay does not allocate fresh
    /// request/count buffers every window.
    spare: Option<WindowData>,
}

impl WindowTracker {
    /// A tracker whose windows close when their unique bytes reach
    /// `target_unique_bytes` (= multiplier × cache size).
    pub fn new(target_unique_bytes: u64) -> Self {
        Self::with_min_requests(target_unique_bytes, 0)
    }

    /// Like [`WindowTracker::new`] but a window additionally needs at least
    /// `min_requests` requests to close. The paper's full-size windows hold
    /// tens of thousands of requests, enough to train on; reduced-scale
    /// reproductions need this floor so the training windows don't shrink
    /// with the trace.
    ///
    /// The *first* window's floor is capped at 1 024 requests: until it
    /// closes there is no model at all (LHR admits everything), so the
    /// bootstrap window should be as early as a usable training set allows
    /// — the paper likewise trains after the first window and runs the
    /// algorithm from the second onward (§5.1).
    pub fn with_min_requests(target_unique_bytes: u64, min_requests: usize) -> Self {
        assert!(target_unique_bytes > 0, "window target must be positive");
        WindowTracker {
            target_unique_bytes,
            min_requests,
            current: Self::empty_window(0),
            sizes: FastMap::default(),
            spare: None,
        }
    }

    fn effective_min_requests(&self) -> usize {
        if self.current.index == 0 {
            self.min_requests.min(1_024)
        } else {
            self.min_requests
        }
    }

    fn empty_window(index: u64) -> WindowData {
        WindowData {
            index,
            requests: Vec::new(),
            counts: FastMap::default(),
            unique_bytes: 0,
            span: (Time::ZERO, Time::ZERO),
        }
    }

    fn next_window(&mut self, index: u64) -> WindowData {
        match self.spare.take() {
            Some(mut w) => {
                w.index = index;
                w
            }
            None => Self::empty_window(index),
        }
    }

    /// Returns a finished window's buffers for reuse. The consumer of a
    /// completed [`WindowData`] calls this once it has extracted what it
    /// needs; the tracker clears the shell and reuses it for the next
    /// window.
    pub fn recycle(&mut self, mut done: WindowData) {
        done.requests.clear();
        done.counts.clear();
        done.unique_bytes = 0;
        done.span = (Time::ZERO, Time::ZERO);
        self.spare = Some(done);
    }

    /// Number of requests in the in-progress window.
    pub fn current_len(&self) -> usize {
        self.current.requests.len()
    }

    /// Index of the in-progress window.
    pub fn current_index(&self) -> u64 {
        self.current.index
    }

    /// Records a request. Returns the completed window when this request
    /// *closes* it (the request itself is included in that window).
    pub fn observe(&mut self, req: &Request) -> Option<WindowData> {
        if self.current.requests.is_empty() {
            self.current.span.0 = req.ts;
        }
        self.current.span.1 = req.ts;
        self.current.requests.push((req.ts, req.id, req.size));
        let count = self.current.counts.entry(req.id).or_insert(0);
        *count += 1;
        if *count == 1 {
            self.current.unique_bytes += req.size;
            self.sizes.insert(req.id, req.size);
        }
        if self.current.unique_bytes >= self.target_unique_bytes
            && self.current.requests.len() >= self.effective_min_requests()
        {
            let next_index = self.current.index + 1;
            let next = self.next_window(next_index);
            let done = std::mem::replace(&mut self.current, next);
            self.sizes.clear();
            Some(done)
        } else {
            None
        }
    }

    /// Consumes the tracker, yielding the in-progress (partial) window.
    pub fn into_partial(self) -> WindowData {
        self.current
    }

    /// Approximate metadata footprint in bytes.
    pub fn overhead_bytes(&self) -> u64 {
        (self.current.requests.len() * 24 + self.current.counts.len() * 16 + self.sizes.len() * 16)
            as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(t: u64, id: ObjectId, size: u64) -> Request {
        Request::new(Time::from_secs(t), id, size)
    }

    #[test]
    fn window_closes_on_unique_bytes() {
        let mut w = WindowTracker::new(250);
        assert!(w.observe(&req(0, 1, 100)).is_none());
        assert!(w.observe(&req(1, 1, 100)).is_none()); // repeat: no new unique bytes
        assert!(w.observe(&req(2, 2, 100)).is_none());
        let done = w.observe(&req(3, 3, 100)).expect("300 unique bytes ≥ 250");
        assert_eq!(done.index, 0);
        assert_eq!(done.requests.len(), 4);
        assert_eq!(done.unique_bytes, 300);
        assert_eq!(done.counts[&1], 2);
        assert_eq!(w.current_index(), 1);
        assert_eq!(w.current_len(), 0);
    }

    #[test]
    fn windows_do_not_overlap() {
        let mut w = WindowTracker::new(100);
        let first = w.observe(&req(0, 1, 100)).expect("closes immediately");
        assert_eq!(first.requests.len(), 1);
        let second = w.observe(&req(1, 2, 100)).expect("closes immediately");
        assert_eq!(second.index, 1);
        assert_eq!(second.requests.len(), 1);
        assert_eq!(second.requests[0].1, 2);
    }

    #[test]
    fn unique_bytes_reset_per_window() {
        let mut w = WindowTracker::new(150);
        w.observe(&req(0, 1, 100));
        let done = w.observe(&req(1, 2, 100)).expect("closed");
        assert_eq!(done.unique_bytes, 200);
        // Object 1 counts as unique again in the new window.
        assert!(w.observe(&req(2, 1, 100)).is_none());
        let done = w.observe(&req(3, 3, 100)).expect("closed");
        assert_eq!(done.unique_bytes, 200);
    }

    #[test]
    fn span_tracks_first_and_last() {
        let mut w = WindowTracker::new(300);
        w.observe(&req(5, 1, 100));
        w.observe(&req(9, 2, 100));
        let done = w.observe(&req(14, 3, 100)).expect("closed");
        assert_eq!(done.span, (Time::from_secs(5), Time::from_secs(14)));
        assert!((done.span_secs() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn zero_span_window_is_guarded() {
        let mut w = WindowTracker::new(100);
        let done = w.observe(&req(0, 1, 150)).expect("closed");
        assert!(done.span_secs() > 0.0);
    }
}
