#!/usr/bin/env bash
# Records the edge-fleet scaling baseline into BENCH_fleet.json (one
# `fleet_scaling` JSON line for the medium trace: requests/sec and origin
# offload at 1, 2, 4, and 8 nodes, total edge capacity held constant).
# The offload column shows the consistent-hash fragmentation cost as the
# same bytes split into more, smaller caches. The summary also records
# `host_cpus` — judge throughput against it on small containers. Re-run
# after any change to the fleet or serving hot path and commit the
# refreshed file.
#
# Usage: scripts/bench_fleet.sh [output-file]
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_fleet.json}"

cargo build --release --offline -p lhr-bench --bin fleet

: > "$out"
echo "==> fleet bench, scale=medium"
LHR_BENCH_JSON="$out" \
  cargo run --release --offline -p lhr-bench --bin fleet -- --scale medium

echo "wrote $out"
