//! Object size models.
//!
//! Production CDN object sizes span a few KB to tens of GB (paper Table 1).
//! Each model deterministically assigns a size to an object id given a seed,
//! so that a given object always has the same size regardless of how many
//! times or in which order it is requested.

use lhr_util::rng::rngs::SmallRng;
use lhr_util::rng::{Rng, SeedableRng};

/// How object sizes are drawn. All variants are deterministic per
/// `(seed, object id)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeModel {
    /// Every object has the same size — the classic equal-size caching
    /// setting in which Belady is exactly optimal.
    Fixed {
        /// Object size in bytes.
        bytes: u64,
    },
    /// Log-normal sizes: `exp(N(ln median, sigma²))`, clamped to
    /// `[1, 2^40]`. A good fit for mixed web/media traffic.
    LogNormal {
        /// Median object size in bytes.
        median: u64,
        /// Log-space standard deviation.
        sigma: f64,
    },
    /// Bounded Pareto on `[min, max]` with tail exponent `alpha` — the
    /// standard heavy-tailed model for video/CDN object sizes.
    BoundedPareto {
        /// Tail exponent (smaller = heavier tail).
        alpha: f64,
        /// Smallest size in bytes.
        min: u64,
        /// Largest size in bytes.
        max: u64,
    },
    /// Mixture of two log-normals — e.g. small web objects plus large video
    /// segments (the paper's CDN-A serves such a mix).
    BimodalLogNormal {
        /// Probability of drawing from the *first* (usually small) mode.
        p_small: f64,
        /// Median of the small mode in bytes.
        small_median: u64,
        /// Log-space sigma of the small mode.
        small_sigma: f64,
        /// Median of the large mode in bytes.
        large_median: u64,
        /// Log-space sigma of the large mode.
        large_sigma: f64,
    },
}

lhr_util::impl_json!(enum SizeModel {
    Fixed { bytes },
    LogNormal { median, sigma },
    BoundedPareto { alpha, min, max },
    BimodalLogNormal { p_small, small_median, small_sigma, large_median, large_sigma },
});

impl SizeModel {
    /// Size in bytes for `id` under this model, deterministic in
    /// `(seed, id)`.
    pub fn size_for(&self, seed: u64, id: u64) -> u64 {
        // Derive a per-object RNG; splitmix-style mixing avoids correlation
        // between consecutive ids.
        let mixed = seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = SmallRng::seed_from_u64(mixed);
        match *self {
            SizeModel::Fixed { bytes } => bytes.max(1),
            SizeModel::LogNormal { median, sigma } => lognormal(&mut rng, median as f64, sigma),
            SizeModel::BoundedPareto { alpha, min, max } => {
                bounded_pareto(&mut rng, alpha, min as f64, max as f64)
            }
            SizeModel::BimodalLogNormal {
                p_small,
                small_median,
                small_sigma,
                large_median,
                large_sigma,
            } => {
                if rng.gen::<f64>() < p_small {
                    lognormal(&mut rng, small_median as f64, small_sigma)
                } else {
                    lognormal(&mut rng, large_median as f64, large_sigma)
                }
            }
        }
    }
}

/// One standard normal variate via Box–Muller (we implement our own rather
/// than pull in `rand_distr`; see DESIGN.md dependency policy).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue; // avoid ln(0)
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

fn lognormal<R: Rng + ?Sized>(rng: &mut R, median: f64, sigma: f64) -> u64 {
    let z = standard_normal(rng);
    let v = (median.ln() + sigma * z).exp();
    v.clamp(1.0, (1u64 << 40) as f64) as u64
}

fn bounded_pareto<R: Rng + ?Sized>(rng: &mut R, alpha: f64, min: f64, max: f64) -> u64 {
    assert!(alpha > 0.0 && min >= 1.0 && max > min);
    let u: f64 = rng.gen();
    // Inverse-CDF of the bounded Pareto.
    let ha = max.powf(-alpha);
    let la = min.powf(-alpha);
    let x = (-(u * (la - ha) - la)).powf(-1.0 / alpha);
    x.clamp(min, max) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_fixed() {
        let m = SizeModel::Fixed { bytes: 1234 };
        assert_eq!(m.size_for(1, 42), 1234);
        assert_eq!(m.size_for(9, 43), 1234);
    }

    #[test]
    fn sizes_are_deterministic_per_seed_and_id() {
        let m = SizeModel::LogNormal {
            median: 1 << 20,
            sigma: 1.5,
        };
        assert_eq!(m.size_for(5, 10), m.size_for(5, 10));
        // Different ids should (overwhelmingly) differ.
        assert_ne!(m.size_for(5, 10), m.size_for(5, 11));
        // Different seeds change the assignment.
        assert_ne!(m.size_for(5, 10), m.size_for(6, 10));
    }

    #[test]
    fn lognormal_median_is_roughly_right() {
        let median = 1u64 << 20;
        let m = SizeModel::LogNormal { median, sigma: 1.0 };
        let mut sizes: Vec<u64> = (0..20_001).map(|id| m.size_for(7, id)).collect();
        sizes.sort_unstable();
        let emp_median = sizes[sizes.len() / 2] as f64;
        let ratio = emp_median / median as f64;
        assert!(ratio > 0.9 && ratio < 1.1, "empirical median ratio {ratio}");
    }

    #[test]
    fn bounded_pareto_respects_bounds() {
        let m = SizeModel::BoundedPareto {
            alpha: 1.2,
            min: 1_000,
            max: 1_000_000,
        };
        for id in 0..10_000 {
            let s = m.size_for(3, id);
            assert!((1_000..=1_000_000).contains(&s), "size {s} out of bounds");
        }
    }

    #[test]
    fn bounded_pareto_is_heavy_tailed() {
        // With alpha close to 1 a visible fraction of mass sits near max.
        // P(X > 1e6) ≈ 1.8e-3 for these parameters, so ~36 of 20 000.
        let m = SizeModel::BoundedPareto {
            alpha: 0.9,
            min: 1_000,
            max: 10_000_000,
        };
        let big = (0..20_000)
            .filter(|&id| m.size_for(11, id) > 1_000_000)
            .count();
        assert!(
            (15..=80).contains(&big),
            "expected ~36 large objects, got {big}"
        );
    }

    #[test]
    fn bimodal_produces_both_modes() {
        let m = SizeModel::BimodalLogNormal {
            p_small: 0.7,
            small_median: 10_000,
            small_sigma: 0.5,
            large_median: 100_000_000,
            large_sigma: 0.5,
        };
        let sizes: Vec<u64> = (0..5_000).map(|id| m.size_for(1, id)).collect();
        let small = sizes.iter().filter(|&&s| s < 1_000_000).count();
        let large = sizes.iter().filter(|&&s| s >= 1_000_000).count();
        assert!(small > 2_500, "small mode underrepresented: {small}");
        assert!(large > 800, "large mode underrepresented: {large}");
    }

    #[test]
    fn sizes_never_zero() {
        for m in [
            SizeModel::Fixed { bytes: 1 },
            SizeModel::LogNormal {
                median: 2,
                sigma: 3.0,
            },
            SizeModel::BoundedPareto {
                alpha: 2.0,
                min: 1,
                max: 10,
            },
        ] {
            for id in 0..1_000 {
                assert!(m.size_for(0, id) >= 1);
            }
        }
    }
}
