//! Sharded-engine integration tests: the determinism contract end-to-end.
//!
//! The contract (ARCHITECTURE.md, "Determinism contract"): with a fixed
//! seed, the engine's stable report and the full `--obs` export are
//! byte-identical at any thread count, under a fault-free origin and under
//! fault presets alike.

use lhr_repro::core::cache::{LhrCache, LhrConfig};
use lhr_repro::obs::{Obs, ObsConfig, ObsWindow};
use lhr_repro::policies::Lru;
use lhr_repro::proto::{presets, EngineConfig, ShardedEngine};
use lhr_repro::sim::shard::{RouteConfig, ShardedSimConfig, ShardedSimulator};
use lhr_repro::trace::synth::{IrmConfig, SizeModel};
use lhr_repro::trace::Trace;

fn zipf_trace(seed: u64) -> Trace {
    IrmConfig::new(300, 20_000)
        .zipf_alpha(1.0)
        .size_model(SizeModel::BoundedPareto {
            alpha: 1.2,
            min: 1_000,
            max: 100_000,
        })
        .seed(seed)
        .generate()
}

fn deterministic_obs() -> Obs {
    Obs::new(ObsConfig {
        window: ObsWindow::Requests(2_000),
        deterministic: true,
        ..ObsConfig::default()
    })
}

/// One engine replay of the shared trace: LRU shards, the given fault
/// preset, and an attached recorder. Returns (stable report, obs export).
fn run_engine(trace: &Trace, threads: usize, preset: &str) -> (String, String) {
    let server = presets::fault_preset(preset, 7, trace.duration().as_secs_f64())
        .expect("known fault preset");
    let config = EngineConfig {
        total_capacity: 2 << 20,
        n_shards: 8,
        route: RouteConfig {
            threads,
            ..RouteConfig::default()
        },
        server,
    };
    let obs = deterministic_obs();
    let engine = ShardedEngine::new(config).with_obs(obs.clone());
    let report = engine.replay(trace, |_shard, capacity, _obs| Lru::new(capacity));
    (report.stable_json(), obs.to_jsonl())
}

#[test]
fn engine_report_and_obs_are_byte_identical_across_threads_fault_free() {
    let trace = zipf_trace(3);
    let (report1, obs1) = run_engine(&trace, 1, "none");
    for threads in [2usize, 8] {
        let (report, obs) = run_engine(&trace, threads, "none");
        assert_eq!(report1, report, "report differs at {threads} threads");
        assert_eq!(obs1, obs, "obs export differs at {threads} threads");
    }
    assert!(
        report1.contains("\"threads\":0"),
        "stable report zeroes threads"
    );
    assert!(obs1.contains("\"record\":\"window\""), "{obs1}");
}

#[test]
fn engine_report_and_obs_are_byte_identical_across_threads_flaky_origin() {
    let trace = zipf_trace(5);
    let (report1, obs1) = run_engine(&trace, 1, "flaky");
    for threads in [2usize, 8] {
        let (report, obs) = run_engine(&trace, threads, "flaky");
        assert_eq!(report1, report, "report differs at {threads} threads");
        assert_eq!(obs1, obs, "obs export differs at {threads} threads");
    }
    // The flaky preset actually exercises the hardened path.
    assert!(
        report1.contains("\"retries\":") && !report1.contains("\"retries\":0,"),
        "{report1}"
    );
}

#[test]
fn engine_with_learned_policy_is_byte_identical_across_threads() {
    let trace = zipf_trace(9);
    let run = |threads: usize| {
        let config = EngineConfig {
            total_capacity: 2 << 20,
            n_shards: 4,
            route: RouteConfig {
                threads,
                ..RouteConfig::default()
            },
            ..EngineConfig::new(2 << 20)
        };
        ShardedEngine::new(config)
            .replay(&trace, |shard, capacity, _obs| {
                LhrCache::new(capacity, LhrConfig::default().for_shard(shard))
            })
            .stable_json()
    };
    assert_eq!(run(1), run(4));
}

/// Two IRM halves with very different Zipf exponents over one object
/// population — the α shift makes every shard's detector fire, so the
/// background shadow trainer actually spawns and swaps mid-replay.
fn shifting_alpha_trace() -> Trace {
    use lhr_repro::trace::{Request, Time};
    let half = |alpha: f64, seed: u64| {
        IrmConfig::new(400, 25_000)
            .zipf_alpha(alpha)
            .size_model(SizeModel::Fixed { bytes: 2_000 })
            .seed(seed)
            .generate()
    };
    let a = half(0.5, 3);
    let b = half(1.3, 4);
    let offset = a.duration().as_micros() + 1_000_000;
    let mut out = Trace::new("alpha-shift");
    for r in &a {
        out.push(Request::new(r.ts, r.id, r.size));
    }
    for r in &b {
        out.push(Request::new(
            Time::from_micros(r.ts.as_micros() + offset),
            r.id,
            r.size,
        ));
    }
    out.validate().expect("seam must preserve trace invariants");
    out
}

#[test]
fn engine_with_background_retraining_is_byte_identical_across_threads() {
    // The zero-stall retraining contract: shadow models train on
    // background threads, yet because installs are pinned to window
    // *indices* (never wall-clock completion), the stable report and the
    // obs export stay byte-identical at any thread count.
    let trace = shifting_alpha_trace();
    let run = |threads: usize| {
        let config = EngineConfig {
            total_capacity: 160_000,
            n_shards: 4,
            route: RouteConfig {
                threads,
                ..RouteConfig::default()
            },
            ..EngineConfig::new(160_000)
        };
        let obs = deterministic_obs();
        let engine = ShardedEngine::new(config).with_obs(obs.clone());
        let lhr = LhrConfig {
            // Small per-shard windows so each shard sees several window
            // edges: bootstrap inline, then detection-gated background
            // spawns with installs one edge later.
            min_window_requests: 2_048,
            background_retrain: true,
            ..LhrConfig::default()
        };
        let report = engine.replay(&trace, |shard, capacity, obs| {
            let cache = LhrCache::new(capacity, lhr.for_shard(shard));
            match obs {
                Some(o) => cache.with_obs(o.clone()),
                None => cache,
            }
        });
        (report.stable_json(), obs.to_jsonl())
    };
    let (report1, obs1) = run(1);
    assert!(
        obs1.contains("\"kind\":\"ModelSwap\""),
        "no background model swap happened — the test isn't exercising \
         shadow retraining; events:\n{obs1}"
    );
    for threads in [2usize, 8] {
        let (report, obs) = run(threads);
        assert_eq!(report1, report, "report differs at {threads} threads");
        assert_eq!(obs1, obs, "obs export differs at {threads} threads");
    }
}

#[test]
fn sharded_simulator_obs_is_byte_identical_across_threads() {
    let trace = zipf_trace(13);
    let run = |threads: usize| {
        let obs = deterministic_obs();
        let sim = ShardedSimulator::new(ShardedSimConfig {
            warmup_requests: 1_000,
            n_shards: 8,
            route: RouteConfig {
                threads,
                ..RouteConfig::default()
            },
        })
        .with_obs(obs.clone());
        let result = sim.run(&trace, |_, _| Lru::new(256 << 10));
        (result.stable_json(), obs.to_jsonl())
    };
    let baseline = run(1);
    assert_eq!(baseline, run(2));
    assert_eq!(baseline, run(8));
}
