//! Working-set-size profiles: unique bytes touched per time window — the
//! quantity behind the paper's "active bytes" cache-sizing argument (§2,
//! footnote 2) and Denning's classic working-set model.

use lhr_trace::{Time, Trace};
use std::collections::HashMap;

/// One profile point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkingSetPoint {
    /// Window start (trace clock, seconds).
    pub start_secs: f64,
    /// Distinct objects requested in the window.
    pub unique_objects: usize,
    /// Unique bytes requested in the window.
    pub unique_bytes: u64,
    /// Total requests in the window.
    pub requests: u64,
}

/// Splits the trace into consecutive windows of `window_secs` and reports
/// the working set of each.
pub fn working_set_profile(trace: &Trace, window_secs: f64) -> Vec<WorkingSetPoint> {
    assert!(window_secs > 0.0, "window must be positive");
    if trace.is_empty() {
        return Vec::new();
    }
    let window = Time::from_secs_f64(window_secs);
    let origin = trace.requests[0].ts;
    let mut points = Vec::new();
    let mut seen: HashMap<u64, ()> = HashMap::new();
    let mut current = WorkingSetPoint {
        start_secs: origin.as_secs_f64(),
        unique_objects: 0,
        unique_bytes: 0,
        requests: 0,
    };
    let mut window_end = origin + window;

    for req in trace.iter() {
        while req.ts >= window_end {
            points.push(current);
            seen.clear();
            current = WorkingSetPoint {
                start_secs: window_end.as_secs_f64(),
                unique_objects: 0,
                unique_bytes: 0,
                requests: 0,
            };
            window_end += window;
        }
        current.requests += 1;
        if seen.insert(req.id, ()).is_none() {
            current.unique_objects += 1;
            current.unique_bytes += req.size;
        }
    }
    points.push(current);
    points
}

/// The maximum windowed working set — a practical cache-sizing heuristic
/// ("size the cache to the peak τ-second working set").
pub fn peak_working_set_bytes(trace: &Trace, window_secs: f64) -> u64 {
    working_set_profile(trace, window_secs)
        .iter()
        .map(|p| p.unique_bytes)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhr_trace::Request;

    fn trace() -> Trace {
        Trace::from_requests(
            "t",
            vec![
                Request::new(Time::from_secs(0), 1, 100),
                Request::new(Time::from_secs(1), 1, 100),
                Request::new(Time::from_secs(2), 2, 200),
                // window boundary at t=10
                Request::new(Time::from_secs(11), 3, 50),
                Request::new(Time::from_secs(12), 1, 100),
            ],
        )
    }

    #[test]
    fn windows_partition_the_trace() {
        let profile = working_set_profile(&trace(), 10.0);
        assert_eq!(profile.len(), 2);
        assert_eq!(profile[0].requests, 3);
        assert_eq!(profile[0].unique_objects, 2);
        assert_eq!(profile[0].unique_bytes, 300);
        assert_eq!(profile[1].requests, 2);
        assert_eq!(profile[1].unique_bytes, 150);
    }

    #[test]
    fn repeats_do_not_inflate_unique_bytes() {
        let profile = working_set_profile(&trace(), 100.0);
        assert_eq!(profile.len(), 1);
        assert_eq!(profile[0].unique_bytes, 350);
        assert_eq!(profile[0].requests, 5);
    }

    #[test]
    fn empty_gap_windows_are_emitted() {
        let t = Trace::from_requests(
            "t",
            vec![
                Request::new(Time::from_secs(0), 1, 10),
                Request::new(Time::from_secs(25), 2, 20),
            ],
        );
        let profile = working_set_profile(&t, 10.0);
        assert_eq!(profile.len(), 3);
        assert_eq!(profile[1].requests, 0);
        assert_eq!(profile[2].unique_bytes, 20);
    }

    #[test]
    fn peak_is_max_over_windows() {
        assert_eq!(peak_working_set_bytes(&trace(), 10.0), 300);
    }

    #[test]
    fn empty_trace() {
        assert!(working_set_profile(&Trace::new("e"), 5.0).is_empty());
        assert_eq!(peak_working_set_bytes(&Trace::new("e"), 5.0), 0);
    }
}
