//! A totally-ordered `f64` wrapper for priority-queue keys.

use std::cmp::Ordering;

/// An `f64` ordered by `total_cmp`. Only finite values should be stored
/// (priority computations in this crate never produce NaN, and the
/// constructor asserts it in debug builds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdF64(pub f64);

impl OrdF64 {
    /// Wraps a value, asserting (debug) it is not NaN.
    pub fn new(v: f64) -> Self {
        debug_assert!(!v.is_nan(), "priority is NaN");
        OrdF64(v)
    }
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_numeric() {
        let mut v = vec![OrdF64::new(3.0), OrdF64::new(-1.0), OrdF64::new(2.5)];
        v.sort();
        assert_eq!(
            v,
            vec![OrdF64::new(-1.0), OrdF64::new(2.5), OrdF64::new(3.0)]
        );
    }

    #[test]
    fn works_in_btreeset() {
        let mut s = std::collections::BTreeSet::new();
        s.insert((OrdF64::new(2.0), 1u64));
        s.insert((OrdF64::new(1.0), 2u64));
        assert_eq!(s.iter().next().unwrap().1, 2);
    }
}
