//! Gradient-boosted regression trees (XGBM-style), implemented from scratch.
//!
//! The LHR cache (paper §5.2.4) trains an "XGBoosting Machine" on HRO's
//! caching decisions with a squared-error loss. XGBoost itself is a large
//! C++ dependency unavailable offline, so this crate provides the same model
//! class natively:
//!
//! - histogram-based split finding (quantile bins, like
//!   LightGBM/XGBoost-hist) over a **feature-major** binned matrix, with
//!   per-node histogram caching and the LightGBM subtraction trick
//!   (sibling = parent − smaller child),
//! - a thread-parallel split search ([`GbmParams::threads`]) whose ordered
//!   reduction keeps the fitted model **byte-identical for every thread
//!   count**,
//! - second-order boosting specialized to squared error (hessian = 1, so
//!   gradients are plain residuals),
//! - L2 leaf regularization (`lambda`), depth / leaf-weight constraints,
//! - native *missing value* handling (`f32::NAN` routes to a learned
//!   default side per split, as CDN features like "20th inter-request time"
//!   are frequently absent),
//! - gain-based feature importance and serde model serialization.
//!
//! # Example
//!
//! ```
//! use lhr_gbm::{Dataset, GbmParams, Gbm};
//!
//! // y = 1 if x0 > 0.5 else 0 — learnable by a single stump.
//! let mut data = Dataset::new(1);
//! for i in 0..200 {
//!     let x = i as f32 / 200.0;
//!     data.push_row(&[x], if x > 0.5 { 1.0 } else { 0.0 });
//! }
//! let model = Gbm::fit(&data, &GbmParams::default());
//! assert!(model.predict(&[0.9]) > 0.8);
//! assert!(model.predict(&[0.1]) < 0.2);
//! ```

// `deny`, not `forbid`: the one exception is `bitset::avx512` — the
// runtime-dispatched SIMD scoring kernel — which opts back in with a
// module-scoped `#[allow(unsafe_code)]` and keeps its raw loads/stores
// behind bounds the safe callers have already checked.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod booster;
mod dataset;
mod flat;
mod parallel;
mod tree;

pub use booster::{Gbm, GbmParams, Loss};
pub use dataset::Dataset;
pub use tree::Tree;
