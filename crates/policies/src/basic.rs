//! FIFO and Random eviction — the classic strawmen (§8).

use lhr_sim::{CachePolicy, Outcome};
use lhr_trace::{ObjectId, Request};
use lhr_util::hash::FastMap;
use lhr_util::rng::rngs::SmallRng;
use lhr_util::rng::{Rng, SeedableRng};
use std::collections::VecDeque;

/// First-in first-out eviction, admit-all.
#[derive(Debug)]
pub struct Fifo {
    capacity: u64,
    used: u64,
    queue: VecDeque<(ObjectId, u64)>,
    cached: FastMap<ObjectId, u64>,
    evictions: u64,
}

impl Fifo {
    /// An empty FIFO cache of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Fifo {
            capacity,
            used: 0,
            queue: VecDeque::new(),
            cached: FastMap::default(),
            evictions: 0,
        }
    }
}

impl CachePolicy for Fifo {
    fn name(&self) -> &str {
        "FIFO"
    }
    fn capacity(&self) -> u64 {
        self.capacity
    }
    fn used_bytes(&self) -> u64 {
        self.used
    }
    fn contains(&self, id: ObjectId) -> bool {
        self.cached.contains_key(&id)
    }

    fn handle(&mut self, req: &Request) -> Outcome {
        if self.cached.contains_key(&req.id) {
            return Outcome::Hit;
        }
        if req.size > self.capacity {
            return Outcome::MissBypassed;
        }
        while self.used + req.size > self.capacity {
            let (id, size) = self.queue.pop_front().expect("non-empty");
            self.cached.remove(&id);
            self.used -= size;
            self.evictions += 1;
        }
        self.queue.push_back((req.id, req.size));
        self.cached.insert(req.id, req.size);
        self.used += req.size;
        Outcome::MissAdmitted
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }

    fn metadata_overhead_bytes(&self) -> u64 {
        self.cached.len() as u64 * 40
    }
}

/// Uniform-random eviction, admit-all. Deterministic given the seed.
#[derive(Debug)]
pub struct RandomEviction {
    capacity: u64,
    used: u64,
    /// Dense vector of cached entries for O(1) random removal.
    entries: Vec<(ObjectId, u64)>,
    /// id → index into `entries`.
    index: FastMap<ObjectId, usize>,
    rng: SmallRng,
    evictions: u64,
}

impl RandomEviction {
    /// An empty cache of `capacity` bytes with the given RNG seed.
    pub fn new(capacity: u64, seed: u64) -> Self {
        RandomEviction {
            capacity,
            used: 0,
            entries: Vec::new(),
            index: FastMap::default(),
            rng: SmallRng::seed_from_u64(seed),
            evictions: 0,
        }
    }

    fn evict_one(&mut self) {
        let victim = self.rng.gen_range(0..self.entries.len());
        let (id, size) = self.entries.swap_remove(victim);
        self.index.remove(&id);
        if victim < self.entries.len() {
            // Fix the index of the entry swapped into `victim`'s slot.
            let moved = self.entries[victim].0;
            self.index.insert(moved, victim);
        }
        self.used -= size;
        self.evictions += 1;
    }
}

impl CachePolicy for RandomEviction {
    fn name(&self) -> &str {
        "Random"
    }
    fn capacity(&self) -> u64 {
        self.capacity
    }
    fn used_bytes(&self) -> u64 {
        self.used
    }
    fn contains(&self, id: ObjectId) -> bool {
        self.index.contains_key(&id)
    }

    fn handle(&mut self, req: &Request) -> Outcome {
        if self.index.contains_key(&req.id) {
            return Outcome::Hit;
        }
        if req.size > self.capacity {
            return Outcome::MissBypassed;
        }
        while self.used + req.size > self.capacity {
            self.evict_one();
        }
        self.index.insert(req.id, self.entries.len());
        self.entries.push((req.id, req.size));
        self.used += req.size;
        Outcome::MissAdmitted
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }

    fn metadata_overhead_bytes(&self) -> u64 {
        self.entries.len() as u64 * 40
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhr_trace::Time;

    fn req(t: u64, id: ObjectId, size: u64) -> Request {
        Request::new(Time::from_secs(t), id, size)
    }

    #[test]
    fn fifo_evicts_in_insertion_order() {
        let mut f = Fifo::new(200);
        f.handle(&req(0, 1, 100));
        f.handle(&req(1, 2, 100));
        f.handle(&req(2, 1, 100)); // hit — does NOT refresh FIFO order
        f.handle(&req(3, 3, 100)); // evicts 1 (oldest insertion)
        assert!(!f.contains(1));
        assert!(f.contains(2) && f.contains(3));
    }

    #[test]
    fn fifo_oversized_bypassed() {
        let mut f = Fifo::new(50);
        assert_eq!(f.handle(&req(0, 1, 100)), Outcome::MissBypassed);
    }

    #[test]
    fn random_stays_within_capacity() {
        let mut r = RandomEviction::new(500, 42);
        for i in 0..100 {
            r.handle(&req(i, i, 80));
            assert!(r.used_bytes() <= 500);
        }
        assert!(r.evictions() > 0);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let run = |seed| {
            let mut r = RandomEviction::new(300, seed);
            let mut hits = 0;
            for i in 0..200u64 {
                if r.handle(&req(i, i % 7, 100)).is_hit() {
                    hits += 1;
                }
            }
            hits
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn random_index_stays_consistent_after_swap_remove() {
        let mut r = RandomEviction::new(300, 7);
        for i in 0..50u64 {
            r.handle(&req(i, i, 100));
        }
        // Every cached id must report a hit.
        for (id, _) in r.entries.clone() {
            assert!(r.contains(id));
            assert!(r.handle(&req(100, id, 100)).is_hit());
        }
    }
}
