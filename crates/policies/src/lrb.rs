//! LRB — Learning Relaxed Belady (Song et al., NSDI '20), reimplemented on
//! this workspace's GBM.
//!
//! LRB trains a regression model to predict each object's *time to next
//! request* and evicts, among a random sample of cached objects, the one
//! whose predicted next request is farthest away — approximating Belady
//! beyond the "Belady boundary". Faithful pieces kept here:
//!
//! - a **memory window**: per-object dynamic features (recent
//!   inter-request gaps, access count) are maintained for *every* object
//!   requested within the window, cached or not — this is what lets LRB
//!   relearn an evicted object's popularity, and why its metadata
//!   footprint is the largest of the learned policies (paper Figure 9);
//! - delayed labeling: a training sample is emitted when the object is
//!   re-requested (label = actual gap) or when it ages past the memory
//!   window (label = 2 × window, the "beyond boundary" bucket);
//! - sampled eviction (64 candidates) by maximum predicted next access;
//! - admit-all admission (LRB controls only eviction).
//!
//! Differences from the paper's system (documented in DESIGN.md): GBM
//! hyperparameters are this crate's defaults, exponentially-decayed
//! counters are replaced by the access count, and the memory window is a
//! fixed constructor parameter instead of being auto-tuned.

use lhr_gbm::{Dataset, Gbm, GbmParams};
use lhr_sim::{CachePolicy, Outcome};
use lhr_trace::{ObjectId, Request, Time};
use lhr_util::hash::FastMap;
use lhr_util::rng::rngs::SmallRng;
use lhr_util::rng::{Rng, SeedableRng};

/// Number of recent inter-request gaps kept per object (LRB's 32 deltas).
const N_DELTAS: usize = 32;
/// Number of exponentially-decayed counters per object (LRB's 10 EDCs).
const N_EDCS: usize = 10;
/// Feature vector width: log-size, log-access-count, gaps, EDCs.
const N_FEATURES: usize = 2 + N_DELTAS + N_EDCS;
/// Eviction sample size.
const SAMPLE: usize = 64;

#[derive(Debug, Clone)]
struct Meta {
    size: u64,
    last_access: Time,
    access_count: u64,
    /// Most recent inter-request gaps in seconds, newest first.
    deltas: Vec<f32>,
    /// Exponentially decayed request counters over geometrically spaced
    /// horizons: `EDC_k ← 1 + EDC_k · 2^(−Δ/τ_k)` on each request.
    edcs: [f32; N_EDCS],
}

impl Meta {
    /// Features *as of `now`*: the elapsed time since the last access
    /// becomes the freshest gap (this is how LRB evaluates cached
    /// candidates at eviction time).
    fn features(&self, now: Time) -> [f32; N_FEATURES] {
        let mut f = [f32::NAN; N_FEATURES];
        f[0] = (self.size as f32).ln();
        f[1] = (self.access_count as f32).ln_1p();
        let elapsed = now.saturating_sub(self.last_access).as_secs_f64() as f32;
        f[2] = ln_gap(elapsed);
        for (slot, &d) in f[3..3 + N_DELTAS - 1].iter_mut().zip(self.deltas.iter()) {
            *slot = d;
        }
        f[2 + N_DELTAS..].copy_from_slice(&self.edcs);
        f
    }

    /// Decays and bumps the EDCs for a request `gap_secs` after the last.
    fn update_edcs(&mut self, gap_secs: f64, horizons: &[f64; N_EDCS]) {
        for (edc, &tau) in self.edcs.iter_mut().zip(horizons.iter()) {
            *edc = 1.0 + *edc * (2f64.powf(-gap_secs / tau) as f32);
        }
    }
}

fn ln_gap(secs: f32) -> f32 {
    (secs.max(1e-6)).ln()
}

/// The LRB policy.
pub struct Lrb {
    capacity: u64,
    used: u64,
    /// Feature state for every object requested within the memory window
    /// (cached or not).
    meta: FastMap<ObjectId, Meta>,
    /// Cached objects and their sizes.
    cached: FastMap<ObjectId, u64>,
    /// Dense id vector of cached objects for O(1) random sampling.
    dense: Vec<ObjectId>,
    positions: FastMap<ObjectId, usize>,
    /// Pending training sample per object: features at its last request.
    pending: FastMap<ObjectId, ([f32; N_FEATURES], Time)>,
    training: Dataset,
    model: Option<Gbm>,
    /// The "memory window": gaps longer than this are beyond the Belady
    /// boundary.
    memory_window_secs: f64,
    /// Geometrically spaced EDC horizons derived from the memory window.
    edc_horizons: [f64; N_EDCS],
    /// Retrain once this many labeled samples accumulate.
    pub train_batch: usize,
    rng: SmallRng,
    evictions: u64,
    trainings: u64,
    /// Wall-clock seconds spent in Gbm::fit (Figure 9's training time).
    pub train_wall_secs: f64,
}

impl Lrb {
    /// An LRB cache of `capacity` bytes. `memory_window_secs` is the Belady
    /// boundary; a reasonable default is the trace duration over 4.
    pub fn new(capacity: u64, memory_window_secs: f64, seed: u64) -> Self {
        let window = memory_window_secs.max(1.0);
        let mut edc_horizons = [0.0f64; N_EDCS];
        for (k, tau) in edc_horizons.iter_mut().enumerate() {
            // τ spans window/2^9 .. window (short- to long-horizon
            // popularity), matching LRB's geometric spacing.
            *tau = window / 2f64.powi((N_EDCS - 1 - k) as i32);
        }
        Lrb {
            capacity,
            used: 0,
            meta: FastMap::default(),
            cached: FastMap::default(),
            dense: Vec::new(),
            positions: FastMap::default(),
            pending: FastMap::default(),
            training: Dataset::new(N_FEATURES),
            model: None,
            memory_window_secs: window,
            edc_horizons,
            train_batch: 8_192,
            rng: SmallRng::seed_from_u64(seed),
            evictions: 0,
            trainings: 0,
            train_wall_secs: 0.0,
        }
    }

    /// Number of retrainings so far.
    pub fn trainings(&self) -> u64 {
        self.trainings
    }

    /// Emits the delayed label for `id` if a sample is pending.
    fn label_pending(&mut self, id: ObjectId, now: Time) {
        if let Some((features, then)) = self.pending.remove(&id) {
            let gap = now.saturating_sub(then).as_secs_f64();
            let label = ln_gap(gap.min(2.0 * self.memory_window_secs) as f32);
            self.training.push_row(&features, label);
        }
    }

    /// Times out pending samples older than the memory window, labeling
    /// them "beyond boundary", and prunes stale (uncached) metadata.
    fn expire_and_prune(&mut self, now: Time) {
        let boundary = Time::from_secs_f64(self.memory_window_secs);
        let mut expired: Vec<ObjectId> = self
            .pending
            .iter()
            .filter(|(_, (_, then))| now.saturating_sub(*then) > boundary)
            .map(|(&id, _)| id)
            .collect();
        // Map iteration order is arbitrary; training-row order feeds GBM
        // fitting, so pin it (id order) or replay reports drift.
        expired.sort_unstable();
        let beyond = ln_gap(2.0 * self.memory_window_secs as f32);
        for id in expired {
            let (features, _) = self.pending.remove(&id).expect("just seen");
            self.training.push_row(&features, beyond);
        }
        // Metadata of uncached objects leaves the memory window with its
        // last request; cached objects always keep theirs.
        let cached = &self.cached;
        self.meta.retain(|id, m| {
            cached.contains_key(id) || now.saturating_sub(m.last_access) <= boundary
        });
    }

    fn maybe_train(&mut self, now: Time) {
        if self.training.n_rows() < self.train_batch {
            return;
        }
        self.expire_and_prune(now);
        let t0 = std::time::Instant::now();
        let params = GbmParams {
            n_trees: 25,
            max_depth: 6,
            ..GbmParams::default()
        };
        self.model = Some(Gbm::fit(&self.training, &params));
        self.train_wall_secs += t0.elapsed().as_secs_f64();
        self.trainings += 1;
        self.training.clear();
    }

    /// Updates (or creates) the metadata for a requested object and leaves
    /// a pending training sample behind.
    fn touch_meta(&mut self, req: &Request) {
        self.label_pending(req.id, req.ts);
        let horizons = self.edc_horizons;
        let meta = self.meta.entry(req.id).or_insert_with(|| Meta {
            size: req.size,
            last_access: req.ts,
            access_count: 0,
            deltas: Vec::new(),
            edcs: [0.0; N_EDCS],
        });
        let gap = req.ts.saturating_sub(meta.last_access).as_secs_f64();
        if meta.access_count > 0 {
            meta.deltas.insert(0, ln_gap(gap as f32));
            meta.deltas.truncate(N_DELTAS - 1);
        }
        meta.update_edcs(if meta.access_count == 0 { 0.0 } else { gap }, &horizons);
        meta.last_access = req.ts;
        meta.access_count += 1;
        let snapshot = meta.features(req.ts);
        self.pending.insert(req.id, (snapshot, req.ts));
    }

    /// Picks the eviction victim: the sampled cached object with the
    /// largest predicted next-request time. Without a model, the sampled
    /// object with the oldest last access (LRU-flavoured) is chosen.
    fn pick_victim(&mut self, now: Time) -> ObjectId {
        debug_assert!(!self.dense.is_empty());
        let n = self.dense.len();
        let k = SAMPLE.min(n);
        let mut best: Option<(f64, ObjectId)> = None;
        for _ in 0..k {
            let id = self.dense[self.rng.gen_range(0..n)];
            let meta = &self.meta[&id];
            let score = match &self.model {
                Some(model) => model.predict(&meta.features(now)) as f64,
                None => now.saturating_sub(meta.last_access).as_secs_f64(),
            };
            if best.is_none_or(|(s, _)| score > s) {
                best = Some((score, id));
            }
        }
        best.expect("k >= 1").1
    }

    fn evict(&mut self, id: ObjectId) {
        let size = self.cached.remove(&id).expect("cached");
        self.used -= size;
        let pos = self.positions.remove(&id).expect("indexed");
        self.dense.swap_remove(pos);
        if pos < self.dense.len() {
            let moved = self.dense[pos];
            self.positions.insert(moved, pos);
        }
        self.evictions += 1;
    }
}

impl CachePolicy for Lrb {
    fn name(&self) -> &str {
        "LRB"
    }
    fn capacity(&self) -> u64 {
        self.capacity
    }
    fn used_bytes(&self) -> u64 {
        self.used
    }
    fn contains(&self, id: ObjectId) -> bool {
        self.cached.contains_key(&id)
    }

    fn handle(&mut self, req: &Request) -> Outcome {
        self.maybe_train(req.ts);
        self.touch_meta(req);
        if self.cached.contains_key(&req.id) {
            return Outcome::Hit;
        }
        if req.size > self.capacity {
            return Outcome::MissBypassed;
        }
        while self.used + req.size > self.capacity {
            let victim = self.pick_victim(req.ts);
            self.evict(victim);
        }
        self.cached.insert(req.id, req.size);
        self.positions.insert(req.id, self.dense.len());
        self.dense.push(req.id);
        self.used += req.size;
        Outcome::MissAdmitted
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }

    fn metadata_overhead_bytes(&self) -> u64 {
        let per_meta = 48 + 16 + N_DELTAS * 4 + N_EDCS * 4;
        let model = self.model.as_ref().map_or(0, |m| m.approx_size_bytes());
        (self.meta.len() * per_meta
            + self.cached.len() * 40
            + self.pending.len() * (N_FEATURES * 4 + 24)
            + self.training.n_rows() * (N_FEATURES + 1) * 4
            + model) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(t: f64, id: ObjectId, size: u64) -> Request {
        Request::new(Time::from_secs_f64(t), id, size)
    }

    #[test]
    fn basic_hit_miss_flow() {
        let mut c = Lrb::new(1_000, 100.0, 1);
        assert_eq!(c.handle(&req(0.0, 1, 400)), Outcome::MissAdmitted);
        assert_eq!(c.handle(&req(1.0, 1, 400)), Outcome::Hit);
        assert_eq!(c.handle(&req(2.0, 2, 400)), Outcome::MissAdmitted);
        assert_eq!(c.used_bytes(), 800);
    }

    #[test]
    fn capacity_respected_before_and_after_training() {
        let mut c = Lrb::new(5_000, 50.0, 2);
        c.train_batch = 512;
        let mut t = 0.0;
        for i in 0..6_000u64 {
            c.handle(&req(t, i % 97, 300 + (i % 5) * 100));
            t += 0.25;
            assert!(c.used_bytes() <= 5_000, "overflow at {i}");
        }
        assert!(c.trainings > 0, "model never trained");
    }

    #[test]
    fn labels_are_emitted_on_reaccess() {
        let mut c = Lrb::new(10_000, 100.0, 3);
        c.handle(&req(0.0, 1, 100));
        assert_eq!(c.training.n_rows(), 0);
        c.handle(&req(5.0, 1, 100));
        assert_eq!(c.training.n_rows(), 1);
        // The label is ln(5s).
        assert!((c.training.labels()[0] - 5.0f32.ln()).abs() < 1e-4);
    }

    #[test]
    fn stale_pending_samples_expire_as_beyond_boundary() {
        let mut c = Lrb::new(10_000, 10.0, 4);
        c.handle(&req(0.0, 1, 100));
        c.evict(1); // uncache so pruning applies to it too
        c.expire_and_prune(Time::from_secs_f64(100.0));
        assert_eq!(c.training.n_rows(), 1);
        assert!((c.training.labels()[0] - 20.0f32.ln()).abs() < 1e-4);
        // Stale uncached metadata is pruned with it.
        assert!(!c.meta.contains_key(&1));
    }

    #[test]
    fn metadata_survives_eviction_within_window() {
        let mut c = Lrb::new(200, 1_000.0, 5);
        c.handle(&req(0.0, 1, 100));
        c.handle(&req(1.0, 1, 100));
        c.handle(&req(2.0, 2, 100));
        c.handle(&req(3.0, 3, 100)); // evicts someone
        assert!(
            c.meta.contains_key(&1),
            "memory-window metadata was dropped on eviction"
        );
        // Re-request of 1 resumes its history with count 3.
        c.handle(&req(4.0, 1, 100));
        assert_eq!(c.meta[&1].access_count, 3);
    }

    #[test]
    fn trained_model_prefers_evicting_cold_objects() {
        // Hot objects re-requested every 1 s; cold ones never again.
        let mut c = Lrb::new(2_000_000, 30.0, 5);
        c.train_batch = 2_048;
        let mut t = 0.0f64;
        for round in 0..3_000u64 {
            for hot in 0..4u64 {
                c.handle(&req(t, hot, 1_000));
                t += 0.25;
            }
            c.handle(&req(t, 100 + round, 1_000));
            t += 0.25;
        }
        assert!(c.trainings > 0);
        // Now force evictions: hot objects should survive.
        let mut cold_cache = Lrb::new(8_000, 30.0, 5);
        cold_cache.model = c.model.take();
        let mut t2 = 10_000.0;
        for round in 0..2_000u64 {
            for hot in 0..4u64 {
                cold_cache.handle(&req(t2, hot, 1_000));
                t2 += 0.25;
            }
            cold_cache.handle(&req(t2, 5_000 + round, 1_000));
            t2 += 0.25;
        }
        let hot_cached = (0..4u64).filter(|&id| cold_cache.contains(id)).count();
        assert!(
            hot_cached >= 3,
            "model evicted hot objects: {hot_cached}/4 cached"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut c = Lrb::new(3_000, 20.0, seed);
            let mut hits = 0u32;
            for i in 0..3_000u64 {
                if c.handle(&req(i as f64 * 0.5, i % 29, 400)).is_hit() {
                    hits += 1;
                }
            }
            hits
        };
        assert_eq!(run(7), run(7));
    }
}
