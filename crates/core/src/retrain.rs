//! Background (shadow) retraining with deterministic swap timing.
//!
//! A Zipf-α detection used to retrain the admission model *inline*,
//! stalling the serving path for the whole `Gbm::fit`. The shadow trainer
//! moves the fit onto a dedicated thread and publishes the result through
//! an epoch-stamped slot; the serving thread *installs* (swaps in) the
//! trained model only at a window edge pinned when the training was
//! spawned — never at the wall-clock moment training happens to finish.
//!
//! That pinning is what keeps sharded replays byte-identical at any thread
//! count (see DESIGN.md "Sharded engine"): every model the cache ever
//! serves with is a deterministic function of (trace, config), because
//! *which* window's data trained it and *which* window edge activates it
//! are both fixed by window index. Wall-clock only decides whether the
//! serving thread waits at the edge (it normally doesn't — training has a
//! full window of slack), i.e. it can affect latency but never results.

use lhr_gbm::{Dataset, Gbm, GbmParams};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// What the training thread publishes: the fitted model and its wall time.
type TrainedSlot = Arc<Mutex<Option<(Gbm, f64)>>>;

struct PendingTrain {
    /// Window index at whose edge the model must be installed.
    due_window: u64,
    /// Training-set size, reported on the `ModelSwap` event.
    rows: usize,
    slot: TrainedSlot,
    handle: Option<JoinHandle<()>>,
}

/// A trained shadow model ready to install, returned by
/// [`ShadowTrainer::take_due`].
pub(crate) struct InstalledModel {
    /// The freshly trained admission model.
    pub model: Gbm,
    /// Rows the model was trained on.
    pub rows: usize,
    /// Wall-clock seconds the background fit took.
    pub wall_secs: f64,
    /// Monotone install counter (1 for the first background swap).
    pub epoch: u64,
}

/// Owns at most one in-flight background `Gbm::fit` and its swap schedule.
#[derive(Default)]
pub(crate) struct ShadowTrainer {
    pending: Option<PendingTrain>,
    epoch: u64,
}

impl ShadowTrainer {
    /// Whether a training is in flight (spawned, not yet installed).
    pub fn in_flight(&self) -> bool {
        self.pending.is_some()
    }

    /// Spawns a background fit of `data`, to be installed at the edge of
    /// window `due_window`.
    ///
    /// # Panics
    /// Panics (in debug) if a training is already in flight — callers must
    /// coalesce detections into the pending training instead.
    pub fn spawn(&mut self, data: Dataset, params: GbmParams, due_window: u64) {
        debug_assert!(self.pending.is_none(), "one training in flight at most");
        debug_assert!(!data.is_empty(), "spawned with an empty training set");
        let slot: TrainedSlot = Arc::new(Mutex::new(None));
        let rows = data.n_rows();
        let handle = {
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || {
                let t0 = std::time::Instant::now();
                // No obs recorder here: span nesting is serving-thread
                // state, and a concurrent emitter would make the span tree
                // depend on scheduling. The install site accounts for the
                // fit on the serving thread instead.
                let model = Gbm::fit(&data, &params);
                *slot.lock().expect("trainer slot poisoned") =
                    Some((model, t0.elapsed().as_secs_f64()));
            })
        };
        self.pending = Some(PendingTrain {
            due_window,
            rows,
            slot,
            handle: Some(handle),
        });
    }

    /// At the edge of window `window`: returns the pending model if its
    /// pinned swap window has arrived, joining the trainer thread first
    /// (normally a no-op — training had a full window of slack). Returns
    /// `None` while nothing is due.
    pub fn take_due(&mut self, window: u64) -> Option<InstalledModel> {
        if self.pending.as_ref().is_none_or(|p| window < p.due_window) {
            return None;
        }
        let mut p = self.pending.take().expect("checked above");
        if let Some(handle) = p.handle.take() {
            if handle.join().is_err() {
                panic!("background Gbm::fit panicked");
            }
        }
        let (model, wall_secs) = p
            .slot
            .lock()
            .expect("trainer slot poisoned")
            .take()
            .expect("trainer publishes before exiting");
        self.epoch += 1;
        Some(InstalledModel {
            model,
            rows: p.rows,
            wall_secs,
            epoch: self.epoch,
        })
    }
}

impl Drop for ShadowTrainer {
    fn drop(&mut self) {
        // A run can end mid-training; don't leak the thread past the cache.
        if let Some(mut p) = self.pending.take() {
            if let Some(handle) = p.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_data() -> Dataset {
        let mut d = Dataset::new(1);
        for i in 0..64 {
            d.push_row(&[i as f32], if i < 32 { 0.0 } else { 1.0 });
        }
        d
    }

    #[test]
    fn install_waits_for_the_pinned_window() {
        let mut t = ShadowTrainer::default();
        t.spawn(tiny_data(), GbmParams::default(), 5);
        assert!(t.in_flight());
        assert!(t.take_due(3).is_none(), "not due yet");
        assert!(t.take_due(4).is_none(), "not due yet");
        let installed = t.take_due(5).expect("due at its pinned edge");
        assert_eq!(installed.epoch, 1);
        assert_eq!(installed.rows, 64);
        assert!(installed.model.predict(&[60.0]) > 0.5);
        assert!(!t.in_flight());
    }

    #[test]
    fn late_edges_still_install_and_epochs_advance() {
        let mut t = ShadowTrainer::default();
        t.spawn(tiny_data(), GbmParams::default(), 2);
        // The edge the swap was pinned to can be jumped over (window-index
        // gaps on sparse traces); any later edge installs.
        assert_eq!(t.take_due(9).expect("overdue installs").epoch, 1);
        t.spawn(tiny_data(), GbmParams::default(), 10);
        assert_eq!(t.take_due(10).expect("second install").epoch, 2);
    }

    #[test]
    fn dropping_mid_training_joins_cleanly() {
        let mut t = ShadowTrainer::default();
        t.spawn(tiny_data(), GbmParams::default(), 99);
        drop(t); // must not leak or deadlock
    }
}
