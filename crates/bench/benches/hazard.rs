//! Cost of computing the HRO bound and its per-window top set — the paper's
//! claim is that HRO is computable online in polynomial time (§3.2).
//!
//! Run with `cargo bench --bench hazard`.

use lhr::hazard::{hro_top_set, Hro};
use lhr::window::WindowTracker;
use lhr_sim::OfflineBound;
use lhr_trace::synth::{IrmConfig, SizeModel};
use lhr_util::bench::{black_box, Bench};

fn bench_hro_bound() {
    for &n in &[20_000usize, 100_000] {
        let trace = IrmConfig::new(n / 20, n)
            .zipf_alpha(0.9)
            .size_model(SizeModel::BoundedPareto {
                alpha: 1.3,
                min: 10_000,
                max: 5_000_000,
            })
            .seed(3)
            .generate();
        let capacity = (trace.total_bytes() / 50) as u64;
        let mut group = Bench::new("hro_evaluate");
        group.throughput_elems(n as u64);
        group.bench(format!("{n}"), || {
            Hro::default().evaluate(black_box(&trace), capacity)
        });
        group.finish();
    }
}

fn bench_top_set() {
    let trace = IrmConfig::new(5_000, 50_000)
        .zipf_alpha(1.0)
        .seed(4)
        .generate();
    let mut tracker = WindowTracker::new(u64::MAX);
    for req in trace.iter() {
        tracker.observe(req);
    }
    let window = tracker.into_partial();
    let capacity = (trace.total_bytes() / 20) as u64;
    let mut group = Bench::new("hro_top_set");
    group.throughput_elems(window.counts.len() as u64);
    group.bench("5000_contents", || hro_top_set(&window, capacity));
    group.finish();
}

fn main() {
    bench_hro_bound();
    bench_top_set();
}
