//! Trace-driven cache simulator engine.
//!
//! This crate is the evaluation vehicle shared by every policy and bound in
//! the workspace (in the spirit of libCacheSim, which the paper's own
//! simulator builds on):
//!
//! - [`policy::CachePolicy`] — the admission + eviction interface every
//!   online cache implements.
//! - [`engine::Simulator`] — drives a trace through a policy, collecting
//!   [`metrics::SimMetrics`] and optional hit-ratio time series.
//! - [`shard`] — the thread-parallel replay driver: key-hash sharding,
//!   bounded-channel routing to worker-owned shards, and the
//!   [`shard::ShardedSimulator`] whose merged reports are byte-identical
//!   at any thread count.
//! - [`bound::OfflineBound`] — the interface for (offline or online) upper
//!   bounds on OPT, which see the whole trace instead of reacting
//!   request-by-request.
//! - [`sweep`] — parallel grids over policies × cache sizes × traces.
//!
//! # Example
//!
//! ```
//! use lhr_sim::engine::{SimConfig, Simulator};
//! use lhr_sim::policy::{CachePolicy, Outcome};
//! use lhr_trace::{Request, Trace, Time};
//!
//! // A trivially small policy: cache everything, never evict (infinite cap).
//! struct Infinite { used: u64, cached: std::collections::HashSet<u64> }
//! impl CachePolicy for Infinite {
//!     fn name(&self) -> &str { "infinite" }
//!     fn capacity(&self) -> u64 { u64::MAX }
//!     fn used_bytes(&self) -> u64 { self.used }
//!     fn contains(&self, id: u64) -> bool { self.cached.contains(&id) }
//!     fn handle(&mut self, req: &Request) -> Outcome {
//!         if self.cached.contains(&req.id) { return Outcome::Hit; }
//!         self.cached.insert(req.id);
//!         self.used += req.size;
//!         Outcome::MissAdmitted
//!     }
//! }
//!
//! let trace = Trace::from_requests("t", vec![
//!     Request::new(Time::from_secs(0), 1, 100),
//!     Request::new(Time::from_secs(1), 1, 100),
//! ]);
//! let mut policy = Infinite { used: 0, cached: Default::default() };
//! let result = Simulator::new(SimConfig::default()).run(&mut policy, &trace);
//! assert_eq!(result.metrics.hits, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bound;
pub mod engine;
pub mod metrics;
pub mod policy;
pub mod shard;
pub mod sweep;

pub use bound::OfflineBound;
pub use engine::{SimConfig, SimResult, Simulator};
pub use metrics::SimMetrics;
pub use policy::{CachePolicy, Outcome};
pub use shard::{RouteConfig, ShardedSimConfig, ShardedSimulator};
