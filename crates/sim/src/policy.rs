//! The cache policy interface.

use lhr_trace::{ObjectId, Request};

/// What a policy did with one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The object was in the cache; it is served locally.
    Hit,
    /// The object was missing, fetched from origin, and admitted.
    MissAdmitted,
    /// The object was missing, fetched from origin, and *not* admitted
    /// (admission-controlled policies only).
    MissBypassed,
}

impl Outcome {
    /// True for [`Outcome::Hit`].
    pub fn is_hit(self) -> bool {
        matches!(self, Outcome::Hit)
    }
}

/// An online caching policy: decides admission and eviction request by
/// request, with no knowledge of the future.
///
/// # Contract
///
/// - `handle` must keep `used_bytes() ≤ capacity()` at all times (the
///   simulator asserts this in debug builds after every request).
/// - An object larger than the capacity must never be admitted.
/// - `contains(id)` must agree with what `handle` would report as a hit.
/// - Policies must be deterministic given their construction parameters
///   (randomized policies take an explicit seed).
///
/// # Example
///
/// A minimal admit-all policy that evicts nothing and therefore only works
/// while everything fits (real policies evict inside `handle` to maintain
/// the capacity contract):
///
/// ```
/// use lhr_sim::{CachePolicy, Outcome};
/// use lhr_trace::{ObjectId, Request, Time};
/// use std::collections::HashMap;
///
/// struct Unbounded {
///     capacity: u64,
///     cached: HashMap<ObjectId, u64>,
/// }
///
/// impl CachePolicy for Unbounded {
///     fn name(&self) -> &str { "Unbounded" }
///     fn capacity(&self) -> u64 { self.capacity }
///     fn used_bytes(&self) -> u64 { self.cached.values().sum() }
///     fn contains(&self, id: ObjectId) -> bool { self.cached.contains_key(&id) }
///     fn handle(&mut self, req: &Request) -> Outcome {
///         if self.cached.contains_key(&req.id) {
///             return Outcome::Hit;
///         }
///         if self.used_bytes() + req.size > self.capacity {
///             return Outcome::MissBypassed; // never overflow the contract
///         }
///         self.cached.insert(req.id, req.size);
///         Outcome::MissAdmitted
///     }
/// }
///
/// let mut policy = Unbounded { capacity: 1_000, cached: HashMap::new() };
/// let req = Request::new(Time::from_secs(0), 7, 100);
/// assert_eq!(policy.handle(&req), Outcome::MissAdmitted);
/// assert_eq!(policy.handle(&req), Outcome::Hit);
/// assert!(policy.contains(7));
/// ```
pub trait CachePolicy {
    /// Human-readable policy name, e.g. `"LRU"` or `"LHR"`.
    fn name(&self) -> &str;

    /// Total cache capacity in bytes.
    fn capacity(&self) -> u64;

    /// Bytes currently occupied by cached objects.
    fn used_bytes(&self) -> u64;

    /// Whether `id` is currently cached.
    fn contains(&self, id: ObjectId) -> bool;

    /// Processes one request and reports what happened.
    fn handle(&mut self, req: &Request) -> Outcome;

    /// Fused `contains` + `handle` for the cached case: if `req.id` is
    /// present, processes the request and returns its outcome; if absent,
    /// returns `None` **without consulting the policy** (no admission
    /// bookkeeping happens), so the caller can run its miss protocol and
    /// decide when — or whether — to call [`CachePolicy::handle`].
    ///
    /// The default is literally `contains` then `handle`; policies backed
    /// by a single-probe table override this so the serving hot path pays
    /// one lookup per hit instead of two. Overrides must behave
    /// observably identically to the default.
    fn hit_check(&mut self, req: &Request) -> Option<Outcome> {
        self.contains(req.id).then(|| self.handle(req))
    }

    /// Number of evictions performed so far (optional statistic).
    fn evictions(&self) -> u64 {
        0
    }

    /// Approximate bytes of metadata the policy maintains beyond the cached
    /// payloads (Figure 9's "peak memory" accounting). Defaults to zero for
    /// policies whose metadata is negligible.
    fn metadata_overhead_bytes(&self) -> u64 {
        0
    }
}

/// Blanket impl so `Box<dyn CachePolicy>` is itself a policy; lets drivers
/// hold heterogeneous policies uniformly.
impl<P: CachePolicy + ?Sized> CachePolicy for Box<P> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn capacity(&self) -> u64 {
        (**self).capacity()
    }
    fn used_bytes(&self) -> u64 {
        (**self).used_bytes()
    }
    fn contains(&self, id: ObjectId) -> bool {
        (**self).contains(id)
    }
    fn handle(&mut self, req: &Request) -> Outcome {
        (**self).handle(req)
    }
    fn hit_check(&mut self, req: &Request) -> Option<Outcome> {
        (**self).hit_check(req)
    }
    fn evictions(&self) -> u64 {
        (**self).evictions()
    }
    fn metadata_overhead_bytes(&self) -> u64 {
        (**self).metadata_overhead_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_is_hit() {
        assert!(Outcome::Hit.is_hit());
        assert!(!Outcome::MissAdmitted.is_hit());
        assert!(!Outcome::MissBypassed.is_hit());
    }
}
