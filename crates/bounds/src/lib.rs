//! Offline upper bounds on optimal caching (§2, §7.5 of the paper):
//!
//! - [`Belady`] — Bélády's MIN, exact OPT for equal-size objects;
//! - [`BeladySize`] — the size-aware Bélády variant "widely used by the
//!   community" as an OPT stand-in for variable sizes;
//! - [`InfiniteCap`] — compulsory-miss-only bound (infinite cache);
//! - [`PfooUpper`] / [`PfooLower`] — Practical Flow-based Offline Optimal
//!   (Berger et al., SIGMETRICS '18) upper and lower bounds.
//!
//! All implement [`lhr_sim::OfflineBound`]. The HRO *online* bound — the
//! paper's contribution — lives in the `lhr` core crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod belady;
pub mod exact;
pub mod future;
pub mod infinite;
pub mod observed;
pub mod pfoo;

pub use belady::{Belady, BeladySize};
pub use exact::ExactOpt;
pub use infinite::InfiniteCap;
pub use observed::ObservedBound;
pub use pfoo::{PfooLower, PfooUpper};
