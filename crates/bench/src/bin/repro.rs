//! Runs every table/figure reproduction in sequence and prints the full
//! report (pipe to a file to archive a run):
//!
//! ```text
//! cargo run -p lhr-bench --release --bin repro -- --scale small
//! ```
fn main() {
    let options = lhr_bench::harness::Options::from_args();
    let start = std::time::Instant::now();
    println!("{}", lhr_bench::experiments::run_all(&options));
    println!(
        "repro complete: scale {:?}, seed {}, {:.1}s wall",
        options.scale,
        options.seed,
        start.elapsed().as_secs_f64()
    );
    lhr_bench::harness::write_obs(&options);
}
