//! Reproduces Figure 13 (Appendix A.3): LHR vs Caffeine over time.
fn main() {
    let options = lhr_bench::harness::Options::from_args();
    let (fig13, _table4) = lhr_bench::experiments::prototype_vs_caffeine(&options);
    println!("{fig13}");
    lhr_bench::harness::write_obs(&options);
}
