//! Request-path tracing and SLO determinism, end-to-end: with
//! `trace_sample` set, the sampled trace set, the per-window exemplar
//! marks, and the synthesized SLO breach/recovery events are all pure
//! functions of the replayed trace — so the whole `--obs` export stays
//! byte-identical at threads 1, 2, and 8 (the determinism contract's
//! seventh clause, ARCHITECTURE.md).

use lhr_repro::obs::slo::SloObjective;
use lhr_repro::obs::{Obs, ObsConfig, ObsRecord, ObsWindow};
use lhr_repro::policies::Lru;
use lhr_repro::proto::{
    presets, EngineConfig, FleetConfig, FleetEngine, NodeFaultConfig, ShardedEngine,
};
use lhr_repro::sim::shard::RouteConfig;
use lhr_repro::trace::synth::{IrmConfig, SizeModel};
use lhr_repro::trace::Trace;

fn zipf_trace(seed: u64) -> Trace {
    IrmConfig::new(300, 20_000)
        .zipf_alpha(1.0)
        .size_model(SizeModel::BoundedPareto {
            alpha: 1.2,
            min: 1_000,
            max: 100_000,
        })
        .seed(seed)
        .generate()
}

fn traced_obs() -> Obs {
    Obs::new(ObsConfig {
        window: ObsWindow::Requests(2_000),
        deterministic: true,
        trace_sample: 64,
        slos: vec![
            SloObjective::Availability(99.9),
            SloObjective::P99Ms(10_000.0),
        ],
        ..ObsConfig::default()
    })
}

fn run_engine(trace: &Trace, threads: usize, preset: &str, capacity: u64) -> String {
    let server = presets::fault_preset(preset, 7, trace.duration().as_secs_f64())
        .expect("known fault preset");
    let config = EngineConfig {
        total_capacity: capacity,
        n_shards: 8,
        route: RouteConfig {
            threads,
            ..RouteConfig::default()
        },
        server,
    };
    let obs = traced_obs();
    let engine = ShardedEngine::new(config).with_obs(obs.clone());
    engine.replay(trace, |_shard, capacity, _obs| Lru::new(capacity));
    obs.to_jsonl()
}

fn run_fleet(trace: &Trace, threads: usize, preset: &str) -> String {
    let mut config = FleetConfig::new(2 << 20);
    config.node_faults =
        NodeFaultConfig::preset(preset, 7, config.n_nodes, trace.duration().as_secs_f64())
            .expect("known preset");
    config.route.threads = threads;
    let obs = traced_obs();
    let engine = FleetEngine::new(config).with_obs(obs.clone());
    engine.replay(trace, |_node, _shard, capacity, _obs| Lru::new(capacity));
    obs.to_jsonl()
}

/// Parses an export and returns (trace records, exemplar count, SLO events).
fn dissect(jsonl: &str) -> (Vec<lhr_repro::obs::TraceRecord>, usize, usize) {
    let mut traces = Vec::new();
    let mut slo_events = 0usize;
    for line in jsonl.lines() {
        match ObsRecord::parse_line(line).expect("every export line parses") {
            ObsRecord::Trace(t) => traces.push(t),
            ObsRecord::Event(e) => {
                if matches!(
                    e.kind,
                    lhr_repro::obs::EventKind::SloBreach | lhr_repro::obs::EventKind::SloRecover
                ) {
                    slo_events += 1;
                }
            }
            _ => {}
        }
    }
    let exemplars = traces.iter().filter(|t| t.exemplar).count();
    (traces, exemplars, slo_events)
}

#[test]
fn engine_traced_export_is_byte_identical_across_threads() {
    let trace = zipf_trace(11);
    let one = run_engine(&trace, 1, "flaky", 2 << 20);
    for threads in [2usize, 8] {
        let other = run_engine(&trace, threads, "flaky", 2 << 20);
        assert_eq!(one, other, "traced export differs at {threads} threads");
    }
    let (traces, exemplars, _) = dissect(&one);
    assert!(
        !traces.is_empty(),
        "1/64 sampling over 20k requests must sample something"
    );
    // Trace ids are global request indices, sorted and unique.
    let ids: Vec<u64> = traces.iter().map(|t| t.id).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(ids, sorted, "traces sorted by unique global id");
    assert!(exemplars > 0, "exemplar marks survive the merge");
    assert!(
        traces.iter().all(|t| !t.steps.is_empty()),
        "every sampled request records at least its edge lookup"
    );
    assert!(one.contains("\"trace_sample\":64"), "meta carries the rate");
}

#[test]
fn fleet_traced_export_is_byte_identical_across_threads_under_node_faults() {
    let trace = zipf_trace(13);
    for preset in ["none", "node-brownout"] {
        let one = run_fleet(&trace, 1, preset);
        for threads in [2usize, 8] {
            let other = run_fleet(&trace, threads, preset);
            assert_eq!(
                one, other,
                "{preset}: traced export differs at {threads} threads"
            );
        }
        let (traces, exemplars, _) = dissect(&one);
        assert!(!traces.is_empty(), "{preset}: sampling found nothing");
        assert!(exemplars > 0, "{preset}: no exemplar marks");
        // Every fleet trace starts with routing-level steps.
        assert!(
            traces.iter().all(|t| t
                .steps
                .iter()
                .any(|s| s.step == "edge_lookup" || s.step == "failover")),
            "{preset}: fleet traces carry routing steps"
        );
    }
}

/// The SLO engine sees the merged window series: under a fault preset
/// that errors requests, a tight availability objective synthesizes
/// breach events, identically at any thread count (covered above by the
/// byte-compare) and deterministically across repeated exports.
///
/// The cache is kept far below the working set so mid-outage misses must
/// reach the dead origin — with a fitting cache, stale-if-error rescues
/// nearly every request and the objective is (correctly) met.
#[test]
fn slo_events_are_deterministic_and_present_under_faults() {
    let trace = zipf_trace(17);
    let jsonl = run_engine(&trace, 4, "outage", 64 << 10);
    let (_, _, slo_events) = dissect(&jsonl);
    assert!(
        slo_events > 0,
        "an outage preset vs avail:99.9 must synthesize SLO events"
    );
    let again = run_engine(&trace, 4, "outage", 64 << 10);
    assert_eq!(jsonl, again, "repeated replay re-synthesizes identically");
    // Fault-free runs at the same objectives stay quiet.
    let calm = run_engine(&trace, 4, "none", 64 << 10);
    let (_, _, calm_events) = dissect(&calm);
    assert_eq!(calm_events, 0, "no SLO events without faults");
}
