//! A two-tier cache: a small memory (RAM) tier in front of a large
//! disk/SSD tier — the actual structure of an ATS node (§6.1: "a typical
//! ATS configuration consists of a disk/SSD cache and a memory cache";
//! the paper's prototype replaces the disk tier's policy and leaves the
//! memory cache unchanged, noting its small size has little impact on hit
//! probability).
//!
//! Any two policies compose: `TieredCache::new(ram_lru, disk_lhr)`.
//! Lookups hit the memory tier first; memory misses that hit disk are
//! promoted into memory (the usual page-cache behaviour). Admission into
//! disk follows the disk policy's own admission logic.

use lhr_sim::{CachePolicy, Outcome};
use lhr_trace::{ObjectId, Request};

/// Where a request was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Served from the memory tier.
    Memory,
    /// Served from the disk tier.
    Disk,
    /// Fetched from the origin.
    Origin,
}

/// The tiered cache.
pub struct TieredCache<M: CachePolicy, D: CachePolicy> {
    name: String,
    memory: M,
    disk: D,
    /// Per-tier serve counters (memory hits, disk hits, origin fetches).
    pub served: [u64; 3],
}

impl<M: CachePolicy, D: CachePolicy> TieredCache<M, D> {
    /// Composes a memory tier over a disk tier.
    pub fn new(memory: M, disk: D) -> Self {
        TieredCache {
            name: format!("{}+{}", memory.name(), disk.name()),
            memory,
            disk,
            served: [0; 3],
        }
    }

    /// Which tier would serve `id` right now.
    pub fn tier_of(&self, id: ObjectId) -> Tier {
        if self.memory.contains(id) {
            Tier::Memory
        } else if self.disk.contains(id) {
            Tier::Disk
        } else {
            Tier::Origin
        }
    }

    /// The wrapped disk-tier policy.
    pub fn disk(&self) -> &D {
        &self.disk
    }

    /// The wrapped memory-tier policy.
    pub fn memory(&self) -> &M {
        &self.memory
    }

    /// Per-tier serve shares in percent `[memory, disk, origin]`
    /// (all zeros before any request).
    pub fn served_pct(&self) -> [f64; 3] {
        let total: u64 = self.served.iter().sum();
        if total == 0 {
            return [0.0; 3];
        }
        self.served.map(|n| n as f64 / total as f64 * 100.0)
    }
}

impl<M: CachePolicy, D: CachePolicy> CachePolicy for TieredCache<M, D> {
    fn name(&self) -> &str {
        &self.name
    }

    /// Aggregate capacity (both tiers).
    fn capacity(&self) -> u64 {
        self.memory.capacity().saturating_add(self.disk.capacity())
    }

    fn used_bytes(&self) -> u64 {
        self.memory.used_bytes() + self.disk.used_bytes()
    }

    fn contains(&self, id: ObjectId) -> bool {
        self.memory.contains(id) || self.disk.contains(id)
    }

    fn handle(&mut self, req: &Request) -> Outcome {
        let tier = self.tier_of(req.id);
        match tier {
            Tier::Memory => {
                self.served[0] += 1;
                // Refresh both tiers' recency state.
                self.memory.handle(req);
                if self.disk.contains(req.id) {
                    self.disk.handle(req);
                }
                Outcome::Hit
            }
            Tier::Disk => {
                self.served[1] += 1;
                self.disk.handle(req);
                // Promote into memory (admission subject to the memory
                // policy's own logic).
                self.memory.handle(req);
                Outcome::Hit
            }
            Tier::Origin => {
                self.served[2] += 1;
                // Fetch from origin; both tiers see the request and decide
                // admission independently (ATS admits into disk and leaves
                // the memory cache's own policy to pick up hot objects).
                let disk_outcome = self.disk.handle(req);
                self.memory.handle(req);
                match disk_outcome {
                    Outcome::MissBypassed => Outcome::MissBypassed,
                    _ => Outcome::MissAdmitted,
                }
            }
        }
    }

    fn evictions(&self) -> u64 {
        self.memory.evictions() + self.disk.evictions()
    }

    fn metadata_overhead_bytes(&self) -> u64 {
        self.memory.metadata_overhead_bytes() + self.disk.metadata_overhead_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhr_policies::Lru;
    use lhr_trace::Time;

    fn req(t: u64, id: ObjectId, size: u64) -> Request {
        Request::new(Time::from_secs(t), id, size)
    }

    fn tiered(mem: u64, disk: u64) -> TieredCache<Lru, Lru> {
        TieredCache::new(Lru::new(mem), Lru::new(disk))
    }

    #[test]
    fn origin_then_disk_then_memory() {
        let mut c = tiered(200, 1_000);
        assert_eq!(c.tier_of(1), Tier::Origin);
        c.handle(&req(0, 1, 100)); // admitted into both tiers
        assert_eq!(c.tier_of(1), Tier::Memory);
        // Push object 1 out of the small memory tier with other objects.
        c.handle(&req(1, 2, 100));
        c.handle(&req(2, 3, 100));
        assert_eq!(c.tier_of(1), Tier::Disk, "fell back to disk, not origin");
        // A disk hit promotes back into memory.
        assert_eq!(c.handle(&req(3, 1, 100)), Outcome::Hit);
        assert_eq!(c.tier_of(1), Tier::Memory);
    }

    #[test]
    fn served_counters_track_tiers() {
        let mut c = tiered(200, 1_000);
        c.handle(&req(0, 1, 100)); // origin
        c.handle(&req(1, 1, 100)); // memory hit
        c.handle(&req(2, 2, 100)); // origin
        c.handle(&req(3, 3, 100)); // origin → memory now 3,2 (cap 200: 3,2)
        c.handle(&req(4, 1, 100)); // memory evicted 1 → disk hit
        assert_eq!(c.served, [1, 1, 3]);
    }

    #[test]
    fn served_pct_sums_to_hundred() {
        let mut c = tiered(200, 1_000);
        assert_eq!(c.served_pct(), [0.0; 3]);
        for i in 0..100u64 {
            c.handle(&req(i, i % 7, 100));
        }
        let pct = c.served_pct();
        assert!((pct.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        // The 7-object cycle outgrows the 200 B memory tier but fits disk.
        assert!(pct[1] > 0.0, "some disk hits expected: {pct:?}");
    }

    #[test]
    fn capacity_is_sum_and_respected() {
        let mut c = tiered(300, 700);
        assert_eq!(c.capacity(), 1_000);
        for i in 0..200u64 {
            c.handle(&req(i, i % 23, 90));
            assert!(c.memory.used_bytes() <= 300);
            assert!(c.disk.used_bytes() <= 700);
        }
    }

    #[test]
    fn disk_bigger_than_memory_raises_hit_ratio() {
        // A working set larger than memory but smaller than disk: the
        // tiered cache must beat memory alone.
        let mut tiered_cache = tiered(300, 3_000);
        let mut memory_only = Lru::new(300);
        let mut tiered_hits = 0;
        let mut memory_hits = 0;
        for i in 0..4_000u64 {
            let r = req(i, i % 20, 100);
            if tiered_cache.handle(&r).is_hit() {
                tiered_hits += 1;
            }
            if memory_only.handle(&r).is_hit() {
                memory_hits += 1;
            }
        }
        assert!(
            tiered_hits > 2 * memory_hits,
            "tiered {tiered_hits} vs memory-only {memory_hits}"
        );
    }

    #[test]
    fn works_with_lhr_as_disk_tier() {
        use lhr::cache::{LhrCache, LhrConfig};
        let mut c = TieredCache::new(
            Lru::new(10_000),
            LhrCache::new(
                100_000,
                LhrConfig {
                    min_window_requests: 64,
                    ..LhrConfig::default()
                },
            ),
        );
        for i in 0..5_000u64 {
            c.handle(&req(i, i % 70, 1_500));
            assert!(c.used_bytes() <= c.capacity());
        }
        assert!(c.served[0] + c.served[1] > 0, "no cache hits at all");
    }
}
