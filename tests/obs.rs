//! Observability integration tests: the determinism contract of the obs
//! layer end-to-end (fixed seed ⇒ byte-identical recordings), the
//! detection-gated retrain events on a shifting-α workload, and
//! byte-identical JSON round-trips for every exported record shape.

use lhr_repro::core::cache::{LhrCache, LhrConfig};
use lhr_repro::obs::{EventKind, Obs, ObsConfig, ObsRecord, ObsWindow};
use lhr_repro::policies::Lru;
use lhr_repro::proto::{presets, CdnServer};
use lhr_repro::sim::{CachePolicy, SimConfig, SimMetrics, Simulator};
use lhr_repro::trace::synth::{IrmConfig, SizeModel};
use lhr_repro::trace::{Request, Time, Trace};
use lhr_util::json::{FromJson, Json, ToJson};

fn zipf_trace(seed: u64) -> Trace {
    IrmConfig::new(400, 20_000)
        .zipf_alpha(1.0)
        .size_model(SizeModel::BoundedPareto {
            alpha: 1.2,
            min: 1_000,
            max: 100_000,
        })
        .seed(seed)
        .generate()
}

fn deterministic_obs() -> Obs {
    Obs::new(ObsConfig {
        window: ObsWindow::Requests(2_000),
        deterministic: true,
        ..ObsConfig::default()
    })
}

/// One instrumented simulator run, returning the full JSONL export.
fn record_sim(build: &dyn Fn(&Obs) -> Box<dyn CachePolicy>) -> String {
    let trace = zipf_trace(11);
    let obs = deterministic_obs();
    let mut policy = build(&obs);
    Simulator::new(SimConfig::default())
        .with_obs(obs.clone())
        .run(&mut policy, &trace);
    obs.to_jsonl()
}

#[test]
fn fixed_seed_deterministic_recordings_are_byte_identical() {
    let builders: Vec<(&str, Box<dyn Fn(&Obs) -> Box<dyn CachePolicy>>)> = vec![
        (
            "LRU",
            Box::new(|_: &Obs| -> Box<dyn CachePolicy> { Box::new(Lru::new(200_000)) }),
        ),
        (
            "LHR",
            Box::new(|obs: &Obs| -> Box<dyn CachePolicy> {
                Box::new(LhrCache::new(120_000, LhrConfig::default()).with_obs(obs.clone()))
            }),
        ),
    ];
    for (name, build) in &builders {
        let a = record_sim(build);
        let b = record_sim(build);
        assert!(!a.is_empty(), "{name}: recording must not be empty");
        assert!(a.contains("\"record\":\"window\""), "{name}: {a}");
        assert_eq!(a, b, "{name}: two fixed-seed runs must record identically");
    }
}

#[test]
fn server_deterministic_recording_is_byte_identical() {
    let trace = zipf_trace(5);
    let run = || {
        let obs = deterministic_obs();
        let mut config =
            presets::fault_preset("outage", 7, trace.duration().as_secs_f64()).unwrap();
        config.deterministic = true;
        let mut server = CdnServer::new(Box::new(Lru::new(200_000)), config).with_obs(obs.clone());
        let report = server.replay(&trace);
        (obs.to_jsonl(), report.stable_json())
    };
    let (jsonl_a, report_a) = run();
    let (jsonl_b, report_b) = run();
    assert_eq!(jsonl_a, jsonl_b);
    assert_eq!(report_a, report_b);
    assert!(jsonl_a.contains("\"kind\":\"OutageStart\""), "{jsonl_a}");
}

/// Two IRM halves over the same object population with very different Zipf
/// exponents, the second shifted past the end of the first. Fixed sizes keep
/// the per-object size invariant across the seam.
fn shifting_alpha_trace() -> Trace {
    let half = |alpha: f64, seed: u64| {
        IrmConfig::new(400, 25_000)
            .zipf_alpha(alpha)
            .size_model(SizeModel::Fixed { bytes: 2_000 })
            .seed(seed)
            .generate()
    };
    let a = half(0.5, 3);
    let b = half(1.3, 4);
    let offset = a.duration().as_micros() + 1_000_000;
    let mut out = Trace::new("alpha-shift");
    for r in &a {
        out.push(Request::new(r.ts, r.id, r.size));
    }
    for r in &b {
        out.push(Request::new(
            Time::from_micros(r.ts.as_micros() + offset),
            r.id,
            r.size,
        ));
    }
    out.validate().expect("seam must preserve trace invariants");
    out
}

#[test]
fn shifting_alpha_triggers_a_detection_gated_retrain() {
    let trace = shifting_alpha_trace();
    let obs = deterministic_obs();
    let mut cache = LhrCache::new(100_000, LhrConfig::default()).with_obs(obs.clone());
    Simulator::new(SimConfig::default())
        .with_obs(obs.clone())
        .run(&mut cache, &trace);
    let events = obs.events();
    // A Detect event past the first window must have fired with
    // retrain=true (the α shift crosses ε), and the retrain it gated must
    // have actually happened on the same window.
    let gated: Vec<u64> = events
        .iter()
        .filter(|e| e.kind == EventKind::Detect)
        .filter(|e| matches!(e.get("retrain"), Some(Json::Bool(true))))
        .filter_map(|e| e.get("window").and_then(|v| v.as_f64()))
        .map(|w| w as u64)
        .filter(|&w| w > 0)
        .collect();
    assert!(
        !gated.is_empty(),
        "no detection-gated retrain on an α 0.5→1.3 shift; events: {events:?}"
    );
    for window in &gated {
        assert!(
            events.iter().any(|e| e.kind == EventKind::Retrain
                && e.get("window").and_then(|v| v.as_f64()) == Some(*window as f64)),
            "Detect(window={window}, retrain=true) without a matching Retrain"
        );
    }
}

#[test]
fn every_obs_jsonl_line_round_trips_byte_identically() {
    // One learning-loop recording and one faulted-server recording between
    // them exercise every record shape: meta, window, event, counter,
    // gauge, hist, span.
    let sim_jsonl = record_sim(&|obs: &Obs| -> Box<dyn CachePolicy> {
        Box::new(LhrCache::new(120_000, LhrConfig::default()).with_obs(obs.clone()))
    });
    let trace = zipf_trace(5);
    let server_jsonl = {
        let obs = deterministic_obs();
        let config = presets::fault_preset("outage", 7, trace.duration().as_secs_f64()).unwrap();
        CdnServer::new(Box::new(Lru::new(200_000)), config)
            .with_obs(obs.clone())
            .replay(&trace);
        obs.to_jsonl()
    };
    let mut tags_seen = std::collections::BTreeSet::new();
    for line in sim_jsonl.lines().chain(server_jsonl.lines()) {
        let record = ObsRecord::parse_line(line).expect(line);
        tags_seen.insert(record.tag());
        assert_eq!(record.to_line(), line, "round-trip must be byte-identical");
    }
    for tag in [
        "meta", "window", "event", "counter", "gauge", "hist", "span",
    ] {
        assert!(tags_seen.contains(tag), "no `{tag}` record exercised");
    }
}

fn stream_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("lhr-obs-it-{tag}-{}.jsonl", std::process::id()))
}

/// The streaming sink end-to-end through the serving path: windows are
/// written to the file as they close mid-replay, and the finished file is
/// byte-for-byte the buffered export.
#[test]
fn streamed_server_recording_matches_buffered_bytes() {
    let trace = zipf_trace(5);
    let obs = deterministic_obs();
    let path = stream_path("server");
    obs.stream_to(&path).expect("open stream");
    let mut config = presets::fault_preset("outage", 7, trace.duration().as_secs_f64()).unwrap();
    config.deterministic = true;
    CdnServer::new(Box::new(Lru::new(200_000)), config)
        .with_obs(obs.clone())
        .replay(&trace);
    obs.close_stream().expect("close stream");
    let streamed = std::fs::read_to_string(&path).expect("read streamed file");
    std::fs::remove_file(&path).ok();
    assert_eq!(streamed, obs.to_jsonl());
    // 20k requests at 2k-request windows: the incremental path really ran.
    let windows = streamed
        .lines()
        .filter(|l| l.contains("\"record\":\"window\""))
        .count();
    assert!(windows >= 9, "expected ≥9 streamed windows, got {windows}");
    // The lazily-written meta line leads and already carries run metadata.
    let first = streamed.lines().next().expect("non-empty");
    assert!(first.contains("\"record\":\"meta\""), "{first}");
    assert!(first.contains("\"policy\":\"LRU\""), "{first}");
}

/// Same contract through the sharded engine: the shard-merged windows
/// stream in `absorb_shards`, and a streamed multi-threaded run produces
/// the same bytes as a buffered single-threaded one.
#[test]
fn streamed_engine_recording_matches_buffered_across_threads() {
    use lhr_repro::proto::{EngineConfig, ShardedEngine};
    use lhr_repro::sim::shard::RouteConfig;
    let trace = zipf_trace(5);
    let run = |threads: usize, stream: Option<&std::path::Path>| {
        let obs = deterministic_obs();
        if let Some(path) = stream {
            obs.stream_to(path).expect("open stream");
        }
        let config = EngineConfig {
            total_capacity: 2 << 20,
            n_shards: 8,
            route: RouteConfig {
                threads,
                ..RouteConfig::default()
            },
            ..EngineConfig::new(2 << 20)
        };
        ShardedEngine::new(config)
            .with_obs(obs.clone())
            .replay(&trace, |_shard, capacity, _obs| Lru::new(capacity));
        obs.close_stream().expect("close stream");
        obs.to_jsonl()
    };
    let path = stream_path("engine");
    let buffered_t1 = run(1, None);
    let jsonl_t2 = run(2, Some(&path));
    let streamed_t2 = std::fs::read_to_string(&path).expect("read streamed file");
    std::fs::remove_file(&path).ok();
    assert_eq!(streamed_t2, jsonl_t2, "streamed file == buffered export");
    assert_eq!(streamed_t2, buffered_t1, "thread count leaks into stream");
}

#[test]
fn sim_metrics_json_round_trips_byte_identically() {
    let trace = zipf_trace(2);
    let mut policy = Lru::new(150_000);
    let result = Simulator::new(SimConfig::default()).run(&mut policy, &trace);
    let text = result.metrics.to_json().to_string();
    let back = SimMetrics::from_json(&Json::parse(&text).unwrap()).unwrap();
    assert_eq!(back, result.metrics);
    assert_eq!(back.to_json().to_string(), text);
}

#[test]
fn server_report_stable_json_round_trips_byte_identically() {
    use lhr_repro::proto::ServerReport;
    let trace = zipf_trace(9);
    let mut config = presets::fault_preset("flaky", 3, trace.duration().as_secs_f64()).unwrap();
    config.deterministic = true;
    let report = CdnServer::new(Box::new(Lru::new(200_000)), config).replay(&trace);
    let text = report.stable_json();
    let back = ServerReport::from_json(&Json::parse(&text).unwrap()).unwrap();
    assert_eq!(back.to_json().to_string(), text);
}
