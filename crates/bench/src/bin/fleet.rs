//! Edge-fleet scaling benchmark — replays the same trace through
//! [`lhr_proto::FleetEngine`] at several node counts and reports
//! requests/second and origin offload per count:
//!
//! ```text
//! cargo run --release -p lhr-bench --bin fleet -- --scale medium
//! ```
//!
//! Set `LHR_BENCH_JSON=<path>` to append machine-readable results plus a
//! `fleet_scaling` summary line (the format committed as
//! `BENCH_fleet.json`). Total edge capacity is held constant while the
//! node count grows, so the offload column shows the consistent-hash
//! fragmentation cost: the same bytes split into more, smaller caches.

use lhr_policies::Lru;
use lhr_proto::{FleetConfig, FleetEngine};
use lhr_sim::shard::RouteConfig;
use lhr_trace::synth::{IrmConfig, ProductionScale, SizeModel};
use lhr_util::bench::{black_box, Bench};
use lhr_util::json::{Json, ToJson};
use std::io::Write;

const NODE_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let options = lhr_bench::harness::Options::from_args();
    let requests = match options.scale {
        ProductionScale::Tiny => 50_000,
        ProductionScale::Small => 200_000,
        ProductionScale::Medium => 800_000,
        ProductionScale::Full => 3_000_000,
    };
    let trace = IrmConfig::new(10_000, requests)
        .zipf_alpha(0.9)
        .size_model(SizeModel::BoundedPareto {
            alpha: 1.2,
            min: 10_000,
            max: 10_000_000,
        })
        .seed(options.seed)
        .generate();
    let capacity = 25_000_000u64;
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    let config = |n_nodes: usize| FleetConfig {
        n_nodes,
        route: RouteConfig {
            threads: options.threads.min(8),
            ..RouteConfig::default()
        },
        ..FleetConfig::new(capacity)
    };

    let mut group = Bench::new("fleet_replay");
    group.throughput_elems(requests as u64);
    for n_nodes in NODE_COUNTS {
        group.bench(format!("{requests}_n{n_nodes}"), || {
            let engine = FleetEngine::new(config(n_nodes));
            engine
                .replay(black_box(&trace), |_, _, cap, _| Lru::new(cap))
                .errors_served
        });
    }
    let results = group.finish();

    // Offload is deterministic per node count; one extra replay reads it.
    let offload: Vec<f64> = NODE_COUNTS
        .iter()
        .map(|&n_nodes| {
            let engine = FleetEngine::new(config(n_nodes));
            engine
                .replay(&trace, |_, _, cap, _| Lru::new(cap))
                .origin_offload_pct
        })
        .collect();

    let rps: Vec<f64> = results
        .iter()
        .map(|r| requests as f64 / (r.mean_ns / 1e9))
        .collect();
    println!("fleet scaling on {host_cpus} host cpu(s):");
    for ((n_nodes, rps), offload) in NODE_COUNTS.iter().zip(&rps).zip(&offload) {
        println!("  n{n_nodes}: {rps:.0} req/s, origin offload {offload:.2}%");
    }
    if let Ok(path) = std::env::var("LHR_BENCH_JSON") {
        let mut fields = vec![
            ("group".to_string(), "fleet_scaling".to_json()),
            ("requests".to_string(), (requests as u64).to_json()),
            ("host_cpus".to_string(), (host_cpus as u64).to_json()),
        ];
        for (n_nodes, ((result, rps), offload)) in NODE_COUNTS
            .iter()
            .zip(results.iter().zip(&rps).zip(&offload))
        {
            fields.push((format!("n{n_nodes}_mean_ns"), result.mean_ns.to_json()));
            fields.push((format!("n{n_nodes}_requests_per_sec"), rps.to_json()));
            fields.push((format!("n{n_nodes}_origin_offload_pct"), offload.to_json()));
        }
        let record = Json::Object(fields);
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| writeln!(f, "{record}"));
        if let Err(e) = appended {
            eprintln!("warning: could not write {path}: {e}");
        }
    }
    lhr_bench::harness::write_obs(&options);
}
