#!/usr/bin/env bash
# Tier-1 verification gate. Runs entirely offline — the workspace has no
# external dependencies, so an empty cargo registry is fine.
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release (warnings are errors)"
RUSTFLAGS="${RUSTFLAGS:-} -D warnings" cargo build --release --offline --workspace

echo "==> cargo test"
cargo test -q --offline --workspace

echo "==> cargo test --doc"
cargo test -q --doc --offline --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> gbm bench smoke (tiny scale)"
LHR_BENCH_WARMUP_MS=20 LHR_BENCH_MEASURE_MS=100 \
  cargo run --release --offline -p lhr-bench --bin gbm -- --scale tiny

echo "verify: OK"
