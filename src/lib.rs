//! Facade crate for the LHR workspace.
//!
//! Re-exports every member crate under a stable name so that examples and
//! integration tests (and downstream users who want a single dependency) can
//! write `use lhr_repro::trace::...` etc.
//!
//! The actual implementations live in `crates/`:
//! - [`trace`] — request/trace model, I/O, and synthetic workload generators
//! - [`gbm`] — gradient-boosted regression trees (the learning model)
//! - [`nn`] — a small multi-layer perceptron (the DNN-baseline substrate)
//! - [`sim`] — trace-driven cache simulator engine and metrics
//! - [`policies`] — state-of-the-art baseline caching policies
//! - [`bounds`] — offline upper bounds on optimal caching
//! - [`core`] — HRO online bound and the LHR cache (the paper's contribution)
//! - [`proto`] — simulated CDN server prototypes (ATS-like / Caffeine-like)
//! - [`analysis`] — analytic models: Che approximation, miss-ratio curves, working sets
//! - [`obs`] — deterministic observability: windowed series, event bus, profiling spans

pub use lhr as core;
pub use lhr_analysis as analysis;
pub use lhr_bounds as bounds;
pub use lhr_gbm as gbm;
pub use lhr_nn as nn;
pub use lhr_obs as obs;
pub use lhr_policies as policies;
pub use lhr_proto as proto;
pub use lhr_sim as sim;
pub use lhr_trace as trace;
