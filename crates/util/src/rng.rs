//! Deterministic, seedable pseudo-random number generation.
//!
//! This module replaces the `rand` crate for the whole workspace. The design
//! constraints come from the paper reproduction itself (see DESIGN.md):
//!
//! - **Bit-reproducible.** Every figure/table run is keyed by a `u64` seed;
//!   the same seed must yield the identical request stream on every platform
//!   and every build. All generators here are pure integer arithmetic with
//!   fixed constants — no platform entropy, no `getrandom`.
//! - **Cheap.** Policies keep a generator per instance for random-sampling
//!   eviction; [`Xoshiro256pp`] is four `u64`s of state and a handful of
//!   xor/rotate ops per draw.
//!
//! Three engines are provided:
//!
//! - [`SplitMix64`] — 64-bit state; used to expand one `u64` seed into the
//!   larger states of the other engines (and fine as an RNG on its own).
//! - [`Pcg64`] — PCG XSL-RR 128/64; the workspace's default "statistical
//!   quality first" generator ([`rngs::StdRng`]).
//! - [`Xoshiro256pp`] — xoshiro256++; the "speed first" generator
//!   ([`rngs::SmallRng`]) policies embed per instance.
//!
//! # Example
//!
//! ```
//! use lhr_util::rng::{Rng, SeedableRng, rngs::SmallRng};
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! let u: f64 = rng.gen();          // uniform in [0, 1)
//! assert!((0.0..1.0).contains(&u));
//! let d = rng.gen_range(1..7);     // uniform integer in [1, 7)
//! assert!((1..7).contains(&d));
//! let mut deck: Vec<u32> = (0..52).collect();
//! rng.shuffle(&mut deck);          // Fisher–Yates, in place
//! assert_eq!(deck.len(), 52);
//! ```

use std::ops::Range;

/// Construction of a generator from a 64-bit seed.
///
/// Seeding discipline: a single `u64` is expanded through [`SplitMix64`]
/// into however many state words the engine needs. This matches the scheme
/// recommended by the xoshiro authors and guarantees that nearby seeds
/// (0, 1, 2, …) still produce decorrelated streams.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire state is derived from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A source of uniformly distributed `u64`s plus derived sampling helpers.
///
/// Implemented by all engines in this module and by `&mut R` for any
/// `R: Rng`, so `fn f<R: Rng + ?Sized>(rng: &mut R)` call chains compose.
pub trait Rng {
    /// The core primitive: the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of type `T` from its canonical distribution:
    /// full-range for integers, uniform `[0, 1)` for floats, fair coin for
    /// `bool`.
    ///
    /// ```
    /// use lhr_util::rng::{Rng, SeedableRng, rngs::StdRng};
    /// let mut rng = StdRng::seed_from_u64(1);
    /// let x: f64 = rng.gen();
    /// assert!((0.0..1.0).contains(&x));
    /// ```
    #[inline]
    fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from the half-open range `lo..hi`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T: UniformRange>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Uniform in-place Fisher–Yates shuffle.
    #[inline]
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = usize::sample_range(self, 0..i + 1);
            slice.swap(i, j);
        }
    }

    /// Standard normal draw (mean 0, variance 1) via Box–Muller.
    #[inline]
    fn gen_gaussian(&mut self) -> f64 {
        // Reject u1 == 0 so ln() stays finite.
        let mut u1 = f64::sample(self);
        while u1 <= f64::MIN_POSITIVE {
            u1 = f64::sample(self);
        }
        let u2 = f64::sample(self);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Pareto draw with scale `x_min > 0` and shape `alpha > 0` (support
    /// `[x_min, ∞)`), by inversion.
    #[inline]
    fn gen_pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        debug_assert!(x_min > 0.0 && alpha > 0.0);
        let u = 1.0 - f64::sample(self); // (0, 1]
        x_min * u.powf(-1.0 / alpha)
    }

    /// Exponential draw with the given `rate` (mean `1/rate`), by inversion.
    #[inline]
    fn gen_exp(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0);
        let u = 1.0 - f64::sample(self); // (0, 1] keeps ln() finite
        -u.ln() / rate
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types drawable via [`Rng::gen`].
pub trait Sample {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for u8 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Sample for usize {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Sample for i64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Sample for i32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as i32
    }
}

impl Sample for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types usable with [`Rng::gen_range`].
pub trait UniformRange: Sized {
    /// Uniform draw from `lo..hi`; panics if the range is empty.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Maps a uniform `u64` onto `[0, span)` by 128-bit widening multiply
/// (Lemire's method, without the rejection step: the residual bias is
/// ≤ `span / 2^64`, far below anything observable here).
#[inline]
fn bounded(x: u64, span: u64) -> u64 {
    ((x as u128 * span as u128) >> 64) as u64
}

macro_rules! uniform_int_range {
    ($($t:ty),+) => {$(
        impl UniformRange for $t {
            #[inline]
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = range.end.wrapping_sub(range.start) as u64;
                range.start.wrapping_add(bounded(rng.next_u64(), span) as $t)
            }
        }
    )+};
}

uniform_int_range!(u8, u16, u32, usize, i32, i64);

impl UniformRange for u64 {
    #[inline]
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let span = range.end - range.start;
        range.start + bounded(rng.next_u64(), span)
    }
}

impl UniformRange for f64 {
    #[inline]
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let u = f64::sample(rng);
        range.start + (range.end - range.start) * u
    }
}

impl UniformRange for f32 {
    #[inline]
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let u = f32::sample(rng);
        range.start + (range.end - range.start) * u
    }
}

/// SplitMix64 (Steele, Lea & Flood 2014): one additive `u64` of state with a
/// strong avalanche output mix. Used to seed the larger engines; also a
/// perfectly serviceable generator by itself.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Builds the generator directly from its state word.
    #[inline]
    pub fn new(state: u64) -> Self {
        SplitMix64 { state }
    }
}

impl SeedableRng for SplitMix64 {
    #[inline]
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64::new(seed)
    }
}

impl Rng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// PCG XSL-RR 128/64 (O'Neill 2014): a 128-bit LCG with an
/// xorshift-then-rotate output permutation. 64 bits out per step, period
/// 2^128, excellent statistical quality — the workspace default
/// ([`rngs::StdRng`]).
#[derive(Debug, Clone)]
pub struct Pcg64 {
    state: u128,
}

/// The PCG 128-bit LCG multiplier.
const PCG_MUL: u128 = 0x2360_ED05_1FC6_5DA4_4385_DF64_9FCC_F645;
/// Default stream increment (must be odd).
const PCG_INC: u128 = 0x5851_F42D_4C95_7F2D_1405_7B7E_F767_814F;

impl Pcg64 {
    #[inline]
    fn step(&mut self) {
        self.state = self.state.wrapping_mul(PCG_MUL).wrapping_add(PCG_INC);
    }
}

impl SeedableRng for Pcg64 {
    fn seed_from_u64(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        let hi = mix.next_u64() as u128;
        let lo = mix.next_u64() as u128;
        let mut rng = Pcg64 {
            state: (hi << 64) | lo,
        };
        // One warm-up step so the first output already mixes the seed
        // through the LCG (matches reference pcg64 initialization shape).
        rng.step();
        rng
    }
}

impl Rng for Pcg64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step();
        let xored = (self.state >> 64) as u64 ^ self.state as u64;
        let rot = (self.state >> 122) as u32;
        xored.rotate_right(rot)
    }
}

/// xoshiro256++ (Blackman & Vigna 2019): four `u64`s of state, a few
/// xor/shift/rotate ops per draw, period 2^256 − 1. The "speed first"
/// engine ([`rngs::SmallRng`]) that policies embed one-per-instance.
#[derive(Debug, Clone)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl SeedableRng for Xoshiro256pp {
    fn seed_from_u64(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        // SplitMix64 never yields four zeros, so the all-zero (degenerate)
        // state is unreachable.
        Xoshiro256pp {
            s: [
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
            ],
        }
    }
}

impl Rng for Xoshiro256pp {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Drop-in engine aliases mirroring `rand::rngs` so call sites read the
/// same: `StdRng` for trace generation and experiments (quality first),
/// `SmallRng` for per-policy-instance sampling (speed first).
pub mod rngs {
    /// Default generator: [`super::Pcg64`].
    pub type StdRng = super::Pcg64;
    /// Small/fast generator: [`super::Xoshiro256pp`].
    pub type SmallRng = super::Xoshiro256pp;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vector() {
        // Reference values for seed 1234567 from the public-domain
        // splitmix64.c (Vigna).
        let mut rng = SplitMix64::seed_from_u64(1234567);
        let got: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                6457827717110365317,
                3203168211198807973,
                9817491932198370423
            ]
        );
    }

    #[test]
    fn xoshiro_reference_smoke() {
        // First outputs for the state {1, 2, 3, 4} from xoshiro256plusplus.c.
        let mut rng = Xoshiro256pp { s: [1, 2, 3, 4] };
        assert_eq!(rng.next_u64(), 41943041);
        assert_eq!(rng.next_u64(), 58720359);
    }

    #[test]
    fn engines_are_deterministic_per_seed() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let mut a = Pcg64::seed_from_u64(seed);
            let mut b = Pcg64::seed_from_u64(seed);
            for _ in 0..100 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
            let mut a = Xoshiro256pp::seed_from_u64(seed);
            let mut b = Xoshiro256pp::seed_from_u64(seed);
            for _ in 0..100 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }
    }

    #[test]
    fn nearby_seeds_decorrelate() {
        let mut a = Xoshiro256pp::seed_from_u64(0);
        let mut b = Xoshiro256pp::seed_from_u64(1);
        let same = (0..1000).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_in_range_and_cover() {
        let mut rng = Pcg64::seed_from_u64(9);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            lo |= u < 0.1;
            hi |= u > 0.9;
        }
        assert!(lo && hi, "10k draws never reached the tails");
    }

    #[test]
    fn gen_range_is_uniform_ish() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn gen_range_respects_negative_and_float_bounds() {
        let mut rng = Pcg64::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let f = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
        }
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut rng = Pcg64::seed_from_u64(0);
        rng.gen_range(5..5u64);
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = Pcg64::seed_from_u64(11);
        let heads = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&heads), "{heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left 100 elements in order");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Pcg64::seed_from_u64(21);
        let n = 100_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.gen_gaussian()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn pareto_support_and_median() {
        let mut rng = Pcg64::seed_from_u64(31);
        let mut draws: Vec<f64> = (0..50_000).map(|_| rng.gen_pareto(2.0, 1.5)).collect();
        assert!(draws.iter().all(|&x| x >= 2.0));
        draws.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        // Median of Pareto(x_min, α) is x_min * 2^(1/α).
        let expected = 2.0 * 2f64.powf(1.0 / 1.5);
        let got = draws[draws.len() / 2];
        assert!(
            (got - expected).abs() / expected < 0.05,
            "median {got} vs {expected}"
        );
    }

    #[test]
    fn exp_mean() {
        let mut rng = Pcg64::seed_from_u64(41);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.gen_exp(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn works_through_mut_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            let mut r = rng;
            // Call through `&mut (&mut R)` to exercise `impl Rng for &mut R`.
            Rng::next_u64(&mut r)
        }
        let mut rng = Pcg64::seed_from_u64(2);
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        assert_ne!(a, b);
    }
}
