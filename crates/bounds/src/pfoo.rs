//! PFOO — Practical Flow-based Offline Optimal (Berger, Beckmann &
//! Harchol-Balter, SIGMETRICS '18).
//!
//! PFOO frames variable-size offline caching as interval scheduling: caching
//! a reuse interval `[start, end)` of an object of size `s` costs
//! `s × (end − start)` byte-slots of cache *resource* and earns one hit.
//!
//! - **PFOO-U** (upper bound) relaxes per-time feasibility to a single
//!   aggregate budget `capacity × trace length` and greedily takes the
//!   cheapest intervals first — the optimal solution of the relaxed
//!   (fractional-knapsack-like) problem, rounded up by at most one interval.
//! - **PFOO-L** (lower bound) keeps per-time feasibility: it admits
//!   intervals in the same cheap-first order but only when every slot of
//!   the interval has headroom, producing a feasible (hence achievable)
//!   schedule.

use crate::future::reuse_intervals;
use lhr_sim::bound::{base_metrics, OfflineBound};
use lhr_sim::SimMetrics;
use lhr_trace::Trace;

/// The PFOO-U upper bound.
#[derive(Debug, Clone, Default)]
pub struct PfooUpper;

/// The PFOO-L lower bound (a feasible offline schedule).
#[derive(Debug, Clone, Default)]
pub struct PfooLower;

/// Intervals sorted by resource cost, cheapest first.
fn sorted_intervals(trace: &Trace) -> Vec<(u64, u64, u64, u128)> {
    let mut intervals: Vec<(u64, u64, u64, u128)> = reuse_intervals(trace)
        .into_iter()
        .map(|(start, end, size)| (start, end, size, size as u128 * (end - start) as u128))
        .collect();
    intervals.sort_unstable_by_key(|&(start, end, _, cost)| (cost, start, end));
    intervals
}

impl OfflineBound for PfooUpper {
    fn name(&self) -> &str {
        "PFOO-U"
    }

    fn evaluate(&self, trace: &Trace, capacity: u64) -> SimMetrics {
        let mut metrics = base_metrics(trace);
        if trace.is_empty() {
            return metrics;
        }
        let budget = capacity as u128 * trace.len() as u128;
        let mut spent = 0u128;
        for (_, end, size, cost) in sorted_intervals(trace) {
            if size > capacity {
                continue;
            }
            if spent + cost > budget {
                // Fractional relaxation: the marginal interval still counts
                // as a (partial ⇒ rounded-up) hit, then we stop.
                metrics.hits += 1;
                metrics.bytes_hit += trace.requests[end as usize].size as u128;
                break;
            }
            spent += cost;
            metrics.hits += 1;
            metrics.bytes_hit += trace.requests[end as usize].size as u128;
        }
        metrics.hits = metrics.hits.min(metrics.requests);
        metrics.misses_admitted = metrics.requests - metrics.hits;
        metrics
    }
}

/// Occupancy bucketing for PFOO-L: one bucket per `granularity` request
/// slots keeps the per-interval feasibility check cheap on long traces.
fn bucket_granularity(n_requests: usize) -> u64 {
    ((n_requests as u64) / 8_192).max(1)
}

impl OfflineBound for PfooLower {
    fn name(&self) -> &str {
        "PFOO-L"
    }

    fn evaluate(&self, trace: &Trace, capacity: u64) -> SimMetrics {
        let mut metrics = base_metrics(trace);
        if trace.is_empty() {
            return metrics;
        }
        let gran = bucket_granularity(trace.len());
        let n_buckets = (trace.len() as u64).div_ceil(gran) as usize;
        let mut occupancy = vec![0u64; n_buckets];
        for (start, end, size, _) in sorted_intervals(trace) {
            if size > capacity {
                continue;
            }
            let b0 = (start / gran) as usize;
            let b1 = ((end - 1) / gran) as usize;
            if occupancy[b0..=b1].iter().all(|&o| o + size <= capacity) {
                for o in &mut occupancy[b0..=b1] {
                    *o += size;
                }
                metrics.hits += 1;
                metrics.bytes_hit += trace.requests[end as usize].size as u128;
            }
        }
        metrics.misses_admitted = metrics.requests - metrics.hits;
        metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::belady::BeladySize;
    use lhr_trace::synth::{IrmConfig, SizeModel};
    use lhr_trace::{Request, Time};

    fn small_trace() -> Trace {
        // a b a b c c, unit sizes.
        let ids = [1u64, 2, 1, 2, 3, 3];
        Trace::from_requests(
            "t",
            ids.iter()
                .enumerate()
                .map(|(i, &id)| Request::new(Time::from_secs(i as u64), id, 1))
                .collect(),
        )
    }

    #[test]
    fn upper_bound_dominates_lower_bound() {
        let trace = IrmConfig::new(200, 5_000)
            .zipf_alpha(0.9)
            .size_model(SizeModel::BoundedPareto {
                alpha: 1.5,
                min: 10,
                max: 1_000,
            })
            .seed(1)
            .generate();
        for capacity in [1_000u64, 5_000, 20_000] {
            let u = PfooUpper.evaluate(&trace, capacity).hits;
            let l = PfooLower.evaluate(&trace, capacity).hits;
            assert!(u >= l, "cap {capacity}: PFOO-U {u} < PFOO-L {l}");
        }
    }

    #[test]
    fn upper_bound_dominates_belady_size() {
        let trace = IrmConfig::new(100, 3_000)
            .zipf_alpha(1.0)
            .size_model(SizeModel::BoundedPareto {
                alpha: 1.2,
                min: 10,
                max: 500,
            })
            .seed(2)
            .generate();
        for capacity in [500u64, 2_000] {
            let u = PfooUpper.evaluate(&trace, capacity).hits;
            let b = BeladySize.evaluate(&trace, capacity).hits;
            assert!(u >= b, "cap {capacity}: PFOO-U {u} < Belady-Size {b}");
        }
    }

    #[test]
    fn tiny_example_counts_cheap_intervals() {
        // Capacity 1, unit sizes: intervals (0,2,1) cost 2, (1,3,1) cost 2,
        // (4,5,1) cost 1. Budget = 6 byte-slots → all three fit ⇒ 3 hits
        // (OPT itself gets only 2: a and b overlap).
        let m = PfooUpper.evaluate(&small_trace(), 1);
        assert_eq!(m.hits, 3);
    }

    #[test]
    fn lower_bound_is_feasible_on_tiny_example() {
        // Capacity 1: intervals (4,5) cost 1 admitted first; (0,2) and (1,3)
        // overlap so only one fits ⇒ 2 hits, matching true OPT.
        let m = PfooLower.evaluate(&small_trace(), 1);
        assert_eq!(m.hits, 2);
    }

    #[test]
    fn oversized_intervals_are_skipped() {
        let t = Trace::from_requests(
            "t",
            vec![
                Request::new(Time::from_secs(0), 1, 100),
                Request::new(Time::from_secs(1), 1, 100),
            ],
        );
        assert_eq!(PfooUpper.evaluate(&t, 50).hits, 0);
        assert_eq!(PfooLower.evaluate(&t, 50).hits, 0);
    }

    #[test]
    fn infinite_budget_hits_everything_rerequested() {
        let t = small_trace();
        let m = PfooUpper.evaluate(&t, 1_000_000);
        assert_eq!(m.hits, 3); // 3 reuse intervals
        let l = PfooLower.evaluate(&t, 1_000_000);
        assert_eq!(l.hits, 3);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new("e");
        assert_eq!(PfooUpper.evaluate(&t, 10).hits, 0);
        assert_eq!(PfooLower.evaluate(&t, 10).hits, 0);
    }
}
