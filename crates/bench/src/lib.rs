//! Experiment harness for the LHR reproduction: one function per paper
//! table/figure (in [`experiments`]), shared infrastructure in
//! [`harness`], and thin binaries in `src/bin/` that print each
//! experiment's output.
//!
//! Run everything with:
//!
//! ```text
//! cargo run -p lhr-bench --release --bin repro -- --scale small
//! ```

#![forbid(unsafe_code)]

pub mod experiments;
pub mod harness;
