//! Observability for the offline-bound experiment path: wraps any
//! [`OfflineBound`] so each evaluation records a profiling span, result
//! counters, and a gauge into an [`Obs`] recorder — the same `--obs`
//! export format the serving paths produce, so `obs summarize` renders a
//! bound sweep exactly like a replay.
//!
//! Bounds classify the whole trace at once (no per-request loop to hook),
//! so the instrumentation is evaluation-level: one
//! `bound.evaluate/<name>` span per call plus `bound.<name>.*` counters.
//! In deterministic mode the spans carry zeroed durations and the export
//! is byte-identical across runs.

use lhr_obs::Obs;
use lhr_sim::{OfflineBound, SimMetrics};
use lhr_trace::Trace;

/// An [`OfflineBound`] that reports each evaluation to an [`Obs`] recorder.
pub struct ObservedBound<B> {
    inner: B,
    obs: Obs,
}

impl<B: OfflineBound> ObservedBound<B> {
    /// Wraps `inner` so evaluations record into `obs`.
    pub fn new(inner: B, obs: Obs) -> Self {
        ObservedBound { inner, obs }
    }

    /// The wrapped bound.
    pub fn inner(&self) -> &B {
        &self.inner
    }
}

impl<B: OfflineBound> OfflineBound for ObservedBound<B> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn evaluate(&self, trace: &Trace, capacity: u64) -> SimMetrics {
        let name = self.inner.name().to_string();
        let metrics = {
            let _span = self.obs.span(&format!("bound.evaluate/{name}"));
            self.inner.evaluate(trace, capacity)
        };
        self.obs
            .counter_add(&format!("bound.{name}.requests"), metrics.requests);
        self.obs
            .counter_add(&format!("bound.{name}.hits"), metrics.hits);
        self.obs.gauge_set(
            &format!("bound.{name}.hit_ratio"),
            metrics.object_hit_ratio(),
        );
        metrics
    }
}

/// Boxed-erased convenience used by the CLI: wraps an already boxed bound
/// (the `Box<dyn OfflineBound>` delegation impl lives in `lhr_sim`).
impl ObservedBound<Box<dyn OfflineBound>> {
    /// Wraps a boxed bound (the CLI's bound table is heterogenous).
    pub fn boxed(inner: Box<dyn OfflineBound>, obs: Obs) -> Box<dyn OfflineBound> {
        Box::new(ObservedBound { inner, obs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InfiniteCap;
    use lhr_obs::ObsConfig;
    use lhr_trace::{Request, Time};

    fn trace() -> Trace {
        let mut t = Trace::new("t");
        for i in 0..10u64 {
            t.push(Request::new(Time::from_secs(i), i % 3, 100));
        }
        t
    }

    #[test]
    fn observed_bound_matches_inner_and_records() {
        let obs = Obs::new(ObsConfig {
            deterministic: true,
            ..ObsConfig::default()
        });
        let wrapped = ObservedBound::new(InfiniteCap, obs.clone());
        let t = trace();
        let direct = InfiniteCap.evaluate(&t, 1 << 20);
        let via = wrapped.evaluate(&t, 1 << 20);
        assert_eq!(via.hits, direct.hits);
        assert_eq!(wrapped.name(), "InfiniteCap");
        let jsonl = obs.to_jsonl();
        assert!(
            jsonl.contains("\"path\":\"bound.evaluate/InfiniteCap\""),
            "{jsonl}"
        );
        assert!(
            jsonl.contains("\"name\":\"bound.InfiniteCap.hits\""),
            "{jsonl}"
        );
        assert!(
            jsonl.contains("\"name\":\"bound.InfiniteCap.hit_ratio\""),
            "{jsonl}"
        );
    }

    #[test]
    fn deterministic_export_is_repeatable() {
        let run = || {
            let obs = Obs::new(ObsConfig {
                deterministic: true,
                ..ObsConfig::default()
            });
            let t = trace();
            ObservedBound::boxed(Box::new(InfiniteCap), obs.clone()).evaluate(&t, 1 << 20);
            obs.to_jsonl()
        };
        assert_eq!(run(), run());
    }
}
