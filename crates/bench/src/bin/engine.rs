//! Sharded-engine throughput benchmark — replays the same trace through
//! [`lhr_proto::ShardedEngine`] at several thread counts and reports
//! requests/second per count plus the 8-thread speedup over 1 thread:
//!
//! ```text
//! cargo run --release -p lhr-bench --bin engine -- --scale medium
//! ```
//!
//! Set `LHR_BENCH_JSON=<path>` to append machine-readable results plus an
//! `engine_scaling` summary line (the format committed as
//! `BENCH_engine.json`). The summary records `host_cpus`: scaling beyond
//! that core count is physically impossible, so read `speedup_t8` against
//! it (a 1-CPU CI container will honestly report ~1x).

use lhr_policies::Lru;
use lhr_proto::{EngineConfig, ShardedEngine};
use lhr_sim::shard::RouteConfig;
use lhr_trace::synth::{IrmConfig, ProductionScale, SizeModel};
use lhr_util::bench::{black_box, Bench};
use lhr_util::json::{Json, ToJson};
use std::io::Write;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn main() {
    let options = lhr_bench::harness::Options::from_args();
    let requests = match options.scale {
        ProductionScale::Tiny => 50_000,
        ProductionScale::Small => 200_000,
        ProductionScale::Medium => 800_000,
        ProductionScale::Full => 3_000_000,
    };
    let trace = IrmConfig::new(10_000, requests)
        .zipf_alpha(0.9)
        .size_model(SizeModel::BoundedPareto {
            alpha: 1.2,
            min: 10_000,
            max: 10_000_000,
        })
        .seed(options.seed)
        .generate();
    let capacity = 25_000_000u64;
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut group = Bench::new("engine_replay");
    group.throughput_elems(requests as u64);
    for threads in THREAD_COUNTS {
        group.bench(format!("{requests}_t{threads}"), || {
            let engine = ShardedEngine::new(EngineConfig {
                n_shards: 16,
                route: RouteConfig {
                    threads,
                    ..RouteConfig::default()
                },
                ..EngineConfig::new(capacity)
            });
            engine
                .replay(black_box(&trace), |_, cap, _| Lru::new(cap))
                .report
                .errors_served
        });
    }
    let results = group.finish();

    let rps: Vec<f64> = results
        .iter()
        .map(|r| requests as f64 / (r.mean_ns / 1e9))
        .collect();
    let speedup_t8 = rps.last().copied().unwrap_or(0.0) / rps[0].max(1e-9);
    println!(
        "engine scaling on {host_cpus} host cpu(s): t1 {:.0} req/s, t2 {:.0} req/s, \
         t8 {:.0} req/s (t8/t1 = {speedup_t8:.2}x)",
        rps[0], rps[1], rps[2],
    );
    if let Ok(path) = std::env::var("LHR_BENCH_JSON") {
        let mut fields = vec![
            ("group".to_string(), "engine_scaling".to_json()),
            ("requests".to_string(), (requests as u64).to_json()),
            ("host_cpus".to_string(), (host_cpus as u64).to_json()),
        ];
        for (threads, (result, rps)) in THREAD_COUNTS.iter().zip(results.iter().zip(&rps)) {
            fields.push((format!("t{threads}_mean_ns"), result.mean_ns.to_json()));
            fields.push((format!("t{threads}_requests_per_sec"), rps.to_json()));
        }
        fields.push(("speedup_t8".to_string(), speedup_t8.to_json()));
        let record = Json::Object(fields);
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| writeln!(f, "{record}"));
        if let Err(e) = appended {
            eprintln!("warning: could not write {path}: {e}");
        }
    }
    lhr_bench::harness::write_obs(&options);
}
