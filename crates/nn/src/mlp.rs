//! The multi-layer perceptron.

use lhr_util::rng::rngs::SmallRng;
use lhr_util::rng::{Rng, SeedableRng};

/// Activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// max(0, x)
    Relu,
    /// 1 / (1 + e^{-x})
    Sigmoid,
    /// x
    Identity,
}

lhr_util::impl_json!(
    enum Activation {
        Relu,
        Sigmoid,
        Identity,
    }
);

impl Activation {
    fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Identity => x,
        }
    }

    /// Derivative expressed in terms of the *activated* output `y`.
    fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Identity => 1.0,
        }
    }
}

/// One dense layer: `out = act(W·in + b)`, row-major weights.
#[derive(Debug, Clone)]
struct Dense {
    inputs: usize,
    outputs: usize,
    weights: Vec<f32>,
    bias: Vec<f32>,
    activation: Activation,
    // Adam moments (training state, serialized so training can resume).
    m_w: Vec<f32>,
    v_w: Vec<f32>,
    m_b: Vec<f32>,
    v_b: Vec<f32>,
}

lhr_util::impl_json!(struct Dense { inputs, outputs, weights, bias, activation, m_w, v_w, m_b, v_b });

impl Dense {
    fn new(inputs: usize, outputs: usize, activation: Activation, rng: &mut SmallRng) -> Self {
        // Xavier/Glorot uniform initialization.
        let bound = (6.0 / (inputs + outputs) as f32).sqrt();
        Dense {
            inputs,
            outputs,
            weights: (0..inputs * outputs)
                .map(|_| rng.gen_range(-bound..bound))
                .collect(),
            bias: vec![0.0; outputs],
            activation,
            m_w: vec![0.0; inputs * outputs],
            v_w: vec![0.0; inputs * outputs],
            m_b: vec![0.0; outputs],
            v_b: vec![0.0; outputs],
        }
    }

    fn forward(&self, input: &[f32], output: &mut Vec<f32>) {
        debug_assert_eq!(input.len(), self.inputs);
        output.clear();
        for o in 0..self.outputs {
            let row = &self.weights[o * self.inputs..(o + 1) * self.inputs];
            let z: f32 = row
                .iter()
                .zip(input.iter())
                .map(|(&w, &x)| w * x)
                .sum::<f32>()
                + self.bias[o];
            output.push(self.activation.apply(z));
        }
    }
}

/// Training hyperparameters for one SGD/Adam step.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Step size.
    pub learning_rate: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Use Adam (true) or plain SGD (false).
    pub adam: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            learning_rate: 0.01,
            weight_decay: 0.0,
            adam: true,
        }
    }
}

/// The network.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
    /// Adam step counter.
    t: u64,
}

lhr_util::impl_json!(struct Mlp { layers, t });

impl Mlp {
    /// A network with the given layer sizes (`[in, h1, …, out]`), hidden
    /// activation, and output activation, deterministically initialized
    /// from `seed`.
    pub fn new(sizes: &[usize], hidden: Activation, output: Activation, seed: u64) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        assert!(sizes.iter().all(|&s| s > 0), "layer sizes must be positive");
        let mut rng = SmallRng::seed_from_u64(seed);
        let layers = sizes
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let act = if i + 2 == sizes.len() { output } else { hidden };
                Dense::new(w[0], w[1], act, &mut rng)
            })
            .collect();
        Mlp { layers, t: 0 }
    }

    /// Input width.
    pub fn n_inputs(&self) -> usize {
        self.layers.first().expect("non-empty").inputs
    }

    /// Output width.
    pub fn n_outputs(&self) -> usize {
        self.layers.last().expect("non-empty").outputs
    }

    /// Forward pass.
    pub fn forward(&self, input: &[f32]) -> Vec<f32> {
        let mut current = input.to_vec();
        let mut next = Vec::new();
        for layer in &self.layers {
            layer.forward(&current, &mut next);
            std::mem::swap(&mut current, &mut next);
        }
        current
    }

    /// One gradient step on a single `(input, target)` pair with MSE loss.
    /// Returns the loss before the update.
    // Indexed loops mirror the textbook backprop equations; iterator chains
    // here would obscure the weight/bias indexing.
    #[allow(clippy::needless_range_loop)]
    pub fn train_step(&mut self, input: &[f32], target: &[f32], config: &TrainConfig) -> f32 {
        assert_eq!(input.len(), self.n_inputs(), "input width mismatch");
        assert_eq!(target.len(), self.n_outputs(), "target width mismatch");

        // Forward, retaining every layer's activated output.
        let mut activations: Vec<Vec<f32>> = Vec::with_capacity(self.layers.len() + 1);
        activations.push(input.to_vec());
        for layer in &self.layers {
            let mut out = Vec::new();
            layer.forward(activations.last().expect("pushed"), &mut out);
            activations.push(out);
        }

        // Loss and output delta (dL/dz for the output layer).
        let output = activations.last().expect("pushed");
        let mut loss = 0.0f32;
        let out_layer = self.layers.last().expect("non-empty");
        let mut delta: Vec<f32> = output
            .iter()
            .zip(target.iter())
            .map(|(&y, &t)| {
                let err = y - t;
                loss += err * err;
                // MSE: dL/dy = 2·err (the 2 is folded into the learning
                // rate by convention); chain through the activation.
                err * out_layer.activation.derivative_from_output(y)
            })
            .collect();
        loss /= output.len() as f32;

        // Backward pass.
        self.t += 1;
        let t = self.t;
        for l in (0..self.layers.len()).rev() {
            let (input_act, output_act) = (&activations[l], &activations[l + 1]);
            debug_assert_eq!(output_act.len(), self.layers[l].outputs);
            // Compute the delta for the previous layer *before* mutating
            // weights.
            let prev_delta: Option<Vec<f32>> = if l > 0 {
                let prev_act = &activations[l];
                let layer = &self.layers[l];
                let prev_activation = self.layers[l - 1].activation;
                let mut pd = vec![0.0f32; layer.inputs];
                for o in 0..layer.outputs {
                    let row = &layer.weights[o * layer.inputs..(o + 1) * layer.inputs];
                    for (i, &w) in row.iter().enumerate() {
                        pd[i] += w * delta[o];
                    }
                }
                for (i, d) in pd.iter_mut().enumerate() {
                    *d *= prev_activation.derivative_from_output(prev_act[i]);
                }
                Some(pd)
            } else {
                None
            };

            let layer = &mut self.layers[l];
            for o in 0..layer.outputs {
                let d = delta[o];
                for i in 0..layer.inputs {
                    let idx = o * layer.inputs + i;
                    let grad = d * input_act[i] + config.weight_decay * layer.weights[idx];
                    let step = if config.adam {
                        adam_step(
                            &mut layer.m_w[idx],
                            &mut layer.v_w[idx],
                            grad,
                            t,
                            config.learning_rate,
                        )
                    } else {
                        config.learning_rate * grad
                    };
                    layer.weights[idx] -= step;
                }
                let step = if config.adam {
                    adam_step(
                        &mut layer.m_b[o],
                        &mut layer.v_b[o],
                        d,
                        t,
                        config.learning_rate,
                    )
                } else {
                    config.learning_rate * d
                };
                layer.bias[o] -= step;
            }
            if let Some(pd) = prev_delta {
                delta = pd;
            }
        }
        loss
    }

    /// Mean squared error over a batch.
    pub fn mse(&self, inputs: &[Vec<f32>], targets: &[Vec<f32>]) -> f32 {
        assert_eq!(inputs.len(), targets.len());
        if inputs.is_empty() {
            return 0.0;
        }
        let mut total = 0.0f32;
        for (x, t) in inputs.iter().zip(targets.iter()) {
            let y = self.forward(x);
            total += y
                .iter()
                .zip(t.iter())
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum::<f32>()
                / y.len() as f32;
        }
        total / inputs.len() as f32
    }

    /// Approximate in-memory size in bytes (weights + Adam state).
    pub fn approx_size_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| (l.weights.len() * 3 + l.bias.len() * 3) * 4)
            .sum()
    }
}

#[inline]
fn adam_step(m: &mut f32, v: &mut f32, grad: f32, t: u64, lr: f32) -> f32 {
    const B1: f32 = 0.9;
    const B2: f32 = 0.999;
    const EPS: f32 = 1e-8;
    *m = B1 * *m + (1.0 - B1) * grad;
    *v = B2 * *v + (1.0 - B2) * grad * grad;
    let m_hat = *m / (1.0 - B1.powi(t.min(1_000_000) as i32));
    let v_hat = *v / (1.0 - B2.powi(t.min(1_000_000) as i32));
    lr * m_hat / (v_hat.sqrt() + EPS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let net = Mlp::new(&[3, 5, 2], Activation::Relu, Activation::Identity, 1);
        assert_eq!(net.n_inputs(), 3);
        assert_eq!(net.n_outputs(), 2);
        assert_eq!(net.forward(&[0.1, 0.2, 0.3]).len(), 2);
    }

    #[test]
    fn deterministic_initialization() {
        let a = Mlp::new(&[4, 8, 1], Activation::Relu, Activation::Sigmoid, 9);
        let b = Mlp::new(&[4, 8, 1], Activation::Relu, Activation::Sigmoid, 9);
        assert_eq!(a.forward(&[0.5; 4]), b.forward(&[0.5; 4]));
        let c = Mlp::new(&[4, 8, 1], Activation::Relu, Activation::Sigmoid, 10);
        assert_ne!(a.forward(&[0.5; 4]), c.forward(&[0.5; 4]));
    }

    #[test]
    fn gradient_matches_numerical_estimate() {
        // Analytic gradient (via one SGD step) vs central finite
        // differences on the loss — the canonical backprop correctness
        // check. Uses sigmoid everywhere so the loss surface is smooth.
        let input = vec![0.3f32, -0.7, 0.9];
        let target = vec![0.2f32, 0.8];
        let build = || Mlp::new(&[3, 4, 2], Activation::Sigmoid, Activation::Sigmoid, 3);

        let loss_of = |net: &Mlp| {
            let y = net.forward(&input);
            y.iter()
                .zip(target.iter())
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum::<f32>()
                / y.len() as f32
        };

        // Numerical gradient for a handful of weights.
        for (layer_idx, weight_idx) in [(0usize, 0usize), (0, 5), (1, 3), (1, 7)] {
            let eps = 1e-3f32;
            let mut plus = build();
            plus.layers[layer_idx].weights[weight_idx] += eps;
            let mut minus = build();
            minus.layers[layer_idx].weights[weight_idx] -= eps;
            let numerical = (loss_of(&plus) - loss_of(&minus)) / (2.0 * eps);

            // Analytic: after one *plain SGD* step with lr = 1, the weight
            // moves by −dL̃/dw where L̃ uses the delta convention
            // `err · act'` (i.e. Σ err² without the mean's 2/n factor, so
            // dL/dw of the *mean* loss equals (2/n) · dL̃/dw).
            let mut net = build();
            let before = net.layers[layer_idx].weights[weight_idx];
            let config = TrainConfig {
                learning_rate: 1.0,
                weight_decay: 0.0,
                adam: false,
            };
            net.train_step(&input, &target, &config);
            let analytic = before - net.layers[layer_idx].weights[weight_idx];
            let expected = numerical * target.len() as f32 / 2.0;

            assert!(
                (analytic - expected).abs() < 1e-3,
                "layer {layer_idx} weight {weight_idx}: analytic {analytic} vs expected {expected}"
            );
        }
    }

    #[test]
    fn learns_a_linear_function() {
        let mut net = Mlp::new(&[2, 8, 1], Activation::Relu, Activation::Identity, 5);
        let config = TrainConfig::default();
        let sample = |k: u32| {
            let x0 = (k % 17) as f32 / 17.0;
            let x1 = (k % 13) as f32 / 13.0;
            (vec![x0, x1], vec![0.6 * x0 - 0.3 * x1 + 0.1])
        };
        for epoch in 0..60 {
            for k in 0..200u32 {
                let (x, y) = sample(k * 31 + epoch);
                net.train_step(&x, &y, &config);
            }
        }
        let (inputs, targets): (Vec<_>, Vec<_>) = (0..100).map(sample).unzip();
        let mse = net.mse(&inputs, &targets);
        assert!(mse < 1e-3, "mse {mse}");
    }

    #[test]
    fn learns_xor_with_sgd_too() {
        let mut net = Mlp::new(&[2, 8, 1], Activation::Relu, Activation::Sigmoid, 11);
        let config = TrainConfig {
            learning_rate: 0.5,
            weight_decay: 0.0,
            adam: false,
        };
        let data = [
            ([0.0, 0.0], [0.0]),
            ([0.0, 1.0], [1.0]),
            ([1.0, 0.0], [1.0]),
            ([1.0, 1.0], [0.0]),
        ];
        for _ in 0..8_000 {
            for (x, y) in &data {
                net.train_step(x, y, &config);
            }
        }
        for (x, y) in &data {
            let out = net.forward(x)[0];
            assert!((out - y[0]).abs() < 0.35, "xor({x:?}) = {out}");
        }
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let build = |decay| {
            let mut net = Mlp::new(&[2, 4, 1], Activation::Relu, Activation::Identity, 2);
            let config = TrainConfig {
                learning_rate: 0.01,
                weight_decay: decay,
                adam: false,
            };
            for k in 0..2_000u32 {
                let x = vec![(k % 7) as f32 / 7.0, (k % 5) as f32 / 5.0];
                net.train_step(&x, &[0.5], &config);
            }
            net.layers
                .iter()
                .flat_map(|l| l.weights.iter())
                .map(|w| w * w)
                .sum::<f32>()
        };
        assert!(build(0.1) < build(0.0), "decay did not shrink weights");
    }

    #[test]
    fn model_is_serializable() {
        use lhr_util::json::{FromJson, ToJson};
        fn assert_json<T: ToJson + FromJson>() {}
        assert_json::<Mlp>();
    }

    #[test]
    #[should_panic]
    fn wrong_input_width_panics() {
        let mut net = Mlp::new(&[3, 2], Activation::Relu, Activation::Identity, 1);
        net.train_step(&[1.0], &[0.0, 0.0], &TrainConfig::default());
    }
}
