//! End-to-end simulation cost: LHR vs the cheapest (LRU) and most
//! expensive (LRB) baselines on a production-like workload.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lhr::cache::{LhrCache, LhrConfig};
use lhr_policies::{Lrb, Lru};
use lhr_sim::{SimConfig, Simulator};
use lhr_trace::synth::{production, ProductionScale};

fn bench_end_to_end(c: &mut Criterion) {
    let trace = production::cdn_a(ProductionScale::Tiny, 5);
    let unique = lhr_trace::TraceStats::compute(&trace).unique_bytes_requested as f64;
    let capacity = (unique * production::cache_to_unique_ratio("CDN-A")) as u64;

    let mut group = c.benchmark_group("end_to_end_cdn_a_tiny");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("LRU", |b| {
        b.iter(|| {
            let mut policy = Lru::new(capacity);
            Simulator::new(SimConfig::default()).run(&mut policy, &trace)
        });
    });
    group.bench_function("LHR", |b| {
        b.iter(|| {
            let mut policy = LhrCache::new(capacity, LhrConfig::default());
            Simulator::new(SimConfig::default()).run(&mut policy, &trace)
        });
    });
    group.bench_function("LRB", |b| {
        b.iter(|| {
            let mut policy =
                Lrb::new(capacity, trace.duration().as_secs_f64() / 4.0, 5);
            Simulator::new(SimConfig::default()).run(&mut policy, &trace)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
