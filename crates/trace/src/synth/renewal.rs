//! Per-object renewal processes with *non-exponential* inter-request
//! times.
//!
//! HRO (paper §3) approximates every content's request process as Poisson
//! — i.e. exponential IRTs with a constant hazard rate. Real CDN requests
//! are burstier (hyperexponential) or heavier-tailed (Pareto), where the
//! hazard *decreases* with age. This generator produces such workloads so
//! the quality of the Poisson approximation is testable: each object is an
//! independent renewal process with a configurable IRT law, and the trace
//! is the superposition.

use crate::request::{Request, Time, Trace};
use crate::synth::size::SizeModel;
use lhr_util::rng::rngs::StdRng;
use lhr_util::rng::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Inter-request-time law of one renewal process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IrtLaw {
    /// Exponential(rate) — the Poisson case (HRO's model is exact here).
    Exponential {
        /// Requests per second.
        rate: f64,
    },
    /// Hyperexponential: with probability `p_fast`, Exponential(fast),
    /// else Exponential(slow) — bursts separated by long gaps. Squared
    /// coefficient of variation > 1.
    Hyperexponential {
        /// Probability of a fast (intra-burst) gap.
        p_fast: f64,
        /// Intra-burst rate (1/s).
        fast: f64,
        /// Inter-burst rate (1/s).
        slow: f64,
    },
    /// Pareto IRTs with scale `xm` seconds and shape `alpha` (> 1 for a
    /// finite mean) — the hazard decreases in age, the adversarial case
    /// for a constant-hazard approximation.
    Pareto {
        /// Minimum gap in seconds.
        xm: f64,
        /// Tail exponent (must exceed 1).
        alpha: f64,
    },
}

impl IrtLaw {
    /// Mean inter-request time in seconds.
    pub fn mean_secs(&self) -> f64 {
        match *self {
            IrtLaw::Exponential { rate } => 1.0 / rate,
            IrtLaw::Hyperexponential { p_fast, fast, slow } => {
                p_fast / fast + (1.0 - p_fast) / slow
            }
            IrtLaw::Pareto { xm, alpha } => {
                assert!(alpha > 1.0, "Pareto IRTs need alpha > 1 for a finite mean");
                alpha * xm / (alpha - 1.0)
            }
        }
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            IrtLaw::Exponential { rate } => exp(rng, rate),
            IrtLaw::Hyperexponential { p_fast, fast, slow } => {
                if rng.gen::<f64>() < p_fast {
                    exp(rng, fast)
                } else {
                    exp(rng, slow)
                }
            }
            IrtLaw::Pareto { xm, alpha } => {
                let u: f64 = rng.gen();
                xm / (1.0 - u).powf(1.0 / alpha)
            }
        }
    }
}

fn exp<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    let u: f64 = rng.gen();
    -(1.0 - u).ln() / rate
}

/// Configuration for a superposed-renewal trace.
#[derive(Debug, Clone)]
pub struct RenewalConfig {
    /// Trace name.
    pub name: String,
    /// One IRT law per object (object `i` gets `laws[i]`).
    pub laws: Vec<IrtLaw>,
    /// Trace duration in seconds.
    pub duration_secs: f64,
    /// Object size model.
    pub size_model: SizeModel,
    /// PRNG seed.
    pub seed: u64,
}

impl RenewalConfig {
    /// Generates the superposed trace by event-driven merging of the
    /// per-object renewal processes (a binary heap of next-arrival times).
    pub fn generate(&self) -> Trace {
        assert!(!self.laws.is_empty(), "need at least one object");
        assert!(self.duration_secs > 0.0, "duration must be positive");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut trace = Trace::new(self.name.clone());

        // Heap of (next event time in micros, object id). Initial phases
        // are drawn from the IRT law itself (a fresh process, not a
        // stationary one — fine for trace generation).
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        for (id, law) in self.laws.iter().enumerate() {
            let first = law.sample(&mut rng);
            heap.push(Reverse((Time::from_secs_f64(first).as_micros(), id as u64)));
        }
        let horizon = Time::from_secs_f64(self.duration_secs).as_micros();
        while let Some(Reverse((ts, id))) = heap.pop() {
            if ts > horizon {
                continue; // this process is past the horizon
            }
            let size = self.size_model.size_for(self.seed, id);
            trace.push(Request::new(Time::from_micros(ts), id, size));
            let gap = self.laws[id as usize].sample(&mut rng);
            let next = ts.saturating_add(Time::from_secs_f64(gap).as_micros().max(1));
            heap.push(Reverse((next, id)));
        }
        trace
    }
}

/// A bursty workload: `n_objects` hyperexponential renewal processes with
/// Zipf-skewed mean rates — the stress test for HRO's Poisson assumption.
pub fn bursty_trace(n_objects: usize, duration_secs: f64, seed: u64) -> Trace {
    let laws = (1..=n_objects)
        .map(|rank| {
            let mean_rate = 2.0 / (rank as f64).powf(0.8); // Zipf-ish rates
                                                           // Bursts 20× faster than the mean, long gaps 5× slower.
            IrtLaw::Hyperexponential {
                p_fast: 0.8,
                fast: mean_rate * 20.0,
                slow: mean_rate / 4.0,
            }
        })
        .collect();
    RenewalConfig {
        name: "bursty".into(),
        laws,
        duration_secs,
        size_model: SizeModel::BoundedPareto {
            alpha: 1.4,
            min: 10_000,
            max: 5_000_000,
        },
        seed,
    }
    .generate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::inter_request_times;

    #[test]
    fn exponential_renewal_matches_rate() {
        let config = RenewalConfig {
            name: "exp".into(),
            laws: vec![IrtLaw::Exponential { rate: 5.0 }],
            duration_secs: 2_000.0,
            size_model: SizeModel::Fixed { bytes: 1 },
            seed: 1,
        };
        let trace = config.generate();
        let rate = trace.len() as f64 / 2_000.0;
        assert!((rate - 5.0).abs() < 0.3, "rate {rate}");
        assert!(trace.validate().is_ok());
    }

    #[test]
    fn hyperexponential_is_burstier_than_poisson() {
        // Compare squared coefficient of variation of the IRTs.
        let scv = |law: IrtLaw| {
            let config = RenewalConfig {
                name: "x".into(),
                laws: vec![law],
                duration_secs: 5_000.0,
                size_model: SizeModel::Fixed { bytes: 1 },
                seed: 2,
            };
            let trace = config.generate();
            let irts = inter_request_times(&trace);
            let mean = irts.iter().sum::<f64>() / irts.len() as f64;
            let var = irts.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / irts.len() as f64;
            var / (mean * mean)
        };
        let poisson = scv(IrtLaw::Exponential { rate: 2.0 });
        let bursty = scv(IrtLaw::Hyperexponential {
            p_fast: 0.9,
            fast: 20.0,
            slow: 0.25,
        });
        assert!((poisson - 1.0).abs() < 0.2, "Poisson SCV {poisson}");
        assert!(bursty > 2.0, "hyperexponential SCV {bursty}");
    }

    #[test]
    fn pareto_mean_is_finite_and_matches() {
        let law = IrtLaw::Pareto {
            xm: 0.5,
            alpha: 2.5,
        };
        let expected = law.mean_secs();
        let config = RenewalConfig {
            name: "pareto".into(),
            laws: vec![law],
            duration_secs: 10_000.0,
            size_model: SizeModel::Fixed { bytes: 1 },
            seed: 3,
        };
        let trace = config.generate();
        let irts = inter_request_times(&trace);
        let mean = irts.iter().sum::<f64>() / irts.len() as f64;
        assert!(
            (mean - expected).abs() / expected < 0.15,
            "mean {mean} vs {expected}"
        );
    }

    #[test]
    fn superposition_is_time_ordered_and_complete() {
        let trace = bursty_trace(200, 500.0, 4);
        assert!(trace.validate().is_ok());
        assert!(trace.len() > 1_000, "{} requests", trace.len());
        let unique: std::collections::HashSet<u64> = trace.iter().map(|r| r.id).collect();
        assert!(unique.len() > 150, "only {} objects appeared", unique.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = bursty_trace(50, 100.0, 9);
        let b = bursty_trace(50, 100.0, 9);
        assert_eq!(a.requests, b.requests);
    }

    #[test]
    #[should_panic]
    fn pareto_alpha_below_one_rejected_in_mean() {
        IrtLaw::Pareto {
            xm: 1.0,
            alpha: 0.9,
        }
        .mean_secs();
    }
}
