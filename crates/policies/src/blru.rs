//! B-LRU — Bloom-filter LRU (the paper's footnote 6): an LRU cache whose
//! admission requires the object to have been seen before, filtering
//! one-hit wonders. This is Akamai's "cache on second hit" rule
//! (Maggs & Sitaraman 2015) realized with a rotating Bloom filter.

use crate::util::{BloomFilter, Handle, LruList, ObjectTable};
use lhr_sim::{CachePolicy, Outcome};
use lhr_trace::{ObjectId, Request};

/// The B-LRU policy.
#[derive(Debug)]
pub struct BLru {
    capacity: u64,
    used: u64,
    list: LruList<(ObjectId, u64)>,
    map: ObjectTable<Handle>,
    seen: BloomFilter,
    evictions: u64,
}

impl BLru {
    /// A B-LRU cache of `capacity` bytes. `expected_objects` sizes the Bloom
    /// filter epoch (≈ distinct objects per filter rotation).
    pub fn new(capacity: u64, expected_objects: u64) -> Self {
        BLru {
            capacity,
            used: 0,
            list: LruList::new(),
            map: ObjectTable::new(),
            seen: BloomFilter::new(expected_objects),
            evictions: 0,
        }
    }
}

impl CachePolicy for BLru {
    fn name(&self) -> &str {
        "B-LRU"
    }
    fn capacity(&self) -> u64 {
        self.capacity
    }
    fn used_bytes(&self) -> u64 {
        self.used
    }
    fn contains(&self, id: ObjectId) -> bool {
        self.map.contains_key(id)
    }

    fn hit_check(&mut self, req: &Request) -> Option<Outcome> {
        let &handle = self.map.get(req.id)?;
        self.list.move_to_front(handle);
        Some(Outcome::Hit)
    }

    fn handle(&mut self, req: &Request) -> Outcome {
        if let Some(&handle) = self.map.get(req.id) {
            self.list.move_to_front(handle);
            return Outcome::Hit;
        }
        if req.size > self.capacity {
            return Outcome::MissBypassed;
        }
        if !self.seen.contains(req.id) {
            // First sighting: remember it, do not admit.
            self.seen.insert(req.id);
            return Outcome::MissBypassed;
        }
        while self.used + req.size > self.capacity {
            let (id, size) = self.list.pop_back().expect("full but empty");
            self.map.remove(id);
            self.used -= size;
            self.evictions += 1;
        }
        let handle = self.list.push_front((req.id, req.size));
        self.map.insert(req.id, handle);
        self.used += req.size;
        Outcome::MissAdmitted
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }

    fn metadata_overhead_bytes(&self) -> u64 {
        self.map.len() as u64 * 48 + self.seen.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhr_trace::Time;

    fn req(t: u64, id: ObjectId, size: u64) -> Request {
        Request::new(Time::from_secs(t), id, size)
    }

    #[test]
    fn first_request_is_never_admitted() {
        let mut c = BLru::new(1_000, 1_000);
        assert_eq!(c.handle(&req(0, 1, 100)), Outcome::MissBypassed);
        assert!(!c.contains(1));
    }

    #[test]
    fn second_request_is_admitted() {
        let mut c = BLru::new(1_000, 1_000);
        c.handle(&req(0, 1, 100));
        assert_eq!(c.handle(&req(1, 1, 100)), Outcome::MissAdmitted);
        assert!(c.handle(&req(2, 1, 100)).is_hit());
    }

    #[test]
    fn one_hit_wonders_never_occupy_space() {
        let mut c = BLru::new(1_000, 100_000);
        for i in 0..1_000u64 {
            c.handle(&req(i, i, 100));
        }
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn repeated_objects_hit_after_warmup() {
        let mut c = BLru::new(400, 1_000);
        let mut hits = 0;
        for round in 0..10u64 {
            for id in 0..4u64 {
                if c.handle(&req(round * 4 + id, id, 100)).is_hit() {
                    hits += 1;
                }
            }
        }
        // Rounds 2+ should all hit: 8 rounds × 4 objects.
        assert!(hits >= 30, "hits {hits}");
    }

    #[test]
    fn capacity_respected() {
        let mut c = BLru::new(500, 1_000);
        for i in 0..300u64 {
            c.handle(&req(i, i % 9, 120));
            assert!(c.used_bytes() <= 500);
        }
    }
}
