//! Least Recently Used — the production default the paper says major CDNs
//! still run (§1), and the baseline policy of Apache Traffic Server.

use crate::util::{Handle, LruList, ObjectTable};
use lhr_sim::{CachePolicy, Outcome};
use lhr_trace::{ObjectId, Request};

/// Classic LRU with admit-all admission.
#[derive(Debug)]
pub struct Lru {
    capacity: u64,
    used: u64,
    list: LruList<(ObjectId, u64)>,
    map: ObjectTable<Handle>,
    evictions: u64,
}

impl Lru {
    /// An empty LRU cache of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Lru {
            capacity,
            used: 0,
            list: LruList::new(),
            map: ObjectTable::new(),
            evictions: 0,
        }
    }

    /// Evicts from the LRU end until `needed` bytes fit.
    fn make_room(&mut self, needed: u64) {
        while self.used + needed > self.capacity {
            let (id, size) = self.list.pop_back().expect("cache is empty but still full");
            self.map.remove(id);
            self.used -= size;
            self.evictions += 1;
        }
    }
}

impl CachePolicy for Lru {
    fn name(&self) -> &str {
        "LRU"
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }

    fn contains(&self, id: ObjectId) -> bool {
        self.map.contains_key(id)
    }

    fn hit_check(&mut self, req: &Request) -> Option<Outcome> {
        // Single probe: the fused table stores the list handle inline, so
        // a hit is one lookup plus one splice — no second `contains` pass.
        let &handle = self.map.get(req.id)?;
        self.list.move_to_front(handle);
        Some(Outcome::Hit)
    }

    fn handle(&mut self, req: &Request) -> Outcome {
        if let Some(&handle) = self.map.get(req.id) {
            self.list.move_to_front(handle);
            return Outcome::Hit;
        }
        if req.size > self.capacity {
            return Outcome::MissBypassed;
        }
        self.make_room(req.size);
        let handle = self.list.push_front((req.id, req.size));
        self.map.insert(req.id, handle);
        self.used += req.size;
        Outcome::MissAdmitted
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }

    fn metadata_overhead_bytes(&self) -> u64 {
        // handle map entry + list node, ~48 bytes per object.
        self.map.len() as u64 * 48
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhr_trace::Time;

    fn req(t: u64, id: ObjectId, size: u64) -> Request {
        Request::new(Time::from_secs(t), id, size)
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = Lru::new(300);
        lru.handle(&req(0, 1, 100));
        lru.handle(&req(1, 2, 100));
        lru.handle(&req(2, 3, 100));
        lru.handle(&req(3, 1, 100)); // refresh 1; LRU order: 2, 3, 1
        lru.handle(&req(4, 4, 100)); // evicts 2
        assert!(!lru.contains(2));
        assert!(lru.contains(1) && lru.contains(3) && lru.contains(4));
        assert_eq!(lru.evictions(), 1);
    }

    #[test]
    fn variable_sizes_evict_multiple() {
        let mut lru = Lru::new(300);
        lru.handle(&req(0, 1, 100));
        lru.handle(&req(1, 2, 100));
        lru.handle(&req(2, 3, 100));
        lru.handle(&req(3, 4, 250)); // must evict 1, 2, 3
        assert!(lru.contains(4));
        assert!(!lru.contains(1) && !lru.contains(2));
        assert_eq!(lru.used_bytes(), 250);
    }

    #[test]
    fn oversized_object_is_bypassed() {
        let mut lru = Lru::new(100);
        assert_eq!(lru.handle(&req(0, 1, 200)), Outcome::MissBypassed);
        assert_eq!(lru.used_bytes(), 0);
        assert!(!lru.contains(1));
    }

    #[test]
    fn hit_refreshes_recency() {
        let mut lru = Lru::new(200);
        lru.handle(&req(0, 1, 100));
        lru.handle(&req(1, 2, 100));
        assert_eq!(lru.handle(&req(2, 1, 100)), Outcome::Hit);
        lru.handle(&req(3, 3, 100)); // evicts 2, not 1
        assert!(lru.contains(1));
        assert!(!lru.contains(2));
    }

    #[test]
    fn used_bytes_tracks_exactly() {
        let mut lru = Lru::new(1_000);
        lru.handle(&req(0, 1, 300));
        lru.handle(&req(1, 2, 400));
        assert_eq!(lru.used_bytes(), 700);
        lru.handle(&req(2, 3, 500)); // evicts 1
        assert_eq!(lru.used_bytes(), 900);
    }
}
