//! LHD — Least Hit Density (Beckmann, Chen & Cidon, NSDI '18).
//!
//! LHD evicts the object with the lowest *hit density*: expected hits per
//! byte of cache space per unit of time the object will occupy it. The
//! original estimates hit probability as a function of the object's *age*
//! from empirically learned distributions. This implementation keeps that
//! structure in a compact form:
//!
//! - ages are bucketed into log₂ classes;
//! - per class, counters of hits and "lifetime ends" (hits + evictions)
//!   observed at that age are maintained with periodic halving (so the
//!   distributions track the workload);
//! - an object's hit density is
//!   `P(hit at this age class) / (size · E[age])`, and eviction removes the
//!   lowest-density object among a random sample, exactly as LHD's sampled
//!   eviction does.

use lhr_sim::{CachePolicy, Outcome};
use lhr_trace::{ObjectId, Request, Time};
use lhr_util::hash::FastMap;
use lhr_util::rng::rngs::SmallRng;
use lhr_util::rng::{Rng, SeedableRng};

/// Number of log₂ age classes (covers ~2^32 µs ≈ 1 hour per class step
/// range comfortably).
const AGE_CLASSES: usize = 48;
/// Eviction candidate sample size.
const SAMPLE: usize = 64;
/// Halve class counters after this many recorded events.
const DECAY_EVERY: u64 = 1 << 16;

#[derive(Debug, Clone, Copy)]
struct Entry {
    size: u64,
    last_access: Time,
}

/// The LHD policy.
#[derive(Debug)]
pub struct Lhd {
    capacity: u64,
    used: u64,
    entries: FastMap<ObjectId, Entry>,
    dense: Vec<ObjectId>,
    positions: FastMap<ObjectId, usize>,
    /// Hits observed at each age class since the last decay.
    hits_at: [f64; AGE_CLASSES],
    /// Lifetime ends (hit or eviction) at each age class.
    ends_at: [f64; AGE_CLASSES],
    events: u64,
    rng: SmallRng,
    evictions: u64,
}

impl Lhd {
    /// An empty LHD cache of `capacity` bytes.
    pub fn new(capacity: u64, seed: u64) -> Self {
        Lhd {
            capacity,
            used: 0,
            entries: FastMap::default(),
            dense: Vec::new(),
            positions: FastMap::default(),
            hits_at: [1.0; AGE_CLASSES], // optimistic prior
            ends_at: [2.0; AGE_CLASSES],
            events: 0,
            rng: SmallRng::seed_from_u64(seed),
            evictions: 0,
        }
    }

    fn age_class(age: Time) -> usize {
        let micros = age.as_micros().max(1);
        (63 - micros.leading_zeros() as usize).min(AGE_CLASSES - 1)
    }

    fn record(&mut self, class: usize, hit: bool) {
        if hit {
            self.hits_at[class] += 1.0;
        }
        self.ends_at[class] += 1.0;
        self.events += 1;
        if self.events.is_multiple_of(DECAY_EVERY) {
            for v in &mut self.hits_at {
                *v *= 0.5;
            }
            for v in &mut self.ends_at {
                *v *= 0.5;
            }
        }
    }

    /// Hit density of an entry at `now`: class hit probability over
    /// (size × expected dwell time of that class).
    fn density(&self, entry: &Entry, now: Time) -> f64 {
        let age = now.saturating_sub(entry.last_access);
        let class = Self::age_class(age);
        let p_hit = self.hits_at[class] / self.ends_at[class].max(1e-9);
        // Expected remaining occupancy grows with the age class (2^class µs
        // is the class's time scale).
        let dwell = 2f64.powi(class as i32);
        p_hit / (entry.size as f64 * dwell)
    }

    fn evict_one(&mut self, now: Time) {
        let n = self.dense.len();
        debug_assert!(n > 0);
        let k = SAMPLE.min(n);
        let mut victim: Option<(f64, ObjectId)> = None;
        for _ in 0..k {
            let id = self.dense[self.rng.gen_range(0..n)];
            let d = self.density(&self.entries[&id], now);
            if victim.is_none_or(|(vd, _)| d < vd) {
                victim = Some((d, id));
            }
        }
        let id = victim.expect("k >= 1").1;
        let entry = self.entries.remove(&id).expect("sampled");
        self.used -= entry.size;
        let pos = self.positions.remove(&id).expect("indexed");
        self.dense.swap_remove(pos);
        if pos < self.dense.len() {
            self.positions.insert(self.dense[pos], pos);
        }
        let class = Self::age_class(now.saturating_sub(entry.last_access));
        self.record(class, false);
        self.evictions += 1;
    }
}

impl CachePolicy for Lhd {
    fn name(&self) -> &str {
        "LHD"
    }
    fn capacity(&self) -> u64 {
        self.capacity
    }
    fn used_bytes(&self) -> u64 {
        self.used
    }
    fn contains(&self, id: ObjectId) -> bool {
        self.entries.contains_key(&id)
    }

    fn handle(&mut self, req: &Request) -> Outcome {
        if let Some(&entry) = self.entries.get(&req.id) {
            let class = Self::age_class(req.ts.saturating_sub(entry.last_access));
            self.record(class, true);
            self.entries.get_mut(&req.id).expect("cached").last_access = req.ts;
            return Outcome::Hit;
        }
        if req.size > self.capacity {
            return Outcome::MissBypassed;
        }
        while self.used + req.size > self.capacity {
            self.evict_one(req.ts);
        }
        self.entries.insert(
            req.id,
            Entry {
                size: req.size,
                last_access: req.ts,
            },
        );
        self.positions.insert(req.id, self.dense.len());
        self.dense.push(req.id);
        self.used += req.size;
        Outcome::MissAdmitted
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }

    fn metadata_overhead_bytes(&self) -> u64 {
        self.entries.len() as u64 * 56 + (AGE_CLASSES * 16) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(t: u64, id: ObjectId, size: u64) -> Request {
        Request::new(Time::from_secs(t), id, size)
    }

    #[test]
    fn age_classes_are_monotone() {
        assert!(Lhd::age_class(Time::from_micros(1)) < Lhd::age_class(Time::from_secs(1)));
        assert!(Lhd::age_class(Time::from_secs(1)) < Lhd::age_class(Time::from_secs(10_000)));
        assert!(Lhd::age_class(Time::MAX) < AGE_CLASSES);
    }

    #[test]
    fn frequently_hit_ages_gain_density() {
        let mut c = Lhd::new(10_000, 1);
        // Train: objects re-accessed after ~1 s are hits.
        for t in 0..200 {
            c.handle(&req(t, t % 4, 100));
        }
        let hot_class = Lhd::age_class(Time::from_secs(4));
        let p_hot = c.hits_at[hot_class] / c.ends_at[hot_class];
        assert!(p_hot > 0.5, "hit probability at trained age {p_hot}");
    }

    #[test]
    fn survives_heavy_churn_within_capacity() {
        let mut c = Lhd::new(1_000, 2);
        for i in 0..2_000u64 {
            c.handle(&req(i, i % 43, 80 + (i % 3) * 40));
            assert!(c.used_bytes() <= 1_000);
        }
        assert!(c.evictions() > 0);
    }

    #[test]
    fn prefers_keeping_recently_hit_small_objects() {
        let mut c = Lhd::new(400, 3);
        // Hot small object.
        for t in 0..50 {
            c.handle(&req(t, 1, 50));
        }
        // Cold large object fills the rest.
        c.handle(&req(50, 2, 300));
        // New arrivals force evictions; the hot small object should stay.
        for t in 51..70 {
            c.handle(&req(t, 1, 50));
            c.handle(&req(t, 100 + t, 300));
        }
        assert!(c.contains(1), "hot small object evicted");
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut c = Lhd::new(600, seed);
            (0..1_500u64)
                .filter(|&i| c.handle(&req(i, i % 19, 100)).is_hit())
                .count()
        };
        assert_eq!(run(9), run(9));
    }
}
