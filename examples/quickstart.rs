//! Quickstart: generate a synthetic CDN workload, run the LHR cache next
//! to plain LRU, and print what the paper calls the content hit
//! probability and WAN traffic.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lhr_repro::core::cache::{LhrCache, LhrConfig};
use lhr_repro::policies::Lru;
use lhr_repro::sim::{SimConfig, Simulator};
use lhr_repro::trace::synth::{IrmConfig, SizeModel};

fn main() {
    // 1. A Zipf(1.0) workload: 2 000 objects, 100 000 requests, sizes from
    //    a bounded Pareto (10 KB – 10 MB), Poisson arrivals.
    let trace = IrmConfig::new(2_000, 100_000)
        .name("quickstart")
        .zipf_alpha(1.0)
        .size_model(SizeModel::BoundedPareto {
            alpha: 1.2,
            min: 10_000,
            max: 10_000_000,
        })
        .requests_per_sec(200.0)
        .seed(7)
        .generate();

    // 2. A cache sized at ~5% of the unique bytes.
    let unique_bytes = lhr_repro::trace::TraceStats::compute(&trace).unique_bytes_requested;
    let capacity = (unique_bytes / 20) as u64;
    println!(
        "trace: {} requests, {:.1} GB unique bytes, cache {:.2} GB",
        trace.len(),
        unique_bytes as f64 / 1e9,
        capacity as f64 / 1e9
    );

    // 3. Replay through LHR and LRU; skip the first fifth as warmup.
    let sim = Simulator::new(SimConfig {
        warmup_requests: trace.len() / 5,
        series_every: None,
    });

    let mut lhr = LhrCache::new(capacity, LhrConfig::default());
    let lhr_result = sim.run(&mut lhr, &trace);

    let mut lru = Lru::new(capacity);
    let lru_result = sim.run(&mut lru, &trace);

    for r in [&lhr_result, &lru_result] {
        println!(
            "{:>4}: hit probability {:5.2}%  byte hit {:5.2}%  WAN {:.3} Gbps",
            r.policy,
            r.metrics.object_hit_ratio() * 100.0,
            r.metrics.byte_hit_ratio() * 100.0,
            r.metrics.wan_gbps(),
        );
    }
    let stats = lhr.stats();
    println!(
        "LHR internals: {} windows, {} trainings, final threshold δ = {:.2}",
        stats.windows, stats.trainings, stats.final_threshold
    );
}
