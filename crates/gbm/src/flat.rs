//! Flattened, branchless forest traversal — the *batched* scoring layout.
//!
//! [`Tree::predict`] walks 24-byte arena nodes behind an unpredictable
//! `if leaf / if left` pair per step. This module re-lays a fitted forest
//! out as structure-of-arrays node tables and removes both branches:
//!
//! - **No exit branch.** Leaves point at themselves (`kids[2i] ==
//!   kids[2i+1] == i`) and store their value in the `thr` slot, so
//!   traversal runs a *fixed* number of steps per tree (that tree's max
//!   leaf depth) and reads `thr` at whatever node it parked on. A leaf
//!   reached early just spins in place.
//! - **No direction branch.** `go_left` is computed as a bool and used as
//!   an index into the `kids` pair, so the step is pure data flow.
//! - **Lane blocking.** [`FlatForest::predict_block`] advances
//!   [`LANES`] independent rows through each tree level together; the
//!   dependent-load chains of the lanes overlap, which is where the
//!   throughput win on a single core comes from.
//!
//! Branchless only pays when lanes overlap. For a *single* row the step
//! chain is serial — each select waits on the loads it feeds — while the
//! branchy arena walk lets the predictor speculate the next level's loads
//! early, so one-row-at-a-time scoring (`Gbm::predict`, the cache's
//! per-request path) stays on [`Tree::predict`]; the `gbm_predict_paths`
//! bench group measures the gap. [`FlatForest::predict_row`] is the
//! branchless single-row form, kept as the oracle the blocked kernels are
//! tested against.
//!
//! The batched quantized path — scoring whole pre-binned datasets
//! set-at-a-time on `u8` codes — lives in [`crate::bitset`] and hangs off
//! [`FlatForest::bitset`].
//!
//! All paths accumulate leaf values in tree order with `f32` adds starting
//! from the base score — bit-identical to the reference per-row walk.

use crate::bitset::BitsetForest;
use crate::tree::Tree;

/// Rows advanced together by the blocked kernels.
pub(crate) const LANES: usize = 8;

/// Low 31 bits of `feat_dl`: the split feature index.
const FEAT_MASK: u32 = 0x7FFF_FFFF;

/// A fitted forest flattened into contiguous structure-of-arrays node
/// tables (one arena across all trees), plus the padded bitset layout for
/// batched scoring on pre-binned codes.
#[derive(Debug, Clone)]
pub(crate) struct FlatForest {
    n_features: usize,
    /// Per node: split feature in the low 31 bits, `default_left` in the
    /// top bit. Leaves store feature 0 (loaded but ignored).
    feat_dl: Vec<u32>,
    /// Per node: the split threshold — or, for a leaf, its *value*.
    thr: Vec<f32>,
    /// Child pairs: node `i` owns `kids[2i]` (left) and `kids[2i + 1]`
    /// (right). Leaves self-loop.
    kids: Vec<u32>,
    /// Arena index of each tree's root.
    roots: Vec<u32>,
    /// Fixed step count per tree: its maximum leaf depth.
    depths: Vec<u32>,
    /// Set-at-a-time layout for scoring on [`crate::dataset::Binned`]
    /// codes; `None` when the forest doesn't fit it (see
    /// [`BitsetForest::build`]).
    bitset: Option<BitsetForest>,
}

impl FlatForest {
    /// Flattens `trees` (arena layout, root at local index 0).
    pub(crate) fn build(trees: &[Tree], n_features: usize) -> FlatForest {
        let total: usize = trees.iter().map(|t| t.nodes.len()).sum();
        let mut forest = FlatForest {
            n_features,
            feat_dl: Vec::with_capacity(total),
            thr: Vec::with_capacity(total),
            kids: Vec::with_capacity(2 * total),
            roots: Vec::with_capacity(trees.len()),
            depths: Vec::with_capacity(trees.len()),
            bitset: None,
        };
        for tree in trees {
            let off = forest.feat_dl.len() as u32;
            forest.roots.push(off);
            forest.depths.push(tree_depth(tree));
            for (i, n) in tree.nodes.iter().enumerate() {
                if n.feature == u32::MAX {
                    forest.feat_dl.push(0);
                    forest.thr.push(n.value);
                    forest.kids.push(off + i as u32);
                    forest.kids.push(off + i as u32);
                } else {
                    forest
                        .feat_dl
                        .push((n.feature & FEAT_MASK) | ((n.default_left as u32) << 31));
                    forest.thr.push(n.threshold);
                    forest.kids.push(off + n.left);
                    forest.kids.push(off + n.right);
                }
            }
        }
        forest.bitset = BitsetForest::build(trees, n_features);
        forest
    }

    /// The set-at-a-time layout for pre-binned scoring, when built.
    pub(crate) fn bitset(&self) -> Option<&BitsetForest> {
        self.bitset.as_ref()
    }

    /// Raw score (pre-loss-transform) for one full-width row.
    ///
    /// The branchless single-row form. Serving scores single rows through
    /// the branchy [`Tree::predict`] walk instead (see the module docs);
    /// this is kept as the oracle the blocked kernels are tested against.
    #[allow(dead_code)]
    #[inline]
    pub(crate) fn predict_row(&self, row: &[f32], base: f32) -> f32 {
        debug_assert!(row.len() >= self.n_features, "row narrower than model");
        let mut acc = base;
        for (t, &root) in self.roots.iter().enumerate() {
            let mut i = root as usize;
            for _ in 0..self.depths[t] {
                let fd = self.feat_dl[i];
                let v = row[(fd & FEAT_MASK) as usize];
                let go_left = (v <= self.thr[i]) | (v.is_nan() & (fd >> 31 != 0));
                i = self.kids[2 * i + (!go_left) as usize] as usize;
            }
            acc += self.thr[i];
        }
        acc
    }

    /// Raw scores for [`LANES`] full-width rows at once, lane-blocked so
    /// the per-level loads of independent rows overlap.
    pub(crate) fn predict_block(&self, rows: &[&[f32]; LANES], out: &mut [f32], base: f32) {
        let mut acc = [base; LANES];
        let mut idx = [0usize; LANES];
        for (t, &root) in self.roots.iter().enumerate() {
            idx.fill(root as usize);
            for _ in 0..self.depths[t] {
                for l in 0..LANES {
                    let i = idx[l];
                    let fd = self.feat_dl[i];
                    let v = rows[l][(fd & FEAT_MASK) as usize];
                    let go_left = (v <= self.thr[i]) | (v.is_nan() & (fd >> 31 != 0));
                    idx[l] = self.kids[2 * i + (!go_left) as usize] as usize;
                }
            }
            for l in 0..LANES {
                acc[l] += self.thr[idx[l]];
            }
        }
        out[..LANES].copy_from_slice(&acc);
    }
}

/// Maximum leaf depth of one tree (0 for a bare-leaf root).
pub(crate) fn tree_depth(tree: &Tree) -> u32 {
    let mut max = 0u32;
    let mut stack = vec![(0u32, 0u32)];
    while let Some((i, d)) = stack.pop() {
        let n = &tree.nodes[i as usize];
        if n.feature == u32::MAX {
            max = max.max(d);
        } else {
            stack.push((n.left, d + 1));
            stack.push((n.right, d + 1));
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::{Gbm, GbmParams};

    fn messy_model() -> (Gbm, Dataset) {
        let mut d = Dataset::new(3);
        for i in 0..800 {
            let x0 = if i % 7 == 0 {
                f32::NAN
            } else {
                (i % 31) as f32
            };
            let x1 = (i % 13) as f32 / 13.0;
            let x2 = (i % 5) as f32;
            let y = if x0.is_nan() || x0 > 15.0 { 1.0 } else { x1 };
            d.push_row(&[x0, x1, x2], y);
        }
        let model = Gbm::fit(
            &d,
            &GbmParams {
                n_trees: 12,
                ..GbmParams::default()
            },
        );
        (model, d)
    }

    #[test]
    fn trained_forest_builds_bitset_layout() {
        let (model, _) = messy_model();
        assert!(model.flat().bitset().is_some());
    }

    #[test]
    fn blocked_kernel_matches_single_row_on_extreme_values() {
        let (model, _) = messy_model();
        let flat = model.flat();
        let specials = [
            [f32::NAN, f32::NAN, f32::NAN],
            [f32::INFINITY, f32::NEG_INFINITY, 0.0],
            [f32::NEG_INFINITY, f32::INFINITY, f32::NAN],
            [0.0, -0.0, 1.0e9],
            [15.0, 0.5, 2.0],
            [-1.0e-9, 1.0, 3.0],
            [30.0, 0.0, 4.0],
            [f32::MAX, f32::MIN, f32::NAN],
        ];
        let refs: [&[f32]; LANES] = std::array::from_fn(|l| specials[l].as_slice());
        let mut raw = [0f32; LANES];
        flat.predict_block(&refs, &mut raw, 0.25);
        for l in 0..LANES {
            let single = flat.predict_row(&specials[l], 0.25);
            assert_eq!(raw[l].to_bits(), single.to_bits(), "raw lane {l}");
        }
    }

    #[test]
    fn bitset_kernel_matches_per_row_predict_on_the_training_set() {
        // Resolution against the model's own training binning always
        // succeeds (node thresholds are its bin edges), and block scoring
        // — AVX-512 superblocks where available, scalar blocks and the
        // partial tail everywhere — must equal the per-row walk bitwise.
        let (model, data) = messy_model();
        let bitset = model.flat().bitset().expect("depth-6 forest fits");
        let cache = data.binned_cache();
        assert!(!cache.has_infinite);
        let cuts = bitset
            .resolve(&cache.binned)
            .expect("training thresholds are bin edges");
        let mut out = vec![0f32; data.n_rows()];
        bitset.score_range(&cache.binned, &cuts, 0.25, 0, &mut out);
        for r in 0..data.n_rows() {
            let single = model.flat().predict_row(data.row(r), 0.25);
            assert_eq!(out[r].to_bits(), single.to_bits(), "row {r}");
        }
    }
}
