//! The sharded concurrent serving engine.
//!
//! [`crate::CdnServer::replay`] is single-threaded: one loop owns the
//! policy, the freshness map, and the fault machinery. This module scales
//! that serving path across cores without giving up reproducibility. The
//! trace is replayed by N worker threads feeding **shards** — each shard an
//! independent [`CdnServer`] (policy + freshness state + fault plan +
//! circuit breaker) owning a fixed slice of the keyspace — over bounded
//! channels, and the per-shard results are merged in fixed shard order.
//!
//! # Determinism contract
//!
//! Reports and `--obs` exports are byte-identical at any `--threads`
//! setting because (see also `ARCHITECTURE.md`):
//!
//! - the shard count is configuration, never derived from the thread
//!   count, and objects map to shards with [`lhr_sim::shard::shard_of`];
//! - each shard's subsequence of the trace is served sequentially in trace
//!   order by exactly one worker ([`lhr_sim::shard::route`]);
//! - per-shard fault plans are seeded with [`lhr_sim::shard::shard_seed`],
//!   a pure function of (base seed, shard index);
//! - the merge concatenates and sums in shard order `0..n_shards`, so
//!   float arithmetic associates identically every run;
//! - the engine forces [`ServerConfig::deterministic`], so wall-clock
//!   policy compute never feeds the latency model, and
//!   [`EngineReport::stable_json`] zeroes the fields that legitimately
//!   depend on the machine (wall time, throughput, thread count).
//!
//! Origin-fetch coalescing is per shard: the router partitions requests
//! by the same `shard_of` hash every sharded component in the workspace
//! uses, so a shard owns *all* requests for its objects and a miss can
//! only ever join an in-flight fetch recorded by its own shard. That
//! makes a plain shard-local map behaviorally identical to a shared
//! locked table (the engine used a [`crate::FetchTable`] before PR 8) —
//! minus the lock and second hash on every miss, which profiling put at
//! ~35% of engine CPU. Deployments where one object can reach multiple
//! workers still get leader election from [`crate::ConcurrentCache`]'s
//! embedded [`crate::FetchTable`].

use crate::fault::{CircuitBreaker, FaultPlan};
use crate::server::{pct2, CdnServer, ServerConfig, ServerReport};
use lhr_obs::series::{ReqSample, SeriesAcc};
use lhr_obs::{Event, EventKind, LogHistogram, Obs};
use lhr_sim::shard::{route, shard_seed, RouteConfig};
use lhr_sim::CachePolicy;
use lhr_trace::{ObjectId, Request, Time, Trace};
use lhr_util::hash::FastMap;
use lhr_util::json::ToJson;
use std::time::Instant;

/// Configuration of the sharded serving engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Aggregate cache capacity in bytes, split evenly across shards.
    pub total_capacity: u64,
    /// Fixed shard count — part of the deterministic configuration, never
    /// derived from the thread count.
    pub n_shards: usize,
    /// Worker threads and channel sizing (`threads = 0` means one per
    /// available core).
    pub route: RouteConfig,
    /// The per-shard serving-path configuration. `deterministic` is forced
    /// on and `series_every` off: the engine's reports must not depend on
    /// wall clocks, and windowed series go through the obs layer, where
    /// they merge deterministically.
    pub server: ServerConfig,
}

impl EngineConfig {
    /// A 16-shard single-threaded engine with the default serving path and
    /// the given aggregate capacity.
    pub fn new(total_capacity: u64) -> Self {
        EngineConfig {
            total_capacity,
            n_shards: 16,
            route: RouteConfig::default(),
            server: ServerConfig::default(),
        }
    }
}

/// What a threaded replay reports: the merged [`ServerReport`] plus the
/// engine-level figures (shard/thread counts, throughput).
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// The merged serving-path report. `series` is always empty (use the
    /// obs layer for windowed series) and `replay_wall_secs` is the wall
    /// time of the whole threaded replay.
    pub report: ServerReport,
    /// Shards the keyspace was split across.
    pub n_shards: u64,
    /// Worker threads that replayed the trace (machine-dependent when
    /// `threads = 0` was configured; zeroed by [`Self::stable_json`]).
    pub threads: u64,
    /// Replayed requests (including warmup) per wall-clock second — the
    /// figure `BENCH_engine.json` records; zeroed by [`Self::stable_json`].
    pub requests_per_sec: f64,
    /// Requests each shard served (including warmup), in shard order.
    pub per_shard_requests: Vec<u64>,
    /// Hottest-shard load over the mean shard load (1.0 = perfectly even).
    /// Pure function of `per_shard_requests`, so deterministic.
    pub shard_imbalance: f64,
    /// Suggested `--shards` when the keyspace is skewed enough that one
    /// shard dominates; equals `n_shards` when the split is even. See
    /// [`shard_skew`] for the heuristic and its limits.
    pub suggested_shards: u64,
}

lhr_util::impl_json!(struct EngineReport {
    report,
    n_shards,
    threads,
    requests_per_sec,
    per_shard_requests,
    shard_imbalance,
    suggested_shards,
});

/// A hottest-shard load above this multiple of the mean counts as skewed
/// and triggers the shard-count hint.
pub const SKEW_HINT_THRESHOLD: f64 = 1.25;

/// Derives `(imbalance, suggested_shards)` from a per-shard request
/// histogram. Imbalance is `max / mean`. When it exceeds
/// [`SKEW_HINT_THRESHOLD`], the suggestion multiplies the shard count by
/// roughly the imbalance (clamped to 2–8×, rounded up to a power of two) so
/// the hot shard's keys spread over more peers. A single hot *object* can't
/// be split by sharding at all — the clamp keeps the hint from chasing one.
pub fn shard_skew(per_shard_requests: &[u64]) -> (f64, u64) {
    let n = per_shard_requests.len() as u64;
    if n == 0 {
        return (1.0, 0);
    }
    let total: u64 = per_shard_requests.iter().sum();
    let max = per_shard_requests.iter().copied().max().unwrap_or(0);
    if total == 0 || max == 0 {
        return (1.0, n);
    }
    let mean = total as f64 / n as f64;
    let imbalance = max as f64 / mean;
    if imbalance <= SKEW_HINT_THRESHOLD {
        return (imbalance, n);
    }
    let factor = (imbalance.ceil() as u64).clamp(2, 8);
    (imbalance, (n * factor).next_power_of_two())
}

impl EngineReport {
    /// JSON with every machine-dependent field zeroed — wall time,
    /// requests/sec, and the thread count itself. Two replays of the same
    /// trace, policy, and fault seed produce byte-identical output at any
    /// `--threads` setting; `scripts/verify.sh` diffs exactly this.
    pub fn stable_json(&self) -> String {
        let mut stable = self.clone();
        stable.report.replay_wall_secs = 0.0;
        stable.threads = 0;
        stable.requests_per_sec = 0.0;
        stable.to_json().to_string()
    }
}

/// One shard's replay state: a full serving path (server, fault plan,
/// breaker) plus report accumulators, all owned by exactly one worker.
struct EngineShard<P: CachePolicy> {
    server: CdnServer<P>,
    plan: FaultPlan,
    breaker: CircuitBreaker,
    /// In-flight origin fetches for this shard's objects. Shard-local by
    /// construction: the router sends every request for an object to the
    /// same shard, so no other shard can observe or record a fetch here.
    in_flight: FastMap<ObjectId, (Time, bool)>,
    retries: u64,
    compute_ms: f64,
    latencies: Vec<f64>,
    degraded_latencies: Vec<f64>,
    busy_ms: f64,
    bytes_served: u128,
    wan_bytes: u128,
    hits: u64,
    errors: u64,
    stale_served: u64,
    coalesced: u64,
    measured: u64,
    seen: u64,
    peak_meta: u64,
    obs: Option<Obs>,
    acc: Option<SeriesAcc>,
    lat_hist: LogHistogram,
    last_evictions: u64,
    last_opens: u64,
    last_closes: u64,
}

impl<P: CachePolicy> EngineShard<P> {
    /// Serves one request of this shard's subsequence; mirrors the
    /// accounting of [`CdnServer::replay`], including the shard-local
    /// in-flight map (see the module docs for why local is equivalent to
    /// shared here).
    fn step(&mut self, warmup: usize, i: usize, req: &Request) {
        // Sampling is a pure function of `(object, trace time)`, so the
        // sampled set — keyed by global request index `i` — is identical no
        // matter how the requests were sharded.
        let mut tb = match &self.obs {
            Some(obs) if i >= warmup => {
                obs.trace_recorder()
                    .begin(i as u64, req.id, req.ts.as_micros(), req.size)
            }
            _ => None,
        };
        let served = self.server.serve(
            req,
            &mut self.plan,
            &mut self.breaker,
            &mut self.in_flight,
            &mut self.retries,
            &mut self.compute_ms,
            tb.as_mut(),
        );

        self.seen += 1;
        if self.seen % 512 == 1 {
            self.peak_meta = self
                .peak_meta
                .max(self.server.policy().metadata_overhead_bytes());
            self.server.prune_admitted();
            // Expired in-flight windows (the fetch has landed).
            self.in_flight
                .retain(|_, &mut (done_at, _)| req.ts < done_at);
        }

        let evict_delta = if self.acc.is_some() {
            let cur = self.server.policy().evictions();
            let delta = cur.saturating_sub(self.last_evictions);
            self.last_evictions = cur;
            delta
        } else {
            0
        };
        if let Some(obs) = &self.obs {
            let t = req.ts.as_secs_f64();
            let opens = self.breaker.opens();
            if opens > self.last_opens {
                obs.emit(Event::new(t, EventKind::BreakerOpen).field("opens", opens));
                self.last_opens = opens;
            }
            let closes = self.breaker.closes();
            if closes > self.last_closes {
                obs.emit(Event::new(t, EventKind::BreakerClose).field("closes", closes));
                self.last_closes = closes;
            }
        }

        // Warmup is by global trace index, identical at any thread count.
        if i < warmup {
            return;
        }
        self.measured += 1;
        self.bytes_served += req.size as u128;
        self.wan_bytes += served.wan as u128;
        self.busy_ms += served.service_ms;
        if served.hit {
            self.hits += 1;
        }
        if served.error {
            self.errors += 1;
        }
        if served.stale {
            self.stale_served += 1;
        }
        if served.coalesced {
            self.coalesced += 1;
        }
        self.latencies.push(served.latency_ms);
        if served.degraded {
            self.degraded_latencies.push(served.latency_ms);
        }
        if let Some(acc) = self.acc.as_mut() {
            let t = req.ts.as_secs_f64();
            acc.on_request(ReqSample {
                t_micros: req.ts.as_micros(),
                bytes: req.size,
                hit: served.hit,
                admitted: false,
                bypassed: false,
                error: served.error,
                stale: served.stale,
                coalesced: served.coalesced,
            });
            acc.on_evictions(evict_delta);
            if served.latency_ms.is_finite() && served.latency_ms >= 0.0 {
                self.lat_hist.record((served.latency_ms * 1e3) as u64);
            }
            let obs = self.obs.as_ref().expect("acc implies obs");
            if served.stale {
                obs.emit(Event::new(t, EventKind::StaleServe).field("id", req.id));
            }
            if served.error {
                obs.emit(Event::new(t, EventKind::ErrorServe).field("id", req.id));
            }
            if served.coalesced {
                obs.emit(Event::new(t, EventKind::Coalesce).field("id", req.id));
            }
            if let Some(tb) = tb.take() {
                obs.push_trace(tb.finish(served.latency_ms, acc.last_index()));
            }
        }
    }

    /// Final bookkeeping once the shard's subsequence is exhausted: flush
    /// the shard recorder (windows, counters, histogram) and hand it back
    /// for the in-order merge.
    fn finalize(&mut self) -> Option<Obs> {
        self.peak_meta = self
            .peak_meta
            .max(self.server.policy().metadata_overhead_bytes());
        let obs = self.obs.take()?;
        if let Some(acc) = self.acc.take() {
            obs.push_windows(acc.finish());
        }
        obs.counter_add("server.requests", self.measured);
        obs.counter_add("server.hits", self.hits);
        obs.counter_add("server.errors", self.errors);
        obs.counter_add("server.stale_served", self.stale_served);
        obs.counter_add("server.coalesced", self.coalesced);
        obs.counter_add("server.retries", self.retries);
        if self.lat_hist.total() > 0 {
            obs.hist_merge("server.latency_us", &self.lat_hist);
        }
        Some(obs)
    }
}

/// The sharded concurrent serving engine: replays a trace through
/// `n_shards` independent serving paths with N worker threads, then merges
/// the per-shard reports in fixed shard order.
///
/// The hit ratio it measures is that of the *sharded* cache (capacity
/// split evenly, no global eviction ordering) — what a concurrent
/// production deployment measures, not a bit-for-bit reproduction of the
/// single-server replay.
///
/// ```
/// use lhr_policies::Lru;
/// use lhr_proto::{EngineConfig, ShardedEngine};
/// use lhr_sim::shard::RouteConfig;
/// use lhr_trace::{Request, Time, Trace};
///
/// let mut trace = Trace::new("t");
/// for i in 0..4_000u64 {
///     trace.push(Request::new(Time::from_secs(i), (i * 7) % 100, 1 << 10));
/// }
/// let run = |threads: usize| {
///     let config = EngineConfig {
///         n_shards: 8,
///         route: RouteConfig { threads, ..RouteConfig::default() },
///         ..EngineConfig::new(32 << 10)
///     };
///     ShardedEngine::new(config).replay(&trace, |_shard, capacity, _obs| Lru::new(capacity))
/// };
/// // The determinism contract: byte-identical stable reports at any
/// // thread count.
/// assert_eq!(run(1).stable_json(), run(3).stable_json());
/// ```
pub struct ShardedEngine {
    config: EngineConfig,
    obs: Option<Obs>,
}

impl ShardedEngine {
    /// Creates an engine; `deterministic` is forced on and per-request
    /// series off (see [`EngineConfig::server`]).
    pub fn new(mut config: EngineConfig) -> Self {
        config.server.deterministic = true;
        config.server.series_every = None;
        ShardedEngine { config, obs: None }
    }

    /// Attaches a master observability recorder. Each shard records into a
    /// private recorder; at the end of the replay they are merged into
    /// this one in fixed shard order ([`Obs::absorb_shards`]).
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Replays `trace` across shards built by
    /// `build(shard_index, shard_capacity, shard_obs)` — the builder gets
    /// the shard's capacity slice and private recorder so learned policies
    /// can attach to it (derive per-shard seeds with
    /// [`lhr_sim::shard::shard_seed`]).
    pub fn replay<P: CachePolicy + Send>(
        &self,
        trace: &Trace,
        mut build: impl FnMut(usize, u64, Option<&Obs>) -> P,
    ) -> EngineReport {
        let n_shards = self.config.n_shards.max(1);
        let shard_capacity = (self.config.total_capacity / n_shards as u64).max(1);

        if let Some(obs) = &self.obs {
            for &(start, end) in &self.config.server.faults.outages {
                obs.emit(Event::new(start, EventKind::OutageStart).field("until_secs", end));
                obs.emit(Event::new(end, EventKind::OutageEnd));
            }
        }

        // Preallocate each shard's latency vector for its expected share of
        // measured requests (plus slack for skew), so steady-state replay
        // never reallocates mid-push.
        let measured_total = trace
            .len()
            .saturating_sub(self.config.server.warmup_requests);
        let per_shard_latency_cap =
            measured_total / n_shards + measured_total / (n_shards * 4) + 16;

        let shards: Vec<EngineShard<P>> = (0..n_shards)
            .map(|s| {
                let obs = self
                    .obs
                    .as_ref()
                    .map(|master| Obs::new(master.config().clone()));
                let mut faults = self.config.server.faults.clone();
                faults.seed = shard_seed(faults.seed, s);
                let server_config = ServerConfig {
                    faults: faults.clone(),
                    ..self.config.server.clone()
                };
                EngineShard {
                    server: CdnServer::new(
                        build(s, shard_capacity, obs.as_ref()),
                        server_config.clone(),
                    ),
                    plan: FaultPlan::new(faults),
                    breaker: CircuitBreaker::new(server_config.resilience.breaker.clone()),
                    in_flight: FastMap::default(),
                    retries: 0,
                    compute_ms: 0.0,
                    latencies: Vec::with_capacity(per_shard_latency_cap),
                    degraded_latencies: Vec::new(),
                    busy_ms: 0.0,
                    bytes_served: 0,
                    wan_bytes: 0,
                    hits: 0,
                    errors: 0,
                    stale_served: 0,
                    coalesced: 0,
                    measured: 0,
                    seen: 0,
                    peak_meta: 0,
                    acc: obs.as_ref().map(|o| SeriesAcc::new(o.window())),
                    obs,
                    lat_hist: LogHistogram::new(),
                    last_evictions: 0,
                    last_opens: 0,
                    last_closes: 0,
                }
            })
            .collect();

        let name = shards
            .first()
            .map(|s| format!("engine({})x{}", s.server.policy().name(), n_shards))
            .unwrap_or_default();
        if let Some(master) = &self.obs {
            // Run metadata is final before replay: a streaming sink writes
            // its meta line when the first (shard-merged) window lands in
            // `absorb_shards`, and the line must already carry these.
            master.set_meta("policy", name.as_str());
            master.set_meta("trace", trace.name.as_str());
            master.set_meta("shards", n_shards as u64);
        }

        let warmup = self.config.server.warmup_requests;
        let threads = self.config.route.resolve_threads().clamp(1, n_shards);
        let wall_start = Instant::now();
        let mut shards = route(trace, shards, &self.config.route, |state, _s, i, req| {
            state.step(warmup, i, req)
        });
        let wall_secs = wall_start.elapsed().as_secs_f64();

        // Merge in fixed shard order (0..n_shards) on this thread.
        let mut latencies = Vec::with_capacity(trace.len());
        let mut degraded_latencies = Vec::new();
        let mut shard_obs = Vec::new();
        let mut busy_ms = 0.0f64;
        let mut compute_ms = 0.0f64;
        let mut bytes_served = 0u128;
        let mut wan_bytes = 0u128;
        let mut hits = 0u64;
        let mut errors = 0u64;
        let mut stale_served = 0u64;
        let mut coalesced = 0u64;
        let mut retries = 0u64;
        let mut measured = 0u64;
        let mut peak_meta = 0u64;
        let mut breaker_opens = 0u64;
        let mut breaker_closes = 0u64;
        let mut per_shard_requests = Vec::with_capacity(n_shards);
        for shard in &mut shards {
            if let Some(obs) = shard.finalize() {
                shard_obs.push(obs);
            }
            latencies.append(&mut shard.latencies);
            degraded_latencies.append(&mut shard.degraded_latencies);
            busy_ms += shard.busy_ms;
            compute_ms += shard.compute_ms;
            bytes_served += shard.bytes_served;
            wan_bytes += shard.wan_bytes;
            hits += shard.hits;
            errors += shard.errors;
            stale_served += shard.stale_served;
            coalesced += shard.coalesced;
            retries += shard.retries;
            measured += shard.measured;
            peak_meta += shard.peak_meta;
            breaker_opens += shard.breaker.opens();
            breaker_closes += shard.breaker.closes();
            per_shard_requests.push(shard.seen);
        }
        // Selecting the k-th order statistic (see `server::pct2`) yields
        // exactly the value a full sort would index, at O(n) instead of
        // O(n log n) — the sort dominated the merge path at engine line
        // rates, and total_cmp makes the statistic unique, so the
        // concatenation order stays irrelevant.
        let (p90_latency_ms, p99_latency_ms) = pct2(&mut latencies);
        let (degraded_p90_latency_ms, degraded_p99_latency_ms) = pct2(&mut degraded_latencies);
        let mean = if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        };
        let duration = trace.duration().as_secs_f64().max(1e-9);
        let (shard_imbalance, suggested_shards) = shard_skew(&per_shard_requests);

        if let Some(master) = &self.obs {
            master.absorb_shards(&shard_obs);
            // Both are pure functions of the deterministic per-shard
            // request counts, so they are safe in stable exports. The
            // summarizer turns them into the skew hint line.
            master.gauge_set("engine.shard_imbalance", shard_imbalance);
            master.gauge_set("engine.suggested_shards", suggested_shards as f64);
            master.gauge_set(
                "server.replay_wall_secs",
                if master.deterministic() {
                    0.0
                } else {
                    wall_secs
                },
            );
        }

        let report = ServerReport {
            name,
            trace: trace.name.clone(),
            content_hit_pct: if measured == 0 {
                0.0
            } else {
                hits as f64 / measured as f64 * 100.0
            },
            throughput_gbps: if busy_ms <= 0.0 {
                0.0
            } else {
                bytes_served as f64 * 8.0 / (busy_ms / 1e3) / 1e9
            },
            peak_cpu_pct: if busy_ms <= 0.0 {
                0.0
            } else {
                (compute_ms / busy_ms * 100.0).min(100.0)
            },
            peak_mem_gb: peak_meta as f64 / 1e9,
            p90_latency_ms,
            p99_latency_ms,
            mean_latency_ms: mean,
            wan_gbps: wan_bytes as f64 * 8.0 / duration / 1e9,
            availability_pct: if measured == 0 {
                100.0
            } else {
                (measured - errors) as f64 / measured as f64 * 100.0
            },
            errors_served: errors,
            stale_served,
            retries,
            coalesced_fetches: coalesced,
            breaker_opens,
            breaker_closes,
            degraded_p90_latency_ms,
            degraded_p99_latency_ms,
            series: Vec::new(),
            replay_wall_secs: wall_secs,
        };
        EngineReport {
            report,
            n_shards: n_shards as u64,
            threads: threads as u64,
            requests_per_sec: if wall_secs > 0.0 {
                trace.len() as f64 / wall_secs
            } else {
                0.0
            },
            per_shard_requests,
            shard_imbalance,
            suggested_shards,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhr_policies::Lru;
    use lhr_util::json::{FromJson, Json};

    fn trace(n: usize, objects: u64, size: u64) -> Trace {
        let mut t = Trace::new("engine-test");
        for i in 0..n {
            t.push(Request::new(
                Time::from_secs(i as u64),
                (i as u64 * 7) % objects,
                size,
            ));
        }
        t
    }

    fn engine(threads: usize, total_capacity: u64) -> ShardedEngine {
        ShardedEngine::new(EngineConfig {
            n_shards: 8,
            route: RouteConfig {
                threads,
                ..RouteConfig::default()
            },
            ..EngineConfig::new(total_capacity)
        })
    }

    #[test]
    fn replay_is_identical_across_thread_counts() {
        let t = trace(20_000, 300, 1 << 16);
        let run = |threads: usize| {
            engine(threads, 64 << 16)
                .replay(&t, |_, cap, _| Lru::new(cap))
                .stable_json()
        };
        let baseline = run(1);
        assert_eq!(baseline, run(2));
        assert_eq!(baseline, run(8));
    }

    #[test]
    fn faulted_replay_is_identical_across_thread_counts() {
        let t = trace(10_000, 200, 1 << 16);
        let run = |threads: usize| {
            let mut engine = engine(threads, 32 << 16);
            engine.config.server.faults =
                crate::FaultConfig::preset("flaky", 7, t.duration().as_secs_f64())
                    .expect("preset exists");
            engine.replay(&t, |_, cap, _| Lru::new(cap)).stable_json()
        };
        let baseline = run(1);
        assert_eq!(baseline, run(2));
        assert_eq!(baseline, run(8));
    }

    #[test]
    fn engine_matches_single_server_on_infallible_origin_counts() {
        // Hits depend on eviction order, so use a capacity where nothing
        // evicts: then the sharded and single-server replays must agree on
        // every counter.
        let t = trace(5_000, 100, 1 << 10);
        let mut single = CdnServer::new(
            Lru::new(100 << 10),
            ServerConfig {
                deterministic: true,
                ..ServerConfig::default()
            },
        );
        let expect = single.replay(&t);
        let got = engine(2, 800 << 10).replay(&t, |_, cap, _| Lru::new(cap));
        assert_eq!(got.report.errors_served, expect.errors_served);
        assert!((got.report.content_hit_pct - expect.content_hit_pct).abs() < 1e-9);
        assert!((got.report.wan_gbps - expect.wan_gbps).abs() < 1e-12);
    }

    #[test]
    fn warmup_is_global_and_respected() {
        let t = trace(1_000, 50, 1 << 10);
        let mut config = EngineConfig::new(400 << 10);
        config.server.warmup_requests = 400;
        let report = ShardedEngine::new(config).replay(&t, |_, cap, _| Lru::new(cap));
        let measured: u64 = 600;
        let total: u64 = report.per_shard_requests.iter().sum();
        assert_eq!(total, 1_000, "every request reaches a shard");
        let hits_plus_misses = (report.report.content_hit_pct / 100.0 * measured as f64).round()
            as u64
            + report.report.errors_served;
        assert!(hits_plus_misses <= measured);
    }

    #[test]
    fn skew_heuristic_flags_hot_key_traces() {
        // Even split: no suggestion beyond the current count.
        let (imb, sug) = shard_skew(&[100, 100, 100, 100]);
        assert!((imb - 1.0).abs() < 1e-12);
        assert_eq!(sug, 4);
        // Degenerate inputs stay sane.
        assert_eq!(shard_skew(&[]), (1.0, 0));
        assert_eq!(shard_skew(&[0, 0]).1, 2);

        // A synthetic hot-key trace: one object takes half the requests,
        // so its shard dwarfs the mean and the report should say so.
        let mut t = Trace::new("hot-key");
        for i in 0..8_000u64 {
            let id = if i % 2 == 0 { 42 } else { i % 500 };
            t.push(Request::new(Time::from_secs(i), id, 1 << 10));
        }
        let report = engine(2, 1 << 26).replay(&t, |_, cap, _| Lru::new(cap));
        assert!(
            report.shard_imbalance > SKEW_HINT_THRESHOLD,
            "hot key must show up as imbalance, got {}",
            report.shard_imbalance
        );
        assert!(
            report.suggested_shards > report.n_shards,
            "skewed replay should suggest more shards ({} vs {})",
            report.suggested_shards,
            report.n_shards
        );
        assert!(report.suggested_shards.is_power_of_two());
        // And the suggestion survives the stable JSON round trip.
        let json = report.stable_json();
        assert!(json.contains("\"suggested_shards\""), "{json}");
    }

    #[test]
    fn report_json_roundtrips() {
        let t = trace(2_000, 60, 1 << 10);
        let report = engine(1, 128 << 10).replay(&t, |_, cap, _| Lru::new(cap));
        let json = report.to_json().to_string();
        let back = EngineReport::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back.to_json().to_string(), json);
        assert_eq!(back.n_shards, 8);
    }

    #[test]
    fn obs_export_is_identical_across_thread_counts() {
        use lhr_obs::{ObsConfig, ObsWindow};
        let t = trace(8_000, 150, 1 << 14);
        let run = |threads: usize| {
            let obs = Obs::new(ObsConfig {
                window: ObsWindow::Requests(500),
                deterministic: true,
                ..ObsConfig::default()
            });
            let mut engine = engine(threads, 64 << 14);
            engine.config.server.faults =
                crate::FaultConfig::preset("flaky", 11, t.duration().as_secs_f64())
                    .expect("preset exists");
            let _ = ShardedEngine {
                config: engine.config,
                obs: Some(obs.clone()),
            }
            .replay(&t, |_, cap, _| Lru::new(cap));
            obs.to_jsonl()
        };
        let baseline = run(1);
        assert!(baseline.contains("\"record\":\"window\""), "{baseline}");
        assert_eq!(baseline, run(2));
        assert_eq!(baseline, run(8));
    }
}
