//! The paper's §7.6 responsiveness scenario in miniature: a Markov-
//! modulated workload whose popularity distribution inverts every `r`
//! requests ("Syn One"), with the windowed hit ratio printed over time so
//! the recovery after each inversion is visible.
//!
//! ```text
//! cargo run --release --example responsiveness
//! ```

use lhr_repro::core::cache::{LhrCache, LhrConfig};
use lhr_repro::policies::{Lru, LruK};
use lhr_repro::sim::{CachePolicy, SimConfig, Simulator};
use lhr_repro::trace::synth::markov;
use lhr_repro::trace::TraceStats;

fn main() {
    let r = 20_000;
    let trace = markov::syn_one(1_000, 6 * r, r, 0.9, 42);
    let unique = TraceStats::compute(&trace).unique_bytes_requested;
    let capacity = (unique / 10) as u64;
    println!(
        "Syn One: {} requests, popularity inverted every {} requests, cache {:.2} GB\n",
        trace.len(),
        r,
        capacity as f64 / 1e9
    );

    let sim = Simulator::new(SimConfig {
        warmup_requests: 0,
        series_every: Some(r / 4), // 4 points per phase
    });

    let policies: Vec<Box<dyn CachePolicy>> = vec![
        Box::new(LhrCache::new(capacity, LhrConfig::default())),
        Box::new(Lru::new(capacity)),
        Box::new(LruK::new(capacity, 4)),
    ];
    for mut policy in policies {
        let result = sim.run(&mut policy, &trace);
        let series: Vec<String> = result
            .series
            .iter()
            .map(|p| format!("{:4.1}", p.window_hit_ratio * 100.0))
            .collect();
        println!(
            "{:>6} overall {:5.2}% | windowed hit%: {}",
            result.policy,
            result.metrics.object_hit_ratio() * 100.0,
            series.join(" ")
        );
    }
    println!("\n(phases change every 4 columns; watch how quickly each policy recovers)");
}
