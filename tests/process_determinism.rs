//! Cross-process determinism: the same replay in two separate OS
//! processes must produce byte-identical reports and obs exports.
//!
//! This is the test that would have caught `std::collections::HashMap`'s
//! per-process `RandomState`: within one process two replays share the
//! seed, so only a fresh process exposes iteration-order dependence in a
//! decision path. The workspace now hashes with the fixed-seed
//! `lhr_util::hash::FastHasher` everywhere hot (see ARCHITECTURE.md,
//! determinism contract), and this pins it.

use std::path::PathBuf;
use std::process::Command;

/// The `lhr-cache` CLI binary next to this test's own profile directory
/// (`target/<profile>/lhr-cache`); `cargo test --workspace` builds it
/// before any test runs.
fn cli_binary() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let profile_dir = exe.parent()?.parent()?;
    let bin = profile_dir.join(format!("lhr-cache{}", std::env::consts::EXE_SUFFIX));
    bin.exists().then_some(bin)
}

fn run(bin: &PathBuf, args: &[&str]) {
    let output = Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {}: {e}", bin.display()));
    assert!(
        output.status.success(),
        "{} {:?} failed:\n{}",
        bin.display(),
        args,
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn two_processes_produce_byte_identical_reports() {
    let Some(bin) = cli_binary() else {
        // The CLI wasn't built alongside this test (e.g. `cargo test -p
        // lhr-repro --test process_determinism` alone). verify.sh always
        // builds the workspace first, so the real gate never skips.
        eprintln!("skipping: lhr-cache binary not found next to test executable");
        return;
    };
    let dir = std::env::temp_dir().join(format!("lhr-proc-det-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let path = |name: &str| dir.join(name).to_string_lossy().into_owned();

    let trace = path("t.csv");
    run(
        &bin,
        &[
            "generate",
            "--kind",
            "zipf",
            "--objects",
            "300",
            "--requests",
            "20000",
            "--seed",
            "9",
            "--out",
            &trace,
        ],
    );

    // Same replay, two fresh OS processes. LHR exercises the learned
    // path (features, windows, retraining); `--threads 2` exercises the
    // sharded engine merge as well.
    for process in ["a", "b"] {
        run(
            &bin,
            &[
                "server",
                "--policy",
                "LHR",
                "--capacity",
                "1MB",
                "--threads",
                "2",
                "--faults",
                "flaky",
                "--report",
                &path(&format!("report-{process}.json")),
                "--obs",
                &path(&format!("obs-{process}.jsonl")),
                "--obs-window",
                "1000r",
                "--obs-deterministic",
                "true",
                &trace,
            ],
        );
    }

    let read = |name: &str| std::fs::read(dir.join(name)).expect("run output exists");
    assert_eq!(
        read("report-a.json"),
        read("report-b.json"),
        "reports differ across OS processes"
    );
    assert_eq!(
        read("obs-a.jsonl"),
        read("obs-b.jsonl"),
        "obs exports differ across OS processes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
