//! A single regression tree grown on binned gradients.
//!
//! The growth hot path uses the classic histogram-boosting tricks:
//! feature-major code columns (see [`Binned`]), per-node histograms cached
//! in a reusable pool with the LightGBM subtraction trick (build the
//! smaller child, derive the sibling as `parent − child`), and a
//! thread-parallel split search over disjoint feature ranges reduced in
//! fixed feature order so the grown tree is byte-identical for any thread
//! count.

use crate::booster::GbmParams;
use crate::dataset::{Binned, MISSING_BIN};

/// A node in the flat tree arena. Leaves have `feature == u32::MAX`.
/// Crate-visible so `flat::FlatForest` can re-lay fitted trees out for
/// serving.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    /// Split feature index, or `u32::MAX` for a leaf.
    pub(crate) feature: u32,
    /// Real-valued cut: samples with `value ≤ threshold` go left.
    pub(crate) threshold: f32,
    /// Arena index of the left child (valid only for internal nodes).
    pub(crate) left: u32,
    /// Arena index of the right child (valid only for internal nodes).
    pub(crate) right: u32,
    /// Where missing (NaN) values go.
    pub(crate) default_left: bool,
    /// Prediction for a leaf (weight already includes the learning rate).
    pub(crate) value: f32,
}

lhr_util::impl_json!(struct Node { feature, threshold, left, right, default_left, value });

/// A trained regression tree. Prediction consumes raw (unbinned) feature
/// rows, so a serialized model is self-contained.
#[derive(Debug, Clone)]
pub struct Tree {
    pub(crate) nodes: Vec<Node>,
}

lhr_util::impl_json!(struct Tree { nodes });

/// One node's gradient/hessian/count histogram over every feature's bins,
/// laid out by [`Binned::slot_offsets`] (per feature: real bins then one
/// missing slot). `h` is only filled when per-sample hessians exist —
/// squared error reads the exact integer count from `n` instead.
struct HistBuf {
    g: Vec<f64>,
    h: Vec<f64>,
    n: Vec<u32>,
}

impl HistBuf {
    fn with_slots(slots: usize) -> HistBuf {
        HistBuf {
            g: vec![0.0; slots],
            h: vec![0.0; slots],
            n: vec![0; slots],
        }
    }

    /// `self ← self − other`, elementwise — derives the larger child's
    /// histogram from the parent's (in place) once the smaller child's has
    /// been built by scanning.
    fn subtract(&mut self, other: &HistBuf) {
        for (a, b) in self.g.iter_mut().zip(&other.g) {
            *a -= b;
        }
        for (a, b) in self.h.iter_mut().zip(&other.h) {
            *a -= b;
        }
        for (a, b) in self.n.iter_mut().zip(&other.n) {
            *a -= b;
        }
    }
}

/// Reusable growth scratch, shared across all trees of one `fit` so the
/// per-node allocations of the naive implementation disappear.
pub(crate) struct TreeScratch {
    /// Free list of node histograms (≤ depth + 2 live at once).
    pool: Vec<HistBuf>,
    /// Stable-partition side buffer (replaces two per-node `Vec`s).
    part: Vec<u32>,
    /// Node-ordered gradients/hessians: `ordered_g[k] = gradients[indices[k]]`
    /// so every feature's histogram scan reads them sequentially.
    ordered_g: Vec<f32>,
    ordered_h: Vec<f32>,
    /// Per-feature best split, written by the (possibly parallel) feature
    /// workers and reduced in fixed feature order.
    best: Vec<Option<SplitCand>>,
}

impl TreeScratch {
    pub fn new() -> TreeScratch {
        TreeScratch {
            pool: Vec::new(),
            part: Vec::new(),
            ordered_g: Vec::new(),
            ordered_h: Vec::new(),
            best: Vec::new(),
        }
    }

    fn acquire(&mut self, binned: &Binned) -> HistBuf {
        match self.pool.pop() {
            Some(mut h) if h.g.len() == binned.n_slots() => {
                // Masked / constant features are never (re)filled, so their
                // slots must read as zero for the subtraction trick.
                h.g.fill(0.0);
                h.h.fill(0.0);
                h.n.fill(0);
                h
            }
            _ => HistBuf::with_slots(binned.n_slots()),
        }
    }
}

/// The best split of one feature, with the left-side sums retained so the
/// children's node statistics need no rescan.
#[derive(Debug, Clone, Copy)]
struct SplitCand {
    gain: f64,
    bin: u8,
    default_left: bool,
    left_g: f64,
    left_h: f64,
    left_n: u32,
}

/// Shared, immutable context for one tree's growth.
struct GrowCtx<'a> {
    binned: &'a Binned,
    gradients: &'a [f32],
    hessians: Option<&'a [f32]>,
    feature_mask: &'a [bool],
    params: &'a GbmParams,
    threads: usize,
}

impl GrowCtx<'_> {
    fn hessian_sum(&self, indices: &[u32]) -> f64 {
        match self.hessians {
            Some(h) => indices.iter().map(|&i| h[i as usize] as f64).sum(),
            None => indices.len() as f64,
        }
    }
}

impl Tree {
    /// Grows a tree on `residuals` (negative gradients of squared error)
    /// over the binned matrix, scaling leaf values by
    /// `params.learning_rate`. Also accumulates split gains per feature
    /// into `gains` (feature-importance bookkeeping).
    #[cfg(test)]
    pub(crate) fn grow(
        binned: &Binned,
        gradients: &[f32],
        params: &GbmParams,
        gains: &mut [f64],
    ) -> Tree {
        let indices: Vec<u32> = (0..binned.n_rows as u32).collect();
        let mask = vec![true; binned.n_features];
        let mut scratch = TreeScratch::new();
        Self::grow_on(
            binned,
            gradients,
            None,
            indices,
            &mask,
            params,
            1,
            gains,
            &mut scratch,
            None,
        )
    }

    /// [`Tree::grow`] restricted to `root_rows` (stochastic-boosting row
    /// subsample) and to the features whose `feature_mask` entry is true.
    /// `hessians` is `None` for squared error (hessian ≡ 1) and per-sample
    /// second derivatives otherwise (second-order boosting, XGBoost-style).
    ///
    /// When `preds` is given, every in-sample row's prediction is updated
    /// with its leaf value *during* growth (leaf-assignment propagation) —
    /// an O(n) replacement for the per-round full-tree re-traversal.
    /// `threads` parallelizes the per-node split search across features;
    /// the grown tree is byte-identical for every thread count.
    #[allow(clippy::too_many_arguments)] // one call site, in the booster
    pub(crate) fn grow_on(
        binned: &Binned,
        gradients: &[f32],
        hessians: Option<&[f32]>,
        mut root_rows: Vec<u32>,
        feature_mask: &[bool],
        params: &GbmParams,
        threads: usize,
        gains: &mut [f64],
        scratch: &mut TreeScratch,
        mut preds: Option<&mut [f32]>,
    ) -> Tree {
        debug_assert_eq!(feature_mask.len(), binned.n_features);
        let mut tree = Tree { nodes: Vec::new() };
        let ctx = GrowCtx {
            binned,
            gradients,
            hessians,
            feature_mask,
            params,
            threads: threads.max(1),
        };
        scratch.best.clear();
        scratch.best.resize(binned.n_features, None);
        let g_sum: f64 = root_rows
            .iter()
            .map(|&i| gradients[i as usize] as f64)
            .sum();
        let h_sum = ctx.hessian_sum(&root_rows);
        tree.grow_node(
            &ctx,
            &mut root_rows,
            0,
            g_sum,
            h_sum,
            None,
            gains,
            scratch,
            preds.as_deref_mut(),
        );
        tree
    }

    /// Recursively grows the subtree over `indices`, returning its arena
    /// id. `hist_in` is this node's histogram when the parent derived it by
    /// subtraction; `None` means build-by-scanning (root, or a sibling of a
    /// leaf-bound child).
    #[allow(clippy::too_many_arguments)] // recursion threads growth state
    fn grow_node(
        &mut self,
        ctx: &GrowCtx<'_>,
        indices: &mut [u32],
        depth: usize,
        g_sum: f64,
        h_sum: f64,
        hist_in: Option<HistBuf>,
        gains: &mut [f64],
        scratch: &mut TreeScratch,
        mut preds: Option<&mut [f32]>,
    ) -> u32 {
        let params = ctx.params;
        let leaf_value = (g_sum / (h_sum + params.lambda)) as f32 * params.learning_rate;

        if leaf_bound(indices.len(), depth, params) {
            if let Some(h) = hist_in {
                scratch.pool.push(h);
            }
            return self.push_leaf(leaf_value, indices, preds);
        }

        // Node histogram: reuse the subtraction-derived one, or build by
        // scanning the node's rows (feature-parallel; index order per
        // feature is thread-count independent).
        let build = hist_in.is_none();
        let mut hist = match hist_in {
            Some(h) => h,
            None => scratch.acquire(ctx.binned),
        };
        if build {
            scratch.ordered_g.clear();
            scratch
                .ordered_g
                .extend(indices.iter().map(|&i| ctx.gradients[i as usize]));
            if let Some(h) = ctx.hessians {
                scratch.ordered_h.clear();
                scratch
                    .ordered_h
                    .extend(indices.iter().map(|&i| h[i as usize]));
            }
        }
        search_node(
            ctx,
            indices,
            &mut hist,
            build,
            &scratch.ordered_g,
            &scratch.ordered_h,
            g_sum,
            h_sum,
            &mut scratch.best,
        );

        // Ordered reduction: ascending feature index, strictly-greater gain
        // wins — the same winner a sequential scan would pick, independent
        // of how features were assigned to threads.
        let mut best: Option<(usize, SplitCand)> = None;
        for (feature, cand) in scratch.best.iter().enumerate() {
            if let Some(cand) = cand {
                if best.is_none_or(|(_, b)| cand.gain > b.gain) {
                    best = Some((feature, *cand));
                }
            }
        }
        let Some((feature, cand)) = best else {
            scratch.pool.push(hist);
            return self.push_leaf(leaf_value, indices, preds);
        };

        gains[feature] += cand.gain;

        // Partition indices in place: left = code ≤ bin, or missing when
        // default_left.
        let col = ctx.binned.col(feature);
        let split_at = stable_partition(indices, &mut scratch.part, |i| {
            let code = col[i as usize];
            if code == MISSING_BIN {
                cand.default_left
            } else {
                code <= cand.bin
            }
        });
        debug_assert!(split_at > 0 && split_at < indices.len());

        let node_id = self.nodes.len() as u32;
        self.nodes.push(Node {
            feature: feature as u32,
            threshold: ctx.binned.threshold(feature, cand.bin),
            left: 0,
            right: 0,
            default_left: cand.default_left,
            value: 0.0,
        });

        let (left_idx, right_idx) = indices.split_at_mut(split_at);
        let (left_g, left_h) = (
            cand.left_g,
            match ctx.hessians {
                Some(_) => cand.left_h,
                None => cand.left_n as f64,
            },
        );
        let (right_g, right_h) = (g_sum - left_g, h_sum - left_h);

        // Histogram subtraction: scan only the smaller child; the sibling's
        // histogram is `parent − child`, computed in the parent's buffer.
        let left_splittable = !leaf_bound(left_idx.len(), depth + 1, params);
        let right_splittable = !leaf_bound(right_idx.len(), depth + 1, params);
        let (mut left_hist, mut right_hist) = (None, None);
        if left_splittable || right_splittable {
            let left_smaller = left_idx.len() <= right_idx.len();
            let small_idx: &[u32] = if left_smaller { left_idx } else { right_idx };
            let mut small = scratch.acquire(ctx.binned);
            scratch.ordered_g.clear();
            scratch
                .ordered_g
                .extend(small_idx.iter().map(|&i| ctx.gradients[i as usize]));
            if let Some(h) = ctx.hessians {
                scratch.ordered_h.clear();
                scratch
                    .ordered_h
                    .extend(small_idx.iter().map(|&i| h[i as usize]));
            }
            build_hist(
                ctx,
                small_idx,
                &mut small,
                &scratch.ordered_g,
                &scratch.ordered_h,
            );
            hist.subtract(&small);
            let (l, r) = if left_smaller {
                (small, hist)
            } else {
                (hist, small)
            };
            if left_splittable {
                left_hist = Some(l);
            } else {
                scratch.pool.push(l);
            }
            if right_splittable {
                right_hist = Some(r);
            } else {
                scratch.pool.push(r);
            }
        } else {
            scratch.pool.push(hist);
        }

        let left = self.grow_node(
            ctx,
            left_idx,
            depth + 1,
            left_g,
            left_h,
            left_hist,
            gains,
            scratch,
            preds.as_deref_mut(),
        );
        let right = self.grow_node(
            ctx,
            right_idx,
            depth + 1,
            right_g,
            right_h,
            right_hist,
            gains,
            scratch,
            preds,
        );
        self.nodes[node_id as usize].left = left;
        self.nodes[node_id as usize].right = right;
        node_id
    }

    /// Appends a leaf and, when `preds` is given, adds the leaf value to
    /// every member row's running prediction (leaf propagation).
    fn push_leaf(&mut self, value: f32, indices: &[u32], preds: Option<&mut [f32]>) -> u32 {
        if let Some(p) = preds {
            for &i in indices {
                p[i as usize] += value;
            }
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(Node {
            feature: u32::MAX,
            threshold: 0.0,
            left: 0,
            right: 0,
            default_left: false,
            value,
        });
        id
    }

    /// Predicts the tree's contribution for one raw feature row.
    ///
    /// This is the reference traversal (also used during training for
    /// out-of-sample rows); batched serving goes through the flattened
    /// forest in `crate::flat`, which is property-tested bit-identical to
    /// this walk.
    pub fn predict(&self, row: &[f32]) -> f32 {
        let mut node = &self.nodes[0];
        loop {
            if node.feature == u32::MAX {
                return node.value;
            }
            let v = row[node.feature as usize];
            let left = if v.is_nan() {
                node.default_left
            } else {
                v <= node.threshold
            };
            node = if left {
                &self.nodes[node.left as usize]
            } else {
                &self.nodes[node.right as usize]
            };
        }
    }

    /// Number of nodes (leaves + internal).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }
}

/// Whether a node of `len` rows at `depth` must become a leaf without a
/// split search (mirrored by the parent to skip useless histograms).
#[inline]
fn leaf_bound(len: usize, depth: usize, params: &GbmParams) -> bool {
    depth >= params.max_depth || len < 2 * params.min_child_count
}

/// Builds the node histogram for every unmasked feature and finds each
/// feature's best split, fanning the features out over `ctx.threads`
/// scoped workers that own disjoint feature ranges (and hence disjoint
/// histogram slot ranges — plain `split_at_mut`, no locks). With
/// `build == false` the histogram is already populated (subtraction) and
/// only the split scan runs.
#[allow(clippy::too_many_arguments)] // flat hot-path plumbing
fn search_node(
    ctx: &GrowCtx<'_>,
    indices: &[u32],
    hist: &mut HistBuf,
    build: bool,
    ordered_g: &[f32],
    ordered_h: &[f32],
    g_total: f64,
    h_total: f64,
    best: &mut [Option<SplitCand>],
) {
    let n_features = ctx.binned.n_features;
    let offsets = &ctx.binned.slot_offsets;
    let parent_score = g_total * g_total / (h_total + ctx.params.lambda);
    let n_total = indices.len() as u32;

    // Per-feature worker: (re)build the feature's histogram slice, then
    // scan its bins for the best candidate. Identical arithmetic whatever
    // thread runs it, so the outcome is thread-count independent.
    let run_feature = |feature: usize, fg: &mut [f64], fh: &mut [f64], fn_: &mut [u32]| {
        if !ctx.feature_mask[feature] || ctx.binned.n_bins(feature) < 2 {
            return None;
        }
        let col = ctx.binned.col(feature);
        if build {
            fill_feature_hist(
                col,
                indices,
                ordered_g,
                ordered_h,
                ctx.hessians.is_some(),
                fg,
                fh,
                fn_,
            );
        }
        scan_feature(
            ctx.params,
            fg,
            fh,
            fn_,
            ctx.hessians.is_some(),
            g_total,
            h_total,
            n_total,
            parent_score,
        )
    };

    // Parallelism only pays off when the node has real work; the cutoff
    // depends on the data alone, never on the thread count.
    let threads = if (indices.len() * n_features) < 16_384 {
        1
    } else {
        ctx.threads.min(n_features).max(1)
    };
    if threads == 1 {
        for (feature, out) in best.iter_mut().enumerate() {
            let (lo, hi) = (offsets[feature], offsets[feature + 1]);
            *out = run_feature(
                feature,
                &mut hist.g[lo..hi],
                &mut hist.h[lo..hi],
                &mut hist.n[lo..hi],
            );
        }
        return;
    }

    // Hand each worker a contiguous feature range and the matching
    // histogram/result slices.
    let mut g_rest: &mut [f64] = &mut hist.g;
    let mut h_rest: &mut [f64] = &mut hist.h;
    let mut n_rest: &mut [u32] = &mut hist.n;
    let mut best_rest: &mut [Option<SplitCand>] = best;
    let mut f0 = 0usize;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let f1 = ((t + 1) * n_features) / threads;
            let slots = offsets[f1] - offsets[f0];
            let (g_chunk, g_next) = std::mem::take(&mut g_rest).split_at_mut(slots);
            let (h_chunk, h_next) = std::mem::take(&mut h_rest).split_at_mut(slots);
            let (n_chunk, n_next) = std::mem::take(&mut n_rest).split_at_mut(slots);
            let (b_chunk, b_next) = std::mem::take(&mut best_rest).split_at_mut(f1 - f0);
            g_rest = g_next;
            h_rest = h_next;
            n_rest = n_next;
            best_rest = b_next;
            let run_feature = &run_feature;
            let base = offsets[f0];
            let lo_feature = f0;
            scope.spawn(move || {
                for (k, out) in b_chunk.iter_mut().enumerate() {
                    let feature = lo_feature + k;
                    let (lo, hi) = (offsets[feature] - base, offsets[feature + 1] - base);
                    *out = run_feature(
                        feature,
                        &mut g_chunk[lo..hi],
                        &mut h_chunk[lo..hi],
                        &mut n_chunk[lo..hi],
                    );
                }
            });
            f0 = f1;
        }
    });
}

/// Builds the full node histogram (every unmasked feature) by scanning —
/// the subtraction path's "smaller child" build, which needs no split scan.
fn build_hist(
    ctx: &GrowCtx<'_>,
    indices: &[u32],
    hist: &mut HistBuf,
    ordered_g: &[f32],
    ordered_h: &[f32],
) {
    let offsets = &ctx.binned.slot_offsets;
    for feature in 0..ctx.binned.n_features {
        if !ctx.feature_mask[feature] || ctx.binned.n_bins(feature) < 2 {
            continue;
        }
        let (lo, hi) = (offsets[feature], offsets[feature + 1]);
        fill_feature_hist(
            ctx.binned.col(feature),
            indices,
            ordered_g,
            ordered_h,
            ctx.hessians.is_some(),
            &mut hist.g[lo..hi],
            &mut hist.h[lo..hi],
            &mut hist.n[lo..hi],
        );
    }
}

/// Accumulates one feature's histogram slice from a contiguous code column.
#[allow(clippy::too_many_arguments)] // hot inner loop, keep it flat
fn fill_feature_hist(
    col: &[u8],
    indices: &[u32],
    ordered_g: &[f32],
    ordered_h: &[f32],
    has_h: bool,
    fg: &mut [f64],
    fh: &mut [f64],
    fn_: &mut [u32],
) {
    let miss = fg.len() - 1;
    fg.fill(0.0);
    fn_.fill(0);
    if has_h {
        fh.fill(0.0);
        for (k, &i) in indices.iter().enumerate() {
            let code = col[i as usize];
            let slot = if code == MISSING_BIN {
                miss
            } else {
                code as usize
            };
            fg[slot] += ordered_g[k] as f64;
            fh[slot] += ordered_h[k] as f64;
            fn_[slot] += 1;
        }
    } else {
        for (k, &i) in indices.iter().enumerate() {
            let code = col[i as usize];
            let slot = if code == MISSING_BIN {
                miss
            } else {
                code as usize
            };
            fg[slot] += ordered_g[k] as f64;
            fn_[slot] += 1;
        }
    }
}

/// Prefix-scans one feature's histogram for the best second-order-gain
/// split: `gain = GL²/(HL+λ) + GR²/(HR+λ) − G²/(H+λ)` (H = N for squared
/// error, where every hessian is 1). Missing values try both sides.
#[allow(clippy::too_many_arguments)] // hot inner loop, keep it flat
fn scan_feature(
    params: &GbmParams,
    fg: &[f64],
    fh: &[f64],
    fn_: &[u32],
    has_h: bool,
    g_total: f64,
    h_total: f64,
    n_total: u32,
    parent_score: f64,
) -> Option<SplitCand> {
    let n_bins = fg.len() - 1;
    let (miss_g, miss_n) = (fg[n_bins], fn_[n_bins]);
    let miss_h = if has_h { fh[n_bins] } else { miss_n as f64 };
    let mut left_g = 0f64;
    let mut left_h = 0f64;
    let mut left_n = 0u32;
    let mut best: Option<SplitCand> = None;
    for b in 0..(n_bins - 1) {
        left_g += fg[b];
        left_n += fn_[b];
        if has_h {
            left_h += fh[b];
        }
        for &default_left in &[true, false] {
            let (lg, ln) = if default_left {
                (left_g + miss_g, left_n + miss_n)
            } else {
                (left_g, left_n)
            };
            let lh = if has_h {
                if default_left {
                    left_h + miss_h
                } else {
                    left_h
                }
            } else {
                ln as f64
            };
            let rn = n_total - ln;
            if (ln as usize) < params.min_child_count || (rn as usize) < params.min_child_count {
                continue;
            }
            let (rg, rh) = (g_total - lg, h_total - lh);
            let score = lg * lg / (lh + params.lambda) + rg * rg / (rh + params.lambda);
            let gain = score - parent_score;
            if gain > params.min_split_gain && best.as_ref().is_none_or(|b| gain > b.gain) {
                best = Some(SplitCand {
                    gain,
                    bin: b as u8,
                    default_left,
                    left_g: lg,
                    left_h: lh,
                    left_n: ln,
                });
            }
        }
    }
    best
}

/// Stable-order in-place partition using a caller-provided side buffer;
/// returns the number of elements for which `pred` holds (they end up
/// first).
fn stable_partition(xs: &mut [u32], scratch: &mut Vec<u32>, pred: impl Fn(u32) -> bool) -> usize {
    scratch.clear();
    let mut write = 0usize;
    for k in 0..xs.len() {
        let x = xs[k];
        if pred(x) {
            xs[write] = x;
            write += 1;
        } else {
            scratch.push(x);
        }
    }
    xs[write..].copy_from_slice(scratch);
    write
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    fn grow_on(data: &Dataset, params: &GbmParams) -> Tree {
        let binned = Binned::build(data);
        let residuals: Vec<f32> = data.labels().to_vec();
        let mut gains = vec![0.0; data.n_features()];
        Tree::grow(&binned, &residuals, params, &mut gains)
    }

    #[test]
    fn single_split_learns_step_function() {
        let mut d = Dataset::new(1);
        for i in 0..100 {
            let x = i as f32;
            d.push_row(&[x], if x < 50.0 { 0.0 } else { 1.0 });
        }
        let params = GbmParams {
            learning_rate: 1.0,
            ..GbmParams::default()
        };
        let tree = grow_on(&d, &params);
        assert!(tree.predict(&[10.0]) < 0.1);
        assert!(tree.predict(&[90.0]) > 0.9);
    }

    #[test]
    fn constant_labels_give_single_leaf() {
        let mut d = Dataset::new(2);
        for i in 0..50 {
            d.push_row(&[i as f32, (i * 7 % 13) as f32], 3.0);
        }
        let params = GbmParams {
            learning_rate: 1.0,
            lambda: 0.0,
            ..GbmParams::default()
        };
        let tree = grow_on(&d, &params);
        assert_eq!(tree.n_nodes(), 1);
        assert!((tree.predict(&[0.0, 0.0]) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn missing_values_follow_learned_default() {
        // x0 missing ⇒ label 1; x0 present (any value) ⇒ label 0.
        let mut d = Dataset::new(1);
        for i in 0..50 {
            d.push_row(&[i as f32], 0.0);
            d.push_row(&[f32::NAN], 1.0);
        }
        let params = GbmParams {
            learning_rate: 1.0,
            max_depth: 3,
            ..GbmParams::default()
        };
        let tree = grow_on(&d, &params);
        assert!(
            tree.predict(&[f32::NAN]) > 0.7,
            "{}",
            tree.predict(&[f32::NAN])
        );
        assert!(tree.predict(&[25.0]) < 0.3);
    }

    #[test]
    fn respects_max_depth() {
        let mut d = Dataset::new(1);
        for i in 0..256 {
            d.push_row(&[i as f32], (i % 2) as f32); // max-entropy labels
        }
        let params = GbmParams {
            max_depth: 2,
            min_child_count: 1,
            ..GbmParams::default()
        };
        let tree = grow_on(&d, &params);
        // Depth-2 binary tree has at most 3 internal + 4 leaf nodes.
        assert!(tree.n_nodes() <= 7, "{} nodes", tree.n_nodes());
    }

    #[test]
    fn min_child_count_blocks_tiny_leaves() {
        let mut d = Dataset::new(1);
        for i in 0..10 {
            d.push_row(&[i as f32], if i == 0 { 1.0 } else { 0.0 });
        }
        let params = GbmParams {
            min_child_count: 5,
            learning_rate: 1.0,
            lambda: 0.0,
            ..GbmParams::default()
        };
        let tree = grow_on(&d, &params);
        // No leaf may isolate the single positive sample: every leaf holds
        // ≥ 5 samples of which at most one is positive, so its value ≤ 1/5.
        assert!(
            tree.predict(&[0.0]) <= 0.2 + 1e-6,
            "{}",
            tree.predict(&[0.0])
        );
    }

    #[test]
    fn two_feature_interaction() {
        // label = 1 iff x0 > 5 && x1 > 5 — needs depth 2.
        let mut d = Dataset::new(2);
        for a in 0..10 {
            for b in 0..10 {
                let y = if a > 5 && b > 5 { 1.0 } else { 0.0 };
                d.push_row(&[a as f32, b as f32], y);
            }
        }
        let params = GbmParams {
            learning_rate: 1.0,
            max_depth: 3,
            min_child_count: 1,
            lambda: 0.0,
            ..GbmParams::default()
        };
        let tree = grow_on(&d, &params);
        assert!(tree.predict(&[9.0, 9.0]) > 0.8);
        assert!(tree.predict(&[9.0, 1.0]) < 0.2);
        assert!(tree.predict(&[1.0, 9.0]) < 0.2);
    }

    #[test]
    fn partition_preserves_all_elements() {
        let mut xs: Vec<u32> = (0..100).collect();
        let mut buf = Vec::new();
        let split = stable_partition(&mut xs, &mut buf, |x| x % 3 == 0);
        assert_eq!(split, 34);
        assert!(xs[..split].iter().all(|x| x % 3 == 0));
        assert!(xs[split..].iter().all(|x| x % 3 != 0));
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn leaf_propagation_matches_per_row_predict() {
        // Growing with `preds` must add exactly `tree.predict(row)` to each
        // in-sample row — bin thresholds reconstruct the training-time
        // routing bit-exactly.
        let mut d = Dataset::new(2);
        for i in 0..300 {
            let x0 = if i % 7 == 0 {
                f32::NAN
            } else {
                (i % 31) as f32
            };
            d.push_row(&[x0, (i % 13) as f32], ((i * 5) % 17) as f32 / 17.0);
        }
        let binned = Binned::build(&d);
        let residuals: Vec<f32> = d.labels().to_vec();
        let mut gains = vec![0.0; d.n_features()];
        let mut scratch = TreeScratch::new();
        let mut preds = vec![0f32; d.n_rows()];
        let params = GbmParams::default();
        let tree = Tree::grow_on(
            &binned,
            &residuals,
            None,
            (0..d.n_rows() as u32).collect(),
            &vec![true; d.n_features()],
            &params,
            1,
            &mut gains,
            &mut scratch,
            Some(&mut preds),
        );
        for i in 0..d.n_rows() {
            assert_eq!(
                preds[i].to_bits(),
                tree.predict(d.row(i)).to_bits(),
                "row {i} diverged"
            );
        }
    }
}
