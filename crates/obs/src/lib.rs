//! `lhr-obs` — the workspace's deterministic observability layer.
//!
//! Every result in the paper is a *time-evolving* quantity — hit ratio over
//! sliding windows, HRO's per-window bound, LHR's retrain cadence — yet a
//! simulation that only reports end-of-run aggregates cannot show *when*
//! LHR converges, *why* a retrain fired, or *where* wall-clock goes. This
//! crate is the replayable-telemetry substrate the rest of the workspace
//! instruments itself with, in the zero-external-dependency style of
//! `lhr-util`:
//!
//! - [`series`] — **trace-time windowed metric series**: hit ratio, byte
//!   hit ratio, admission rate, eviction pressure, and availability per
//!   N-second or N-request window, accumulated locally (no locking on the
//!   per-request hot path) and exported as JSONL or CSV.
//! - [`event`] — a structured **event bus**: typed records
//!   (`Event { t, kind, fields }`) for LHR retrains, δ-threshold updates,
//!   Zipf-α detection triggers, circuit-breaker transitions, outage
//!   windows, stale serves, and coalescing collapses.
//! - [`span`] — lightweight **profiling spans**: scoped timers aggregated
//!   into a self-time/total-time tree (`obs.span("gbm.fit")`), with a
//!   *deterministic* mode that records span counts but zeroes wall-clock so
//!   fixed-seed reports stay byte-identical.
//! - [`hist`] — log-bucketed histograms (powers of two) for latency and
//!   size distributions.
//! - [`trace`] — **deterministic request-path tracing**: a `1/N` sample
//!   of requests (sampling is a pure function of `(object_id, trace
//!   time)`) each recorded as an ordered step list — edge lookup,
//!   failover, peer hint, shield lookup, origin attempts, breaker state
//!   — with simulated-time deltas, plus per-window worst-latency
//!   exemplar marks.
//! - [`slo`] — a **burn-rate SLO engine**: declarative objectives
//!   (availability, hit ratio, P99) evaluated over the windowed series
//!   with fast/slow multi-window burn rules, emitting deterministic
//!   breach/recovery events.
//! - [`record`] — the JSONL line model tying it all together, parseable
//!   back for offline analysis (`lhr-cache obs summarize`).
//! - [`summary`] — the text report renderer (sparklines, event taxonomy,
//!   span tree) behind the `obs summarize` CLI subcommand.
//!
//! # Determinism contract
//!
//! With [`ObsConfig::deterministic`] set, the serialized output
//! ([`Obs::to_jsonl`]) of two runs with the same seed, trace, and
//! configuration is **byte-identical**: window records and events derive
//! only from trace time and seeded PRNG draws, and spans report counts with
//! zeroed durations. With it unset, span durations and any wall-clock
//! gauges are real, and only those fields may differ between runs.
//!
//! # Example
//!
//! ```
//! use lhr_obs::{Obs, ObsConfig, ObsWindow};
//! use lhr_obs::series::{ReqSample, SeriesAcc};
//!
//! let obs = Obs::new(ObsConfig {
//!     window: ObsWindow::Requests(2),
//!     deterministic: true,
//!     ..ObsConfig::default()
//! });
//! let mut acc = SeriesAcc::new(obs.window());
//! for i in 0..5u64 {
//!     acc.on_request(if i % 2 == 0 {
//!         ReqSample::hit(i, 100)
//!     } else {
//!         ReqSample::miss_admitted(i, 100)
//!     });
//! }
//! obs.push_windows(acc.finish());
//! let jsonl = obs.to_jsonl();
//! assert_eq!(jsonl.lines().count(), 1 + 3); // meta + 2 full windows + 1 partial
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod hist;
pub mod record;
mod recorder;
pub mod series;
pub mod slo;
pub mod span;
pub mod summary;
pub mod trace;

pub use event::{Event, EventKind};
pub use hist::LogHistogram;
pub use record::ObsRecord;
pub use recorder::{Obs, ObsConfig};
pub use series::{ObsWindow, WindowRecord};
pub use slo::{SloObjective, SloVerdict};
pub use span::SpanRecord;
pub use trace::{TraceBuilder, TraceRecord, TraceRecorder, TraceStep};
