//! A small, deterministic JSON layer: value model, parser, writer, and the
//! [`ToJson`]/[`FromJson`] traits that replace `serde` in this workspace.
//!
//! # Supported subset (and superset)
//!
//! The parser accepts standard JSON (RFC 8259): objects, arrays, strings
//! with `\uXXXX` escapes, numbers, `true`/`false`/`null`. Two deliberate
//! extensions make the layer total over the types we persist:
//!
//! - The literals `NaN`, `Infinity`, and `-Infinity` are accepted and
//!   emitted for non-finite floats (GBM split thresholds can be NaN).
//! - Integers are kept exact: a literal without `.`/`e` parses into
//!   [`Json::UInt`]/[`Json::Int`] (full `u64`/`i64` range — object ids are
//!   hashes, so `f64`'s 53-bit mantissa would corrupt them). `u128` values
//!   beyond `u64::MAX` are written as decimal strings.
//!
//! Not supported (by design — nothing in the workspace needs them):
//! duplicate-key detection, `\u` surrogate pairs beyond the BMP are passed
//! through unpaired, and object key order is *preserved*, not sorted.
//!
//! # Determinism
//!
//! [`Json::to_string`](Json#method.to_string) is byte-deterministic:
//! fields serialize in insertion order and floats use Rust's shortest
//! round-trip formatting. `parse(write(v)) == v` and
//! `write(parse(s)) == s` for any `s` produced by the writer — the property
//! the GBM model round-trip test relies on.
//!
//! # Example
//!
//! ```
//! use lhr_util::json::{Json, ToJson, FromJson};
//!
//! let v = Json::parse(r#"{"name":"zipf","alpha":0.9,"n":100}"#).unwrap();
//! assert_eq!(f64::from_json(v.get("alpha").unwrap()).unwrap(), 0.9);
//! // Writer round-trips byte-identically.
//! assert_eq!(v.to_string(), r#"{"name":"zipf","alpha":0.9,"n":100}"#);
//! ```
//!
//! Deriving both traits for your own types is one macro call (fields must
//! themselves implement the traits):
//!
//! ```
//! use lhr_util::{impl_json, json::{ToJson, FromJson}};
//!
//! #[derive(Debug, PartialEq)]
//! struct SweepPoint { capacity: u64, hit_ratio: f64 }
//! impl_json!(struct SweepPoint { capacity, hit_ratio });
//!
//! let p = SweepPoint { capacity: 1 << 30, hit_ratio: 0.42 };
//! let text = p.to_json().to_string();
//! assert_eq!(SweepPoint::from_json(&Json::parse(&text).unwrap()).unwrap(), p);
//! # use lhr_util::json::Json;
//! ```

use std::fmt;

/// A parsed JSON value.
///
/// Numbers are split into three variants so integers survive exactly; the
/// writer maintains the invariant that [`Json::Int`] holds only negative
/// values (non-negative integers normalize to [`Json::UInt`]).
///
/// Equality compares floats by bit pattern (`NaN == NaN`, `-0.0 != 0.0`),
/// matching the byte-deterministic writer rather than IEEE semantics.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A float (including the non-finite extensions).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; key order is preserved.
    Object(Vec<(String, Json)>),
}

impl PartialEq for Json {
    fn eq(&self, other: &Json) -> bool {
        match (self, other) {
            (Json::Null, Json::Null) => true,
            (Json::Bool(a), Json::Bool(b)) => a == b,
            (Json::UInt(a), Json::UInt(b)) => a == b,
            (Json::Int(a), Json::Int(b)) => a == b,
            (Json::Float(a), Json::Float(b)) => a.to_bits() == b.to_bits(),
            (Json::Str(a), Json::Str(b)) => a == b,
            (Json::Array(a), Json::Array(b)) => a == b,
            (Json::Object(a), Json::Object(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Json {}

/// Error produced by parsing or by [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Human-readable description, with byte offset for parse errors.
    pub msg: String,
}

impl JsonError {
    /// Builds an error from anything displayable.
    pub fn new(msg: impl fmt::Display) -> Self {
        JsonError {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a JSON document (one value, trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }

    /// Object field lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element access; `None` on non-arrays or out of range.
    pub fn at(&self, index: usize) -> Option<&Json> {
        match self {
            Json::Array(items) => items.get(index),
            _ => None,
        }
    }

    /// The value as an `f64` if it is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::UInt(u) => Some(u as f64),
            Json::Int(i) => Some(i as f64),
            Json::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serializes with two-space indentation (for human-facing reports);
    /// same value model as the compact writer.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => {
                out.push_str(itoa_buf(*u).as_str());
            }
            Json::Int(i) => {
                if *i >= 0 {
                    out.push_str(itoa_buf(*i as u64).as_str());
                } else {
                    out.push('-');
                    out.push_str(itoa_buf(i.unsigned_abs()).as_str());
                }
            }
            Json::Float(f) => write_f64(*f, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Object(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

impl fmt::Display for Json {
    /// Compact, byte-deterministic serialization.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_compact(&mut out);
        f.write_str(&out)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Stack-allocated decimal formatting for the hot integer path.
fn itoa_buf(mut v: u64) -> ItoaBuf {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    ItoaBuf { buf, start: i }
}

struct ItoaBuf {
    buf: [u8; 20],
    start: usize,
}

impl ItoaBuf {
    fn as_str(&self) -> &str {
        std::str::from_utf8(&self.buf[self.start..]).expect("digits are ascii")
    }
}

fn write_f64(f: f64, out: &mut String) {
    use fmt::Write;
    if f.is_nan() {
        out.push_str("NaN");
    } else if f == f64::INFINITY {
        out.push_str("Infinity");
    } else if f == f64::NEG_INFINITY {
        out.push_str("-Infinity");
    } else if f == 0.0 && f.is_sign_negative() {
        // Display would print "-0", which the parser must not normalize to
        // the unsigned integer 0; keep the float spelling.
        out.push_str("-0.0");
    } else {
        // Rust's shortest-roundtrip Display; never exponent notation, never
        // a trailing ".0" — integral floats intentionally re-parse as
        // integer variants (the numeric value is identical).
        write!(out, "{f}").expect("writing to String cannot fail");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                write!(out, "\\u{:04x}", c as u32).expect("writing to String cannot fail");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl fmt::Display) -> JsonError {
        JsonError::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'N') => self.literal("NaN", Json::Float(f64::NAN)),
            Some(b'I') => self.literal("Infinity", Json::Float(f64::INFINITY)),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the longest escape-free ASCII/UTF-8 run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| self.err(format!("invalid utf-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000C}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(self.err(format!("bad escape `\\{}`", other as char))),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
            if self.peek() == Some(b'I') {
                return self.literal("Infinity", Json::Float(f64::NEG_INFINITY));
            }
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(i) = text.parse::<i64>() {
                    // "-0" must stay a float so the writer round-trips it.
                    if i == 0 && digits.chars().all(|c| c == '0') {
                        return Ok(Json::Float(-0.0));
                    }
                    return Ok(Json::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| JsonError::new(format!("bad number `{text}` at byte {start}")))
    }
}

/// Serialization into the [`Json`] value model.
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Json;
}

/// Deserialization from the [`Json`] value model.
pub trait FromJson: Sized {
    /// Reconstructs `Self`, failing with a description of the mismatch.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

/// Extracts and converts a required object field — the building block the
/// [`impl_json!`] macro expands to.
pub fn field<T: FromJson>(v: &Json, key: &str) -> Result<T, JsonError> {
    let inner = v
        .get(key)
        .ok_or_else(|| JsonError::new(format!("missing field `{key}`")))?;
    T::from_json(inner).map_err(|e| JsonError::new(format!("field `{key}`: {}", e.msg)))
}

fn type_name(v: &Json) -> &'static str {
    match v {
        Json::Null => "null",
        Json::Bool(_) => "bool",
        Json::UInt(_) | Json::Int(_) => "integer",
        Json::Float(_) => "float",
        Json::Str(_) => "string",
        Json::Array(_) => "array",
        Json::Object(_) => "object",
    }
}

fn expected(what: &str, v: &Json) -> JsonError {
    JsonError::new(format!("expected {what}, found {}", type_name(v)))
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Bool(b) => Ok(*b),
            other => Err(expected("bool", other)),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) => Ok(s.clone()),
            other => Err(expected("string", other)),
        }
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

macro_rules! json_uint {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::UInt(*self as u64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let u = match *v {
                    Json::UInt(u) => u,
                    Json::Int(i) if i >= 0 => i as u64,
                    ref other => return Err(expected("unsigned integer", other)),
                };
                <$t>::try_from(u)
                    .map_err(|_| JsonError::new(format!("{u} out of range for {}", stringify!($t))))
            }
        }
    )+};
}

json_uint!(u8, u16, u32, u64, usize);

macro_rules! json_int {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                let i = *self as i64;
                if i >= 0 { Json::UInt(i as u64) } else { Json::Int(i) }
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let i = match *v {
                    Json::Int(i) => i,
                    Json::UInt(u) => i64::try_from(u)
                        .map_err(|_| JsonError::new(format!("{u} out of range for i64")))?,
                    ref other => return Err(expected("integer", other)),
                };
                <$t>::try_from(i)
                    .map_err(|_| JsonError::new(format!("{i} out of range for {}", stringify!($t))))
            }
        }
    )+};
}

json_int!(i8, i16, i32, i64, isize);

impl ToJson for u128 {
    /// Values above `u64::MAX` are written as decimal strings (JSON numbers
    /// would lose precision in readers that coerce to doubles).
    fn to_json(&self) -> Json {
        match u64::try_from(*self) {
            Ok(u) => Json::UInt(u),
            Err(_) => Json::Str(self.to_string()),
        }
    }
}

impl FromJson for u128 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::UInt(u) => Ok(*u as u128),
            Json::Int(i) if *i >= 0 => Ok(*i as u128),
            Json::Str(s) => s
                .parse::<u128>()
                .map_err(|e| JsonError::new(format!("bad u128 string: {e}"))),
            other => Err(expected("unsigned integer or decimal string", other)),
        }
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64().ok_or_else(|| expected("number", v))
    }
}

impl ToJson for f32 {
    /// Widening to `f64` is exact, so `f32` values survive bit-for-bit.
    fn to_json(&self) -> Json {
        Json::Float(*self as f64)
    }
}

impl FromJson for f32 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(f64::from_json(v)? as f32)
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Array(items) => items.iter().map(T::from_json).collect(),
            other => Err(expected("array", other)),
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Array(items) if items.len() == 2 => {
                Ok((A::from_json(&items[0])?, B::from_json(&items[1])?))
            }
            other => Err(expected("2-element array", other)),
        }
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Array(items) if items.len() == 3 => Ok((
                A::from_json(&items[0])?,
                B::from_json(&items[1])?,
                C::from_json(&items[2])?,
            )),
            other => Err(expected("3-element array", other)),
        }
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

/// Implements [`ToJson`] + [`FromJson`] for a struct or enum — the
/// replacement for `#[derive(Serialize, Deserialize)]`.
///
/// Three shapes are supported:
///
/// - `impl_json!(struct Name { field_a, field_b })` — named-field structs,
///   serialized as an object in declaration order;
/// - `impl_json!(newtype Name)` — one-field tuple structs, serialized as
///   the bare inner value;
/// - `impl_json!(enum Name { A, B })` — unit-variant enums, serialized as
///   the variant-name string;
/// - `impl_json!(enum Name { A { x }, B { y, z } })` — struct-variant
///   enums, serialized externally tagged: `{"A":{"x":…}}`.
///
/// The macro must be invoked where the type's fields are visible (same
/// module for private fields).
///
/// ```
/// use lhr_util::{impl_json, json::{Json, ToJson, FromJson}};
///
/// #[derive(Debug, PartialEq)]
/// enum Mode { Warmup, Measure }
/// impl_json!(enum Mode { Warmup, Measure });
///
/// assert_eq!(Mode::Warmup.to_json().to_string(), r#""Warmup""#);
/// let back = Mode::from_json(&Json::parse(r#""Measure""#).unwrap()).unwrap();
/// assert_eq!(back, Mode::Measure);
/// ```
#[macro_export]
macro_rules! impl_json {
    (struct $name:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $name {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Object(vec![
                    $((stringify!($field).to_string(), $crate::json::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
        impl $crate::json::FromJson for $name {
            fn from_json(v: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                Ok($name { $($field: $crate::json::field(v, stringify!($field))?,)+ })
            }
        }
    };
    (newtype $name:ident) => {
        impl $crate::json::ToJson for $name {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::ToJson::to_json(&self.0)
            }
        }
        impl $crate::json::FromJson for $name {
            fn from_json(v: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                Ok($name($crate::json::FromJson::from_json(v)?))
            }
        }
    };
    (enum $name:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $name {
            fn to_json(&self) -> $crate::json::Json {
                match self {
                    $($name::$variant => $crate::json::Json::Str(stringify!($variant).to_string()),)+
                }
            }
        }
        impl $crate::json::FromJson for $name {
            fn from_json(v: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                match v {
                    $($crate::json::Json::Str(s) if s == stringify!($variant) =>
                        Ok($name::$variant),)+
                    other => Err($crate::json::JsonError::new(format!(
                        "expected one of the {} variant names, found {}",
                        stringify!($name),
                        other
                    ))),
                }
            }
        }
    };
    (enum $name:ident { $($variant:ident { $($f:ident),+ $(,)? }),+ $(,)? }) => {
        impl $crate::json::ToJson for $name {
            fn to_json(&self) -> $crate::json::Json {
                match self {
                    $($name::$variant { $($f),+ } => $crate::json::Json::Object(vec![(
                        stringify!($variant).to_string(),
                        $crate::json::Json::Object(vec![
                            $((stringify!($f).to_string(), $crate::json::ToJson::to_json($f)),)+
                        ]),
                    )]),)+
                }
            }
        }
        impl $crate::json::FromJson for $name {
            fn from_json(v: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                $(
                    if let Some(inner) = v.get(stringify!($variant)) {
                        return Ok($name::$variant {
                            $($f: $crate::json::field(inner, stringify!($f))?,)+
                        });
                    }
                )+
                Err($crate::json::JsonError::new(format!(
                    "expected a {} variant tag, found {}",
                    stringify!($name),
                    v
                )))
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) {
        let v = Json::parse(text).expect(text);
        assert_eq!(v.to_string(), text, "writer diverged for {text}");
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn scalar_roundtrips_are_byte_identical() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "42",
            "-7",
            "18446744073709551615",
            "-9223372036854775808",
            "0.5",
            "-0.0",
            "1.25e300",
            "NaN",
            "Infinity",
            "-Infinity",
            r#""hello""#,
            r#""tab\tnewline\nquote\"""#,
            r#"[1,2.5,"x",null]"#,
            r#"{"a":1,"b":[true,{"c":"d"}]}"#,
            "[]",
            "{}",
        ] {
            let v = Json::parse(text).expect(text);
            let written = v.to_string();
            let v2 = Json::parse(&written).unwrap();
            assert_eq!(written, v2.to_string(), "unstable writer for {text}");
            match (&v, &v2) {
                (Json::Float(a), Json::Float(b)) => {
                    assert_eq!(a.to_bits(), b.to_bits(), "float bits changed for {text}")
                }
                _ => assert_eq!(v, v2),
            }
        }
    }

    #[test]
    fn canonical_texts_reserialize_exactly() {
        for text in [
            "0",
            "42",
            "-7",
            "0.5",
            "-0.0",
            "NaN",
            r#"{"a":1,"b":[true,null],"c":"x"}"#,
            "[1,2,3]",
        ] {
            roundtrip(text);
        }
    }

    #[test]
    fn large_u64_survives_exactly() {
        let id = u64::MAX - 12345;
        let v = id.to_json();
        let back = u64::from_json(&Json::parse(&v.to_string()).unwrap()).unwrap();
        assert_eq!(back, id);
    }

    #[test]
    fn u128_string_fallback() {
        let big: u128 = u64::MAX as u128 * 1000;
        let text = big.to_json().to_string();
        assert!(text.starts_with('"'));
        let back = u128::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, big);
        // Small u128s stay numeric.
        assert_eq!(7u128.to_json(), Json::UInt(7));
    }

    #[test]
    fn f32_survives_exactly() {
        for x in [0.1f32, f32::MIN_POSITIVE, 3.4e38, -0.0, 1.0 / 3.0] {
            let text = x.to_json().to_string();
            let back = f32::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} → {text} → {back}");
        }
        let nan_text = f32::NAN.to_json().to_string();
        assert!(f32::from_json(&Json::parse(&nan_text).unwrap())
            .unwrap()
            .is_nan());
    }

    #[test]
    fn whitespace_and_escapes_parse() {
        let v = Json::parse(" { \"k\" : [ 1 , \"\\u0041\\n\" ] } ").unwrap();
        assert_eq!(v.get("k").unwrap().at(1).unwrap().as_str().unwrap(), "A\n");
    }

    #[test]
    fn parse_errors_carry_position() {
        for bad in [
            "{",
            "[1,",
            "\"unterminated",
            "tru",
            "{\"a\" 1}",
            "",
            "1 2",
            "{'a':1}",
        ] {
            let err = Json::parse(bad).unwrap_err();
            assert!(err.msg.contains("byte"), "{bad}: {err}");
        }
    }

    #[test]
    fn option_vec_tuple_impls() {
        let v: Option<u32> = None;
        assert_eq!(v.to_json(), Json::Null);
        assert_eq!(Option::<u32>::from_json(&Json::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_json(&Json::UInt(3)).unwrap(), Some(3));

        let pairs: Vec<(u64, f64)> = vec![(1, 0.5), (2, 0.25)];
        let text = pairs.to_json().to_string();
        assert_eq!(text, "[[1,0.5],[2,0.25]]");
        assert_eq!(
            Vec::<(u64, f64)>::from_json(&Json::parse(&text).unwrap()).unwrap(),
            pairs
        );
    }

    #[test]
    fn negative_zero_float_round_trips() {
        let z = -0.0f64;
        let text = z.to_json().to_string();
        assert_eq!(text, "-0.0");
        let back = f64::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert!(back == 0.0 && back.is_sign_negative());
    }

    #[derive(Debug, PartialEq)]
    struct Inner {
        id: u64,
        weight: f32,
    }
    impl_json!(struct Inner { id, weight });

    #[derive(Debug, PartialEq)]
    struct Outer {
        name: String,
        items: Vec<Inner>,
        note: Option<String>,
    }
    impl_json!(struct Outer { name, items, note });

    #[derive(Debug, PartialEq)]
    enum Tag {
        Alpha,
        Beta,
    }
    impl_json!(
        enum Tag {
            Alpha,
            Beta,
        }
    );

    #[derive(Debug, PartialEq)]
    enum Shape {
        Circle { radius: f64 },
        Rect { w: f64, h: f64 },
    }
    impl_json!(enum Shape { Circle { radius }, Rect { w, h } });

    #[test]
    fn macro_struct_roundtrip() {
        let o = Outer {
            name: "x".into(),
            items: vec![
                Inner { id: 1, weight: 0.5 },
                Inner {
                    id: u64::MAX,
                    weight: -1.5,
                },
            ],
            note: None,
        };
        let text = o.to_json().to_string();
        let back = Outer::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, o);
        // And the serialized text itself is stable.
        assert_eq!(back.to_json().to_string(), text);
    }

    #[test]
    fn macro_enum_roundtrips() {
        for t in [Tag::Alpha, Tag::Beta] {
            let text = t.to_json().to_string();
            assert_eq!(Tag::from_json(&Json::parse(&text).unwrap()).unwrap(), t);
        }
        for s in [
            Shape::Circle { radius: 1.5 },
            Shape::Rect { w: 2.0, h: 3.0 },
        ] {
            let text = s.to_json().to_string();
            assert_eq!(Shape::from_json(&Json::parse(&text).unwrap()).unwrap(), s);
        }
        assert!(Tag::from_json(&Json::parse(r#""Gamma""#).unwrap()).is_err());
    }

    #[test]
    fn missing_field_error_names_the_field() {
        let err = Inner::from_json(&Json::parse(r#"{"id":1}"#).unwrap()).unwrap_err();
        assert!(err.msg.contains("weight"), "{err}");
    }

    #[test]
    fn pretty_printer_is_reparseable() {
        let v = Json::parse(r#"{"a":[1,2],"b":{"c":null},"d":[]}"#).unwrap();
        let pretty = v.to_string_pretty();
        assert!(pretty.contains('\n'));
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }
}
