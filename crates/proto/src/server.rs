//! The simulated CDN server and its resource report.
//!
//! The serving path layers graceful degradation over the origin fetch (see
//! [`crate::fault`]): retries with exponential backoff and jitter, a
//! per-origin circuit breaker, RFC 5861 stale serving from expired-but-
//! cached copies, and coalescing of concurrent misses into one in-flight
//! fetch. With the default [`ServerConfig`] (no injected faults) the path
//! behaves exactly like the original infallible-origin model.

use crate::fault::FaultConfig;
use crate::fault::{CircuitBreaker, FaultPlan, OriginOutcome, ResilienceConfig, RetryPolicy};
use crate::latency::{transfer_ms, LatencyModel};
use lhr_obs::series::{ReqSample, SeriesAcc};
use lhr_obs::trace::TraceBuilder;
use lhr_obs::{Event, EventKind, LogHistogram, Obs};
use lhr_sim::{CachePolicy, Outcome};
use lhr_trace::{ObjectId, Time, Trace};
use lhr_util::hash::FastMap;
use lhr_util::json::{Json, ToJson};
use std::time::Instant;

/// One trace detail pair (keeps the hook-point call sites short).
#[inline]
pub(crate) fn kv(key: &str, value: impl ToJson) -> (String, Json) {
    (key.to_string(), value.to_json())
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The latency/throughput model.
    pub latency: LatencyModel,
    /// Content freshness lifetime in seconds (ATS §6.1 step 2); `None`
    /// disables freshness checks (the Caffeine in-memory setting).
    pub freshness_secs: Option<f64>,
    /// Probability that a revalidated content is still fresh (no refetch).
    /// Deterministic per (object, epoch) — no RNG on the serving path.
    pub revalidate_fresh_prob: f64,
    /// Leading requests excluded from the report (cache warmup).
    pub warmup_requests: usize,
    /// Record a hit-ratio series point every this many requests (Figures 7
    /// and 13); `None` disables.
    pub series_every: Option<usize>,
    /// The injected origin fault schedule (default: infallible origin).
    pub faults: FaultConfig,
    /// Retry / circuit-breaker / stale-serving / coalescing settings.
    pub resilience: ResilienceConfig,
    /// When true, wall-clock policy compute time is excluded from the
    /// latency and CPU model so two replays with the same fault seed
    /// produce byte-identical reports (see [`ServerReport::stable_json`]).
    pub deterministic: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            latency: LatencyModel::default(),
            freshness_secs: Some(3_600.0),
            revalidate_fresh_prob: 0.9,
            warmup_requests: 0,
            series_every: None,
            faults: FaultConfig::default(),
            resilience: ResilienceConfig::default(),
            deterministic: false,
        }
    }
}

/// Everything the prototype experiments report (Tables 2–4), plus the
/// degraded-mode counters of the fault-injected serving path.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Policy (prototype) name.
    pub name: String,
    /// Trace name.
    pub trace: String,
    /// Content (object) hit ratio, percent. Stale serves count as hits
    /// (they are served from the cache); error responses never do.
    pub content_hit_pct: f64,
    /// "max" experiment throughput in Gbps: total bytes served over the
    /// serving path's busy time.
    pub throughput_gbps: f64,
    /// Peak CPU percent: policy compute time over serving busy time.
    pub peak_cpu_pct: f64,
    /// Peak memory in GB: policy metadata + server bookkeeping.
    pub peak_mem_gb: f64,
    /// P90 user latency, ms ("normal" replay).
    pub p90_latency_ms: f64,
    /// P99 user latency, ms.
    pub p99_latency_ms: f64,
    /// Mean user latency, ms.
    pub mean_latency_ms: f64,
    /// Average WAN traffic in Gbps over the trace duration.
    pub wan_gbps: f64,
    /// Percent of measured requests served successfully (fresh, revalidated,
    /// coalesced, or stale — everything except error responses).
    pub availability_pct: f64,
    /// Measured requests that got an error response (origin unreachable and
    /// no servable stale copy).
    pub errors_served: u64,
    /// Measured requests served from an expired cached copy (stale-if-error
    /// + stale-while-revalidate).
    pub stale_served: u64,
    /// Origin fetch retries over the whole replay (including warmup).
    pub retries: u64,
    /// Measured misses that joined an already in-flight origin fetch
    /// instead of issuing their own.
    pub coalesced_fetches: u64,
    /// Circuit-breaker transitions to open over the whole replay.
    pub breaker_opens: u64,
    /// Circuit-breaker transitions back to closed over the whole replay.
    pub breaker_closes: u64,
    /// P90 latency over degraded requests only (retried, stale-served,
    /// coalesced, or errored), ms; 0 when nothing degraded.
    pub degraded_p90_latency_ms: f64,
    /// P99 latency over degraded requests only, ms.
    pub degraded_p99_latency_ms: f64,
    /// Hit-ratio time series (cumulative), if requested.
    pub series: Vec<(u64, f64)>,
    /// Wall-clock seconds the replay took (simulation cost, not modeled
    /// time).
    pub replay_wall_secs: f64,
}

lhr_util::impl_json!(struct ServerReport {
    name,
    trace,
    content_hit_pct,
    throughput_gbps,
    peak_cpu_pct,
    peak_mem_gb,
    p90_latency_ms,
    p99_latency_ms,
    mean_latency_ms,
    wan_gbps,
    availability_pct,
    errors_served,
    stale_served,
    retries,
    coalesced_fetches,
    breaker_opens,
    breaker_closes,
    degraded_p90_latency_ms,
    degraded_p99_latency_ms,
    series,
    replay_wall_secs,
});

impl ServerReport {
    /// JSON with the wall-clock field zeroed: with
    /// [`ServerConfig::deterministic`] set, two replays of the same trace,
    /// policy, and fault seed produce byte-identical output.
    pub fn stable_json(&self) -> String {
        let mut stable = self.clone();
        stable.replay_wall_secs = 0.0;
        stable.to_json().to_string()
    }
}

/// Result of one hardened origin fetch (the retry chain as a whole).
struct FetchResult {
    /// Whether any attempt ultimately succeeded.
    ok: bool,
    /// Milliseconds burned before the successful transfer started (or
    /// before giving up): error RTTs, timeouts, and retry backoffs.
    delay_ms: f64,
    /// Rate multiplier of the successful attempt (1.0 nominal).
    rate_scale: f64,
    /// False when the circuit breaker failed the fetch fast without
    /// contacting the origin.
    attempted: bool,
}

/// Runs one fetch through the breaker and the retry chain. When the
/// request is sampled (`tb`), each attempt becomes an `origin_fetch` trace
/// step and a breaker fast-fail a `breaker{state:open}` step; the trace
/// clock advances by the same error-RTT / timeout / backoff components
/// that build `delay_ms`.
fn origin_fetch(
    lat: &LatencyModel,
    retry: &RetryPolicy,
    plan: &mut FaultPlan,
    breaker: &mut CircuitBreaker,
    now: Time,
    retries: &mut u64,
    mut tb: Option<&mut TraceBuilder>,
) -> FetchResult {
    if !breaker.allow(now) {
        if let Some(tb) = tb.as_deref_mut() {
            tb.push("breaker", 0, vec![kv("state", "open")]);
        }
        return FetchResult {
            ok: false,
            delay_ms: 0.0,
            rate_scale: 1.0,
            attempted: false,
        };
    }
    let mut delay_ms = 0.0;
    let mut attempt = 0u32;
    loop {
        // (outcome name, Some(rate_scale) on success, ms this attempt cost)
        let (name, done, step_ms) = match plan.outcome(now) {
            OriginOutcome::Success => ("success", Some(1.0), 0.0),
            OriginOutcome::Slow { rate_scale } => ("slow", Some(rate_scale), 0.0),
            OriginOutcome::Error => ("error", None, lat.origin_rtt_ms),
            OriginOutcome::Timeout => ("timeout", None, retry.timeout_ms),
        };
        delay_ms += step_ms;
        let give_up = done.is_none() && attempt >= retry.max_retries;
        let backoff_ms = if done.is_none() && !give_up {
            retry.backoff_ms(attempt, plan.jitter())
        } else {
            0.0
        };
        if let Some(tb) = tb.as_deref_mut() {
            tb.advance(step_ms);
            let mut detail = vec![kv("attempt", attempt as u64 + 1), kv("outcome", name)];
            if backoff_ms > 0.0 {
                detail.push(kv("backoff_ms", backoff_ms));
            }
            tb.push("origin_fetch", 0, detail);
            tb.advance(backoff_ms);
        }
        if let Some(rate_scale) = done {
            breaker.record_success();
            return FetchResult {
                ok: true,
                delay_ms,
                rate_scale,
                attempted: true,
            };
        }
        if give_up {
            breaker.record_failure(now);
            return FetchResult {
                ok: false,
                delay_ms,
                rate_scale: 1.0,
                attempted: true,
            };
        }
        delay_ms += backoff_ms;
        *retries += 1;
        attempt += 1;
    }
}

/// The in-flight fetch window a serving path coalesces misses into:
/// object → (fetch completion time, fetch succeeded). [`CdnServer::replay`]
/// uses a request-local [`FastMap`]; the threaded engine shares one
/// [`crate::FetchTable`] across shards so the same serve code coalesces
/// against fetches no matter which shard claimed them.
/// Both latency percentiles via selection instead of a full sort —
/// identical values (the k-th order statistic is unique under
/// `total_cmp`), O(n): select p90, then select p99 inside the ≥p90 tail
/// the first selection partitioned off. NaN latencies (a degenerate
/// latency model) still order last and degrade the percentile instead of
/// panicking the whole replay. Shared by the single server, the sharded
/// engine, and the fleet merge paths.
pub(crate) fn pct2(values: &mut [f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len();
    let i90 = ((n as f64 * 0.90).ceil() as usize).clamp(1, n) - 1;
    let i99 = ((n as f64 * 0.99).ceil() as usize).clamp(1, n) - 1;
    let (_, &mut p90, tail) = values.select_nth_unstable_by(i90, f64::total_cmp);
    let p99 = if i99 > i90 {
        *tail.select_nth_unstable_by(i99 - i90 - 1, f64::total_cmp).1
    } else {
        p90
    };
    (p90, p99)
}

pub(crate) trait InFlight {
    /// The in-flight window for `id`, if one exists.
    fn get(&self, id: ObjectId) -> Option<(Time, bool)>;
    /// Records that a fetch for `id` lands at `done_at` (`ok` = success).
    fn set(&mut self, id: ObjectId, done_at: Time, ok: bool);
    /// Drops the window for `id` (it expired).
    fn clear(&mut self, id: ObjectId);
}

impl InFlight for FastMap<ObjectId, (Time, bool)> {
    fn get(&self, id: ObjectId) -> Option<(Time, bool)> {
        FastMap::get(self, &id).copied()
    }
    fn set(&mut self, id: ObjectId, done_at: Time, ok: bool) {
        self.insert(id, (done_at, ok));
    }
    fn clear(&mut self, id: ObjectId) {
        self.remove(&id);
    }
}

impl InFlight for &crate::FetchTable<(Time, bool)> {
    fn get(&self, id: ObjectId) -> Option<(Time, bool)> {
        crate::FetchTable::get(self, id)
    }
    fn set(&mut self, id: ObjectId, done_at: Time, ok: bool) {
        crate::FetchTable::set(self, id, (done_at, ok));
    }
    fn clear(&mut self, id: ObjectId) {
        crate::FetchTable::finish(self, id);
    }
}

/// A CDN server wrapping a cache policy.
pub struct CdnServer<P: CachePolicy> {
    policy: P,
    config: ServerConfig,
    /// Admission time of cached contents (for freshness).
    admitted_at: FastMap<ObjectId, Time>,
    obs: Option<Obs>,
}

/// How one request was ultimately served (bookkeeping for the report).
pub(crate) struct ServeOutcome {
    pub(crate) latency_ms: f64,
    pub(crate) service_ms: f64,
    pub(crate) wan: u64,
    pub(crate) hit: bool,
    pub(crate) stale: bool,
    pub(crate) error: bool,
    pub(crate) coalesced: bool,
    pub(crate) degraded: bool,
}

impl<P: CachePolicy> CdnServer<P> {
    /// Wraps `policy` in a server with the given configuration.
    pub fn new(policy: P, config: ServerConfig) -> Self {
        CdnServer {
            policy,
            config,
            admitted_at: FastMap::default(),
            obs: None,
        }
    }

    /// Attaches an observability recorder: the replay feeds it a windowed
    /// metric series, a latency histogram (µs), circuit-breaker / outage /
    /// stale-serve / coalescing events, and a `server.replay` span.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Access to the wrapped policy (e.g. to read LHR stats afterwards).
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Opportunistic cleanup of freshness entries for evicted contents
    /// (bounded bookkeeping; called every few hundred requests).
    pub(crate) fn prune_admitted(&mut self) {
        if self.admitted_at.len() > 4 * 1024 * 1024 {
            let policy = &self.policy;
            self.admitted_at.retain(|&id, _| policy.contains(id));
        }
    }

    /// Replays `trace` through the serving path, producing the full report.
    pub fn replay(&mut self, trace: &Trace) -> ServerReport {
        let mut latencies: Vec<f64> = Vec::with_capacity(trace.len());
        let mut degraded_latencies: Vec<f64> = Vec::new();
        let mut busy_ms = 0.0f64;
        let mut compute_ms_total = 0.0f64;
        let mut bytes_served = 0u128;
        let mut wan_bytes = 0u128;
        let mut hits = 0u64;
        let mut errors = 0u64;
        let mut stale_served = 0u64;
        let mut coalesced = 0u64;
        let mut retries = 0u64;
        let mut measured = 0u64;
        let mut peak_meta = 0u64;
        let mut series = Vec::new();
        let mut plan = FaultPlan::new(self.config.faults.clone());
        let mut breaker = CircuitBreaker::new(self.config.resilience.breaker.clone());
        // Object → (fetch completion time, fetch succeeded): the in-flight
        // window concurrent misses coalesce into.
        let mut in_flight: FastMap<ObjectId, (Time, bool)> = FastMap::default();

        // Obs state stays local to the loop (no locking per request); the
        // injected outage schedule is emitted up front so the event stream
        // explains any availability dip that follows.
        let _replay_span = self.obs.as_ref().map(|o| o.span("server.replay"));
        let mut acc = self.obs.as_ref().map(|o| SeriesAcc::new(o.window()));
        let tracer = self.obs.as_ref().map(|o| o.trace_recorder());
        let mut lat_hist = LogHistogram::new();
        let mut last_evictions = 0u64;
        let mut last_opens = 0u64;
        let mut last_closes = 0u64;
        if let Some(obs) = &self.obs {
            // Run metadata goes on before the first request: a streaming
            // sink ([`Obs::stream_to`]) writes its meta line when the first
            // window closes, and the line must already be final.
            obs.set_meta("policy", self.policy.name());
            obs.set_meta("trace", trace.name.as_str());
            for &(start, end) in &self.config.faults.outages {
                obs.emit(Event::new(start, EventKind::OutageStart).field("until_secs", end));
                obs.emit(Event::new(end, EventKind::OutageEnd));
            }
        }
        let wall = Instant::now();

        for (i, req) in trace.iter().enumerate() {
            // Sampling is decided before the serve so the builder can ride
            // along the whole path; warmup requests are never sampled (they
            // have no metric window to anchor an exemplar to).
            let mut tb = match &tracer {
                Some(t) if i >= self.config.warmup_requests => {
                    t.begin(i as u64, req.id, req.ts.as_micros(), req.size)
                }
                _ => None,
            };
            let served = self.serve(
                req,
                &mut plan,
                &mut breaker,
                &mut in_flight,
                &mut retries,
                &mut compute_ms_total,
                tb.as_mut(),
            );

            if i % 512 == 0 {
                peak_meta = peak_meta.max(self.policy.metadata_overhead_bytes());
                // Opportunistic cleanup of freshness entries for evicted
                // contents and of expired in-flight windows.
                self.prune_admitted();
                in_flight.retain(|_, &mut (done_at, _)| req.ts < done_at);
            }

            let evict_delta = if acc.is_some() {
                let cur = self.policy.evictions();
                let delta = cur.saturating_sub(last_evictions);
                last_evictions = cur;
                delta
            } else {
                0
            };
            if let Some(obs) = &self.obs {
                // Breaker transitions matter during warmup too (the breaker
                // carries state into the measured interval).
                let t = req.ts.as_secs_f64();
                let opens = breaker.opens();
                if opens > last_opens {
                    obs.emit(Event::new(t, EventKind::BreakerOpen).field("opens", opens));
                    last_opens = opens;
                }
                let closes = breaker.closes();
                if closes > last_closes {
                    obs.emit(Event::new(t, EventKind::BreakerClose).field("closes", closes));
                    last_closes = closes;
                }
            }

            if i < self.config.warmup_requests {
                continue;
            }
            measured += 1;
            bytes_served += req.size as u128;
            wan_bytes += served.wan as u128;
            busy_ms += served.service_ms;
            if served.hit {
                hits += 1;
            }
            if served.error {
                errors += 1;
            }
            if served.stale {
                stale_served += 1;
            }
            if served.coalesced {
                coalesced += 1;
            }
            latencies.push(served.latency_ms);
            if served.degraded {
                degraded_latencies.push(served.latency_ms);
            }
            if let Some(acc) = acc.as_mut() {
                let t = req.ts.as_secs_f64();
                let closed = acc.on_request(ReqSample {
                    t_micros: req.ts.as_micros(),
                    bytes: req.size,
                    hit: served.hit,
                    admitted: false,
                    bypassed: false,
                    error: served.error,
                    stale: served.stale,
                    coalesced: served.coalesced,
                });
                acc.on_evictions(evict_delta);
                if served.latency_ms.is_finite() && served.latency_ms >= 0.0 {
                    lat_hist.record((served.latency_ms * 1e3) as u64);
                }
                let obs = self.obs.as_ref().expect("acc implies obs");
                if closed {
                    // Boundary-only: hand finished windows to the recorder
                    // (and through it to any streaming sink) right away,
                    // after the eviction credit that may still land on the
                    // just-closed window.
                    obs.push_windows(acc.take_done());
                }
                if served.stale {
                    obs.emit(Event::new(t, EventKind::StaleServe).field("id", req.id));
                }
                if served.error {
                    obs.emit(Event::new(t, EventKind::ErrorServe).field("id", req.id));
                }
                if served.coalesced {
                    obs.emit(Event::new(t, EventKind::Coalesce).field("id", req.id));
                }
                if let Some(tb) = tb.take() {
                    obs.push_trace(tb.finish(served.latency_ms, acc.last_index()));
                }
            }
            if let Some(every) = self.config.series_every {
                if measured.is_multiple_of(every as u64) {
                    series.push((measured, hits as f64 / measured as f64));
                }
            }
        }

        peak_meta = peak_meta.max(self.policy.metadata_overhead_bytes());
        if let (Some(obs), Some(acc)) = (self.obs.as_ref(), acc) {
            obs.push_windows(acc.finish());
            obs.counter_add("server.requests", measured);
            obs.counter_add("server.hits", hits);
            obs.counter_add("server.errors", errors);
            obs.counter_add("server.stale_served", stale_served);
            obs.counter_add("server.coalesced", coalesced);
            obs.counter_add("server.retries", retries);
            if lat_hist.total() > 0 {
                obs.hist_merge("server.latency_us", &lat_hist);
            }
            obs.gauge_set(
                "server.replay_wall_secs",
                if obs.deterministic() {
                    0.0
                } else {
                    wall.elapsed().as_secs_f64()
                },
            );
        }
        let (p90_latency_ms, p99_latency_ms) = pct2(&mut latencies);
        let (degraded_p90_latency_ms, degraded_p99_latency_ms) = pct2(&mut degraded_latencies);
        let mean = if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        };
        let duration = trace.duration().as_secs_f64().max(1e-9);

        ServerReport {
            name: self.policy.name().to_string(),
            trace: trace.name.clone(),
            content_hit_pct: if measured == 0 {
                0.0
            } else {
                hits as f64 / measured as f64 * 100.0
            },
            throughput_gbps: if busy_ms <= 0.0 {
                0.0
            } else {
                bytes_served as f64 * 8.0 / (busy_ms / 1e3) / 1e9
            },
            peak_cpu_pct: if busy_ms <= 0.0 {
                0.0
            } else {
                (compute_ms_total / busy_ms * 100.0).min(100.0)
            },
            peak_mem_gb: peak_meta as f64 / 1e9,
            p90_latency_ms,
            p99_latency_ms,
            mean_latency_ms: mean,
            wan_gbps: wan_bytes as f64 * 8.0 / duration / 1e9,
            availability_pct: if measured == 0 {
                100.0
            } else {
                (measured - errors) as f64 / measured as f64 * 100.0
            },
            errors_served: errors,
            stale_served,
            retries,
            coalesced_fetches: coalesced,
            breaker_opens: breaker.opens(),
            breaker_closes: breaker.closes(),
            degraded_p90_latency_ms,
            degraded_p99_latency_ms,
            series,
            replay_wall_secs: wall.elapsed().as_secs_f64(),
        }
    }

    /// Runs the policy on `req`, timing the call (zeroed in deterministic
    /// mode) and accumulating total compute.
    fn handle_timed(
        &mut self,
        req: &lhr_trace::Request,
        compute_total: &mut f64,
    ) -> (Outcome, f64) {
        // In deterministic mode the measurement is zeroed anyway, so skip
        // the clock_gettime pair entirely — at engine line rates the vDSO
        // calls alone were ~10% of the serve path.
        let t0 = (!self.config.deterministic).then(Instant::now);
        let outcome = self.policy.handle(req);
        let compute_ms = t0.map_or(0.0, |t0| t0.elapsed().as_secs_f64() * 1e3);
        *compute_total += compute_ms;
        (outcome, compute_ms)
    }

    /// [`CachePolicy::hit_check`] with the same timing contract as
    /// [`Self::handle_timed`]. A `None` (object absent, policy not
    /// consulted) costs one probe and is not timed — matching the old
    /// untimed `contains` pre-check.
    fn hit_check_timed(
        &mut self,
        req: &lhr_trace::Request,
        compute_total: &mut f64,
    ) -> Option<(Outcome, f64)> {
        let t0 = (!self.config.deterministic).then(Instant::now);
        let outcome = self.policy.hit_check(req)?;
        let compute_ms = t0.map_or(0.0, |t0| t0.elapsed().as_secs_f64() * 1e3);
        *compute_total += compute_ms;
        Some((outcome, compute_ms))
    }

    /// Serves one request through the hardened path. Generic over the
    /// in-flight table so the same code runs against [`CdnServer::replay`]'s
    /// local map and the engine's shared [`crate::FetchTable`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn serve(
        &mut self,
        req: &lhr_trace::Request,
        plan: &mut FaultPlan,
        breaker: &mut CircuitBreaker,
        in_flight: &mut impl InFlight,
        retries: &mut u64,
        compute_total: &mut f64,
        mut tb: Option<&mut TraceBuilder>,
    ) -> ServeOutcome {
        let lat = self.config.latency.clone();
        let res = self.config.resilience.clone();
        let now = req.ts;

        // Fused present-check + hit processing: one table probe on the hot
        // path instead of `contains` followed by `handle`.
        if let Some((outcome, compute_ms)) = self.hit_check_timed(req, compute_total) {
            if outcome.is_hit() {
                if let Some(tb) = tb.as_deref_mut() {
                    tb.push("edge_lookup", req.size, vec![kv("hit", true)]);
                }
                return self.serve_cached(req, compute_ms, &lat, &res, plan, breaker, retries, tb);
            }
            // Contract violation (the policy reported the object present but
            // then missed): fall through to the miss path; the policy has
            // already decided admission, so only the origin side remains.
            if let Some(tb) = tb.as_deref_mut() {
                tb.push("edge_lookup", req.size, vec![kv("hit", false)]);
            }
            return self.serve_miss_fetch(
                req, compute_ms, false, &lat, &res, plan, breaker, in_flight, retries, tb,
            );
        }
        if let Some(tb) = tb.as_deref_mut() {
            tb.push("edge_lookup", req.size, vec![kv("hit", false)]);
        }

        // Miss. A fetch for this object may already be in flight.
        if res.coalesce {
            if let Some((done_at, ok)) = in_flight.get(req.id) {
                if now < done_at {
                    let remaining_ms = (done_at - now).as_secs_f64() * 1e3;
                    if let Some(tb) = tb.as_deref_mut() {
                        tb.advance(remaining_ms);
                        tb.push(
                            "coalesce",
                            req.size,
                            vec![kv("leader", false), kv("ok", ok)],
                        );
                    }
                    if ok {
                        // Join the leader's fetch: the body arrives when the
                        // fetch completes, then is served over the edge link.
                        // The access still informs the policy's admission
                        // stats, but no second origin fetch happens.
                        let (outcome, compute_ms) = self.handle_timed(req, compute_total);
                        if matches!(outcome, Outcome::MissAdmitted | Outcome::Hit) {
                            self.admitted_at.insert(req.id, now);
                        }
                        return ServeOutcome {
                            latency_ms: remaining_ms + lat.hit_latency_ms(req.size, compute_ms),
                            service_ms: lat.service_ms(req.size, true, compute_ms),
                            wan: 0,
                            hit: false,
                            stale: false,
                            error: false,
                            coalesced: true,
                            degraded: true,
                        };
                    }
                    // Sharing a fetch that is going to fail: the follower
                    // learns the failure when the leader does.
                    return ServeOutcome {
                        latency_ms: remaining_ms + lat.error_latency_ms(0.0),
                        service_ms: 0.0,
                        wan: 0,
                        hit: false,
                        stale: false,
                        error: true,
                        coalesced: true,
                        degraded: true,
                    };
                }
                in_flight.clear(req.id);
            }
        }

        self.serve_miss_fetch(
            req, 0.0, true, &lat, &res, plan, breaker, in_flight, retries, tb,
        )
    }

    /// The cached-object path: freshness check, revalidation (synchronous
    /// or stale-while-revalidate), stale-if-error fallback.
    #[allow(clippy::too_many_arguments)]
    fn serve_cached(
        &mut self,
        req: &lhr_trace::Request,
        compute_ms: f64,
        lat: &LatencyModel,
        res: &ResilienceConfig,
        plan: &mut FaultPlan,
        breaker: &mut CircuitBreaker,
        retries: &mut u64,
        mut tb: Option<&mut TraceBuilder>,
    ) -> ServeOutcome {
        let fresh_limit = self.config.freshness_secs;
        let now = req.ts;
        let age_past_fresh = match (fresh_limit, self.admitted_at.get(&req.id)) {
            (Some(limit), Some(&admitted)) => {
                let age = now.saturating_sub(admitted).as_secs_f64();
                if age > limit {
                    Some(age - limit)
                } else {
                    None
                }
            }
            _ => None,
        };

        let ok_hit = |latency_ms: f64, service_ms: f64, wan: u64, stale: bool, degraded: bool| {
            ServeOutcome {
                latency_ms,
                service_ms,
                wan,
                hit: true,
                stale,
                error: false,
                coalesced: false,
                degraded,
            }
        };

        let Some(age_past_fresh) = age_past_fresh else {
            // Fresh hit: the fast path.
            return ok_hit(
                lat.hit_latency_ms(req.size, compute_ms),
                lat.service_ms(req.size, true, compute_ms),
                0,
                false,
                false,
            );
        };

        // Stale-while-revalidate: serve the expired copy immediately and
        // revalidate off the critical path.
        if res.stale_while_revalidate_secs > 0.0
            && age_past_fresh <= res.stale_while_revalidate_secs
        {
            if let Some(tb) = tb.as_deref_mut() {
                tb.push(
                    "stale_serve",
                    req.size,
                    vec![kv("reason", "while_revalidate")],
                );
            }
            // The revalidation is off the user path — its origin_fetch steps
            // still land on the trace (they explain WAN traffic), but the
            // trace clock has already credited the user-visible hit latency.
            let fetch = origin_fetch(lat, &res.retry, plan, breaker, now, retries, tb);
            let mut wan = 0u64;
            if fetch.ok {
                let changed = !self.revalidation_fresh(req.id, now);
                self.admitted_at.insert(req.id, now);
                if changed {
                    wan = req.size;
                }
            }
            // Background failure leaves the copy stale; a later request
            // will retry (or fall back to stale-if-error).
            return ok_hit(
                lat.hit_latency_ms(req.size, compute_ms),
                lat.service_ms(req.size, true, compute_ms),
                wan,
                true,
                true,
            );
        }

        // Synchronous revalidation with the origin.
        let fetch = origin_fetch(
            lat,
            &res.retry,
            plan,
            breaker,
            now,
            retries,
            tb.as_deref_mut(),
        );
        if fetch.ok {
            let still_fresh = self.revalidation_fresh(req.id, now);
            self.admitted_at.insert(req.id, now);
            let degraded = fetch.delay_ms > 0.0 || fetch.rate_scale < 1.0;
            if still_fresh {
                return ok_hit(
                    lat.revalidate_latency_ms(req.size, compute_ms) + fetch.delay_ms,
                    lat.service_ms(req.size, true, compute_ms),
                    0,
                    false,
                    degraded,
                );
            }
            // Changed at origin: refetch (WAN traffic) and deliver.
            return ok_hit(
                lat.miss_latency_scaled_ms(req.size, compute_ms, fetch.rate_scale) + fetch.delay_ms,
                transfer_ms(req.size, lat.origin_gbps * fetch.rate_scale.max(1e-6)) + compute_ms,
                req.size,
                false,
                degraded,
            );
        }

        // Revalidation failed: stale-if-error if the copy is still within
        // its stale window, otherwise an error response.
        if res.stale_if_error_secs > 0.0 && age_past_fresh <= res.stale_if_error_secs {
            if let Some(tb) = tb.as_deref_mut() {
                tb.push("stale_serve", req.size, vec![kv("reason", "if_error")]);
            }
            return ok_hit(
                lat.hit_latency_ms(req.size, compute_ms) + fetch.delay_ms,
                lat.service_ms(req.size, true, compute_ms),
                0,
                true,
                true,
            );
        }
        ServeOutcome {
            latency_ms: lat.error_latency_ms(compute_ms) + fetch.delay_ms,
            service_ms: compute_ms,
            wan: 0,
            hit: false,
            stale: false,
            error: true,
            coalesced: false,
            degraded: true,
        }
    }

    /// The miss path: hardened origin fetch, then admission on success.
    /// `run_policy` is false when the policy already handled the request
    /// (the contains/handle contract-violation fallback).
    #[allow(clippy::too_many_arguments)]
    fn serve_miss_fetch(
        &mut self,
        req: &lhr_trace::Request,
        pre_compute_ms: f64,
        run_policy: bool,
        lat: &LatencyModel,
        res: &ResilienceConfig,
        plan: &mut FaultPlan,
        breaker: &mut CircuitBreaker,
        in_flight: &mut impl InFlight,
        retries: &mut u64,
        mut tb: Option<&mut TraceBuilder>,
    ) -> ServeOutcome {
        let now = req.ts;
        let mut compute_total_local = 0.0;
        let fetch = origin_fetch(
            lat,
            &res.retry,
            plan,
            breaker,
            now,
            retries,
            tb.as_deref_mut(),
        );
        if fetch.ok {
            let compute_ms = if run_policy {
                let (outcome, compute_ms) = self.handle_timed(req, &mut compute_total_local);
                if matches!(outcome, Outcome::MissAdmitted) {
                    self.admitted_at.insert(req.id, now);
                }
                compute_ms
            } else {
                self.admitted_at.insert(req.id, now);
                pre_compute_ms
            };
            if res.coalesce {
                let fetch_ms = fetch.delay_ms + lat.origin_fetch_ms(req.size, fetch.rate_scale);
                in_flight.set(req.id, now + Time::from_secs_f64(fetch_ms / 1e3), true);
                if let Some(tb) = tb.as_deref_mut() {
                    tb.push("coalesce", req.size, vec![kv("leader", true)]);
                }
            }
            return ServeOutcome {
                latency_ms: lat.miss_latency_scaled_ms(req.size, compute_ms, fetch.rate_scale)
                    + fetch.delay_ms,
                service_ms: transfer_ms(req.size, lat.origin_gbps * fetch.rate_scale.max(1e-6))
                    + compute_ms,
                wan: req.size,
                hit: false,
                stale: false,
                error: false,
                coalesced: false,
                degraded: fetch.delay_ms > 0.0 || fetch.rate_scale < 1.0,
            };
        }
        // Fetch failed and there is no cached copy to fall back on.
        if res.coalesce && fetch.attempted && fetch.delay_ms > 0.0 {
            in_flight.set(
                req.id,
                now + Time::from_secs_f64(fetch.delay_ms / 1e3),
                false,
            );
        }
        ServeOutcome {
            latency_ms: lat.error_latency_ms(pre_compute_ms) + fetch.delay_ms,
            service_ms: pre_compute_ms,
            wan: 0,
            hit: false,
            stale: false,
            error: true,
            coalesced: false,
            degraded: true,
        }
    }

    /// Deterministic per-(object, freshness-epoch) draw of whether a
    /// revalidation found the content unchanged.
    fn revalidation_fresh(&self, id: ObjectId, now: Time) -> bool {
        let epoch =
            (now.as_secs_f64() / self.config.freshness_secs.unwrap_or(f64::INFINITY)) as u64;
        pseudo_uniform(id, epoch) < self.config.revalidate_fresh_prob
    }
}

/// Deterministic pseudo-uniform draw in [0, 1) from (id, epoch).
fn pseudo_uniform(id: ObjectId, epoch: u64) -> f64 {
    let mut x = id ^ epoch.wrapping_mul(0xA076_1D64_78BD_642F);
    x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 29;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 32;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhr_policies::Lru;
    use lhr_trace::Request;

    fn trace(n: usize, objects: u64, size: u64) -> Trace {
        let mut t = Trace::new("t");
        for i in 0..n {
            t.push(Request::new(
                Time::from_secs(i as u64),
                i as u64 % objects,
                size,
            ));
        }
        t
    }

    #[test]
    fn report_counts_hits_and_wan() {
        let mut server = CdnServer::new(
            Lru::new(10 << 20),
            ServerConfig {
                freshness_secs: None,
                ..ServerConfig::default()
            },
        );
        let report = server.replay(&trace(100, 2, 1 << 20));
        assert!((report.content_hit_pct - 98.0).abs() < 1e-9);
        // WAN carried exactly the two compulsory misses.
        let wan_bytes = report.wan_gbps * 99.0 * 1e9 / 8.0;
        assert!(
            (wan_bytes - 2.0 * (1 << 20) as f64).abs() < 1.0,
            "{wan_bytes}"
        );
        // Infallible origin: fully available, nothing degraded.
        assert!((report.availability_pct - 100.0).abs() < 1e-9);
        assert_eq!(report.errors_served, 0);
        assert_eq!(report.stale_served, 0);
        assert_eq!(report.retries, 0);
        assert_eq!(report.breaker_opens, 0);
    }

    #[test]
    fn latency_percentiles_are_ordered() {
        let mut server = CdnServer::new(Lru::new(5 << 20), ServerConfig::default());
        let report = server.replay(&trace(500, 50, 1 << 20));
        // Percentiles are order statistics (the mean may exceed P90 under
        // heavy skew, so only these orderings are guaranteed).
        assert!(report.p90_latency_ms <= report.p99_latency_ms);
        assert!(report.mean_latency_ms <= report.p99_latency_ms);
        assert!(report.mean_latency_ms > 0.0);
    }

    #[test]
    fn nan_latency_degrades_percentile_instead_of_panicking() {
        // A degenerate latency model producing NaN (0/0-style rates) must
        // not panic the replay; NaNs sort last via total_cmp.
        let cfg = ServerConfig {
            latency: LatencyModel {
                edge_rtt_ms: f64::NAN,
                ..LatencyModel::default()
            },
            freshness_secs: None,
            ..ServerConfig::default()
        };
        let mut server = CdnServer::new(Lru::new(10 << 20), cfg);
        let report = server.replay(&trace(50, 2, 1 << 20));
        assert!(report.p99_latency_ms.is_nan());
    }

    #[test]
    fn stale_contents_revalidate() {
        // Freshness 10 s; object re-requested every 30 s → always stale.
        let mut t = Trace::new("stale");
        for i in 0..20u64 {
            t.push(Request::new(Time::from_secs(i * 30), 1, 1 << 20));
        }
        let cfg = ServerConfig {
            freshness_secs: Some(10.0),
            revalidate_fresh_prob: 1.0,
            ..ServerConfig::default()
        };
        let mut server = CdnServer::new(Lru::new(10 << 20), cfg);
        let report = server.replay(&t);
        // All hits, but every one pays the revalidation RTT: mean latency
        // exceeds the pure-hit latency by about one origin RTT.
        let pure_hit = LatencyModel::default().hit_latency_ms(1 << 20, 0.0);
        assert!(report.content_hit_pct > 90.0);
        assert!(
            report.mean_latency_ms > pure_hit + 0.9 * LatencyModel::default().origin_rtt_ms,
            "mean {} vs pure hit {}",
            report.mean_latency_ms,
            pure_hit
        );
    }

    #[test]
    fn changed_contents_count_as_wan_traffic() {
        let mut t = Trace::new("stale");
        for i in 0..50u64 {
            t.push(Request::new(Time::from_secs(i * 100), 1, 1 << 20));
        }
        let cfg = ServerConfig {
            freshness_secs: Some(10.0),
            revalidate_fresh_prob: 0.0, // every revalidation refetches
            ..ServerConfig::default()
        };
        let mut server = CdnServer::new(Lru::new(10 << 20), cfg);
        let report = server.replay(&t);
        // All 50 requests move a full object across the WAN (1 compulsory
        // miss + 49 refetches).
        let wan_bytes = report.wan_gbps * t.duration().as_secs_f64() * 1e9 / 8.0;
        assert!(
            (wan_bytes - 50.0 * (1 << 20) as f64).abs() < 10.0,
            "{wan_bytes}"
        );
    }

    #[test]
    fn warmup_excluded_from_hit_ratio() {
        let cfg = ServerConfig {
            warmup_requests: 2,
            freshness_secs: None,
            ..ServerConfig::default()
        };
        let mut server = CdnServer::new(Lru::new(10 << 20), cfg);
        let report = server.replay(&trace(10, 2, 1 << 20));
        assert!((report.content_hit_pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn series_is_recorded() {
        let cfg = ServerConfig {
            series_every: Some(10),
            freshness_secs: None,
            ..ServerConfig::default()
        };
        let mut server = CdnServer::new(Lru::new(10 << 20), cfg);
        let report = server.replay(&trace(100, 2, 1 << 20));
        assert_eq!(report.series.len(), 10);
        assert!(report.series.last().expect("non-empty").1 > 0.9);
    }

    #[test]
    fn stale_while_revalidate_hides_revalidation_latency() {
        // Freshness 10 s, requests every 30 s → always 20 s past freshness,
        // inside a 25 s stale-while-revalidate window.
        let mut t = Trace::new("swr");
        for i in 0..20u64 {
            t.push(Request::new(Time::from_secs(i * 30), 1, 1 << 20));
        }
        let cfg = ServerConfig {
            freshness_secs: Some(10.0),
            revalidate_fresh_prob: 1.0,
            resilience: ResilienceConfig {
                stale_while_revalidate_secs: 25.0,
                ..ResilienceConfig::default()
            },
            ..ServerConfig::default()
        };
        let mut server = CdnServer::new(Lru::new(10 << 20), cfg);
        let report = server.replay(&t);
        // Stale serves are hits at hit latency — no revalidation RTT on the
        // user path (compare `stale_contents_revalidate` above).
        let pure_hit = LatencyModel::default().hit_latency_ms(1 << 20, 0.0);
        assert_eq!(report.stale_served, 19);
        assert!(report.content_hit_pct > 90.0);
        assert!(
            report.mean_latency_ms < pure_hit + 0.5 * LatencyModel::default().origin_rtt_ms,
            "mean {}",
            report.mean_latency_ms
        );
    }

    #[test]
    fn full_outage_without_stale_serving_errors_every_revalidation() {
        // Origin down for the whole trace; freshness 10 s, requests every
        // 30 s. The first request errors (miss, no copy); every later one
        // has a cached-but-stale copy it may not serve.
        let mut t = Trace::new("outage");
        for i in 0..10u64 {
            t.push(Request::new(Time::from_secs(i * 30), 1, 1 << 20));
        }
        let cfg = ServerConfig {
            freshness_secs: Some(10.0),
            faults: FaultConfig {
                outages: vec![(0.0, 1e9)],
                ..FaultConfig::default()
            },
            ..ServerConfig::default()
        };
        let mut server = CdnServer::new(Lru::new(10 << 20), cfg);
        let report = server.replay(&t);
        assert_eq!(report.errors_served, 10);
        assert!((report.availability_pct - 0.0).abs() < 1e-9);
        assert!(report.breaker_opens >= 1);
    }

    #[test]
    fn obs_records_outage_breaker_and_errors() {
        use lhr_obs::{ObsConfig, ObsWindow};
        let mut t = Trace::new("outage");
        for i in 0..10u64 {
            t.push(Request::new(Time::from_secs(i * 30), 1, 1 << 20));
        }
        let obs = Obs::new(ObsConfig {
            window: ObsWindow::Requests(4),
            deterministic: true,
            ..ObsConfig::default()
        });
        let cfg = ServerConfig {
            freshness_secs: Some(10.0),
            faults: FaultConfig {
                outages: vec![(0.0, 1e9)],
                ..FaultConfig::default()
            },
            deterministic: true,
            ..ServerConfig::default()
        };
        let mut server = CdnServer::new(Lru::new(10 << 20), cfg).with_obs(obs.clone());
        let report = server.replay(&t);
        let events = obs.events();
        let count = |k: EventKind| events.iter().filter(|e| e.kind == k).count() as u64;
        assert_eq!(count(EventKind::OutageStart), 1);
        assert_eq!(count(EventKind::OutageEnd), 1);
        assert_eq!(count(EventKind::ErrorServe), report.errors_served);
        assert_eq!(count(EventKind::BreakerOpen), report.breaker_opens);
        let windows = obs.windows();
        assert_eq!(
            windows.iter().map(|w| w.errors).sum::<u64>(),
            report.errors_served
        );
        assert!(windows.iter().all(|w| w.availability() == 0.0));
        assert!(obs.to_jsonl().contains("\"path\":\"server.replay\""));
    }

    #[test]
    fn obs_records_stale_serves() {
        use lhr_obs::ObsConfig;
        let mut t = Trace::new("swr");
        for i in 0..20u64 {
            t.push(Request::new(Time::from_secs(i * 30), 1, 1 << 20));
        }
        let cfg = ServerConfig {
            freshness_secs: Some(10.0),
            revalidate_fresh_prob: 1.0,
            resilience: ResilienceConfig {
                stale_while_revalidate_secs: 25.0,
                ..ResilienceConfig::default()
            },
            ..ServerConfig::default()
        };
        let obs = Obs::new(ObsConfig {
            deterministic: true,
            ..ObsConfig::default()
        });
        let mut server = CdnServer::new(Lru::new(10 << 20), cfg).with_obs(obs.clone());
        let report = server.replay(&t);
        let stale_events = obs
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::StaleServe)
            .count() as u64;
        assert_eq!(stale_events, report.stale_served);
        assert_eq!(
            obs.windows().iter().map(|w| w.stale_served).sum::<u64>(),
            report.stale_served
        );
        // Latency histogram captured every measured request.
        let jsonl = obs.to_jsonl();
        assert!(jsonl.contains("\"name\":\"server.latency_us\""), "{jsonl}");
    }

    #[test]
    fn pseudo_uniform_is_in_range_and_spread() {
        let mut below = 0;
        for id in 0..10_000u64 {
            let u = pseudo_uniform(id, 3);
            assert!((0.0..1.0).contains(&u));
            if u < 0.5 {
                below += 1;
            }
        }
        assert!((4_000..6_000).contains(&below), "{below}");
    }
}
