//! The fault-tolerant edge fleet: N consistent-hashed nodes over an
//! origin shield.
//!
//! [`crate::ShardedEngine`] scales *one* cache across cores. This module
//! models what a CDN actually deploys: a **fleet** of N edge nodes, each
//! an independent cache, with requests routed by a consistent-hash ring
//! ([`HashRing`]), a shared origin-shield tier (a [`CdnServer`] wrapping
//! an LRU) that edge misses funnel through before touching the fallible
//! origin, and node-level fault injection ([`NodeFaultConfig`]) that
//! takes whole nodes down and up on trace time. When a node is down the
//! ring fails over to its successors; when it rejoins, only its
//! ring-adjacent key range moves back (bounded rehash). A peer-hint
//! protocol lets a node that misses fetch from a ring peer that recently
//! completed an origin fetch, instead of re-asking the shield or origin.
//!
//! # Determinism contract
//!
//! [`FleetReport::stable_json`] and `--obs` exports are byte-identical at
//! any `--threads` setting because the fleet reuses the engine's sharding
//! discipline wholesale (see `ARCHITECTURE.md`):
//!
//! - the keyspace is split into `n_shards` shards with
//!   [`lhr_sim::shard::shard_of`]; a shard owns a slice of **every**
//!   node's cache, the shield slice, and the peer-hint table for its
//!   objects, so all cross-node interaction for one object (failover,
//!   hints, shield coalescing) happens inside one shard, replayed in
//!   trace order by exactly one worker;
//! - which node serves a request is a pure function of (object id, trace
//!   time): the ring is static and node liveness is a precompiled
//!   schedule of down windows, so routing never depends on thread timing;
//! - node-fault presets derive per-node randomness from
//!   `node_seed = shard_seed(seed, node_index)` — a pure function, the
//!   `node_seed` derivation documented in `ARCHITECTURE.md`;
//! - per-shard shield fault plans are seeded with
//!   [`lhr_sim::shard::shard_seed`], and the merge runs in fixed shard
//!   order, then fixed node order.

use crate::fault::{keyed_uniform, CircuitBreaker, FaultPlan};
use crate::latency::LatencyModel;
use crate::server::{kv, pct2, CdnServer, ServeOutcome, ServerConfig};
use lhr_obs::series::{ReqSample, SeriesAcc};
use lhr_obs::trace::TraceBuilder;
use lhr_obs::{Event, EventKind, LogHistogram, Obs};
use lhr_policies::Lru;
use lhr_sim::shard::{route, shard_seed, RouteConfig};
use lhr_sim::CachePolicy;
use lhr_trace::{ObjectId, Request, Time, Trace};
use lhr_util::hash::{FastHasher, FastMap};
use lhr_util::json::ToJson;
use std::hash::Hasher;
use std::time::Instant;

/// Draw-stream constant separating node-fault draws from the origin
/// fault plan's streams.
const STREAM_NODE: u64 = 0x4E_0D_E5;

/// The most nodes a fleet supports (failover walks track visited nodes
/// in a u64 bitmask).
pub const MAX_NODES: usize = 64;

/// SplitMix64's avalanche finalizer. [`FastHasher`] is multiplicative —
/// plenty for bucketing map keys, but its raw output of small dense
/// inputs is lattice-structured, which makes consecutive ring points
/// cluster and hands one node most of the keyspace (measured 67% for
/// node 0 of 4 without this). The finalizer restores uniform arcs:
/// max/mean keyspace share stays under ~1.2 at 64 vnodes.
fn finalize(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Domain tags separating the two ring hash streams. They must be
/// distinct and nonzero: hashing a leading zero word is an identity on
/// [`FastHasher`]'s state, so without tags node 0's vnode points would
/// *equal* the key hashes of ids `0..vnodes` and capture every small id.
const RING_POINT_TAG: u64 = 0x52_49_4E_47; // "RING"
const RING_KEY_TAG: u64 = 0x4B_45_59; // "KEY"

/// Hashes one ring point `(node, replica)` with the workspace's
/// fixed-seed [`FastHasher`] plus the avalanche finalizer —
/// deterministic across processes.
fn ring_point(node: u64, replica: u64) -> u64 {
    let mut h = FastHasher::default();
    h.write_u64(RING_POINT_TAG);
    h.write_u64(node);
    h.write_u64(replica);
    finalize(h.finish())
}

/// Hashes an object id onto the ring.
fn ring_key(id: ObjectId) -> u64 {
    let mut h = FastHasher::default();
    h.write_u64(RING_KEY_TAG);
    h.write_u64(id);
    finalize(h.finish())
}

/// A consistent-hash ring: `vnodes` points per node, sorted by hash.
/// Lookup walks clockwise from the key's hash to the first point; with a
/// liveness predicate, [`Self::node_for`] keeps walking to ring
/// successors, so removing node X only remaps keys whose primary is X
/// (bounded rehash — asserted by `tests/fleet.rs`).
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point hash, node)` sorted by hash.
    points: Vec<(u64, u16)>,
    n_nodes: usize,
}

impl HashRing {
    /// Builds the ring for `n_nodes` with `vnodes` points per node
    /// (64 is a good default; more points even out the key ranges).
    pub fn new(n_nodes: usize, vnodes: usize) -> Self {
        assert!(
            (1..=MAX_NODES).contains(&n_nodes),
            "fleet supports 1..={MAX_NODES} nodes, got {n_nodes}"
        );
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(n_nodes * vnodes);
        for node in 0..n_nodes {
            for replica in 0..vnodes {
                points.push((ring_point(node as u64, replica as u64), node as u16));
            }
        }
        points.sort_unstable();
        HashRing { points, n_nodes }
    }

    /// Number of nodes on the ring.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Index of the first ring point at or clockwise-after hash `h`.
    fn successor(&self, h: u64) -> usize {
        let i = self.points.partition_point(|&(p, _)| p < h);
        if i == self.points.len() {
            0
        } else {
            i
        }
    }

    /// The node that owns `id` when every node is live.
    pub fn primary(&self, id: ObjectId) -> usize {
        self.points[self.successor(ring_key(id))].1 as usize
    }

    /// The first *live* node clockwise from `id`'s primary, or `None`
    /// when every node is down. Keys whose primary is live never move —
    /// this is the bounded-rehash property.
    pub fn node_for(&self, id: ObjectId, live: impl Fn(usize) -> bool) -> Option<usize> {
        let start = self.successor(ring_key(id));
        let mut tried = 0u64;
        for k in 0..self.points.len() {
            let node = self.points[(start + k) % self.points.len()].1 as usize;
            if tried & (1 << node) != 0 {
                continue;
            }
            tried |= 1 << node;
            if live(node) {
                return Some(node);
            }
            if tried.count_ones() as usize == self.n_nodes {
                break;
            }
        }
        None
    }
}

/// A deterministic node-level fault schedule: explicit down windows on
/// trace time, compiled once from a preset (or written by hand). Unlike
/// [`crate::FaultConfig`] — which makes the *origin* fallible — this
/// takes whole edge nodes off the ring.
#[derive(Debug, Clone, Default)]
pub struct NodeFaultConfig {
    /// Base seed. Presets derive per-node draws from
    /// `node_seed = shard_seed(seed, node_index)`, so the schedule is a
    /// pure function of `(seed, n_nodes, duration)`.
    pub seed: u64,
    /// Down windows as `(node, start_secs, end_secs)`; a node is down
    /// for `start <= t < end`.
    pub windows: Vec<(usize, f64, f64)>,
    /// Whether a node that completes a down window rejoins with an
    /// *empty* cache (process restart) instead of its pre-fault contents
    /// (network partition).
    pub cold_restart: bool,
}

impl NodeFaultConfig {
    /// The node-fault preset vocabulary, in CLI order.
    pub fn preset_names() -> &'static [&'static str] {
        &["none", "node-flaky", "node-brownout", "node-churn"]
    }

    /// Compiles a named preset for a fleet of `n_nodes` over a trace of
    /// `duration_secs`:
    ///
    /// - `none` — every node stays up.
    /// - `node-flaky` — each node blips out for four ~1.2% windows at
    ///   seeded times (transient network partitions; caches survive).
    /// - `node-brownout` — one seeded node is hard-down for the middle
    ///   30% of the trace (the availability-floor scenario).
    /// - `node-churn` — a rolling restart: each node in turn is down for
    ///   8% of the trace and rejoins **cold**.
    pub fn preset(name: &str, seed: u64, n_nodes: usize, duration_secs: f64) -> Option<Self> {
        let d = duration_secs.max(0.0);
        let mut config = NodeFaultConfig {
            seed,
            windows: Vec::new(),
            cold_restart: false,
        };
        match name {
            "none" => {}
            "node-flaky" => {
                for node in 0..n_nodes {
                    let node_seed = shard_seed(seed, node);
                    for w in 0..4u64 {
                        let start = keyed_uniform(node_seed, STREAM_NODE, w) * d * 0.95;
                        config.windows.push((node, start, start + d * 0.012));
                    }
                }
            }
            "node-brownout" => {
                let node = (seed % n_nodes.max(1) as u64) as usize;
                config.windows.push((node, 0.35 * d, 0.65 * d));
            }
            "node-churn" => {
                config.cold_restart = true;
                for node in 0..n_nodes {
                    let start = d * (node as f64 + 1.0) / (n_nodes as f64 + 2.0);
                    config.windows.push((node, start, start + 0.08 * d));
                }
            }
            _ => return None,
        }
        Some(config)
    }

    /// Whether `node` is down at trace time `t` (seconds).
    pub fn down(&self, node: usize, t: f64) -> bool {
        self.windows
            .iter()
            .any(|&(n, start, end)| n == node && t >= start && t < end)
    }

    /// How many of `node`'s down windows have *completed* by `t` — the
    /// node's restart epoch. A change in epoch is what triggers the cold
    /// rejoin flush under [`Self::cold_restart`].
    pub fn epoch(&self, node: usize, t: f64) -> u64 {
        self.windows
            .iter()
            .filter(|&&(n, _, end)| n == node && t >= end)
            .count() as u64
    }

    /// Total down-seconds scheduled for `node` — the analytic input to
    /// the availability floor asserted in `tests/fleet.rs`.
    pub fn down_secs(&self, node: usize) -> f64 {
        self.windows
            .iter()
            .filter(|&&(n, _, _)| n == node)
            .map(|&(_, start, end)| (end - start).max(0.0))
            .sum()
    }
}

/// Configuration of the edge fleet.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Aggregate edge capacity in bytes, split evenly across nodes (and
    /// within each node across shards).
    pub total_capacity: u64,
    /// Edge nodes on the ring (1..=[`MAX_NODES`]).
    pub n_nodes: usize,
    /// Virtual-node points per node on the hash ring.
    pub vnodes: usize,
    /// Origin-shield capacity in bytes. `0` keeps the shield tier as a
    /// pass-through that still coalesces concurrent misses and runs the
    /// hardened origin path (retries, breaker, stale serving).
    pub shield_capacity: u64,
    /// Fixed shard count — part of the deterministic configuration,
    /// never derived from the thread count.
    pub n_shards: usize,
    /// Worker threads and channel sizing.
    pub route: RouteConfig,
    /// The shield's serving path: latency model, freshness, **origin**
    /// faults and resilience. `deterministic` is forced on and
    /// `series_every` off, as in the engine.
    pub server: ServerConfig,
    /// Node-level down/up schedule.
    pub node_faults: NodeFaultConfig,
    /// How long a peer hint stays trustworthy, seconds.
    pub hint_ttl_secs: f64,
    /// Whether the peer-hint protocol is enabled.
    pub peer_hints: bool,
}

impl FleetConfig {
    /// A 4-node, 8-shard fleet with 64 vnodes per node, a shield sized
    /// at a quarter of the edge capacity, and peer hints on.
    pub fn new(total_capacity: u64) -> Self {
        FleetConfig {
            total_capacity,
            n_nodes: 4,
            vnodes: 64,
            shield_capacity: total_capacity / 4,
            n_shards: 8,
            route: RouteConfig::default(),
            server: ServerConfig::default(),
            node_faults: NodeFaultConfig::default(),
            hint_ttl_secs: 3600.0,
            peer_hints: true,
        }
    }
}

/// What a fleet replay reports: fleet-wide serving figures plus per-node
/// vectors merged in fixed node order.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// `fleet({policy})x{n_nodes}`.
    pub name: String,
    /// Trace name.
    pub trace: String,
    /// Nodes on the ring.
    pub n_nodes: u64,
    /// Virtual-node points per node.
    pub vnodes: u64,
    /// Shards the keyspace was split across.
    pub n_shards: u64,
    /// Worker threads (machine-dependent when `threads = 0` was
    /// configured; zeroed by [`Self::stable_json`]).
    pub threads: u64,
    /// Replayed requests per wall-clock second; zeroed by
    /// [`Self::stable_json`].
    pub requests_per_sec: f64,
    /// Measured (post-warmup) requests.
    pub requests: u64,
    /// Requests served out of the routed node's own cache, %.
    pub edge_hit_pct: f64,
    /// Bytes served from fleet RAM (edge hits + peer fetches) over bytes
    /// requested, %.
    pub byte_hit_pct: f64,
    /// Shield lookups (edge misses that reached the shield) answered
    /// from the shield cache, %.
    pub shield_hit_pct: f64,
    /// Edge misses served from a ring peer via the hint protocol.
    pub peer_hits: u64,
    /// Bytes *not* fetched from the origin over bytes requested, % —
    /// the figure a shield tier exists to maximize.
    pub origin_offload_pct: f64,
    /// Measured requests that were served successfully, %.
    pub availability_pct: f64,
    /// Requests answered with an error after resilience was exhausted
    /// (excludes `unrouted`).
    pub errors_served: u64,
    /// Requests dropped because every node was down at once.
    pub unrouted: u64,
    /// Requests re-routed to a ring successor because their primary node
    /// was down.
    pub failovers: u64,
    /// Requests served from an expired copy (RFC 5861 paths).
    pub stale_served: u64,
    /// Origin fetch retries.
    pub retries: u64,
    /// Misses that joined an in-flight shield fetch.
    pub coalesced_fetches: u64,
    /// Circuit-breaker trips across shield shards.
    pub breaker_opens: u64,
    /// Breaker recoveries.
    pub breaker_closes: u64,
    /// Mean user-perceived latency, ms.
    pub mean_latency_ms: f64,
    /// P90 latency, ms.
    pub p90_latency_ms: f64,
    /// P99 latency, ms.
    pub p99_latency_ms: f64,
    /// Origin-side traffic, Gbps over the trace duration.
    pub wan_gbps: f64,
    /// Peak metadata overhead across node caches and shield, GB.
    pub peak_mem_gb: f64,
    /// Requests routed to each node (including warmup), node order.
    pub per_node_requests: Vec<u64>,
    /// Each node's local hit ratio over its measured requests, %.
    pub per_node_hit_pct: Vec<f64>,
    /// Error responses attributed to each node, node order.
    pub per_node_errors: Vec<u64>,
    /// Hottest-node load over the mean node load (1.0 = perfectly even);
    /// pure function of `per_node_requests`.
    pub node_imbalance: f64,
    /// Wall time of the whole replay; zeroed by [`Self::stable_json`].
    pub replay_wall_secs: f64,
}

lhr_util::impl_json!(struct FleetReport {
    name,
    trace,
    n_nodes,
    vnodes,
    n_shards,
    threads,
    requests_per_sec,
    requests,
    edge_hit_pct,
    byte_hit_pct,
    shield_hit_pct,
    peer_hits,
    origin_offload_pct,
    availability_pct,
    errors_served,
    unrouted,
    failovers,
    stale_served,
    retries,
    coalesced_fetches,
    breaker_opens,
    breaker_closes,
    mean_latency_ms,
    p90_latency_ms,
    p99_latency_ms,
    wan_gbps,
    peak_mem_gb,
    per_node_requests,
    per_node_hit_pct,
    per_node_errors,
    node_imbalance,
    replay_wall_secs,
});

impl FleetReport {
    /// JSON with every machine-dependent field zeroed (wall time,
    /// requests/sec, thread count). Byte-identical at any `--threads`
    /// setting; `scripts/verify.sh` diffs exactly this.
    pub fn stable_json(&self) -> String {
        let mut stable = self.clone();
        stable.replay_wall_secs = 0.0;
        stable.threads = 0;
        stable.requests_per_sec = 0.0;
        stable.to_json().to_string()
    }
}

/// How one request was ultimately served.
enum Served {
    /// Out of the routed node's own cache.
    EdgeHit,
    /// From ring peer `n` via the hint protocol.
    Peer(usize),
    /// Through the shield tier (hit, origin fetch, or error — the
    /// [`ServeOutcome`] flags say which).
    Shield,
    /// Dropped: every node was down.
    Unrouted,
}

/// Read-only per-replay context shared by every worker.
struct FleetCtx<'a, B> {
    ring: &'a HashRing,
    faults: &'a NodeFaultConfig,
    lat: LatencyModel,
    hint_ttl_secs: f64,
    peer_hints: bool,
    node_capacity: u64,
    build: &'a B,
}

/// One node's slice of one shard: its cache slice plus per-node
/// accounting.
struct NodeSlice<P> {
    policy: P,
    /// Restart epoch last observed for this node (cold-restart flushes
    /// fire on change).
    epoch: u64,
    /// Requests routed here, including warmup.
    seen: u64,
    /// Measured requests routed here.
    measured: u64,
    /// Measured requests served out of this node's own cache.
    hits: u64,
    /// Measured error responses attributed to this node.
    errors: u64,
}

/// One shard of the whole fleet: a slice of every node's cache, the
/// shield slice, the peer-hint table, and the accumulators — all owned
/// by exactly one worker (see the module docs).
struct FleetShard<P: CachePolicy> {
    nodes: Vec<NodeSlice<P>>,
    shield: CdnServer<Lru>,
    plan: FaultPlan,
    breaker: CircuitBreaker,
    in_flight: FastMap<ObjectId, (Time, bool)>,
    /// `id → (node that last filled it, publish time)`.
    hints: FastMap<ObjectId, (u32, f64)>,
    retries: u64,
    compute_ms: f64,
    latencies: Vec<f64>,
    bytes_served: u128,
    bytes_hit: u128,
    wan_bytes: u128,
    edge_hits: u64,
    peer_hits: u64,
    shield_hits: u64,
    shield_lookups: u64,
    errors: u64,
    unrouted: u64,
    failovers: u64,
    stale_served: u64,
    coalesced: u64,
    measured: u64,
    seen: u64,
    peak_meta: u64,
    obs: Option<Obs>,
    acc: Option<SeriesAcc>,
    lat_hist: LogHistogram,
    last_opens: u64,
    last_closes: u64,
}

impl<P: CachePolicy> FleetShard<P> {
    fn meta_bytes(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.policy.metadata_overhead_bytes())
            .sum::<u64>()
            + self.shield.policy().metadata_overhead_bytes()
    }

    /// Serves one request at live node `n`: edge cache, then peer hint,
    /// then the shield's hardened origin path.
    fn serve_at<B>(
        &mut self,
        ctx: &FleetCtx<'_, B>,
        s: usize,
        n: usize,
        t: f64,
        req: &Request,
        mut tb: Option<&mut TraceBuilder>,
    ) -> (ServeOutcome, Served)
    where
        B: Fn(usize, usize, u64, Option<&Obs>) -> P + Sync,
    {
        // A node that completed a down window since we last routed to it
        // rejoins here; under cold restart its slice is rebuilt empty.
        let epoch = ctx.faults.epoch(n, t);
        if self.nodes[n].epoch != epoch {
            self.nodes[n].epoch = epoch;
            if ctx.faults.cold_restart {
                let fresh = (ctx.build)(n, s, ctx.node_capacity, self.obs.as_ref());
                self.nodes[n].policy = fresh;
            }
        }
        self.nodes[n].seen += 1;

        // Fused present-check + hit processing; on a miss, `handle`
        // makes the admission decision regardless of where the fill
        // comes from (peer or shield).
        let hit = match self.nodes[n].policy.hit_check(req) {
            Some(outcome) => outcome.is_hit(),
            None => self.nodes[n].policy.handle(req).is_hit(),
        };
        if let Some(tb) = tb.as_deref_mut() {
            tb.push(
                "edge_lookup",
                req.size,
                vec![kv("node", n as u64), kv("hit", hit)],
            );
        }
        if hit {
            return (
                ServeOutcome {
                    latency_ms: ctx.lat.hit_latency_ms(req.size, 0.0),
                    service_ms: ctx.lat.service_ms(req.size, true, 0.0),
                    wan: 0,
                    hit: true,
                    stale: false,
                    error: false,
                    coalesced: false,
                    degraded: false,
                },
                Served::EdgeHit,
            );
        }

        // Peer hint: a ring peer recently filled this object — fetch it
        // intra-PoP (one extra edge RTT) instead of asking the shield.
        if ctx.peer_hints {
            if let Some(&(owner, published)) = self.hints.get(&req.id) {
                let owner = owner as usize;
                let usable = owner != n
                    && t - published <= ctx.hint_ttl_secs
                    && !ctx.faults.down(owner, t)
                    && self.nodes[owner].policy.contains(req.id);
                if let Some(tb) = tb.as_deref_mut() {
                    if usable {
                        tb.advance(ctx.lat.edge_rtt_ms);
                    }
                    tb.push(
                        "peer_hint",
                        req.size,
                        vec![kv("owner", owner as u64), kv("hit", usable)],
                    );
                }
                if usable {
                    return (
                        ServeOutcome {
                            latency_ms: ctx.lat.hit_latency_ms(req.size, 0.0) + ctx.lat.edge_rtt_ms,
                            service_ms: ctx.lat.service_ms(req.size, true, 0.0),
                            wan: 0,
                            hit: true,
                            stale: false,
                            error: false,
                            coalesced: false,
                            degraded: false,
                        },
                        Served::Peer(owner),
                    );
                }
                // Stale hint (expired, peer down, or evicted): drop it
                // so the next miss doesn't re-probe.
                self.hints.remove(&req.id);
            }
        }

        // Shield tier: the full hardened origin path (freshness, stale
        // serving, retries, breaker, coalescing), plus the edge→shield
        // hop on top of whatever the shield charged. The shield's own
        // `edge_lookup` step that follows carries the shield-cache hit
        // flag for this `shield_lookup` hop.
        if let Some(tb) = tb.as_deref_mut() {
            tb.advance(ctx.lat.edge_rtt_ms);
            tb.push("shield_lookup", req.size, vec![kv("node", n as u64)]);
        }
        let mut so = self.shield.serve(
            req,
            &mut self.plan,
            &mut self.breaker,
            &mut self.in_flight,
            &mut self.retries,
            &mut self.compute_ms,
            tb,
        );
        so.latency_ms += ctx.lat.edge_rtt_ms;
        if !so.error {
            // Publish: node `n` now holds the object, so ring peers can
            // shield-fetch from it instead of origin-fetching.
            self.hints.insert(req.id, (n as u32, t));
        }
        (so, Served::Shield)
    }

    /// Serves one request of this shard's subsequence.
    fn step<B>(&mut self, ctx: &FleetCtx<'_, B>, warmup: usize, s: usize, i: usize, req: &Request)
    where
        B: Fn(usize, usize, u64, Option<&Obs>) -> P + Sync,
    {
        let t = req.ts.as_secs_f64();
        self.seen += 1;
        if self.seen % 512 == 1 {
            self.peak_meta = self.peak_meta.max(self.meta_bytes());
            self.shield.prune_admitted();
            self.in_flight
                .retain(|_, &mut (done_at, _)| req.ts < done_at);
            let ttl = ctx.hint_ttl_secs;
            self.hints
                .retain(|_, &mut (_, published)| t - published <= ttl);
        }

        // Routing is a pure function of (id, trace time): static ring,
        // precompiled liveness schedule.
        let primary = ctx.ring.primary(req.id);
        let chosen = ctx.ring.node_for(req.id, |node| !ctx.faults.down(node, t));

        // Sampling is pure in `(object, trace time)` and keyed on the
        // global request index, so the sampled set is shard-layout- and
        // thread-count-invariant.
        let mut tb = match &self.obs {
            Some(obs) if i >= warmup => {
                obs.trace_recorder()
                    .begin(i as u64, req.id, req.ts.as_micros(), req.size)
            }
            _ => None,
        };
        if let Some(tb) = tb.as_mut() {
            if let Some(n) = chosen {
                if n != primary {
                    tb.push(
                        "failover",
                        0,
                        vec![kv("from", primary as u64), kv("to", n as u64)],
                    );
                }
            }
        }

        let (mut served, kind) = match chosen {
            None => (
                // Whole fleet down: the request fails at the client
                // after one edge round trip.
                ServeOutcome {
                    latency_ms: ctx.lat.error_latency_ms(0.0),
                    service_ms: 0.0,
                    wan: 0,
                    hit: false,
                    stale: false,
                    error: true,
                    coalesced: false,
                    degraded: true,
                },
                Served::Unrouted,
            ),
            Some(n) => self.serve_at(ctx, s, n, t, req, tb.as_mut()),
        };
        if chosen.is_some() && chosen != Some(primary) {
            served.degraded = true;
        }

        // Breaker flap events are trace-ordered and warmup-independent,
        // as in the engine.
        if let Some(obs) = &self.obs {
            let opens = self.breaker.opens();
            if opens > self.last_opens {
                obs.emit(Event::new(t, EventKind::BreakerOpen).field("opens", opens));
                self.last_opens = opens;
            }
            let closes = self.breaker.closes();
            if closes > self.last_closes {
                obs.emit(Event::new(t, EventKind::BreakerClose).field("closes", closes));
                self.last_closes = closes;
            }
        }

        // Warmup is by global trace index, identical at any thread count.
        if i < warmup {
            return;
        }
        self.measured += 1;
        self.bytes_served += req.size as u128;
        self.wan_bytes += served.wan as u128;

        let fleet_hit = matches!(kind, Served::EdgeHit | Served::Peer(_));
        if fleet_hit {
            self.bytes_hit += req.size as u128;
        }
        match kind {
            Served::EdgeHit => {
                self.edge_hits += 1;
                if let Some(n) = chosen {
                    self.nodes[n].hits += 1;
                }
            }
            Served::Peer(_) => self.peer_hits += 1,
            Served::Shield => {
                self.shield_lookups += 1;
                if served.hit {
                    self.shield_hits += 1;
                }
            }
            Served::Unrouted => self.unrouted += 1,
        }
        if let Some(n) = chosen {
            self.nodes[n].measured += 1;
            if served.error {
                self.nodes[n].errors += 1;
                self.errors += 1;
            }
            if n != primary {
                self.failovers += 1;
            }
        }
        if served.stale {
            self.stale_served += 1;
        }
        if served.coalesced {
            self.coalesced += 1;
        }
        self.latencies.push(served.latency_ms);

        if let Some(acc) = self.acc.as_mut() {
            acc.on_request(ReqSample {
                t_micros: req.ts.as_micros(),
                bytes: req.size,
                hit: fleet_hit,
                admitted: false,
                bypassed: false,
                error: served.error,
                stale: served.stale,
                coalesced: served.coalesced,
            });
            if served.latency_ms.is_finite() && served.latency_ms >= 0.0 {
                self.lat_hist.record((served.latency_ms * 1e3) as u64);
            }
            let obs = self.obs.as_ref().expect("acc implies obs");
            if served.stale {
                obs.emit(Event::new(t, EventKind::StaleServe).field("id", req.id));
            }
            if served.error {
                obs.emit(Event::new(t, EventKind::ErrorServe).field("id", req.id));
            }
            if served.coalesced {
                obs.emit(Event::new(t, EventKind::Coalesce).field("id", req.id));
            }
            if let Served::Peer(peer) = kind {
                obs.emit(
                    Event::new(t, EventKind::PeerHint)
                        .field("id", req.id)
                        .field("peer", peer as u64),
                );
            }
            if let Some(tb) = tb.take() {
                obs.push_trace(tb.finish(served.latency_ms, acc.last_index()));
            }
        }
    }

    /// Flushes the shard recorder (windows, counters, histogram) once the
    /// shard's subsequence is exhausted.
    fn finalize(&mut self) -> Option<Obs> {
        self.peak_meta = self.peak_meta.max(self.meta_bytes());
        let obs = self.obs.take()?;
        if let Some(acc) = self.acc.take() {
            obs.push_windows(acc.finish());
        }
        obs.counter_add("fleet.requests", self.measured);
        obs.counter_add("fleet.edge_hits", self.edge_hits);
        obs.counter_add("fleet.peer_hits", self.peer_hits);
        obs.counter_add("fleet.shield_hits", self.shield_hits);
        obs.counter_add("fleet.errors", self.errors);
        obs.counter_add("fleet.unrouted", self.unrouted);
        obs.counter_add("fleet.failovers", self.failovers);
        obs.counter_add("fleet.stale_served", self.stale_served);
        obs.counter_add("fleet.coalesced", self.coalesced);
        obs.counter_add("fleet.retries", self.retries);
        if self.lat_hist.total() > 0 {
            obs.hist_merge("fleet.latency_us", &self.lat_hist);
        }
        Some(obs)
    }
}

/// The fleet engine: replays a trace across N consistent-hashed edge
/// nodes over an origin shield, with node-level fault injection, and
/// merges per-shard, per-node results in fixed order.
///
/// ```
/// use lhr_policies::Lru;
/// use lhr_proto::fleet::{FleetConfig, FleetEngine, NodeFaultConfig};
/// use lhr_sim::shard::RouteConfig;
/// use lhr_trace::{Request, Time, Trace};
///
/// let mut trace = Trace::new("t");
/// for i in 0..4_000u64 {
///     trace.push(Request::new(Time::from_secs(i), (i * 7) % 100, 1 << 10));
/// }
/// let run = |threads: usize| {
///     let mut config = FleetConfig::new(64 << 10);
///     config.n_shards = 4;
///     config.route = RouteConfig { threads, ..RouteConfig::default() };
///     config.node_faults =
///         NodeFaultConfig::preset("node-churn", 7, config.n_nodes, 4_000.0).unwrap();
///     FleetEngine::new(config).replay(&trace, |_node, _shard, cap, _obs| Lru::new(cap))
/// };
/// // The determinism contract: byte-identical stable reports at any
/// // thread count, faults and all.
/// assert_eq!(run(1).stable_json(), run(3).stable_json());
/// ```
pub struct FleetEngine {
    config: FleetConfig,
    obs: Option<Obs>,
}

impl FleetEngine {
    /// Creates a fleet engine; the shield's `deterministic` is forced on
    /// and per-request series off, as in [`crate::ShardedEngine`].
    pub fn new(mut config: FleetConfig) -> Self {
        config.server.deterministic = true;
        config.server.series_every = None;
        FleetEngine { config, obs: None }
    }

    /// Attaches a master observability recorder; per-shard recorders are
    /// merged into it in fixed shard order ([`Obs::absorb_shards`]).
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Replays `trace` across the fleet. `build(node, shard, capacity,
    /// shard_obs)` constructs one node's cache slice for one shard; it
    /// must be `Fn + Sync` because churn presets rebuild slices
    /// mid-replay from worker threads (derive per-slice seeds as
    /// `shard_seed(shard_seed(base, node), shard)`).
    pub fn replay<P, B>(&self, trace: &Trace, build: B) -> FleetReport
    where
        P: CachePolicy + Send,
        B: Fn(usize, usize, u64, Option<&Obs>) -> P + Sync,
    {
        let n_shards = self.config.n_shards.max(1);
        let n_nodes = self.config.n_nodes.clamp(1, MAX_NODES);
        let node_capacity =
            (self.config.total_capacity / (n_nodes as u64 * n_shards as u64)).max(1);
        let shield_capacity = self.config.shield_capacity / n_shards as u64;
        let ring = HashRing::new(n_nodes, self.config.vnodes);

        if let Some(obs) = &self.obs {
            for &(start, end) in &self.config.server.faults.outages {
                obs.emit(Event::new(start, EventKind::OutageStart).field("until_secs", end));
                obs.emit(Event::new(end, EventKind::OutageEnd));
            }
            for &(node, start, end) in &self.config.node_faults.windows {
                obs.emit(
                    Event::new(start, EventKind::NodeDown)
                        .field("node", node as u64)
                        .field("until_secs", end),
                );
                obs.emit(Event::new(end, EventKind::NodeUp).field("node", node as u64));
            }
        }

        let measured_total = trace
            .len()
            .saturating_sub(self.config.server.warmup_requests);
        let per_shard_latency_cap =
            measured_total / n_shards + measured_total / (n_shards * 4) + 16;

        let shards: Vec<FleetShard<P>> = (0..n_shards)
            .map(|s| {
                let obs = self
                    .obs
                    .as_ref()
                    .map(|master| Obs::new(master.config().clone()));
                let mut faults = self.config.server.faults.clone();
                faults.seed = shard_seed(faults.seed, s);
                let server_config = ServerConfig {
                    faults: faults.clone(),
                    ..self.config.server.clone()
                };
                FleetShard {
                    nodes: (0..n_nodes)
                        .map(|node| NodeSlice {
                            policy: build(node, s, node_capacity, obs.as_ref()),
                            epoch: 0,
                            seen: 0,
                            measured: 0,
                            hits: 0,
                            errors: 0,
                        })
                        .collect(),
                    shield: CdnServer::new(Lru::new(shield_capacity), server_config.clone()),
                    plan: FaultPlan::new(faults),
                    breaker: CircuitBreaker::new(server_config.resilience.breaker.clone()),
                    in_flight: FastMap::default(),
                    hints: FastMap::default(),
                    retries: 0,
                    compute_ms: 0.0,
                    latencies: Vec::with_capacity(per_shard_latency_cap),
                    bytes_served: 0,
                    bytes_hit: 0,
                    wan_bytes: 0,
                    edge_hits: 0,
                    peer_hits: 0,
                    shield_hits: 0,
                    shield_lookups: 0,
                    errors: 0,
                    unrouted: 0,
                    failovers: 0,
                    stale_served: 0,
                    coalesced: 0,
                    measured: 0,
                    seen: 0,
                    peak_meta: 0,
                    acc: obs.as_ref().map(|o| SeriesAcc::new(o.window())),
                    obs,
                    lat_hist: LogHistogram::new(),
                    last_opens: 0,
                    last_closes: 0,
                }
            })
            .collect();

        let name = shards
            .first()
            .and_then(|s| s.nodes.first())
            .map(|slice| format!("fleet({})x{}", slice.policy.name(), n_nodes))
            .unwrap_or_default();
        if let Some(master) = &self.obs {
            master.set_meta("policy", name.as_str());
            master.set_meta("trace", trace.name.as_str());
            master.set_meta("nodes", n_nodes as u64);
            master.set_meta("shards", n_shards as u64);
        }

        let ctx = FleetCtx {
            ring: &ring,
            faults: &self.config.node_faults,
            lat: self.config.server.latency.clone(),
            hint_ttl_secs: self.config.hint_ttl_secs,
            peer_hints: self.config.peer_hints,
            node_capacity,
            build: &build,
        };
        let warmup = self.config.server.warmup_requests;
        let threads = self.config.route.resolve_threads().clamp(1, n_shards);
        let wall_start = Instant::now();
        let mut shards = route(trace, shards, &self.config.route, |state, s, i, req| {
            state.step(&ctx, warmup, s, i, req)
        });
        let wall_secs = wall_start.elapsed().as_secs_f64();

        // Merge in fixed shard order, then fixed node order.
        let mut latencies = Vec::with_capacity(trace.len());
        let mut shard_obs = Vec::new();
        let mut bytes_served = 0u128;
        let mut bytes_hit = 0u128;
        let mut wan_bytes = 0u128;
        let mut edge_hits = 0u64;
        let mut peer_hits = 0u64;
        let mut shield_hits = 0u64;
        let mut shield_lookups = 0u64;
        let mut errors = 0u64;
        let mut unrouted = 0u64;
        let mut failovers = 0u64;
        let mut stale_served = 0u64;
        let mut coalesced = 0u64;
        let mut retries = 0u64;
        let mut measured = 0u64;
        let mut peak_meta = 0u64;
        let mut breaker_opens = 0u64;
        let mut breaker_closes = 0u64;
        let mut node_seen = vec![0u64; n_nodes];
        let mut node_measured = vec![0u64; n_nodes];
        let mut node_hits = vec![0u64; n_nodes];
        let mut node_errors = vec![0u64; n_nodes];
        for shard in &mut shards {
            if let Some(obs) = shard.finalize() {
                shard_obs.push(obs);
            }
            latencies.append(&mut shard.latencies);
            bytes_served += shard.bytes_served;
            bytes_hit += shard.bytes_hit;
            wan_bytes += shard.wan_bytes;
            edge_hits += shard.edge_hits;
            peer_hits += shard.peer_hits;
            shield_hits += shard.shield_hits;
            shield_lookups += shard.shield_lookups;
            errors += shard.errors;
            unrouted += shard.unrouted;
            failovers += shard.failovers;
            stale_served += shard.stale_served;
            coalesced += shard.coalesced;
            retries += shard.retries;
            measured += shard.measured;
            peak_meta += shard.peak_meta;
            breaker_opens += shard.breaker.opens();
            breaker_closes += shard.breaker.closes();
            for (node, slice) in shard.nodes.iter().enumerate() {
                node_seen[node] += slice.seen;
                node_measured[node] += slice.measured;
                node_hits[node] += slice.hits;
                node_errors[node] += slice.errors;
            }
        }
        let (p90_latency_ms, p99_latency_ms) = pct2(&mut latencies);
        let mean = if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        };
        let duration = trace.duration().as_secs_f64().max(1e-9);
        let pct = |part: f64, whole: f64| {
            if whole <= 0.0 {
                0.0
            } else {
                part / whole * 100.0
            }
        };
        let origin_offload_pct = if bytes_served == 0 {
            100.0
        } else {
            (1.0 - wan_bytes as f64 / bytes_served as f64) * 100.0
        };
        let availability_pct = if measured == 0 {
            100.0
        } else {
            (measured - errors - unrouted) as f64 / measured as f64 * 100.0
        };
        let node_imbalance = crate::engine::shard_skew(&node_seen).0;
        let per_node_hit_pct: Vec<f64> = node_hits
            .iter()
            .zip(&node_measured)
            .map(|(&h, &m)| pct(h as f64, m as f64))
            .collect();

        if let Some(master) = &self.obs {
            master.absorb_shards(&shard_obs);
            master.gauge_set("fleet.node_imbalance", node_imbalance);
            master.gauge_set("fleet.origin_offload_pct", origin_offload_pct);
            master.gauge_set(
                "server.replay_wall_secs",
                if master.deterministic() {
                    0.0
                } else {
                    wall_secs
                },
            );
        }

        FleetReport {
            name,
            trace: trace.name.clone(),
            n_nodes: n_nodes as u64,
            vnodes: self.config.vnodes.max(1) as u64,
            n_shards: n_shards as u64,
            threads: threads as u64,
            requests_per_sec: if wall_secs > 0.0 {
                trace.len() as f64 / wall_secs
            } else {
                0.0
            },
            requests: measured,
            edge_hit_pct: pct(edge_hits as f64, measured as f64),
            byte_hit_pct: pct(bytes_hit as f64, bytes_served as f64),
            shield_hit_pct: pct(shield_hits as f64, shield_lookups as f64),
            peer_hits,
            origin_offload_pct,
            availability_pct,
            errors_served: errors,
            unrouted,
            failovers,
            stale_served,
            retries,
            coalesced_fetches: coalesced,
            breaker_opens,
            breaker_closes,
            mean_latency_ms: mean,
            p90_latency_ms,
            p99_latency_ms,
            wan_gbps: wan_bytes as f64 * 8.0 / duration / 1e9,
            peak_mem_gb: peak_meta as f64 / 1e9,
            per_node_requests: node_seen,
            per_node_hit_pct,
            per_node_errors: node_errors,
            node_imbalance,
            replay_wall_secs: wall_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhr_util::json::{FromJson, Json};

    fn trace(n: usize, objects: u64, size: u64) -> Trace {
        let mut t = Trace::new("fleet-test");
        for i in 0..n {
            t.push(Request::new(
                Time::from_secs(i as u64),
                (i as u64 * 7) % objects,
                size,
            ));
        }
        t
    }

    fn config(threads: usize, total_capacity: u64) -> FleetConfig {
        let mut c = FleetConfig::new(total_capacity);
        c.n_shards = 4;
        c.route = RouteConfig {
            threads,
            ..RouteConfig::default()
        };
        c
    }

    #[test]
    fn ring_covers_every_node_and_is_stable() {
        let ring = HashRing::new(5, 64);
        let mut seen = [0u64; 5];
        for id in 0..10_000u64 {
            let n = ring.primary(id);
            assert_eq!(n, ring.primary(id), "primary is a pure function");
            assert_eq!(
                ring.node_for(id, |_| true),
                Some(n),
                "all-live routing equals the primary"
            );
            seen[n] += 1;
        }
        assert!(seen.iter().all(|&c| c > 0), "{seen:?}");
    }

    #[test]
    fn ring_keyspace_is_balanced() {
        // Regression: without the avalanche finalizer and domain tags,
        // node 0 owned two thirds of the keyspace *and* captured every
        // id below `vnodes` (its points equalled those ids' key hashes).
        let ring = HashRing::new(4, 64);
        let mut counts = [0u64; 4];
        for id in 0..40_000u64 {
            counts[ring.primary(id)] += 1;
        }
        for (node, &c) in counts.iter().enumerate() {
            assert!(
                (5_500..=14_500).contains(&c),
                "node {node} owns {c} of 40k uniform ids: {counts:?}"
            );
        }
        let mut small = [0u64; 4];
        for id in 0..64u64 {
            small[ring.primary(id)] += 1;
        }
        assert!(small.iter().all(|&c| c > 0), "dense ids cluster: {small:?}");
    }

    #[test]
    fn ring_failover_is_bounded_rehash() {
        let ring = HashRing::new(4, 64);
        let down = 2usize;
        for id in 0..5_000u64 {
            let primary = ring.primary(id);
            let rerouted = ring.node_for(id, |n| n != down);
            if primary != down {
                assert_eq!(rerouted, Some(primary), "live primaries never move");
            } else {
                let got = rerouted.expect("three nodes are still live");
                assert_ne!(got, down);
            }
        }
        assert_eq!(ring.node_for(7, |_| false), None, "all-down is unrouted");
    }

    #[test]
    fn presets_compile_to_deterministic_schedules() {
        assert!(NodeFaultConfig::preset("nope", 1, 4, 100.0).is_none());
        let none = NodeFaultConfig::preset("none", 1, 4, 100.0).unwrap();
        assert!(none.windows.is_empty());

        let brown = NodeFaultConfig::preset("node-brownout", 6, 4, 1000.0).unwrap();
        assert_eq!(brown.windows, vec![(2, 350.0, 650.0)]);
        assert!(brown.down(2, 400.0) && !brown.down(2, 700.0) && !brown.down(1, 400.0));
        assert_eq!(brown.epoch(2, 400.0), 0);
        assert_eq!(brown.epoch(2, 650.0), 1);
        assert!((brown.down_secs(2) - 300.0).abs() < 1e-9);

        let churn = NodeFaultConfig::preset("node-churn", 9, 4, 1000.0).unwrap();
        assert!(churn.cold_restart);
        assert_eq!(churn.windows.len(), 4);
        let flaky_a = NodeFaultConfig::preset("node-flaky", 3, 2, 1000.0).unwrap();
        let flaky_b = NodeFaultConfig::preset("node-flaky", 3, 2, 1000.0).unwrap();
        assert_eq!(flaky_a.windows, flaky_b.windows, "pure function of seed");
        assert_eq!(flaky_a.windows.len(), 8);
    }

    #[test]
    fn replay_is_identical_across_thread_counts_under_churn() {
        let t = trace(12_000, 200, 1 << 14);
        let run = |threads: usize| {
            let mut c = config(threads, 64 << 14);
            c.node_faults =
                NodeFaultConfig::preset("node-churn", 5, c.n_nodes, t.duration().as_secs_f64())
                    .unwrap();
            FleetEngine::new(c)
                .replay(&t, |_, _, cap, _| Lru::new(cap))
                .stable_json()
        };
        let baseline = run(1);
        assert_eq!(baseline, run(2));
        assert_eq!(baseline, run(8));
    }

    #[test]
    fn brownout_fails_over_and_stays_available() {
        let t = trace(16_000, 300, 1 << 14);
        let run = |preset: &str| {
            let mut c = config(2, 128 << 14);
            c.node_faults =
                NodeFaultConfig::preset(preset, 6, c.n_nodes, t.duration().as_secs_f64()).unwrap();
            FleetEngine::new(c).replay(&t, |_, _, cap, _| Lru::new(cap))
        };
        let calm = run("none");
        let brown = run("node-brownout");
        assert_eq!(calm.failovers, 0);
        assert_eq!(calm.unrouted, 0);
        assert!(brown.failovers > 0, "down node must re-route");
        assert_eq!(brown.unrouted, 0, "three live nodes remain");
        // The origin is infallible here, so failover keeps every request
        // served: availability stays at 100%, far above the no-failover
        // analytic floor of ~92.5% (30% downtime × 1/4 of the keyspace).
        assert!(brown.availability_pct > 99.99, "{}", brown.availability_pct);
        assert!(
            brown.origin_offload_pct <= calm.origin_offload_pct + 1e-9,
            "offload can only degrade under faults: {} vs {}",
            brown.origin_offload_pct,
            calm.origin_offload_pct
        );
    }

    #[test]
    fn peer_hints_reduce_origin_traffic() {
        // Churn makes nodes rejoin *cold*: a rejoined node misses keys
        // its ring successor absorbed (and published hints for) during
        // the window, so the hint path serves them intra-fleet. Capacity
        // is ample so the peers still hold those keys.
        let t = trace(16_000, 300, 1 << 14);
        let run = |peer_hints: bool| {
            let mut c = config(1, 1 << 26);
            c.peer_hints = peer_hints;
            c.shield_capacity = 0;
            c.node_faults =
                NodeFaultConfig::preset("node-churn", 6, c.n_nodes, t.duration().as_secs_f64())
                    .unwrap();
            FleetEngine::new(c).replay(&t, |_, _, cap, _| Lru::new(cap))
        };
        let with = run(true);
        let without = run(false);
        assert!(
            with.peer_hits > 0,
            "cold rejoins must exercise the hint path"
        );
        assert_eq!(without.peer_hits, 0);
        assert!(
            with.origin_offload_pct >= without.origin_offload_pct,
            "{} vs {}",
            with.origin_offload_pct,
            without.origin_offload_pct
        );
    }

    #[test]
    fn zero_capacity_shield_still_serves() {
        let t = trace(4_000, 100, 1 << 10);
        let mut c = config(1, 32 << 10);
        c.shield_capacity = 0;
        let report = FleetEngine::new(c).replay(&t, |_, _, cap, _| Lru::new(cap));
        assert_eq!(report.shield_hit_pct, 0.0);
        assert!(report.availability_pct > 99.99);
        assert!(report.requests > 0);
    }

    #[test]
    fn report_json_roundtrips() {
        let t = trace(3_000, 80, 1 << 10);
        let report = FleetEngine::new(config(1, 64 << 10)).replay(&t, |_, _, cap, _| Lru::new(cap));
        let json = report.to_json().to_string();
        let back = FleetReport::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back.to_json().to_string(), json);
        assert_eq!(back.n_nodes, 4);
        assert_eq!(back.per_node_requests.len(), 4);
    }
}
