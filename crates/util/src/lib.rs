//! `lhr-util` — the workspace's zero-dependency utility layer.
//!
//! Everything in this repository must build **offline** with an empty cargo
//! registry (see DESIGN.md, "Dependency policy"). This crate supplies the
//! std-only replacements for the handful of external crates a project like
//! this would normally pull in:
//!
//! - [`rng`] — deterministic, seedable PRNGs (SplitMix64, PCG64,
//!   xoshiro256++) behind a [`rng::Rng`] trait with uniform/Gaussian/Pareto
//!   sampling helpers. Replaces `rand`; every experiment seed maps to a
//!   bit-reproducible request stream.
//! - [`json`] — a small JSON value model, recursive-descent parser, and
//!   writer, plus [`json::ToJson`]/[`json::FromJson`] traits and the
//!   [`impl_json!`] derive-replacement macro. Replaces `serde` for model
//!   persistence and experiment reports.
//! - [`sync`] — panic-robust `Mutex`/`RwLock` wrappers (a `parking_lot`-style
//!   guard API over `std::sync`) and a re-export of `std::sync::mpsc`.
//! - [`buf`] — little-endian byte-buffer helpers (`bytes`-style `BytesMut`
//!   and a `Buf` trait for slices) used by the binary trace format.
//! - [`hash`] — a fixed-seed FxHash-style hasher with [`hash::FastMap`]/
//!   [`hash::FastSet`] aliases. Replaces `rustc-hash`/`fxhash` for the
//!   request hot path, where SipHash + `RandomState` costs throughput and
//!   cross-process determinism.
//! - [`prop`] — property-based testing: value generators with shrinking and
//!   the [`prop_check!`] macro. Replaces `proptest` for this repo's needs.
//! - [`bench`] — a wall-clock micro-benchmark harness with warmup, used by
//!   `crates/bench`'s plain-binary benches. Replaces `criterion`.
//!
//! # Example
//!
//! ```
//! use lhr_util::rng::{Rng, SeedableRng, rngs::StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let coin = rng.gen_bool(0.5);
//! let lane = rng.gen_range(0..8);
//! assert!(lane < 8);
//! // Same seed ⇒ same stream, on every platform.
//! let mut again = StdRng::seed_from_u64(42);
//! assert_eq!(again.gen_bool(0.5), coin);
//! ```

pub mod bench;
pub mod buf;
pub mod hash;
pub mod json;
pub mod prop;
pub mod rng;
pub mod sync;
