//! Count-Min sketch with conservative update and periodic halving — the
//! frequency estimator behind TinyLFU / W-TinyLFU.
//!
//! Following the TinyLFU paper, counters are aged with a "reset" operation:
//! once the total increment count reaches a sample-size threshold, every
//! counter is halved, so the sketch tracks a sliding exponential window of
//! popularity. Counters saturate at 15 (4-bit semantics, stored in u8 for
//! simplicity).

/// The sketch.
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    rows: usize,
    width: u64,
    counters: Vec<u8>,
    increments: u64,
    sample_size: u64,
}

const MAX_COUNT: u8 = 15;

impl CountMinSketch {
    /// A sketch sized for roughly `expected_items` distinct keys: 4 rows of
    /// the next power of two ≥ `expected_items` counters; reset period
    /// 10 × expected items (TinyLFU's `W`).
    pub fn new(expected_items: u64) -> Self {
        let width = expected_items.max(16).next_power_of_two();
        CountMinSketch {
            rows: 4,
            width,
            counters: vec![0u8; (width as usize) * 4],
            increments: 0,
            sample_size: expected_items.max(16) * 10,
        }
    }

    #[inline]
    fn index(&self, row: usize, key: u64) -> usize {
        let h = splitmix(key ^ (row as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        row * self.width as usize + (h & (self.width - 1)) as usize
    }

    /// Increments the frequency of `key` (conservative update), halving all
    /// counters when the sample window is exhausted.
    pub fn increment(&mut self, key: u64) {
        let est = self.estimate(key);
        if est < MAX_COUNT as u64 {
            for row in 0..self.rows {
                let idx = self.index(row, key);
                // Conservative update: only bump counters at the minimum.
                if (self.counters[idx] as u64) == est {
                    self.counters[idx] += 1;
                }
            }
        }
        self.increments += 1;
        if self.increments >= self.sample_size {
            self.age();
        }
    }

    /// Estimated frequency of `key` (min over rows, ≤ 15).
    pub fn estimate(&self, key: u64) -> u64 {
        (0..self.rows)
            .map(|row| self.counters[self.index(row, key)])
            .min()
            .unwrap_or(0) as u64
    }

    fn age(&mut self) {
        for c in &mut self.counters {
            *c >>= 1;
        }
        self.increments /= 2;
    }

    /// Approximate memory footprint in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.counters.len() as u64
    }
}

#[inline]
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_grow_with_increments() {
        let mut s = CountMinSketch::new(1_000);
        assert_eq!(s.estimate(5), 0);
        for _ in 0..7 {
            s.increment(5);
        }
        assert_eq!(s.estimate(5), 7);
    }

    #[test]
    fn estimates_never_undercount_single_key() {
        let mut s = CountMinSketch::new(10_000);
        for k in 0..1_000u64 {
            s.increment(k);
        }
        for _ in 0..5 {
            s.increment(999_999);
        }
        assert!(s.estimate(999_999) >= 5);
    }

    #[test]
    fn counters_saturate() {
        let mut s = CountMinSketch::new(1_000);
        for _ in 0..100 {
            s.increment(1);
        }
        assert_eq!(s.estimate(1), MAX_COUNT as u64);
    }

    #[test]
    fn aging_halves_counts() {
        let mut s = CountMinSketch::new(16); // sample size = 160
        for _ in 0..10 {
            s.increment(7);
        }
        assert_eq!(s.estimate(7), 10);
        // Exhaust the sample window with other keys.
        for i in 0..150u64 {
            s.increment(1_000 + i % 50);
        }
        assert!(s.estimate(7) <= 5, "estimate {} after aging", s.estimate(7));
    }

    #[test]
    fn distinguishes_hot_from_cold() {
        let mut s = CountMinSketch::new(4_096);
        for _ in 0..12 {
            s.increment(1);
        }
        s.increment(2);
        assert!(s.estimate(1) > s.estimate(2));
    }

    #[test]
    fn size_is_reported() {
        let s = CountMinSketch::new(1_024);
        assert_eq!(s.size_bytes(), 4 * 1_024);
    }
}
