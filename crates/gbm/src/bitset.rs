//! Set-at-a-time forest scoring on pre-binned codes — the batched
//! quantized serving path.
//!
//! [`crate::flat::FlatForest`]'s lane-blocked traversal still pays a
//! dependent load chain per lane per level. This module removes the
//! per-lane chase entirely by evaluating whole *blocks of 64 rows* as bit
//! masks:
//!
//! 1. **Predicate masks.** Every distinct split predicate
//!    `(feature, threshold, default_left)` in the forest becomes one
//!    64-bit mask per block: bit `l` set ⟺ row `l` goes *left*. On a
//!    [`Binned`] matrix the predicate is a `u8` compare against the cut's
//!    bin index (`code ≤ cut ⟺ value ≤ edges[cut]`, exact for every
//!    `f32` — see [`BitsetForest::resolve`]), so one AVX-512 `vpcmpleub`
//!    evaluates a predicate for 64 rows in a single instruction.
//! 2. **Reach propagation.** Each tree is padded to a complete binary
//!    tree of the forest's max depth (≤ [`MAX_DEPTH`]); a node's *reach
//!    mask* (which rows arrive at it) splits into its children with one
//!    AND and one ANDNOT. Processing eight blocks per ZMM register scores
//!    512 rows per sweep. Per level, the union of the "went right" masks
//!    is one *direction bit* per row.
//! 3. **Leaf lookup.** The per-level direction bits concatenate into each
//!    row's leaf index; leaf values resolve 16 rows at a time with a
//!    two-register permute and accumulate in tree order with `f32` adds
//!    from the base score — bit-identical to the per-row reference walk.
//!
//! The portable scalar kernel below implements the same three stages on
//! one 64-row block at a time (also used for sub-block tails), so results
//! are identical on every architecture; the AVX-512 kernel is selected at
//! runtime and is where the ~10x over the per-row walk comes from.

use crate::dataset::{Binned, MISSING_BIN};
use crate::tree::Tree;

/// Deepest tree the bitset layout supports (64 leaves). Matches the
/// default `GbmParams::max_depth`; deeper hand-tuned forests serve from
/// the lane-blocked raw path instead.
pub(crate) const MAX_DEPTH: u32 = 6;

/// Rows per bit-mask block.
const BLOCK: usize = 64;

/// Blocks per AVX-512 superblock (eight `u64` masks per ZMM register).
const SB_BLOCKS: usize = 8;

/// Rows per AVX-512 superblock.
const SB: usize = BLOCK * SB_BLOCKS;

/// Reserved predicate slot whose mask is all-ones: every row goes left.
/// Pads short branches and fills unreachable slots.
const ALWAYS: u16 = 0;

/// One distinct split predicate: "row goes left ⟺ `value ≤ thr`, with
/// NaN routed by `default_left`".
#[derive(Debug, Clone)]
struct Pred {
    feature: u32,
    thr: f32,
    default_left: bool,
}

/// A fitted forest in padded complete-tree layout over deduplicated
/// predicates, ready for block scoring. Built once per model; the
/// per-dataset cut resolution happens in [`BitsetForest::resolve`].
#[derive(Debug, Clone)]
pub(crate) struct BitsetForest {
    n_features: usize,
    /// Uniform padded depth, `1..=MAX_DEPTH`.
    depth: u32,
    n_trees: usize,
    /// `preds[0]` is the reserved [`ALWAYS`] predicate (never read —
    /// kernels special-case slot 0); the rest are sorted by feature.
    preds: Vec<Pred>,
    /// Per feature: the contiguous `preds` index range using it.
    feat_ranges: Vec<(u32, u32)>,
    /// Per tree: `(1 << depth) - 1` level-order predicate slots.
    /// Position `p` of level `lv` lives at `(1 << lv) - 1 + p`; its
    /// children are positions `2p` (left) and `2p + 1` (right).
    slots: Vec<u16>,
    /// Per tree: leaf values padded to 64 entries (a leaf at level `lv`,
    /// position `p` lands at index `p << (depth - lv)` — the all-left
    /// descent through its [`ALWAYS`]-padded subtree).
    leaves: Vec<f32>,
}

impl BitsetForest {
    /// Lays out `trees`, or `None` when the forest doesn't fit the padded
    /// layout (a tree deeper than [`MAX_DEPTH`], or a malformed
    /// out-of-range feature index in hand-written model JSON).
    pub(crate) fn build(trees: &[Tree], n_features: usize) -> Option<BitsetForest> {
        let depth = trees
            .iter()
            .map(crate::flat::tree_depth)
            .max()
            .unwrap_or(0)
            .max(1);
        if depth > MAX_DEPTH {
            return None;
        }
        for tree in trees {
            for n in &tree.nodes {
                if n.feature != u32::MAX && n.feature as usize >= n_features {
                    return None;
                }
            }
        }
        // Deduplicate predicates, then sort by feature so stage 1 touches
        // each code column once per block.
        let mut keys: Vec<(u32, u32, bool)> = trees
            .iter()
            .flat_map(|t| &t.nodes)
            .filter(|n| n.feature != u32::MAX)
            .map(|n| (n.feature, n.threshold.to_bits(), n.default_left))
            .collect();
        keys.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        keys.dedup();
        if keys.len() + 1 > u16::MAX as usize {
            return None;
        }
        let mut preds = Vec::with_capacity(keys.len() + 1);
        preds.push(Pred {
            feature: 0,
            thr: 0.0,
            default_left: true,
        });
        for &(feature, thr_bits, default_left) in &keys {
            preds.push(Pred {
                feature,
                thr: f32::from_bits(thr_bits),
                default_left,
            });
        }
        let mut feat_ranges = Vec::with_capacity(n_features);
        for f in 0..n_features as u32 {
            let lo = 1 + keys.partition_point(|k| k.0 < f);
            let hi = 1 + keys.partition_point(|k| k.0 <= f);
            feat_ranges.push((lo as u32, hi as u32));
        }
        let slot_of = |feature: u32, thr: f32, dl: bool| -> u16 {
            let key = (feature, thr.to_bits(), dl);
            (1 + keys.binary_search(&key).expect("predicate was pooled")) as u16
        };

        let n_pos = (1usize << depth) - 1;
        let mut forest = BitsetForest {
            n_features,
            depth,
            n_trees: trees.len(),
            preds,
            feat_ranges,
            slots: vec![ALWAYS; trees.len() * n_pos],
            leaves: vec![0.0; trees.len() * BLOCK],
        };
        for (t, tree) in trees.iter().enumerate() {
            let slots = &mut forest.slots[t * n_pos..(t + 1) * n_pos];
            let leaves = &mut forest.leaves[t * BLOCK..(t + 1) * BLOCK];
            // Iterative DFS placing arena node `i` at (level, pos).
            let mut stack = vec![(0u32, 0u32, 0u32)];
            while let Some((i, lv, pos)) = stack.pop() {
                let n = &tree.nodes[i as usize];
                if n.feature == u32::MAX {
                    // Leaf: all-left through the padded subtree below it.
                    leaves[(pos << (depth - lv)) as usize] = n.value;
                } else {
                    slots[(1usize << lv) - 1 + pos as usize] =
                        slot_of(n.feature, n.threshold, n.default_left);
                    stack.push((n.left, lv + 1, 2 * pos));
                    stack.push((n.right, lv + 1, 2 * pos + 1));
                }
            }
        }
        Some(forest)
    }

    /// Resolves every predicate threshold to a bin index of `binned`:
    /// `cuts[pi]` satisfies `value ≤ thr ⟺ bin_of(value) ≤ cuts[pi]` for
    /// *every* `f32` value (±inf included), which holds exactly when the
    /// threshold equals the edge `binned.edges[f][cuts[pi]]`. Thresholds
    /// of a trained model are bin edges of its training dataset by
    /// construction, so resolution always succeeds there; against a
    /// differently-binned dataset it returns `None` and the caller serves
    /// from the raw path. Value equality (not bit equality) suffices: the
    /// only non-identical equal pair is `-0.0 == 0.0`, and `v ≤ -0.0 ⟺
    /// v ≤ 0.0` for every `v`.
    pub(crate) fn resolve(&self, binned: &Binned) -> Option<Vec<u8>> {
        debug_assert_eq!(binned.n_features, self.n_features);
        let mut cuts = vec![0u8; self.preds.len()];
        for (pi, p) in self.preds.iter().enumerate().skip(1) {
            let edges = &binned.edges[p.feature as usize];
            let i = edges.partition_point(|&e| e < p.thr);
            if !edges.get(i).is_some_and(|&e| e == p.thr) {
                return None;
            }
            debug_assert!(i < MISSING_BIN as usize);
            cuts[pi] = i as u8;
        }
        Some(cuts)
    }

    /// Raw (pre-transform) scores for rows `start..start + out.len()` of
    /// `binned`, written into `out`. `cuts` must come from
    /// [`BitsetForest::resolve`] against the same `binned`.
    pub(crate) fn score_range(
        &self,
        binned: &Binned,
        cuts: &[u8],
        base: f32,
        start: usize,
        out: &mut [f32],
    ) {
        let mut done = 0usize;
        #[cfg(target_arch = "x86_64")]
        if out.len() - done >= SB
            && std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512bw")
        {
            let full = (out.len() / SB) * SB;
            let mut scratch = avx512::Scratch::new(self);
            while done < full {
                // SAFETY contract of the kernel: detected features above,
                // and `start + done .. + SB` is in range for `binned`.
                avx512::superblock(
                    self,
                    binned,
                    cuts,
                    base,
                    start + done,
                    &mut out[done..done + SB],
                    &mut scratch,
                );
                done += SB;
            }
        }
        let mut pmask = vec![0u64; self.preds.len()];
        while done < out.len() {
            let n = BLOCK.min(out.len() - done);
            self.block_scalar(
                binned,
                cuts,
                base,
                start + done,
                &mut out[done..done + n],
                &mut pmask,
            );
            done += n;
        }
    }

    /// Portable one-block (≤ 64 rows) kernel: the same three stages as the
    /// AVX-512 path, on plain `u64` masks.
    fn block_scalar(
        &self,
        binned: &Binned,
        cuts: &[u8],
        base: f32,
        row0: usize,
        out: &mut [f32],
        pmask: &mut [u64],
    ) {
        let n = out.len();
        debug_assert!(n <= BLOCK);
        let valid: u64 = if n == BLOCK { !0 } else { (1u64 << n) - 1 };
        // Stage 1: one mask per predicate.
        for (f, &(lo, hi)) in self.feat_ranges.iter().enumerate() {
            if lo == hi {
                continue;
            }
            let col = &binned.col(f)[row0..row0 + n];
            let mut miss = 0u64;
            for (l, &c) in col.iter().enumerate() {
                miss |= ((c == MISSING_BIN) as u64) << l;
            }
            for pi in lo as usize..hi as usize {
                let cut = cuts[pi];
                let mut m = 0u64;
                for (l, &c) in col.iter().enumerate() {
                    m |= ((c <= cut) as u64) << l;
                }
                if self.preds[pi].default_left {
                    m |= miss;
                }
                pmask[pi] = m;
            }
        }
        pmask[ALWAYS as usize] = !0;

        let depth = self.depth as usize;
        let n_pos = (1usize << depth) - 1;
        let mut acc = [base; BLOCK];
        let mut reach = [0u64; BLOCK];
        for t in 0..self.n_trees {
            let slots = &self.slots[t * n_pos..(t + 1) * n_pos];
            let leaves = &self.leaves[t * BLOCK..(t + 1) * BLOCK];
            reach[0] = valid;
            // Stage 2: expand in place, levels forward, positions
            // descending (writes land at indices ≥ the pending reads).
            for lv in 0..depth {
                let base_i = (1usize << lv) - 1;
                for p in (0..(1usize << lv)).rev() {
                    let r = reach[p];
                    let m = pmask[slots[base_i + p] as usize];
                    reach[2 * p + 1] = r & !m;
                    reach[2 * p] = r & m;
                }
            }
            // Stage 3: one leaf-value add per reached row, tree order.
            for (p, &v) in leaves.iter().enumerate().take(1 << depth) {
                let mut m = reach[p];
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    acc[l] += v;
                }
            }
        }
        out.copy_from_slice(&acc[..n]);
    }
}

/// The AVX-512 superblock kernel. Isolated `unsafe`: raw SIMD loads and
/// stores over slices whose bounds the safe caller has already checked,
/// plus `#[target_feature]` dispatch guarded by runtime detection in
/// [`BitsetForest::score_range`].
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx512 {
    use super::{BitsetForest, ALWAYS, BLOCK, SB, SB_BLOCKS};
    use crate::dataset::{Binned, MISSING_BIN};
    use std::arch::x86_64::*;

    /// Per-call reusable buffers (all `[item][SB_BLOCKS]` of `u64`).
    pub(super) struct Scratch {
        /// One mask per predicate per block.
        pmask: Vec<u64>,
        /// Reach frontier: ≤ 32 positions.
        reach: Vec<u64>,
        /// Went-right masks: `[tree][level][block]`.
        dirs: Vec<u64>,
    }

    impl Scratch {
        pub(super) fn new(forest: &BitsetForest) -> Scratch {
            Scratch {
                pmask: vec![0u64; forest.preds.len() * SB_BLOCKS],
                reach: vec![0u64; 32 * SB_BLOCKS],
                dirs: vec![0u64; forest.n_trees * forest.depth as usize * SB_BLOCKS],
            }
        }
    }

    /// Scores rows `row0..row0 + SB` of `binned` into `out` (length `SB`).
    /// Caller guarantees `avx512f` + `avx512bw` are available and the row
    /// range is in bounds.
    pub(super) fn superblock(
        forest: &BitsetForest,
        binned: &Binned,
        cuts: &[u8],
        base: f32,
        row0: usize,
        out: &mut [f32],
        scratch: &mut Scratch,
    ) {
        debug_assert_eq!(out.len(), SB);
        // SAFETY: the caller checked the target features at runtime; all
        // pointer arithmetic below stays inside the checked slices.
        unsafe { superblock_impl(forest, binned, cuts, base, row0, out, scratch) }
    }

    #[target_feature(enable = "avx512f,avx512bw")]
    unsafe fn superblock_impl(
        forest: &BitsetForest,
        binned: &Binned,
        cuts: &[u8],
        base: f32,
        row0: usize,
        out: &mut [f32],
        scratch: &mut Scratch,
    ) {
        let depth = forest.depth as usize;
        let n_pos = (1usize << depth) - 1;

        // ---- Stage 1: predicate masks, eight blocks per compare sweep.
        let pmask = scratch.pmask.as_mut_ptr();
        for b in 0..SB_BLOCKS {
            *pmask.add(ALWAYS as usize * SB_BLOCKS + b) = !0u64;
        }
        let missv = _mm512_set1_epi8(MISSING_BIN as i8);
        for (f, &(lo, hi)) in forest.feat_ranges.iter().enumerate() {
            if lo == hi {
                continue;
            }
            let col = &binned.col(f)[row0..row0 + SB];
            let mut code_v = [_mm512_setzero_si512(); SB_BLOCKS];
            let mut miss = [0u64; SB_BLOCKS];
            for b in 0..SB_BLOCKS {
                code_v[b] = _mm512_loadu_si512(col.as_ptr().add(b * BLOCK) as *const _);
                miss[b] = _mm512_cmpeq_epi8_mask(code_v[b], missv);
            }
            for pi in lo as usize..hi as usize {
                let cutv = _mm512_set1_epi8(cuts[pi] as i8);
                let dl = if forest.preds[pi].default_left {
                    !0u64
                } else {
                    0
                };
                let dst = pmask.add(pi * SB_BLOCKS);
                for b in 0..SB_BLOCKS {
                    let k = _mm512_cmple_epu8_mask(code_v[b], cutv);
                    *dst.add(b) = k | (dl & miss[b]);
                }
            }
        }

        // ---- Stage 2: reach propagation + per-level direction masks.
        let reach = scratch.reach.as_mut_ptr();
        for t in 0..forest.n_trees {
            let slots = &forest.slots[t * n_pos..(t + 1) * n_pos];
            _mm512_storeu_si512(reach as *mut _, _mm512_set1_epi64(-1i64));
            for lv in 0..depth {
                let base_i = (1usize << lv) - 1;
                let mut d = _mm512_setzero_si512();
                if lv + 1 < depth {
                    for p in (0..(1usize << lv)).rev() {
                        let r = _mm512_loadu_si512(reach.add(p * SB_BLOCKS) as *const _);
                        let m = _mm512_loadu_si512(
                            pmask.add(slots[base_i + p] as usize * SB_BLOCKS) as *const _,
                        );
                        let right = _mm512_andnot_si512(m, r);
                        let left = _mm512_and_si512(m, r);
                        d = _mm512_or_si512(d, right);
                        _mm512_storeu_si512(reach.add((2 * p + 1) * SB_BLOCKS) as *mut _, right);
                        _mm512_storeu_si512(reach.add(2 * p * SB_BLOCKS) as *mut _, left);
                    }
                } else {
                    // Deepest level: only the direction union is needed.
                    for p in 0..(1usize << lv) {
                        let r = _mm512_loadu_si512(reach.add(p * SB_BLOCKS) as *const _);
                        let m = _mm512_loadu_si512(
                            pmask.add(slots[base_i + p] as usize * SB_BLOCKS) as *const _,
                        );
                        // d |= r & !m (ternary-logic truth table 0xF4).
                        d = _mm512_ternarylogic_epi64::<0xF4>(d, r, m);
                    }
                }
                _mm512_storeu_si512(
                    scratch.dirs.as_mut_ptr().add((t * depth + lv) * SB_BLOCKS) as *mut _,
                    d,
                );
            }
        }

        // ---- Stage 3: direction bits → leaf index bytes → permute adds.
        for b in 0..SB_BLOCKS {
            let mut acc = [_mm512_set1_ps(base); 4];
            for t in 0..forest.n_trees {
                let dirs = scratch.dirs.as_ptr().add(t * depth * SB_BLOCKS);
                let mut idx = _mm512_setzero_si512();
                for lv in 0..depth {
                    let k: __mmask64 = *dirs.add(lv * SB_BLOCKS + b);
                    let bytev = _mm512_movm_epi8(k);
                    let bit = _mm512_set1_epi8(1i8 << (depth - 1 - lv));
                    // idx |= bytev & bit (truth table 0xF8).
                    idx = _mm512_ternarylogic_epi64::<0xF8>(idx, bytev, bit);
                }
                let lv = forest.leaves.as_ptr().add(t * BLOCK);
                let t0 = _mm512_loadu_ps(lv);
                let t1 = _mm512_loadu_ps(lv.add(16));
                let t2 = _mm512_loadu_ps(lv.add(32));
                let t3 = _mm512_loadu_ps(lv.add(48));
                let high = _mm512_set1_epi32(32);
                let quads = [
                    _mm512_cvtepu8_epi32(_mm512_extracti32x4_epi32::<0>(idx)),
                    _mm512_cvtepu8_epi32(_mm512_extracti32x4_epi32::<1>(idx)),
                    _mm512_cvtepu8_epi32(_mm512_extracti32x4_epi32::<2>(idx)),
                    _mm512_cvtepu8_epi32(_mm512_extracti32x4_epi32::<3>(idx)),
                ];
                for (qi, q) in quads.into_iter().enumerate() {
                    let lov = _mm512_permutex2var_ps(t0, q, t1);
                    let hiv = _mm512_permutex2var_ps(t2, q, t3);
                    let kh = _mm512_test_epi32_mask(q, high);
                    let v = _mm512_mask_blend_ps(kh, lov, hiv);
                    acc[qi] = _mm512_add_ps(acc[qi], v);
                }
            }
            for (qi, &a) in acc.iter().enumerate() {
                _mm512_storeu_ps(out.as_mut_ptr().add(b * BLOCK + qi * 16), a);
            }
        }
    }
}
