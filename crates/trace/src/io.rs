//! Trace readers and writers.
//!
//! Two formats are supported:
//!
//! - **CSV** (`ts_us,id,size` per line, optional `#` comments) — the common
//!   interchange format used by public CDN trace releases (e.g. the
//!   webcachesim/LRB traces use whitespace-separated `ts id size`, which the
//!   reader also accepts).
//! - **Binary** — a compact little-endian record stream (`u64` ts, `u64` id,
//!   `u64` size) with a 16-byte header, for fast reloading of large
//!   generated traces.

use crate::request::{Request, Time, Trace};
use lhr_util::buf::{Buf, BytesMut};
use std::fmt;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes identifying the binary trace format.
const MAGIC: &[u8; 8] = b"LHRTRC01";

/// Errors arising while parsing a trace.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line or record, with its 1-based line/record number.
    Malformed {
        /// Line (CSV) or record (binary) number, 1-based.
        location: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// Binary header did not match the `LHRTRC01` magic.
    BadMagic,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Malformed { location, reason } => {
                write!(f, "malformed record at {location}: {reason}")
            }
            ParseError::BadMagic => write!(f, "not a binary LHR trace (bad magic)"),
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Parses one CSV/whitespace line into a request, checking time ordering
/// against `prev_ts` (the last accepted request).
fn parse_csv_line(line: &str, loc: usize, prev_ts: Time) -> Result<Request, ParseError> {
    let mut fields = line
        .split(|c: char| c == ',' || c.is_whitespace())
        .filter(|s| !s.is_empty());
    let mut next_u64 = |what: &str| -> Result<u64, ParseError> {
        fields
            .next()
            .ok_or_else(|| ParseError::Malformed {
                location: loc,
                reason: format!("missing field `{what}`"),
            })?
            .parse()
            .map_err(|e| ParseError::Malformed {
                location: loc,
                reason: format!("bad `{what}`: {e}"),
            })
    };
    let ts = Time::from_micros(next_u64("timestamp")?);
    let id = next_u64("id")?;
    let size = next_u64("size")?;
    if ts < prev_ts {
        return Err(ParseError::Malformed {
            location: loc,
            reason: "timestamp goes backwards".into(),
        });
    }
    Ok(Request::new(ts, id, size))
}

fn read_csv_inner<R: Read>(
    reader: R,
    name: impl Into<String>,
    lossy: bool,
) -> Result<(Trace, usize), ParseError> {
    let mut trace = Trace::new(name);
    let reader = BufReader::new(reader);
    let mut prev_ts = Time::ZERO;
    let mut skipped = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_csv_line(line, lineno + 1, prev_ts) {
            Ok(req) => {
                prev_ts = req.ts;
                trace.requests.push(req);
            }
            Err(_) if lossy => skipped += 1,
            Err(e) => return Err(e),
        }
    }
    Ok((trace, skipped))
}

/// Reads a CSV/whitespace trace from any reader.
///
/// Each non-empty, non-`#` line must contain three integer fields —
/// `timestamp_us`, `object_id`, `size_bytes` — separated by commas or
/// whitespace. Lines are required to be time-ordered.
pub fn read_csv<R: Read>(reader: R, name: impl Into<String>) -> Result<Trace, ParseError> {
    read_csv_inner(reader, name, false).map(|(trace, _)| trace)
}

/// Like [`read_csv`] but skips malformed lines (bad fields, backwards
/// timestamps) instead of failing, returning the trace plus the number of
/// lines skipped. I/O errors still surface as [`ParseError::Io`].
pub fn read_csv_lossy<R: Read>(
    reader: R,
    name: impl Into<String>,
) -> Result<(Trace, usize), ParseError> {
    read_csv_inner(reader, name, true)
}

/// Writes a trace as CSV (`ts_us,id,size` lines with a header comment).
pub fn write_csv<W: Write>(trace: &Trace, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# trace: {}", trace.name)?;
    writeln!(w, "# columns: timestamp_us,object_id,size_bytes")?;
    for req in trace.iter() {
        writeln!(w, "{},{},{}", req.ts.as_micros(), req.id, req.size)?;
    }
    w.flush()
}

/// Reads a trace from a CSV file; the file stem becomes the trace name.
pub fn read_csv_file(path: impl AsRef<Path>) -> Result<Trace, ParseError> {
    let path = path.as_ref();
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    read_csv(std::fs::File::open(path)?, name)
}

/// Reads a CSV file lossily (see [`read_csv_lossy`]); the file stem becomes
/// the trace name.
pub fn read_csv_file_lossy(path: impl AsRef<Path>) -> Result<(Trace, usize), ParseError> {
    let path = path.as_ref();
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    read_csv_lossy(std::fs::File::open(path)?, name)
}

/// Writes a trace to a CSV file.
pub fn write_csv_file(trace: &Trace, path: impl AsRef<Path>) -> io::Result<()> {
    write_csv(trace, std::fs::File::create(path)?)
}

/// Writes a trace in the compact binary format.
pub fn write_binary<W: Write>(trace: &Trace, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    let mut header = BytesMut::with_capacity(16);
    header.put_slice(MAGIC);
    header.put_u64_le(trace.len() as u64);
    w.write_all(&header)?;
    let mut buf = BytesMut::with_capacity(24 * 1024);
    for req in trace.iter() {
        buf.put_u64_le(req.ts.as_micros());
        buf.put_u64_le(req.id);
        buf.put_u64_le(req.size);
        if buf.len() >= 24 * 1024 - 24 {
            w.write_all(&buf)?;
            buf.clear();
        }
    }
    w.write_all(&buf)?;
    w.flush()
}

/// Reads a trace in the compact binary format.
pub fn read_binary<R: Read>(reader: R, name: impl Into<String>) -> Result<Trace, ParseError> {
    let mut r = BufReader::new(reader);
    let mut header = [0u8; 16];
    r.read_exact(&mut header)?;
    if &header[..8] != MAGIC {
        return Err(ParseError::BadMagic);
    }
    let count = (&header[8..]).get_u64_le() as usize;
    let mut trace = Trace::new(name);
    trace.requests.reserve_exact(count);
    let mut rec = [0u8; 24];
    for i in 0..count {
        r.read_exact(&mut rec).map_err(|e| ParseError::Malformed {
            location: i + 1,
            reason: format!("truncated record: {e}"),
        })?;
        let mut cursor = &rec[..];
        let ts = Time::from_micros(cursor.get_u64_le());
        let id = cursor.get_u64_le();
        let size = cursor.get_u64_le();
        trace.requests.push(Request::new(ts, id, size));
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::from_requests(
            "sample",
            vec![
                Request::new(Time::from_micros(0), 1, 100),
                Request::new(Time::from_micros(5), 2, 2_000),
                Request::new(Time::from_micros(5), 1, 100),
                Request::new(Time::from_micros(9), 3, 30),
            ],
        )
    }

    #[test]
    fn csv_roundtrip() {
        let trace = sample();
        let mut buf = Vec::new();
        write_csv(&trace, &mut buf).unwrap();
        let back = read_csv(&buf[..], "sample").unwrap();
        assert_eq!(back.requests, trace.requests);
    }

    #[test]
    fn csv_accepts_whitespace_separated() {
        let text = "# comment\n0 1 100\n5\t2\t2000\n";
        let trace = read_csv(text.as_bytes(), "ws").unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(
            trace.requests[1],
            Request::new(Time::from_micros(5), 2, 2000)
        );
    }

    #[test]
    fn csv_rejects_backwards_time() {
        let text = "5,1,10\n3,2,10\n";
        let err = read_csv(text.as_bytes(), "bad").unwrap_err();
        assert!(matches!(err, ParseError::Malformed { location: 2, .. }));
    }

    #[test]
    fn csv_rejects_missing_field() {
        let err = read_csv("5,1\n".as_bytes(), "bad").unwrap_err();
        assert!(matches!(err, ParseError::Malformed { location: 1, .. }));
    }

    #[test]
    fn csv_rejects_garbage() {
        let err = read_csv("a,b,c\n".as_bytes(), "bad").unwrap_err();
        assert!(matches!(err, ParseError::Malformed { .. }));
    }

    #[test]
    fn lossy_skips_bad_lines_and_counts_them() {
        let text = "5,1,100\ngarbage\n7,2\n3,9,10\n9,3,30\n";
        let (trace, skipped) = read_csv_lossy(text.as_bytes(), "lossy").unwrap();
        // Bad fields, a short line, and a backwards timestamp all skip.
        assert_eq!(skipped, 3);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.requests[1], Request::new(Time::from_micros(9), 3, 30));
    }

    #[test]
    fn lossy_ordering_tracks_last_accepted_line() {
        // The backwards line is skipped; the next line only needs to be
        // ordered after the last *accepted* timestamp, not the skipped one.
        let text = "10,1,100\n4,2,100\n11,3,100\n";
        let (trace, skipped) = read_csv_lossy(text.as_bytes(), "lossy").unwrap();
        assert_eq!(skipped, 1);
        assert_eq!(trace.len(), 2);
    }

    #[test]
    fn lossy_on_clean_input_matches_strict() {
        let trace = sample();
        let mut buf = Vec::new();
        write_csv(&trace, &mut buf).unwrap();
        let (back, skipped) = read_csv_lossy(&buf[..], "sample").unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(back.requests, trace.requests);
    }

    #[test]
    fn binary_roundtrip() {
        let trace = sample();
        let mut buf = Vec::new();
        write_binary(&trace, &mut buf).unwrap();
        let back = read_binary(&buf[..], "sample").unwrap();
        assert_eq!(back.requests, trace.requests);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(&b"NOTATRACE_______"[..], "x").unwrap_err();
        assert!(matches!(err, ParseError::BadMagic));
    }

    #[test]
    fn binary_rejects_truncation() {
        let trace = sample();
        let mut buf = Vec::new();
        write_binary(&trace, &mut buf).unwrap();
        buf.truncate(buf.len() - 4);
        let err = read_binary(&buf[..], "x").unwrap_err();
        assert!(matches!(err, ParseError::Malformed { .. }));
    }

    #[test]
    fn empty_trace_roundtrips_both_formats() {
        let trace = Trace::new("empty");
        let mut csv = Vec::new();
        write_csv(&trace, &mut csv).unwrap();
        assert!(read_csv(&csv[..], "empty").unwrap().is_empty());
        let mut bin = Vec::new();
        write_binary(&trace, &mut bin).unwrap();
        assert!(read_binary(&bin[..], "empty").unwrap().is_empty());
    }
}
