//! Markov-modulated request processes — the "Syn One" and "Syn Two"
//! responsiveness workloads of §7.6.
//!
//! A Markov chain over a small state space modulates the popularity
//! distribution: in each state, a fixed number of requests `r` is drawn from
//! that state's Zipf distribution, then the chain transitions. The paper
//! uses these workloads (1M requests, N = 1 000 objects, r = 200 000) to
//! show that LHR adapts to popularity changes faster than the SOTAs.

use crate::request::{Request, Time, Trace};
use crate::synth::irm::exp_variate;
use crate::synth::size::SizeModel;
use crate::synth::zipf::ZipfSampler;
use lhr_util::rng::rngs::StdRng;
use lhr_util::rng::SeedableRng;

/// One state of the modulated process: a popularity distribution over the
/// shared object population.
#[derive(Debug, Clone)]
pub struct PopularityState {
    /// Zipf exponent used in this state.
    pub alpha: f64,
    /// When true, ranks are reversed: the object that is least popular under
    /// the forward ordering becomes the most popular (`p_j = A/(N−j+1)^α`).
    pub reversed: bool,
}

/// Configuration for a Markov-modulated trace.
#[derive(Debug, Clone)]
pub struct MarkovConfig {
    /// Trace name.
    pub name: String,
    /// Number of distinct objects N.
    pub n_objects: usize,
    /// Total number of requests to generate.
    pub n_requests: usize,
    /// Requests drawn per state visit (the paper's `r`).
    pub requests_per_state: usize,
    /// The state visit sequence, cycled until `n_requests` are produced.
    /// (The paper's chains are deterministic cycles: 0,1,0,1,… for Syn One
    /// and 0,1,2,1,0,… for Syn Two.)
    pub state_sequence: Vec<usize>,
    /// The popularity distribution of each state.
    pub states: Vec<PopularityState>,
    /// Aggregate Poisson arrival rate (requests/second).
    pub requests_per_sec: f64,
    /// Object size model.
    pub size_model: SizeModel,
    /// PRNG seed.
    pub seed: u64,
}

impl MarkovConfig {
    /// Generates the trace.
    ///
    /// # Panics
    /// Panics if `states` is empty, `state_sequence` is empty, or a sequence
    /// entry indexes past `states`.
    pub fn generate(&self) -> Trace {
        assert!(!self.states.is_empty(), "need at least one state");
        assert!(!self.state_sequence.is_empty(), "need a state sequence");
        assert!(
            self.state_sequence.iter().all(|&s| s < self.states.len()),
            "state sequence indexes out of range"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let samplers: Vec<ZipfSampler> = self
            .states
            .iter()
            .map(|s| ZipfSampler::new(self.n_objects, s.alpha))
            .collect();
        let mut trace = Trace::new(self.name.clone());
        trace.requests.reserve_exact(self.n_requests);
        let mut now = 0.0f64;
        let mut produced = 0;
        'outer: loop {
            for &state_idx in &self.state_sequence {
                let state = &self.states[state_idx];
                let sampler = &samplers[state_idx];
                for _ in 0..self.requests_per_state {
                    if produced == self.n_requests {
                        break 'outer;
                    }
                    now += exp_variate(&mut rng, self.requests_per_sec);
                    let rank = sampler.sample(&mut rng) as u64;
                    let id = if state.reversed {
                        // p_j = A/(N−j+1)^α over 1-based j means reversing
                        // the 0-based rank.
                        (self.n_objects as u64 - 1) - rank
                    } else {
                        rank
                    };
                    let size = self.size_model.size_for(self.seed, id);
                    trace.push(Request::new(Time::from_secs_f64(now), id, size));
                    produced += 1;
                }
            }
        }
        trace
    }
}

/// The paper's "Syn One": a two-state chain alternating between a Zipf(α)
/// popularity in increasing rank order and the same distribution with ranks
/// reversed — a maximal popularity inversion every `r` requests.
pub fn syn_one(n_objects: usize, n_requests: usize, r: usize, alpha: f64, seed: u64) -> Trace {
    MarkovConfig {
        name: "syn-one".into(),
        n_objects,
        n_requests,
        requests_per_state: r,
        state_sequence: vec![0, 1],
        states: vec![
            PopularityState {
                alpha,
                reversed: false,
            },
            PopularityState {
                alpha,
                reversed: true,
            },
        ],
        requests_per_sec: 1_000.0,
        size_model: SizeModel::BoundedPareto {
            alpha: 1.3,
            min: 10_000,
            max: 100_000_000,
        },
        seed,
    }
    .generate()
}

/// The paper's "Syn Two": a three-state chain with Zipf exponents
/// α₀ = 0.7, α₁ = 0.9, α₂ = 1.1 visited in the cycle 0 → 1 → 2 → 1 → 0.
pub fn syn_two(n_objects: usize, n_requests: usize, r: usize, seed: u64) -> Trace {
    MarkovConfig {
        name: "syn-two".into(),
        n_objects,
        n_requests,
        requests_per_state: r,
        state_sequence: vec![0, 1, 2, 1],
        states: vec![
            PopularityState {
                alpha: 0.7,
                reversed: false,
            },
            PopularityState {
                alpha: 0.9,
                reversed: false,
            },
            PopularityState {
                alpha: 1.1,
                reversed: false,
            },
        ],
        requests_per_sec: 1_000.0,
        size_model: SizeModel::BoundedPareto {
            alpha: 1.3,
            min: 10_000,
            max: 100_000_000,
        },
        seed,
    }
    .generate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn syn_one_inverts_popularity() {
        let n = 100;
        let r = 5_000;
        let t = syn_one(n, 2 * r, r, 1.0, 1);
        assert_eq!(t.len(), 2 * r);
        // First phase: object 0 dominates. Second phase: object n-1.
        let count = |reqs: &[Request], id: u64| reqs.iter().filter(|q| q.id == id).count();
        let first = &t.requests[..r];
        let second = &t.requests[r..];
        assert!(count(first, 0) > 10 * count(first, (n - 1) as u64).max(1));
        assert!(count(second, (n - 1) as u64) > 10 * count(second, 0).max(1));
    }

    #[test]
    fn syn_two_changes_skew() {
        let n = 200;
        let r = 10_000;
        let t = syn_two(n, 3 * r, r, 2);
        // Skew (share of top-10 objects) should grow from phase 0 (α=0.7) to
        // phase 2 (α=1.1).
        let share_top10 = |reqs: &[Request]| {
            let mut counts: HashMap<u64, usize> = HashMap::new();
            for q in reqs {
                *counts.entry(q.id).or_insert(0) += 1;
            }
            let mut v: Vec<usize> = counts.into_values().collect();
            v.sort_unstable_by(|a, b| b.cmp(a));
            v.iter().take(10).sum::<usize>() as f64 / reqs.len() as f64
        };
        let s0 = share_top10(&t.requests[..r]);
        let s2 = share_top10(&t.requests[2 * r..3 * r]);
        assert!(s2 > s0 + 0.05, "skew did not increase: {s0} -> {s2}");
    }

    #[test]
    fn sequence_cycles_until_exhausted() {
        let t = syn_one(10, 25, 10, 0.8, 3);
        assert_eq!(t.len(), 25);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn deterministic() {
        let a = syn_two(50, 1_000, 100, 7);
        let b = syn_two(50, 1_000, 100, 7);
        assert_eq!(a.requests, b.requests);
    }

    #[test]
    #[should_panic]
    fn bad_state_sequence_panics() {
        MarkovConfig {
            name: "bad".into(),
            n_objects: 10,
            n_requests: 10,
            requests_per_state: 5,
            state_sequence: vec![2],
            states: vec![PopularityState {
                alpha: 1.0,
                reversed: false,
            }],
            requests_per_sec: 1.0,
            size_model: SizeModel::Fixed { bytes: 1 },
            seed: 0,
        }
        .generate();
    }
}
