//! A counting-free Bloom filter with epoch rotation, as used by B-LRU and
//! Akamai-style "SecondHit" admission (cache on second request).
//!
//! Production CDNs rotate two filters: inserts go to the *current* filter,
//! membership consults both, and when the current filter fills past a
//! threshold the filters swap and the new current is cleared. This bounds
//! both memory and the window over which "seen before" is remembered.

/// Double-buffered Bloom filter over `u64` keys.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: [Vec<u64>; 2],
    /// Index of the filter currently receiving inserts.
    current: usize,
    n_hashes: u32,
    n_bits: u64,
    inserts_in_current: u64,
    /// Rotate after this many inserts into the current filter.
    rotate_after: u64,
}

impl BloomFilter {
    /// A filter sized for `expected_items` per epoch at ~1% false-positive
    /// rate (9.6 bits/item, 7 hashes).
    pub fn new(expected_items: u64) -> Self {
        let expected = expected_items.max(64);
        let n_bits = (expected * 10).next_power_of_two();
        let words = (n_bits / 64) as usize;
        BloomFilter {
            bits: [vec![0u64; words], vec![0u64; words]],
            current: 0,
            n_hashes: 7,
            n_bits,
            inserts_in_current: 0,
            rotate_after: expected,
        }
    }

    #[inline]
    fn positions(&self, key: u64) -> impl Iterator<Item = u64> + '_ {
        // Kirsch–Mitzenmacher double hashing from one 128-bit-ish mix.
        let h1 = splitmix(key);
        let h2 = splitmix(h1 ^ 0x9E37_79B9_7F4A_7C15) | 1;
        let mask = self.n_bits - 1;
        (0..self.n_hashes as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2))) & mask)
    }

    /// Inserts a key into the current epoch, rotating first if full.
    pub fn insert(&mut self, key: u64) {
        if self.inserts_in_current >= self.rotate_after {
            self.rotate();
        }
        let positions: Vec<u64> = self.positions(key).collect();
        let bits = &mut self.bits[self.current];
        for p in positions {
            bits[(p / 64) as usize] |= 1 << (p % 64);
        }
        self.inserts_in_current += 1;
    }

    /// Whether `key` was (probably) inserted in the current or previous
    /// epoch. False positives possible; false negatives are not (within the
    /// two retained epochs).
    pub fn contains(&self, key: u64) -> bool {
        'filters: for bits in &self.bits {
            for p in self.positions(key) {
                if bits[(p / 64) as usize] & (1 << (p % 64)) == 0 {
                    continue 'filters;
                }
            }
            return true;
        }
        false
    }

    fn rotate(&mut self) {
        self.current ^= 1;
        self.bits[self.current].fill(0);
        self.inserts_in_current = 0;
    }

    /// Approximate memory footprint in bytes.
    pub fn size_bytes(&self) -> u64 {
        (self.bits[0].len() + self.bits[1].len()) as u64 * 8
    }
}

#[inline]
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives_within_epoch() {
        let mut f = BloomFilter::new(10_000);
        for k in 0..5_000u64 {
            f.insert(k);
        }
        for k in 0..5_000u64 {
            assert!(f.contains(k), "lost key {k}");
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut f = BloomFilter::new(10_000);
        for k in 0..10_000u64 {
            f.insert(k);
        }
        let fp = (1_000_000..1_100_000u64).filter(|&k| f.contains(k)).count();
        let rate = fp as f64 / 100_000.0;
        assert!(rate < 0.05, "false positive rate {rate}");
    }

    #[test]
    fn rotation_retains_previous_epoch() {
        let mut f = BloomFilter::new(100);
        // Fill epoch 1.
        for k in 0..100u64 {
            f.insert(k);
        }
        // Next insert rotates; epoch-1 keys must still be visible.
        f.insert(200);
        assert!(f.contains(0));
        assert!(f.contains(200));
    }

    #[test]
    fn two_rotations_forget_oldest_epoch() {
        let mut f = BloomFilter::new(100);
        f.insert(42);
        for k in 1_000..1_100u64 {
            f.insert(k); // fills epoch, rotates once
        }
        for k in 2_000..2_101u64 {
            f.insert(k); // rotates again; 42's epoch is cleared
        }
        assert!(!f.contains(42) || f.contains(42) == f.contains(43));
        // The strict property: a key two full epochs old whose bits are not
        // coincidentally set is gone. Check statistically.
        let stale = (3_000_000..3_010_000u64).filter(|&k| f.contains(k)).count();
        assert!(stale < 1_000);
    }

    #[test]
    fn size_is_reported() {
        let f = BloomFilter::new(1_000);
        assert!(f.size_bytes() >= 2 * 1_000 * 10 / 8);
    }
}
