//! Bélády's MIN and its size-aware community variant.

use crate::future::{next_use_indices, NEVER};
use lhr_sim::bound::{base_metrics, OfflineBound};
use lhr_sim::SimMetrics;
use lhr_trace::{ObjectId, Trace};
use std::collections::{BTreeSet, HashMap};

/// Bélády's MIN (1966): evict the object whose next request is farthest in
/// the future. Exact OPT when all objects have the same size, in which case
/// `capacity` is interpreted in bytes and holds `capacity / object_size`
/// objects. On variable-size traces MIN's farthest-future eviction remains
/// well-defined (this is what the community plots as "Bélády") but is no
/// longer provably optimal — that is precisely the gap the paper's Figure 2
/// illustrates.
#[derive(Debug, Clone, Default)]
pub struct Belady;

/// The size-aware Bélády variant (`Bélády-Size`): on a miss the object is
/// admitted only if it is "worth" evicting everything needed — eviction
/// removes farthest-next-use objects first and stops (bypassing the
/// newcomer) if a would-be victim is requested again sooner than the
/// newcomer.
#[derive(Debug, Clone, Default)]
pub struct BeladySize;

/// Shared future-aware simulation. `admission_aware` distinguishes
/// Bélády-Size (true) from plain MIN (false: always admit, evict farthest).
fn run(trace: &Trace, capacity: u64, admission_aware: bool) -> SimMetrics {
    let next_use = next_use_indices(trace);
    let mut metrics = base_metrics(trace);

    // Cached objects ordered by next use (descending ⇒ last = farthest).
    let mut by_next: BTreeSet<(u64, ObjectId)> = BTreeSet::new();
    let mut cached: HashMap<ObjectId, (u64 /* next */, u64 /* size */)> = HashMap::new();
    let mut used = 0u64;

    for (i, req) in trace.iter().enumerate() {
        let this_next = next_use[i];
        if let Some(&(old_next, size)) = cached.get(&req.id) {
            // Hit: refresh the next-use key.
            metrics.hits += 1;
            metrics.bytes_hit += req.size as u128;
            by_next.remove(&(old_next, req.id));
            if this_next == NEVER && admission_aware {
                // Never needed again: free the space immediately (pure
                // bookkeeping win allowed to an offline algorithm).
                cached.remove(&req.id);
                used -= size;
            } else {
                cached.insert(req.id, (this_next, size));
                by_next.insert((this_next, req.id));
            }
            continue;
        }
        if req.size > capacity {
            metrics.misses_bypassed += 1;
            continue;
        }
        if admission_aware && this_next == NEVER {
            metrics.misses_bypassed += 1;
            continue;
        }
        // Evict farthest-next-use objects until the newcomer fits.
        let mut admitted = true;
        while used + req.size > capacity {
            let &(victim_next, victim) = by_next.iter().next_back().expect("cache full");
            if admission_aware && victim_next <= this_next {
                // Every remaining victim is more useful than the newcomer.
                admitted = false;
                break;
            }
            by_next.remove(&(victim_next, victim));
            let (_, vsize) = cached.remove(&victim).expect("indexed");
            used -= vsize;
        }
        if !admitted {
            metrics.misses_bypassed += 1;
            continue;
        }
        cached.insert(req.id, (this_next, req.size));
        by_next.insert((this_next, req.id));
        used += req.size;
        metrics.misses_admitted += 1;
    }
    metrics
}

impl OfflineBound for Belady {
    fn name(&self) -> &str {
        "Belady"
    }
    fn evaluate(&self, trace: &Trace, capacity: u64) -> SimMetrics {
        run(trace, capacity, false)
    }
}

impl OfflineBound for BeladySize {
    fn name(&self) -> &str {
        "Belady-Size"
    }
    fn evaluate(&self, trace: &Trace, capacity: u64) -> SimMetrics {
        run(trace, capacity, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhr_sim::{CachePolicy, SimConfig, Simulator};
    use lhr_trace::{Request, Time};

    fn uniform_trace(ids: &[u64]) -> Trace {
        Trace::from_requests(
            "t",
            ids.iter()
                .enumerate()
                .map(|(i, &id)| Request::new(Time::from_secs(i as u64), id, 1))
                .collect(),
        )
    }

    #[test]
    fn textbook_belady_example() {
        // Classic example: pages 1 2 3 4 1 2 5 1 2 3 4 5, capacity 3 →
        // MIN gives 7 faults / 5 hits... (for this sequence OPT faults:
        // 1,2,3,4,5,3,4 = 7). Verify against a brute-force-known value.
        let t = uniform_trace(&[1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5]);
        let m = Belady.evaluate(&t, 3);
        assert_eq!(m.misses(), 7);
        assert_eq!(m.hits, 5);
    }

    #[test]
    fn belady_beats_lru_on_looping_pattern() {
        // Cyclic access over capacity+1 objects: LRU gets 0 hits, MIN hits.
        let ids: Vec<u64> = (0..60).map(|i| i % 4).collect();
        let t = uniform_trace(&ids);
        let belady = Belady.evaluate(&t, 3);
        let mut lru = lhr_policies_test_lru(3);
        let lru_result = Simulator::new(SimConfig::default()).run(&mut lru, &t);
        assert_eq!(lru_result.metrics.hits, 0, "LRU should thrash on a loop");
        assert!(
            belady.hits > 30,
            "MIN should retain most of the loop: {}",
            belady.hits
        );
    }

    /// Minimal LRU local to the test (the policies crate depends on sim,
    /// not the other way around).
    fn lhr_policies_test_lru(capacity: u64) -> impl CachePolicy {
        struct MiniLru {
            cap: u64,
            used: u64,
            order: Vec<(u64, u64)>,
        }
        impl CachePolicy for MiniLru {
            fn name(&self) -> &str {
                "mini-lru"
            }
            fn capacity(&self) -> u64 {
                self.cap
            }
            fn used_bytes(&self) -> u64 {
                self.used
            }
            fn contains(&self, id: u64) -> bool {
                self.order.iter().any(|&(x, _)| x == id)
            }
            fn handle(&mut self, req: &Request) -> lhr_sim::Outcome {
                if let Some(pos) = self.order.iter().position(|&(x, _)| x == req.id) {
                    let e = self.order.remove(pos);
                    self.order.push(e);
                    return lhr_sim::Outcome::Hit;
                }
                if req.size > self.cap {
                    return lhr_sim::Outcome::MissBypassed;
                }
                while self.used + req.size > self.cap {
                    let (_, s) = self.order.remove(0);
                    self.used -= s;
                }
                self.order.push((req.id, req.size));
                self.used += req.size;
                lhr_sim::Outcome::MissAdmitted
            }
        }
        MiniLru {
            cap: capacity,
            used: 0,
            order: Vec::new(),
        }
    }

    #[test]
    fn belady_size_skips_never_again_objects() {
        let mut reqs = Vec::new();
        // Object 1 requested repeatedly; one-hit wonders interleaved.
        for i in 0..10u64 {
            reqs.push(Request::new(Time::from_secs(2 * i), 1, 3));
            reqs.push(Request::new(Time::from_secs(2 * i + 1), 100 + i, 3));
        }
        let t = Trace::from_requests("t", reqs);
        let m = BeladySize.evaluate(&t, 3);
        // Object 1 always cached; every one-hit wonder bypassed.
        assert_eq!(m.hits, 9);
        assert_eq!(m.misses_bypassed, 10);
    }

    #[test]
    fn belady_size_at_least_matches_belady_on_skewed_sizes() {
        // Big useless object vs small useful ones.
        let reqs = vec![
            Request::new(Time::from_secs(0), 1, 10), // big, reused rarely
            Request::new(Time::from_secs(1), 2, 2),
            Request::new(Time::from_secs(2), 3, 2),
            Request::new(Time::from_secs(3), 2, 2),
            Request::new(Time::from_secs(4), 3, 2),
            Request::new(Time::from_secs(5), 1, 10),
            Request::new(Time::from_secs(6), 2, 2),
            Request::new(Time::from_secs(7), 3, 2),
        ];
        let t = Trace::from_requests("t", reqs);
        let plain = Belady.evaluate(&t, 10);
        let sized = BeladySize.evaluate(&t, 10);
        assert!(
            sized.hits >= plain.hits,
            "sized {} < plain {}",
            sized.hits,
            plain.hits
        );
    }

    #[test]
    fn oversized_objects_bypassed() {
        let t = Trace::from_requests(
            "t",
            vec![
                Request::new(Time::from_secs(0), 1, 100),
                Request::new(Time::from_secs(1), 1, 100),
            ],
        );
        let m = BeladySize.evaluate(&t, 50);
        assert_eq!(m.hits, 0);
        assert_eq!(m.misses_bypassed, 2);
    }

    #[test]
    fn full_capacity_caches_everything_after_first_touch() {
        let ids: Vec<u64> = (0..20).map(|i| i % 5).collect();
        let t = uniform_trace(&ids);
        let m = Belady.evaluate(&t, 5);
        assert_eq!(m.hits, 15);
        assert_eq!(m.misses(), 5);
    }
}
