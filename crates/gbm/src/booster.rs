//! The gradient-boosting ensemble.

use crate::dataset::Dataset;
use crate::flat::{FlatForest, LANES};
use crate::parallel;
use crate::tree::{Tree, TreeScratch};

/// Training loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loss {
    /// Mean squared error — the paper's choice for LHR (§5.2.4: "the mean
    /// squared error … achieves the best performance … compared to other
    /// loss functions that we explored").
    SquaredError,
    /// Logistic (binary cross-entropy) on raw scores — the natural
    /// alternative for 0/1 HRO labels; kept so the paper's loss-function
    /// comparison is reproducible.
    Logistic,
}

lhr_util::impl_json!(
    enum Loss {
        SquaredError,
        Logistic,
    }
);

/// Hyperparameters for [`Gbm::fit`].
///
/// The defaults are tuned for LHR's setting — a few thousand rows per
/// sliding window, ~25 features, binary HRO labels regressed with squared
/// error — and favour fast training over the last fraction of a percent of
/// accuracy.
#[derive(Debug, Clone, PartialEq)]
pub struct GbmParams {
    /// Number of boosting rounds (trees).
    pub n_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f32,
    /// L2 regularization on leaf weights (XGBoost's `lambda`).
    pub lambda: f64,
    /// Minimum number of samples in each child of a split.
    pub min_child_count: usize,
    /// Minimum gain for a split to be accepted.
    pub min_split_gain: f64,
    /// Initial prediction before any tree (squared error ⇒ usually the
    /// label mean; `None` computes the mean from the training labels).
    pub base_score: Option<f32>,
    /// Row subsampling rate per tree (stochastic gradient boosting); 1.0
    /// disables.
    pub subsample: f64,
    /// Feature subsampling rate per tree (XGBoost's `colsample_bytree`);
    /// 1.0 disables.
    pub colsample: f64,
    /// Fraction of rows held out for validation-based early stopping; 0.0
    /// disables. With early stopping, boosting halts once the held-out MSE
    /// fails to improve for [`GbmParams::patience`] consecutive rounds.
    pub validation_fraction: f64,
    /// Early-stopping patience (rounds without validation improvement).
    pub patience: usize,
    /// PRNG seed for the stochastic options.
    pub seed: u64,
    /// Training loss.
    pub loss: Loss,
    /// Worker threads for the split search and the batched prediction
    /// inside [`Gbm::fit`]; `0` auto-detects
    /// (`std::thread::available_parallelism`). The fitted model is
    /// byte-identical for every thread count — see the ordered reduction
    /// in `tree::search_node`.
    pub threads: usize,
}

lhr_util::impl_json!(struct GbmParams {
    n_trees,
    max_depth,
    learning_rate,
    lambda,
    min_child_count,
    min_split_gain,
    base_score,
    subsample,
    colsample,
    validation_fraction,
    patience,
    seed,
    loss,
    threads,
});

impl Default for GbmParams {
    fn default() -> Self {
        GbmParams {
            n_trees: 30,
            max_depth: 6,
            learning_rate: 0.3,
            lambda: 1.0,
            min_child_count: 8,
            min_split_gain: 1e-6,
            base_score: None,
            subsample: 1.0,
            colsample: 1.0,
            validation_fraction: 0.0,
            patience: 5,
            seed: 0,
            loss: Loss::SquaredError,
            threads: 0,
        }
    }
}

/// A trained gradient-boosted regression ensemble.
#[derive(Debug, Clone)]
pub struct Gbm {
    base_score: f32,
    trees: Vec<Tree>,
    /// Total split gain credited to each feature during training.
    feature_gain: Vec<f64>,
    n_features: usize,
    loss: Loss,
    /// Serving-path layout, derived from `trees` at construction and on
    /// deserialization — never serialized (see the hand-written
    /// `ToJson`/`FromJson` below, which keep the JSON identical to the
    /// pre-flattening `impl_json!` output).
    flat: FlatForest,
}

impl lhr_util::json::ToJson for Gbm {
    fn to_json(&self) -> lhr_util::json::Json {
        lhr_util::json::Json::Object(vec![
            ("base_score".to_string(), self.base_score.to_json()),
            ("trees".to_string(), self.trees.to_json()),
            ("feature_gain".to_string(), self.feature_gain.to_json()),
            ("n_features".to_string(), self.n_features.to_json()),
            ("loss".to_string(), self.loss.to_json()),
        ])
    }
}

impl lhr_util::json::FromJson for Gbm {
    fn from_json(v: &lhr_util::json::Json) -> Result<Self, lhr_util::json::JsonError> {
        use lhr_util::json::field;
        Ok(Gbm::assemble(
            field(v, "base_score")?,
            field(v, "trees")?,
            field(v, "feature_gain")?,
            field(v, "n_features")?,
            field(v, "loss")?,
        ))
    }
}

#[inline]
fn sigmoid(z: f32) -> f32 {
    1.0 / (1.0 + (-z).exp())
}

impl Gbm {
    /// Fits an ensemble to `data` with squared-error loss.
    ///
    /// # Panics
    /// Panics if `data` is empty.
    pub fn fit(data: &Dataset, params: &GbmParams) -> Gbm {
        Gbm::fit_traced(data, params, None)
    }

    /// Like [`Gbm::fit`], recording profiling spans into `obs`: `gbm.fit`
    /// around the whole call, `gbm.bin` around feature binning, and one
    /// aggregated `gbm.tree` per boosting round.
    ///
    /// # Panics
    /// Panics if `data` is empty.
    #[allow(clippy::needless_range_loop)] // gradient updates index parallel arrays
    pub fn fit_traced(data: &Dataset, params: &GbmParams, obs: Option<&lhr_obs::Obs>) -> Gbm {
        use lhr_util::rng::rngs::SmallRng;
        use lhr_util::rng::{Rng, SeedableRng};

        let _fit_span = obs.map(|o| o.span("gbm.fit"));

        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        assert!(
            params.subsample > 0.0 && params.subsample <= 1.0,
            "bad subsample"
        );
        assert!(
            params.colsample > 0.0 && params.colsample <= 1.0,
            "bad colsample"
        );
        assert!(
            (0.0..1.0).contains(&params.validation_fraction),
            "bad validation_fraction"
        );
        // Shared with the batched scoring path: scoring the training set
        // later reuses this exact binning (cached on the dataset), which
        // is what makes code-space cut resolution always succeed there.
        let cache = {
            let _bin_span = obs.map(|o| o.span("gbm.bin"));
            data.binned_cache()
        };
        let binned = &cache.binned;
        debug_assert_eq!(binned.n_rows, data.n_rows());
        let labels = data.labels();
        let mean = (labels.iter().map(|&y| y as f64).sum::<f64>() / labels.len() as f64) as f32;
        let base_score = params.base_score.unwrap_or(match params.loss {
            Loss::SquaredError => mean,
            // Raw-score space: logit of the mean, clamped away from ±∞.
            Loss::Logistic => {
                let p = mean.clamp(1e-4, 1.0 - 1e-4);
                (p / (1.0 - p)).ln()
            }
        });
        let mut rng = SmallRng::seed_from_u64(params.seed ^ 0x6B8);

        // Validation split: a deterministic hash-free tail split keeps the
        // train set contiguous (rows are already in arbitrary order for
        // LHR's use case).
        let n_valid = if params.validation_fraction > 0.0 && data.n_rows() >= 20 {
            ((data.n_rows() as f64 * params.validation_fraction) as usize)
                .clamp(1, data.n_rows() - 1)
        } else {
            0
        };
        let n_train = data.n_rows() - n_valid;

        let threads = parallel::resolve_threads(params.threads);
        let mut scratch = TreeScratch::new();
        let mut preds = vec![base_score; data.n_rows()];
        let mut gradients = vec![0f32; n_train];
        let mut hessians = match params.loss {
            Loss::SquaredError => None,
            Loss::Logistic => Some(vec![0f32; n_train]),
        };
        // Rows a tree never saw (subsample misses + validation tail) still
        // need its contribution each round; in-sample rows are updated by
        // leaf propagation during growth.
        let mut in_tree: Vec<bool> = Vec::new();
        let mut out_rows: Vec<u32> = Vec::new();
        let mut out_vals: Vec<f32> = Vec::new();
        let mut trees: Vec<Tree> = Vec::with_capacity(params.n_trees);
        let mut feature_gain = vec![0f64; data.n_features()];
        let mut best_valid = f64::INFINITY;
        let mut best_len = 0usize;
        let mut stall = 0usize;

        for _round in 0..params.n_trees {
            let _round_span = obs.map(|o| o.span("gbm.tree"));
            match (&params.loss, &mut hessians) {
                (Loss::SquaredError, _) => {
                    for i in 0..n_train {
                        gradients[i] = labels[i] - preds[i];
                    }
                }
                (Loss::Logistic, Some(h)) => {
                    for i in 0..n_train {
                        let p = sigmoid(preds[i]);
                        gradients[i] = labels[i] - p;
                        h[i] = (p * (1.0 - p)).max(1e-6);
                    }
                }
                (Loss::Logistic, None) => unreachable!("allocated above"),
            }
            // Row subsample for this tree.
            let root_rows: Vec<u32> = if params.subsample < 1.0 {
                let sampled: Vec<u32> = (0..n_train as u32)
                    .filter(|_| rng.gen::<f64>() < params.subsample)
                    .collect();
                if sampled.is_empty() {
                    (0..n_train as u32).collect()
                } else {
                    sampled
                }
            } else {
                (0..n_train as u32).collect()
            };
            // Feature mask for this tree.
            let feature_mask: Vec<bool> = if params.colsample < 1.0 {
                let mask: Vec<bool> = (0..data.n_features())
                    .map(|_| rng.gen::<f64>() < params.colsample)
                    .collect();
                if mask.iter().any(|&m| m) {
                    mask
                } else {
                    vec![true; data.n_features()]
                }
            } else {
                vec![true; data.n_features()]
            };

            let subsampled = root_rows.len() < n_train;
            if subsampled {
                in_tree.clear();
                in_tree.resize(n_train, false);
                for &i in &root_rows {
                    in_tree[i as usize] = true;
                }
            }
            let tree = Tree::grow_on(
                binned,
                &gradients,
                hessians.as_deref(),
                root_rows,
                &feature_mask,
                params,
                threads,
                &mut feature_gain,
                &mut scratch,
                Some(&mut preds),
            );
            if tree.n_nodes() == 1 && trees.is_empty() && params.subsample >= 1.0 {
                // Even the first tree is a bare leaf: labels are (nearly)
                // constant, further rounds cannot change anything material.
                trees.push(tree);
                best_len = trees.len();
                break;
            }
            out_rows.clear();
            if subsampled {
                out_rows.extend((0..n_train as u32).filter(|&i| !in_tree[i as usize]));
            }
            out_rows.extend(n_train as u32..data.n_rows() as u32);
            if !out_rows.is_empty() {
                out_vals.clear();
                out_vals.resize(out_rows.len(), 0.0);
                let out_rows = &out_rows;
                parallel::for_chunks(&mut out_vals, threads, |start, chunk| {
                    for (k, v) in chunk.iter_mut().enumerate() {
                        *v = tree.predict(data.row(out_rows[start + k] as usize));
                    }
                });
                for (&i, &v) in out_rows.iter().zip(&out_vals) {
                    preds[i as usize] += v;
                }
            }
            trees.push(tree);
            best_len = trees.len();

            // Early stopping on the held-out tail (MSE in the output
            // space, which for logistic means after the sigmoid).
            if n_valid > 0 {
                let mse: f64 = (n_train..data.n_rows())
                    .map(|i| {
                        let y = match params.loss {
                            Loss::SquaredError => preds[i],
                            Loss::Logistic => sigmoid(preds[i]),
                        };
                        let e = (y - labels[i]) as f64;
                        e * e
                    })
                    .sum::<f64>()
                    / n_valid as f64;
                if mse + 1e-12 < best_valid {
                    best_valid = mse;
                    best_len = trees.len();
                    stall = 0;
                } else {
                    stall += 1;
                    if stall >= params.patience {
                        break;
                    }
                }
            }
        }
        trees.truncate(best_len.max(1));
        if let Some(o) = obs {
            o.counter_add("gbm.fits", 1);
            o.counter_add("gbm.trees", trees.len() as u64);
        }

        Gbm::assemble(
            base_score,
            trees,
            feature_gain,
            data.n_features(),
            params.loss,
        )
    }

    /// Builds the ensemble and derives its flattened serving layout — the
    /// one construction path shared by `fit` and deserialization.
    fn assemble(
        base_score: f32,
        trees: Vec<Tree>,
        feature_gain: Vec<f64>,
        n_features: usize,
        loss: Loss,
    ) -> Gbm {
        let flat = FlatForest::build(&trees, n_features);
        Gbm {
            base_score,
            trees,
            feature_gain,
            n_features,
            loss,
            flat,
        }
    }

    /// The flattened serving layout (crate-internal, for tests/benches).
    #[cfg(test)]
    pub(crate) fn flat(&self) -> &FlatForest {
        &self.flat
    }

    #[inline]
    fn transform(&self, score: f32) -> f32 {
        match self.loss {
            Loss::SquaredError => score,
            Loss::Logistic => sigmoid(score),
        }
    }

    /// Raw (pre-loss-transform) score of one row, tolerating any width:
    /// short rows are padded with NaN (missing), extra columns are ignored.
    ///
    /// Deliberately walks the per-tree node arenas, not the flattened
    /// branchless layout: for a *single* row the branch predictor
    /// speculates the next level's loads ahead of the compare, while a
    /// branchless select chain serializes them — the arena walk is ~5x
    /// faster per row (see the `gbm_predict_paths` bench group). The
    /// flattened layouts win only where rows are batched.
    #[inline]
    fn raw_score(&self, row: &[f32]) -> f32 {
        let walk = |row: &[f32]| {
            let mut score = self.base_score;
            for tree in &self.trees {
                score += tree.predict(row);
            }
            score
        };
        if row.len() >= self.n_features {
            walk(row)
        } else {
            let mut padded = vec![f32::NAN; self.n_features.max(1)];
            padded[..row.len()].copy_from_slice(row);
            walk(&padded)
        }
    }

    /// Predicts the output value for one raw feature row (NaN = missing):
    /// the regression value for squared error, the probability (post-
    /// sigmoid) for logistic loss.
    ///
    /// Row width need not match the training data: columns beyond
    /// [`Gbm::n_features`] are ignored, and a *short* row is treated as if
    /// the absent trailing features were missing (NaN) — a deterministic,
    /// documented behavior rather than the release-mode index panic the
    /// unchecked path used to hit.
    pub fn predict(&self, row: &[f32]) -> f32 {
        self.transform(self.raw_score(row))
    }

    /// Reference prediction walking the original per-tree node arenas —
    /// the oracle the flattened/quantized serving paths are property-tested
    /// against. Handles row widths exactly like [`Gbm::predict`].
    pub fn predict_reference(&self, row: &[f32]) -> f32 {
        let padded: Vec<f32>;
        let row = if row.len() >= self.n_features {
            row
        } else {
            let mut p = vec![f32::NAN; self.n_features.max(1)];
            p[..row.len()].copy_from_slice(row);
            padded = p;
            &padded
        };
        let mut score = self.base_score;
        for tree in &self.trees {
            score += tree.predict(row);
        }
        self.transform(score)
    }

    /// [`Gbm::predict`] clamped to `[0, 1]` — the admission-probability
    /// convention used by LHR (a no-op clamp under logistic loss).
    pub fn predict_probability(&self, row: &[f32]) -> f64 {
        self.predict(row).clamp(0.0, 1.0) as f64
    }

    /// Batched [`Gbm::predict`] over many raw rows, fanned out over
    /// `threads` workers (`0` = one per available core) and lane-blocked
    /// through the flattened forest within each worker. Each output equals
    /// the per-row [`Gbm::predict`] bit-for-bit for every thread count.
    pub fn predict_batch<R: AsRef<[f32]> + Sync>(&self, rows: &[R], threads: usize) -> Vec<f32> {
        let mut out = vec![0f32; rows.len()];
        parallel::for_chunks(
            &mut out,
            parallel::resolve_threads(threads),
            |start, chunk| {
                let nf = self.n_features;
                let mut k = 0;
                while k + LANES <= chunk.len() {
                    let refs: [&[f32]; LANES] =
                        std::array::from_fn(|l| rows[start + k + l].as_ref());
                    if refs.iter().all(|r| r.len() >= nf) {
                        self.flat
                            .predict_block(&refs, &mut chunk[k..k + LANES], self.base_score);
                    } else {
                        for (l, r) in refs.iter().enumerate() {
                            chunk[k + l] = self.raw_score(r);
                        }
                    }
                    k += LANES;
                }
                for (o, r) in chunk[k..].iter_mut().zip(rows[start + k..].iter()) {
                    *o = self.raw_score(r.as_ref());
                }
                if self.loss == Loss::Logistic {
                    for o in chunk.iter_mut() {
                        *o = sigmoid(*o);
                    }
                }
            },
        );
        out
    }

    /// [`Gbm::predict_batch`] over a dataset's rows — the batched
    /// quantized serving path. When the dataset's width matches the model
    /// and its cached binning resolves every node threshold to a bin edge
    /// (always true for the model's own training set), scoring runs
    /// set-at-a-time on the pre-binned `u8` codes via [`crate::bitset`]:
    /// 64-row predicate bit masks, reach propagation through padded
    /// complete trees, and direction-bit leaf lookup — AVX-512 where the
    /// host has it, the same-result scalar kernel everywhere else. Any row
    /// of any dataset scores bit-identically to [`Gbm::predict`]; datasets
    /// that don't fit the code path (width mismatch, ±inf values, foreign
    /// bin edges, a deeper-than-layout forest) serve from the lane-blocked
    /// raw path instead.
    pub fn predict_dataset(&self, data: &Dataset, threads: usize) -> Vec<f32> {
        if data.n_rows() == 0 {
            return Vec::new();
        }
        if data.n_features() == self.n_features {
            if let Some(bitset) = self.flat.bitset() {
                let cache = data.binned_cache();
                if !cache.has_infinite {
                    if let Some(cuts) = bitset.resolve(&cache.binned) {
                        let mut out = vec![0f32; data.n_rows()];
                        parallel::for_chunks(
                            &mut out,
                            parallel::resolve_threads(threads),
                            |start, chunk| {
                                bitset.score_range(
                                    &cache.binned,
                                    &cuts,
                                    self.base_score,
                                    start,
                                    chunk,
                                );
                                if self.loss == Loss::Logistic {
                                    for o in chunk.iter_mut() {
                                        *o = sigmoid(*o);
                                    }
                                }
                            },
                        );
                        return out;
                    }
                }
            }
        }
        let mut out = vec![0f32; data.n_rows()];
        let full_width = data.n_features() >= self.n_features;
        parallel::for_chunks(
            &mut out,
            parallel::resolve_threads(threads),
            |start, chunk| {
                let mut k = 0;
                while full_width && k + LANES <= chunk.len() {
                    let refs: [&[f32]; LANES] = std::array::from_fn(|l| data.row(start + k + l));
                    self.flat
                        .predict_block(&refs, &mut chunk[k..k + LANES], self.base_score);
                    k += LANES;
                }
                for (o, i) in chunk[k..].iter_mut().zip(start + k..) {
                    *o = self.raw_score(data.row(i));
                }
                if self.loss == Loss::Logistic {
                    for o in chunk.iter_mut() {
                        *o = sigmoid(*o);
                    }
                }
            },
        );
        out
    }

    /// Batched admission scoring for the LHR cache: [`Gbm::predict_batch`]
    /// with every output clamped to `[0, 1]`, matching
    /// [`Gbm::predict_probability`] bit-for-bit per row.
    pub fn score_admissions<R: AsRef<[f32]> + Sync>(&self, rows: &[R], threads: usize) -> Vec<f64> {
        self.predict_batch(rows, threads)
            .into_iter()
            .map(|p| p.clamp(0.0, 1.0) as f64)
            .collect()
    }

    /// Number of trees in the ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Width of feature rows this model expects.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Total split gain per feature — a standard importance measure.
    pub fn feature_importance(&self) -> &[f64] {
        &self.feature_gain
    }

    /// Mean squared error of the model on a dataset (batched prediction).
    pub fn mse(&self, data: &Dataset) -> f64 {
        assert!(!data.is_empty());
        let preds = self.predict_dataset(data, 0);
        let sum: f64 = preds
            .iter()
            .zip(data.labels())
            .map(|(&p, &y)| {
                let err = (p - y) as f64;
                err * err
            })
            .sum();
        sum / data.n_rows() as f64
    }

    /// Rough in-memory footprint in bytes (for the Figure 9 memory
    /// accounting): nodes are 24 bytes each in the arena.
    pub fn approx_size_bytes(&self) -> usize {
        self.trees.iter().map(|t| t.n_nodes() * 24).sum::<usize>() + self.feature_gain.len() * 8
    }

    /// Serializes the model as one compact JSON document.
    ///
    /// The output is byte-deterministic: the same model always produces the
    /// same text, and [`Gbm::from_json_string`] → `to_json_string`
    /// round-trips byte-identically (the in-tree writer preserves field
    /// order and float bits — see `lhr_util::json`).
    pub fn to_json_string(&self) -> String {
        use lhr_util::json::ToJson;
        self.to_json().to_string()
    }

    /// Loads a model previously produced by [`Gbm::to_json_string`].
    pub fn from_json_string(text: &str) -> Result<Gbm, lhr_util::json::JsonError> {
        use lhr_util::json::{FromJson, Json};
        Gbm::from_json(&Json::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_linear(n: usize) -> Dataset {
        // y = 0.7·x0 − 0.2·x1 + 0.1, x ∈ [0,1]².
        let mut d = Dataset::new(2);
        for i in 0..n {
            let x0 = (i % 97) as f32 / 97.0;
            let x1 = (i % 89) as f32 / 89.0;
            d.push_row(&[x0, x1], 0.7 * x0 - 0.2 * x1 + 0.1);
        }
        d
    }

    #[test]
    fn fits_linear_function_well() {
        let d = make_linear(2_000);
        let model = Gbm::fit(&d, &GbmParams::default());
        assert!(model.mse(&d) < 1e-3, "mse {}", model.mse(&d));
    }

    #[test]
    fn boosting_reduces_training_error() {
        let d = make_linear(1_000);
        let weak = Gbm::fit(
            &d,
            &GbmParams {
                n_trees: 1,
                ..GbmParams::default()
            },
        );
        let strong = Gbm::fit(
            &d,
            &GbmParams {
                n_trees: 40,
                ..GbmParams::default()
            },
        );
        assert!(strong.mse(&d) < weak.mse(&d) / 2.0);
    }

    #[test]
    fn constant_labels_short_circuit() {
        let mut d = Dataset::new(1);
        for i in 0..100 {
            d.push_row(&[i as f32], 0.5);
        }
        let model = Gbm::fit(&d, &GbmParams::default());
        assert_eq!(model.n_trees(), 1);
        assert!((model.predict(&[3.0]) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn probability_is_clamped() {
        let mut d = Dataset::new(1);
        for i in 0..100 {
            d.push_row(&[i as f32], if i < 50 { -3.0 } else { 4.0 });
        }
        let model = Gbm::fit(&d, &GbmParams::default());
        for x in [0.0f32, 25.0, 75.0, 99.0] {
            let p = model.predict_probability(&[x]);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn importance_identifies_informative_feature() {
        // Only x1 matters.
        let mut d = Dataset::new(3);
        for i in 0..1_000 {
            let x0 = (i % 11) as f32;
            let x1 = (i % 13) as f32;
            let x2 = (i % 7) as f32;
            d.push_row(&[x0, x1, x2], if x1 > 6.0 { 1.0 } else { 0.0 });
        }
        let model = Gbm::fit(&d, &GbmParams::default());
        let imp = model.feature_importance();
        assert!(imp[1] > 10.0 * imp[0].max(imp[2]), "{imp:?}");
    }

    #[test]
    fn predictions_are_finite_with_missing_features() {
        let mut d = Dataset::new(2);
        for i in 0..500 {
            let x0 = if i % 3 == 0 { f32::NAN } else { i as f32 };
            d.push_row(&[x0, (i % 5) as f32], (i % 2) as f32);
        }
        let model = Gbm::fit(&d, &GbmParams::default());
        assert!(model.predict(&[f32::NAN, f32::NAN]).is_finite());
        assert!(model.predict(&[1.0, 2.0]).is_finite());
    }

    #[test]
    fn model_is_serializable() {
        use lhr_util::json::{FromJson, ToJson};
        fn assert_json<T: ToJson + FromJson>() {}
        assert_json::<Gbm>();
        assert_json::<GbmParams>();
    }

    #[test]
    fn json_roundtrip_is_byte_identical() {
        let d = make_linear(500);
        let model = Gbm::fit(
            &d,
            &GbmParams {
                n_trees: 8,
                ..GbmParams::default()
            },
        );
        let text = model.to_json_string();
        let back = Gbm::from_json_string(&text).expect("reload");
        // save → load → save is byte-identical …
        assert_eq!(back.to_json_string(), text);
        // … and the reloaded model predicts bit-identically.
        for i in 0..d.n_rows() {
            assert_eq!(
                model.predict(d.row(i)).to_bits(),
                back.predict(d.row(i)).to_bits(),
                "prediction diverged on row {i}"
            );
        }
    }

    #[test]
    fn stochastic_boosting_still_fits() {
        let d = make_linear(2_000);
        let params = GbmParams {
            subsample: 0.5,
            colsample: 0.7,
            seed: 3,
            n_trees: 60,
            ..GbmParams::default()
        };
        let model = Gbm::fit(&d, &params);
        assert!(model.mse(&d) < 5e-3, "mse {}", model.mse(&d));
    }

    #[test]
    fn stochastic_boosting_is_deterministic_per_seed() {
        let d = make_linear(500);
        let fit = |seed| {
            let params = GbmParams {
                subsample: 0.6,
                colsample: 0.6,
                seed,
                ..GbmParams::default()
            };
            Gbm::fit(&d, &params).predict(&[0.3, 0.7])
        };
        assert_eq!(fit(1), fit(1));
        // Different seeds should (overwhelmingly) differ.
        assert_ne!(fit(1), fit(2));
    }

    fn make_messy(n: usize) -> Dataset {
        // Missing values, repeated values, and a nonlinear label — the
        // shape LHR's feature rows actually have.
        let mut d = Dataset::new(3);
        for i in 0..n {
            let x0 = if i % 7 == 0 {
                f32::NAN
            } else {
                (i % 31) as f32
            };
            let x1 = (i % 13) as f32 / 13.0;
            let x2 = (i % 5) as f32;
            let y = if x0.is_nan() || x0 > 15.0 { 1.0 } else { x1 };
            d.push_row(&[x0, x1, x2], y);
        }
        d
    }

    #[test]
    fn fit_is_byte_identical_across_thread_counts() {
        let d = make_messy(3_000);
        let fit = |threads: usize, loss: Loss| {
            let params = GbmParams {
                n_trees: 12,
                subsample: 0.8,
                colsample: 0.8,
                validation_fraction: 0.2,
                seed: 9,
                loss,
                threads,
                ..GbmParams::default()
            };
            Gbm::fit(&d, &params).to_json_string()
        };
        for loss in [Loss::SquaredError, Loss::Logistic] {
            let one = fit(1, loss);
            assert_eq!(one, fit(2, loss), "{loss:?}: threads=2 diverged");
            assert_eq!(one, fit(8, loss), "{loss:?}: threads=8 diverged");
        }
    }

    #[test]
    fn predict_batch_matches_per_row_predict() {
        let d = make_messy(1_000);
        let model = Gbm::fit(
            &d,
            &GbmParams {
                n_trees: 10,
                ..GbmParams::default()
            },
        );
        let rows: Vec<Vec<f32>> = (0..d.n_rows()).map(|i| d.row(i).to_vec()).collect();
        for threads in [1, 3, 0] {
            let batch = model.predict_batch(&rows, threads);
            let dataset = model.predict_dataset(&d, threads);
            for i in 0..d.n_rows() {
                let want = model.predict(d.row(i)).to_bits();
                assert_eq!(batch[i].to_bits(), want, "batch row {i}");
                assert_eq!(dataset[i].to_bits(), want, "dataset row {i}");
            }
        }
    }

    #[test]
    fn early_stopping_truncates_on_noise() {
        // Pure-noise labels: validation MSE cannot improve, so early
        // stopping must cut the ensemble far below n_trees.
        let mut d = Dataset::new(1);
        let mut state = 0x12345u64;
        for i in 0..2_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            d.push_row(&[(i % 37) as f32], (state % 1_000) as f32 / 1_000.0);
        }
        let params = GbmParams {
            n_trees: 100,
            validation_fraction: 0.2,
            patience: 3,
            ..GbmParams::default()
        };
        let model = Gbm::fit(&d, &params);
        assert!(
            model.n_trees() < 50,
            "{} trees on pure noise",
            model.n_trees()
        );
    }

    #[test]
    fn early_stopping_keeps_useful_trees() {
        let d = make_linear(2_000);
        let params = GbmParams {
            n_trees: 40,
            validation_fraction: 0.2,
            patience: 5,
            ..GbmParams::default()
        };
        let model = Gbm::fit(&d, &params);
        assert!(model.mse(&d) < 5e-3, "mse {}", model.mse(&d));
        assert!(model.n_trees() >= 5);
    }

    #[test]
    #[should_panic]
    fn bad_subsample_rejected() {
        let d = make_linear(100);
        Gbm::fit(
            &d,
            &GbmParams {
                subsample: 0.0,
                ..GbmParams::default()
            },
        );
    }

    #[test]
    fn logistic_loss_separates_classes() {
        // y = 1 iff x0 > 0.5.
        let mut d = Dataset::new(2);
        for i in 0..2_000 {
            let x0 = (i % 101) as f32 / 101.0;
            let x1 = (i % 89) as f32 / 89.0;
            d.push_row(&[x0, x1], if x0 > 0.5 { 1.0 } else { 0.0 });
        }
        let params = GbmParams {
            loss: Loss::Logistic,
            ..GbmParams::default()
        };
        let model = Gbm::fit(&d, &params);
        assert!(
            model.predict(&[0.9, 0.5]) > 0.85,
            "{}",
            model.predict(&[0.9, 0.5])
        );
        assert!(
            model.predict(&[0.1, 0.5]) < 0.15,
            "{}",
            model.predict(&[0.1, 0.5])
        );
        // Probabilities by construction.
        for x in [0.0f32, 0.3, 0.6, 1.0] {
            let p = model.predict(&[x, 0.0]);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn logistic_and_squared_agree_on_easy_classification() {
        let mut d = Dataset::new(1);
        for i in 0..1_000 {
            let x = (i % 50) as f32;
            d.push_row(&[x], if x >= 25.0 { 1.0 } else { 0.0 });
        }
        let sq = Gbm::fit(&d, &GbmParams::default());
        let lg = Gbm::fit(
            &d,
            &GbmParams {
                loss: Loss::Logistic,
                ..GbmParams::default()
            },
        );
        for x in [5.0f32, 20.0, 30.0, 45.0] {
            let a = sq.predict_probability(&[x]);
            let b = lg.predict_probability(&[x]);
            assert!((a - b).abs() < 0.2, "x {x}: squared {a} vs logistic {b}");
        }
    }

    #[test]
    fn mse_of_perfect_model_is_zero_like() {
        let mut d = Dataset::new(1);
        for _ in 0..10 {
            d.push_row(&[1.0], 2.0);
        }
        let model = Gbm::fit(
            &d,
            &GbmParams {
                base_score: Some(2.0),
                ..GbmParams::default()
            },
        );
        assert!(model.mse(&d) < 1e-12);
    }

    #[test]
    #[should_panic]
    fn empty_dataset_panics() {
        Gbm::fit(&Dataset::new(1), &GbmParams::default());
    }

    #[test]
    fn approx_size_is_positive() {
        let d = make_linear(200);
        let model = Gbm::fit(&d, &GbmParams::default());
        assert!(model.approx_size_bytes() > 0);
    }

    #[test]
    fn short_rows_are_treated_as_missing_features() {
        // Regression for the unguarded row-width mismatch: a short row used
        // to index out of bounds in release builds. It must now behave as
        // if the absent trailing features were NaN, in every predict path.
        let d = make_messy(1_000);
        let model = Gbm::fit(
            &d,
            &GbmParams {
                n_trees: 10,
                ..GbmParams::default()
            },
        );
        let short: Vec<Vec<f32>> = vec![vec![], vec![3.0], vec![3.0, 0.5], vec![f32::NAN]];
        for row in &short {
            let mut full = vec![f32::NAN; model.n_features()];
            full[..row.len()].copy_from_slice(row);
            let want = model.predict(&full).to_bits();
            assert_eq!(model.predict(row).to_bits(), want, "{row:?}");
            assert_eq!(model.predict_reference(row).to_bits(), want, "{row:?}");
            assert!(model.predict(row).is_finite());
        }
        // Batched scoring with mixed widths (some blocks all-full, some
        // containing short rows) matches per-row predict bit-for-bit.
        let mut rows: Vec<Vec<f32>> = (0..100).map(|i| d.row(i).to_vec()).collect();
        rows[3] = vec![1.0];
        rows[50] = vec![];
        rows[97] = vec![2.0, f32::NAN];
        let batch = model.predict_batch(&rows, 1);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(batch[i].to_bits(), model.predict(row).to_bits(), "row {i}");
        }
        // Extra trailing columns are ignored.
        let mut wide = d.row(0).to_vec();
        wide.push(123.0);
        assert_eq!(
            model.predict(&wide).to_bits(),
            model.predict(d.row(0)).to_bits()
        );
    }

    #[test]
    fn flat_paths_match_the_reference_walk_on_extreme_rows() {
        for loss in [Loss::SquaredError, Loss::Logistic] {
            let d = make_messy(2_000);
            let model = Gbm::fit(
                &d,
                &GbmParams {
                    n_trees: 15,
                    loss,
                    ..GbmParams::default()
                },
            );
            let mut rows: Vec<Vec<f32>> = (0..64).map(|i| d.row(i).to_vec()).collect();
            rows.push(vec![f32::INFINITY, f32::NEG_INFINITY, f32::NAN]);
            rows.push(vec![f32::NEG_INFINITY, f32::INFINITY, 0.0]);
            rows.push(vec![f32::NAN, f32::NAN, f32::NAN]);
            rows.push(vec![0.0, -0.0, f32::MAX]);
            let batch = model.predict_batch(&rows, 1);
            for (i, row) in rows.iter().enumerate() {
                let want = model.predict_reference(row).to_bits();
                assert_eq!(model.predict(row).to_bits(), want, "{loss:?} row {i}");
                assert_eq!(batch[i].to_bits(), want, "{loss:?} batch row {i}");
            }
        }
    }

    #[test]
    fn score_admissions_matches_predict_probability() {
        let d = make_messy(1_000);
        let model = Gbm::fit(
            &d,
            &GbmParams {
                n_trees: 10,
                ..GbmParams::default()
            },
        );
        let rows: Vec<Vec<f32>> = (0..200).map(|i| d.row(i).to_vec()).collect();
        for threads in [1, 3, 0] {
            let scores = model.score_admissions(&rows, threads);
            for (i, row) in rows.iter().enumerate() {
                assert!((0.0..=1.0).contains(&scores[i]));
                assert_eq!(
                    scores[i].to_bits(),
                    model.predict_probability(row).to_bits(),
                    "row {i} threads {threads}"
                );
            }
        }
    }
}
