//! The infinite-capacity bound: only compulsory (first-touch) misses.

use lhr_sim::bound::{base_metrics, OfflineBound};
use lhr_sim::SimMetrics;
use lhr_trace::Trace;
use std::collections::HashSet;

/// InfiniteCap (Abrams et al. '95): every request after an object's first is
/// a hit. The loosest classical upper bound on OPT.
#[derive(Debug, Clone, Default)]
pub struct InfiniteCap;

impl OfflineBound for InfiniteCap {
    fn name(&self) -> &str {
        "InfiniteCap"
    }

    fn evaluate(&self, trace: &Trace, _capacity: u64) -> SimMetrics {
        let mut metrics = base_metrics(trace);
        let mut seen = HashSet::new();
        for req in trace.iter() {
            if seen.insert(req.id) {
                metrics.misses_admitted += 1;
            } else {
                metrics.hits += 1;
                metrics.bytes_hit += req.size as u128;
            }
        }
        metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhr_trace::{Request, Time};

    #[test]
    fn only_first_touches_miss() {
        let ids = [1u64, 2, 1, 3, 2, 1];
        let t = Trace::from_requests(
            "t",
            ids.iter()
                .enumerate()
                .map(|(i, &id)| Request::new(Time::from_secs(i as u64), id, 5))
                .collect(),
        );
        let m = InfiniteCap.evaluate(&t, 1);
        assert_eq!(m.misses(), 3);
        assert_eq!(m.hits, 3);
        assert_eq!(m.bytes_hit, 15);
    }

    #[test]
    fn capacity_is_ignored() {
        let t = Trace::from_requests(
            "t",
            vec![
                Request::new(Time::from_secs(0), 1, 1_000_000),
                Request::new(Time::from_secs(1), 1, 1_000_000),
            ],
        );
        assert_eq!(InfiniteCap.evaluate(&t, 1).hits, 1);
    }
}
