//! GreedyDual-Size-Frequency (Cherkasova '98): size-aware frequency
//! eviction.
//!
//! Each cached object has priority `H_i = L + F_i · cost / s_i`; with
//! `cost = 1` (the hit-ratio objective) small, frequently requested objects
//! are retained. `L` is the inflation term: the priority of the last
//! evicted object.

use crate::util::OrdF64;
use lhr_sim::{CachePolicy, Outcome};
use lhr_trace::{ObjectId, Request};
use lhr_util::hash::FastMap;
use std::collections::BTreeSet;

#[derive(Debug)]
struct Entry {
    size: u64,
    freq: u64,
    priority: OrdF64,
}

/// The GDSF policy.
#[derive(Debug)]
pub struct Gdsf {
    capacity: u64,
    used: u64,
    entries: FastMap<ObjectId, Entry>,
    queue: BTreeSet<(OrdF64, ObjectId)>,
    /// Inflation term `L`.
    inflation: f64,
    evictions: u64,
}

impl Gdsf {
    /// An empty GDSF cache of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Gdsf {
            capacity,
            used: 0,
            entries: FastMap::default(),
            queue: BTreeSet::new(),
            inflation: 0.0,
            evictions: 0,
        }
    }

    fn priority(&self, freq: u64, size: u64) -> OrdF64 {
        OrdF64::new(self.inflation + freq as f64 / size as f64)
    }

    fn evict_one(&mut self) {
        let &(priority, id) = self.queue.iter().next().expect("cache empty while full");
        self.queue.remove(&(priority, id));
        let entry = self.entries.remove(&id).expect("queued");
        self.used -= entry.size;
        self.inflation = priority.0;
        self.evictions += 1;
    }
}

impl CachePolicy for Gdsf {
    fn name(&self) -> &str {
        "GDSF"
    }
    fn capacity(&self) -> u64 {
        self.capacity
    }
    fn used_bytes(&self) -> u64 {
        self.used
    }
    fn contains(&self, id: ObjectId) -> bool {
        self.entries.contains_key(&id)
    }

    fn handle(&mut self, req: &Request) -> Outcome {
        if self.entries.contains_key(&req.id) {
            let freq = {
                let e = self.entries.get_mut(&req.id).expect("cached");
                self.queue.remove(&(e.priority, req.id));
                e.freq += 1;
                e.freq
            };
            let p = self.priority(freq, req.size);
            let e = self.entries.get_mut(&req.id).expect("cached");
            e.priority = p;
            self.queue.insert((p, req.id));
            return Outcome::Hit;
        }
        if req.size > self.capacity {
            return Outcome::MissBypassed;
        }
        while self.used + req.size > self.capacity {
            self.evict_one();
        }
        let p = self.priority(1, req.size);
        self.entries.insert(
            req.id,
            Entry {
                size: req.size,
                freq: 1,
                priority: p,
            },
        );
        self.queue.insert((p, req.id));
        self.used += req.size;
        Outcome::MissAdmitted
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }

    fn metadata_overhead_bytes(&self) -> u64 {
        self.entries.len() as u64 * 72
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhr_trace::Time;

    fn req(t: u64, id: ObjectId, size: u64) -> Request {
        Request::new(Time::from_secs(t), id, size)
    }

    #[test]
    fn prefers_small_objects_at_equal_frequency() {
        let mut c = Gdsf::new(300);
        c.handle(&req(0, 1, 200)); // big
        c.handle(&req(1, 2, 50)); // small
        c.handle(&req(2, 3, 50)); // small
        c.handle(&req(3, 4, 100)); // needs 100 bytes → evicts the big one
        assert!(!c.contains(1));
        assert!(c.contains(2) && c.contains(3) && c.contains(4));
    }

    #[test]
    fn frequency_rescues_large_objects() {
        let mut c = Gdsf::new(300);
        c.handle(&req(0, 1, 200));
        for t in 1..40 {
            c.handle(&req(t, 1, 200)); // freq 40 → priority 40/200 = 0.2
        }
        c.handle(&req(40, 2, 100)); // priority 1/100 = 0.01
        c.handle(&req(41, 3, 100)); // evicts 2 (lowest H), not the hot big 1
        assert!(c.contains(1));
        assert!(!c.contains(2));
    }

    #[test]
    fn inflation_monotone_nondecreasing() {
        let mut c = Gdsf::new(200);
        let mut last = 0.0;
        for i in 0..100u64 {
            c.handle(&req(i, i, 100));
            assert!(c.inflation >= last);
            last = c.inflation;
        }
        assert!(c.inflation > 0.0);
    }

    #[test]
    fn capacity_respected() {
        let mut c = Gdsf::new(500);
        for i in 0..300u64 {
            c.handle(&req(i, i % 13, 60 + (i % 5) * 30));
            assert!(c.used_bytes() <= 500);
        }
    }
}
