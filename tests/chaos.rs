//! Chaos suite: replays traces through the CDN serving path under
//! escalating origin fault presets (flaky, brownout, full outage, recovery)
//! and asserts the graceful-degradation invariants — capacity and byte
//! accounting always hold, stale-serving lifts availability above the
//! no-stale baseline, the circuit breaker opens and closes at its
//! configured thresholds, and a fixed fault seed reproduces byte-identical
//! reports.

use lhr_repro::core::cache::{LhrCache, LhrConfig};
use lhr_repro::policies::Lru;
use lhr_repro::proto::{
    presets, BreakerConfig, CdnServer, ConcurrentCache, FaultConfig, ResilienceConfig, RetryPolicy,
    ServerConfig, TieredCache,
};
use lhr_repro::sim::{CachePolicy, Outcome};
use lhr_repro::trace::{ObjectId, Request, Time, Trace};

const MB: u64 = 1 << 20;

/// A trace of `n` all-distinct objects (every request is a compulsory
/// miss), one per second.
fn scan_trace(n: u64, size: u64) -> Trace {
    Trace::from_requests(
        "scan",
        (0..n)
            .map(|i| Request::new(Time::from_secs(i), i, size))
            .collect(),
    )
}

/// A mixed synthetic trace with skewed popularity and varied sizes,
/// expanded deterministically from `seed` (xorshift, as in properties.rs).
fn mixed_trace(n: u64, seed: u64) -> Trace {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut trace = Trace::new("mixed");
    for i in 0..n {
        // Rough Zipf-ish skew: half the traffic on 10 hot objects.
        let id = if next() % 2 == 0 {
            next() % 10
        } else {
            10 + next() % 200
        };
        let size = (id % 7 + 1) * 100_000;
        trace.push(Request::new(Time::from_secs(i), id, size));
    }
    trace
}

#[test]
fn fixed_seed_reports_are_byte_identical() {
    let trace = mixed_trace(3_000, 11);
    let duration = trace.duration().as_secs_f64();
    for preset in ["flaky", "brownout", "outage", "recovery"] {
        let mut config = presets::fault_preset(preset, 7, duration).expect("preset");
        config.deterministic = true;
        let run = |config: ServerConfig| {
            let mut server = CdnServer::new(Lru::new(40 * MB), config);
            server.replay(&trace).stable_json()
        };
        assert_eq!(
            run(config.clone()),
            run(config.clone()),
            "{preset}: same seed must reproduce byte-identical reports"
        );
        let mut lhr_config = config.clone();
        lhr_config.deterministic = true;
        let run_lhr = |config: ServerConfig| {
            let cache = LhrCache::new(
                40 * MB,
                LhrConfig {
                    seed: 5,
                    min_window_requests: 64,
                    ..LhrConfig::default()
                },
            );
            let mut server = CdnServer::new(cache, config);
            server.replay(&trace).stable_json()
        };
        assert_eq!(
            run_lhr(lhr_config.clone()),
            run_lhr(lhr_config),
            "{preset}: LHR-backed replay must also be reproducible"
        );
    }
}

#[test]
fn full_outage_stale_serving_beats_no_stale_baseline() {
    // One object, requested every 10 s with a 5 s freshness lifetime, so
    // every request after the first needs the origin — and the origin is
    // down for t ∈ [400, 600).
    let trace = Trace::from_requests(
        "stale-outage",
        (0..100u64)
            .map(|i| Request::new(Time::from_secs(i * 10), 1, MB))
            .collect(),
    );
    let faults = FaultConfig {
        outages: vec![(400.0, 600.0)],
        ..FaultConfig::default()
    };
    let run = |resilience: ResilienceConfig| {
        let config = ServerConfig {
            freshness_secs: Some(5.0),
            faults: faults.clone(),
            resilience,
            ..ServerConfig::default()
        };
        let mut server = CdnServer::new(Lru::new(40 * MB), config);
        server.replay(&trace)
    };
    let baseline = run(ResilienceConfig::default()); // no stale serving
    let hardened = run(ResilienceConfig::hardened());

    // Analytic floor: every request outside the outage window is servable,
    // so with stale-serving (which covers the window itself) availability
    // can never fall below that fraction. The no-stale baseline may dip a
    // little further while the breaker cool-down drains post-outage.
    let outside_outage_pct = trace
        .iter()
        .filter(|r| {
            let t = r.ts.as_secs_f64();
            !(400.0..600.0).contains(&t)
        })
        .count() as f64
        / trace.len() as f64
        * 100.0;
    assert!(
        hardened.availability_pct >= outside_outage_pct - 1e-9,
        "stale-serving {} below analytic floor {}",
        hardened.availability_pct,
        outside_outage_pct
    );
    assert!(
        baseline.availability_pct >= outside_outage_pct - 5.0,
        "baseline {} far below floor {} (cool-down should cost a few requests at most)",
        baseline.availability_pct,
        outside_outage_pct
    );
    assert!(
        baseline.availability_pct < 100.0,
        "baseline must actually lose requests during the outage"
    );
    assert!(baseline.errors_served > 0);
    // Stale-serving covers the outage entirely: the cached copy stays
    // servable, so availability strictly exceeds the no-stale baseline.
    assert!(
        hardened.availability_pct > baseline.availability_pct,
        "stale-serving {} must beat baseline {}",
        hardened.availability_pct,
        baseline.availability_pct
    );
    assert!((hardened.availability_pct - 100.0).abs() < 1e-9);
    assert!(hardened.stale_served > 0);
    assert_eq!(hardened.errors_served, 0);
}

#[test]
fn breaker_opens_at_threshold_and_recovers_after_outage() {
    // Distinct-object misses once per second; origin down for t ∈ [10, 60).
    let trace = scan_trace(100, MB);
    let config = ServerConfig {
        resilience: ResilienceConfig {
            breaker: BreakerConfig {
                failure_threshold: 3,
                open_secs: 5.0,
                half_open_successes: 1,
            },
            coalesce: false,
            ..ResilienceConfig::default()
        },
        faults: FaultConfig {
            outages: vec![(10.0, 60.0)],
            ..FaultConfig::default()
        },
        ..ServerConfig::default()
    };
    let mut server = CdnServer::new(Lru::new(200 * MB), config);
    let r = server.replay(&trace);
    // The breaker trips once the threshold is hit, then keeps reopening on
    // failed half-open probes every `open_secs` until the outage ends, and
    // closes on the first successful probe after it.
    assert!(r.breaker_opens >= 2, "opens {}", r.breaker_opens);
    assert!(r.breaker_closes >= 1, "closes {}", r.breaker_closes);
    // Every in-outage request fails (50), plus at most a few fail-fast
    // requests while the last cool-down drains after recovery.
    assert!(
        (50..=55).contains(&r.errors_served),
        "errors {}",
        r.errors_served
    );
    assert!(
        r.availability_pct > 40.0 && r.availability_pct < 55.0,
        "availability {}",
        r.availability_pct
    );
}

#[test]
fn breaker_threshold_is_sharp_under_permanent_outage() {
    // Origin never answers and the breaker never re-probes (huge cool-down):
    // exactly `failure_threshold` requests run the full retry chain, so the
    // retry counter is exactly threshold × max_retries.
    let trace = scan_trace(100, MB);
    let config = ServerConfig {
        resilience: ResilienceConfig {
            retry: RetryPolicy {
                max_retries: 2,
                ..RetryPolicy::default()
            },
            breaker: BreakerConfig {
                failure_threshold: 3,
                open_secs: 1e12,
                half_open_successes: 1,
            },
            coalesce: false,
            ..ResilienceConfig::default()
        },
        faults: FaultConfig {
            outages: vec![(0.0, 1e12)],
            ..FaultConfig::default()
        },
        ..ServerConfig::default()
    };
    let mut server = CdnServer::new(Lru::new(200 * MB), config);
    let r = server.replay(&trace);
    assert_eq!(r.breaker_opens, 1);
    assert_eq!(r.breaker_closes, 0);
    assert_eq!(r.retries, 3 * 2, "threshold × max_retries retry attempts");
    assert_eq!(r.errors_served, 100);
    assert!((r.availability_pct - 0.0).abs() < 1e-9);
}

#[test]
fn flaky_origin_retries_recover_availability() {
    // All-miss trace against a flaky origin (≈7 % of attempts fail). The
    // breaker threshold is set out of reach so only retries matter.
    let trace = scan_trace(2_000, MB);
    let faults = FaultConfig::preset("flaky", 13, trace.duration().as_secs_f64()).expect("preset");
    let run = |max_retries: u32| {
        let config = ServerConfig {
            resilience: ResilienceConfig {
                retry: RetryPolicy {
                    max_retries,
                    ..RetryPolicy::default()
                },
                breaker: BreakerConfig {
                    failure_threshold: u32::MAX,
                    ..BreakerConfig::default()
                },
                ..ResilienceConfig::default()
            },
            faults: faults.clone(),
            ..ServerConfig::default()
        };
        let mut server = CdnServer::new(Lru::new(10 * MB), config);
        server.replay(&trace)
    };
    let no_retries = run(0);
    let with_retries = run(2);
    assert!(
        no_retries.errors_served > 50,
        "≈7% of 2000 should fail without retries, got {}",
        no_retries.errors_served
    );
    assert!(with_retries.retries > 0);
    assert!(
        with_retries.errors_served < no_retries.errors_served / 10,
        "retries {} vs none {}",
        with_retries.errors_served,
        no_retries.errors_served
    );
    assert!(with_retries.availability_pct > no_retries.availability_pct);
}

#[test]
fn brownout_inflates_degraded_latency_percentiles() {
    let trace = scan_trace(500, MB);
    let duration = trace.duration().as_secs_f64();
    let run = |preset: &str| {
        let mut config = presets::fault_preset(preset, 3, duration).expect("preset");
        config.deterministic = true;
        let mut server = CdnServer::new(Lru::new(10 * MB), config);
        server.replay(&trace)
    };
    let clean = run("none");
    let brownout = run("brownout");
    // A healthy origin degrades nothing.
    assert_eq!(clean.degraded_p90_latency_ms, 0.0);
    assert_eq!(clean.retries, 0);
    // Brownout: most fetches crawl at 1/10 rate, so the degraded
    // percentiles exist and overall latency is visibly worse.
    assert!(brownout.degraded_p90_latency_ms > clean.p90_latency_ms);
    // 75 % of fetches crawl at 1/10 origin rate: a 1 MB miss goes from
    // ~75 ms to ~111 ms, so the trace-wide mean rises by well over 20 %.
    assert!(
        brownout.mean_latency_ms > clean.mean_latency_ms * 1.2,
        "brownout {} vs clean {}",
        brownout.mean_latency_ms,
        clean.mean_latency_ms
    );
}

/// A policy that never caches: every request is a bypassed miss, which
/// keeps the coalescing window — not the cache — responsible for saving
/// origin fetches.
struct BypassAll;

impl CachePolicy for BypassAll {
    fn name(&self) -> &str {
        "BypassAll"
    }
    fn capacity(&self) -> u64 {
        0
    }
    fn used_bytes(&self) -> u64 {
        0
    }
    fn contains(&self, _id: ObjectId) -> bool {
        false
    }
    fn handle(&mut self, _req: &Request) -> Outcome {
        Outcome::MissBypassed
    }
    fn evictions(&self) -> u64 {
        0
    }
    fn metadata_overhead_bytes(&self) -> u64 {
        0
    }
}

#[test]
fn coalescing_collapses_a_burst_of_misses_into_one_fetch() {
    // 20 requests for one object inside a few milliseconds — well within
    // the ~64 ms the origin fetch is in flight. The policy admits nothing,
    // so only coalescing can prevent 20 separate fetches.
    let n = 20u64;
    let trace = Trace::from_requests(
        "burst",
        (0..n)
            .map(|i| Request::new(Time::from_micros(i * 500), 1, MB))
            .collect(),
    );
    let duration = trace.duration().as_secs_f64();
    let run = |coalesce: bool| {
        let config = ServerConfig {
            resilience: ResilienceConfig {
                coalesce,
                ..ResilienceConfig::default()
            },
            ..ServerConfig::default()
        };
        let mut server = CdnServer::new(BypassAll, config);
        server.replay(&trace)
    };
    let on = run(true);
    let off = run(false);
    let wan_bytes = |r: &lhr_repro::proto::ServerReport| r.wan_gbps * duration * 1e9 / 8.0;
    assert_eq!(on.coalesced_fetches, n - 1);
    assert_eq!(off.coalesced_fetches, 0);
    assert!(
        (wan_bytes(&on) - MB as f64).abs() < 1.0,
        "coalesced burst fetches one object, got {} bytes",
        wan_bytes(&on)
    );
    assert!(
        (wan_bytes(&off) - (n * MB) as f64).abs() < 1.0,
        "uncoalesced burst fetches every time, got {} bytes",
        wan_bytes(&off)
    );
}

#[test]
fn capacity_and_accounting_invariants_under_all_presets() {
    let trace = mixed_trace(3_000, 42);
    let duration = trace.duration().as_secs_f64();
    let capacity = 20 * MB;
    for preset in FaultConfig::preset_names() {
        let config = presets::fault_preset(preset, 9, duration).expect("preset");

        // Each policy wrapper the serving path supports, replayed under
        // this preset; closures so each gets a fresh instance.
        let checks: Vec<(
            &str,
            Box<dyn FnOnce() -> (u64, u64, lhr_repro::proto::ServerReport)>,
        )> = vec![
            (
                "lru",
                Box::new({
                    let config = config.clone();
                    let trace = &trace;
                    move || {
                        let mut s = CdnServer::new(Lru::new(capacity), config);
                        let r = s.replay(trace);
                        (s.policy().used_bytes(), s.policy().capacity(), r)
                    }
                }),
            ),
            (
                "tiered",
                Box::new({
                    let config = config.clone();
                    let trace = &trace;
                    move || {
                        let cache = TieredCache::new(Lru::new(capacity / 10), Lru::new(capacity));
                        let mut s = CdnServer::new(cache, config);
                        let r = s.replay(trace);
                        (s.policy().used_bytes(), s.policy().capacity(), r)
                    }
                }),
            ),
            (
                "sharded",
                Box::new({
                    let config = config.clone();
                    let trace = &trace;
                    move || {
                        let cache = ConcurrentCache::new(capacity, 8, Lru::new);
                        let mut s = CdnServer::new(cache, config);
                        let r = s.replay(trace);
                        (
                            CachePolicy::used_bytes(s.policy()),
                            CachePolicy::capacity(s.policy()),
                            r,
                        )
                    }
                }),
            ),
            (
                "lhr",
                Box::new({
                    let config = config.clone();
                    let trace = &trace;
                    move || {
                        let cache = LhrCache::new(
                            capacity,
                            LhrConfig {
                                seed: 3,
                                min_window_requests: 64,
                                ..LhrConfig::default()
                            },
                        );
                        let mut s = CdnServer::new(cache, config);
                        let r = s.replay(trace);
                        (s.policy().used_bytes(), s.policy().capacity(), r)
                    }
                }),
            ),
        ];

        for (name, check) in checks {
            let (used, cap, r) = check();
            let n = trace.len() as u64;
            assert!(
                used <= cap,
                "{preset}/{name}: capacity violated ({used} > {cap})"
            );
            assert!(
                (0.0..=100.0).contains(&r.availability_pct),
                "{preset}/{name}: availability {}",
                r.availability_pct
            );
            assert!(
                (0.0..=100.0).contains(&r.content_hit_pct),
                "{preset}/{name}: hit pct {}",
                r.content_hit_pct
            );
            assert!(r.errors_served <= n, "{preset}/{name}");
            assert!(r.stale_served <= n, "{preset}/{name}");
            assert!(r.coalesced_fetches <= n, "{preset}/{name}");
            // Errors and hits are disjoint outcomes of the measured window.
            assert!(
                r.errors_served + (r.content_hit_pct / 100.0 * n as f64).round() as u64 <= n,
                "{preset}/{name}: errors + hits exceed requests"
            );
            // Availability is exactly the non-error fraction.
            let expected = (n - r.errors_served) as f64 / n as f64 * 100.0;
            assert!(
                (r.availability_pct - expected).abs() < 1e-6,
                "{preset}/{name}: availability {} vs errors {}",
                r.availability_pct,
                r.errors_served
            );
            // The breaker can only close after having opened.
            assert!(r.breaker_closes <= r.breaker_opens, "{preset}/{name}");
            // A healthy origin must not degrade anything.
            if *preset == "none" {
                assert_eq!(r.errors_served, 0, "{name}");
                assert_eq!(r.retries, 0, "{name}");
                assert_eq!(r.breaker_opens, 0, "{name}");
                assert!((r.availability_pct - 100.0).abs() < 1e-9, "{name}");
            }
        }
    }
}
