//! Hit/traffic accounting.

/// Counters accumulated by the simulator over the measured part of a trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimMetrics {
    /// Requests measured (excludes warmup).
    pub requests: u64,
    /// Object (content) hits.
    pub hits: u64,
    /// Misses that were admitted into the cache.
    pub misses_admitted: u64,
    /// Misses bypassed by admission control.
    pub misses_bypassed: u64,
    /// Total bytes requested.
    pub bytes_requested: u128,
    /// Bytes served from cache.
    pub bytes_hit: u128,
    /// Requests that could not be served at all (origin failure with no
    /// cached fallback — only fault-injected serving paths produce these;
    /// plain simulation leaves the field 0).
    pub errors: u64,
    /// Trace-time duration of the measured interval, seconds.
    pub duration_secs: f64,
}

lhr_util::impl_json!(struct SimMetrics {
    requests,
    hits,
    misses_admitted,
    misses_bypassed,
    bytes_requested,
    bytes_hit,
    errors,
    duration_secs,
});

impl SimMetrics {
    /// Object hit probability — the paper's headline "content hit" metric.
    pub fn object_hit_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }

    /// Byte hit probability.
    pub fn byte_hit_ratio(&self) -> f64 {
        if self.bytes_requested == 0 {
            0.0
        } else {
            self.bytes_hit as f64 / self.bytes_requested as f64
        }
    }

    /// WAN bytes fetched from origin (every miss is an origin fetch whether
    /// or not the object is admitted). Saturates rather than panicking if
    /// hand-built metrics claim more bytes hit than requested.
    pub fn wan_bytes(&self) -> u128 {
        self.bytes_requested.saturating_sub(self.bytes_hit)
    }

    /// WAN traffic rate in Gbps over the measured interval (the paper's
    /// Figure 8 right-hand metric).
    pub fn wan_gbps(&self) -> f64 {
        if self.duration_secs <= 0.0 {
            0.0
        } else {
            self.wan_bytes() as f64 * 8.0 / 1e9 / self.duration_secs
        }
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.misses_admitted + self.misses_bypassed
    }

    /// Fraction of measured requests served successfully (1.0 when nothing
    /// was measured — an empty interval has no failures).
    pub fn availability(&self) -> f64 {
        if self.requests == 0 {
            1.0
        } else {
            (self.requests - self.errors.min(self.requests)) as f64 / self.requests as f64
        }
    }
}

/// One point of a hit-probability time series (Figures 7 and 13): the
/// cumulative object hit ratio after `requests` measured requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Number of measured requests so far.
    pub requests: u64,
    /// Trace time at the bucket boundary, seconds.
    pub time_secs: f64,
    /// Cumulative object hit ratio up to this point.
    pub cumulative_hit_ratio: f64,
    /// Hit ratio within this bucket alone.
    pub window_hit_ratio: f64,
}

lhr_util::impl_json!(struct SeriesPoint { requests, time_secs, cumulative_hit_ratio, window_hit_ratio });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_and_wan() {
        let m = SimMetrics {
            requests: 10,
            hits: 4,
            misses_admitted: 5,
            misses_bypassed: 1,
            bytes_requested: 1_000,
            bytes_hit: 250,
            errors: 2,
            duration_secs: 2.0,
        };
        assert!((m.object_hit_ratio() - 0.4).abs() < 1e-12);
        assert!((m.byte_hit_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(m.wan_bytes(), 750);
        assert_eq!(m.misses(), 6);
        assert!((m.wan_gbps() - 750.0 * 8.0 / 1e9 / 2.0).abs() < 1e-15);
        assert!((m.availability() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn wan_bytes_saturates_instead_of_panicking() {
        let m = SimMetrics {
            bytes_requested: 100,
            bytes_hit: 250,
            duration_secs: 1.0,
            ..SimMetrics::default()
        };
        assert_eq!(m.wan_bytes(), 0);
        assert_eq!(m.wan_gbps(), 0.0);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = SimMetrics::default();
        assert_eq!(m.object_hit_ratio(), 0.0);
        assert_eq!(m.byte_hit_ratio(), 0.0);
        assert_eq!(m.wan_gbps(), 0.0);
        // Vacuous availability: no measured requests, no failures.
        assert_eq!(m.availability(), 1.0);
    }
}
