//! Reproduces Table 4 (Appendix A.3): resource usage of LHR vs Caffeine.
fn main() {
    let options = lhr_bench::harness::Options::from_args();
    let (_fig13, table4) = lhr_bench::experiments::prototype_vs_caffeine(&options);
    println!("{table4}");
    lhr_bench::harness::write_obs(&options);
}
