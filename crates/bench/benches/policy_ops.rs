//! Per-request throughput of every cache policy (the compute side of the
//! paper's Figure 9 / Table 2 overhead story).
//!
//! Run with `cargo bench --bench policy_ops`.

use lhr_bench::harness::{all_factories, Options};
use lhr_sim::{SimConfig, Simulator};
use lhr_trace::synth::{IrmConfig, SizeModel};
use lhr_util::bench::Bench;

fn main() {
    let trace = IrmConfig::new(2_000, 50_000)
        .zipf_alpha(0.9)
        .size_model(SizeModel::BoundedPareto {
            alpha: 1.2,
            min: 10_000,
            max: 10_000_000,
        })
        .seed(7)
        .generate();
    let capacity = 200_000_000u64; // ~4% of unique bytes
    let options = Options::default();

    let mut group = Bench::new("policy_requests");
    group.throughput_elems(trace.len() as u64);
    for factory in all_factories(&trace, options.seed) {
        group.bench(factory.name.clone(), || {
            let mut policy = (factory.build)(capacity);
            Simulator::new(SimConfig::default()).run(&mut policy, &trace)
        });
    }
    group.finish();
}
