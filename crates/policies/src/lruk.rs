//! LRU-K (O'Neil et al., SIGMOD '93): evict the object whose K-th most
//! recent reference is oldest. The paper evaluates LRU-4.
//!
//! Objects with fewer than K references have infinite backward K-distance
//! and are evicted first, LRU-ordered among themselves by their last
//! reference (the subsidiary policy recommended in the original paper).
//! Reference history is retained only for currently cached objects plus a
//! bounded pool of recently evicted ones, which is how practical
//! implementations bound the "retained information" the original algorithm
//! calls for.

use crate::util::ObjectTable;
use lhr_sim::{CachePolicy, Outcome};
use lhr_trace::{ObjectId, Request, Time};
use lhr_util::hash::FastMap;
use std::collections::{BTreeSet, VecDeque};

/// Eviction key: uncached-history objects sort before K-referenced ones,
/// then by the relevant timestamp (older = evicted first).
type EvictKey = (u8, Time, ObjectId);

#[derive(Debug)]
struct Entry {
    size: u64,
    /// Up to K most recent reference times; front = oldest.
    history: VecDeque<Time>,
    key: EvictKey,
}

/// The LRU-K policy.
#[derive(Debug)]
pub struct LruK {
    name: String,
    k: usize,
    capacity: u64,
    used: u64,
    entries: ObjectTable<Entry>,
    queue: BTreeSet<EvictKey>,
    /// History of objects no longer cached (id → reference times), bounded.
    retained: FastMap<ObjectId, VecDeque<Time>>,
    retained_order: VecDeque<ObjectId>,
    retained_limit: usize,
    evictions: u64,
}

impl LruK {
    /// An LRU-K cache. `k = 4` reproduces the paper's LRU-4 baseline.
    pub fn new(capacity: u64, k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        LruK {
            name: format!("LRU-{k}"),
            k,
            capacity,
            used: 0,
            entries: ObjectTable::new(),
            queue: BTreeSet::new(),
            retained: FastMap::default(),
            retained_order: VecDeque::new(),
            retained_limit: 65_536,
            evictions: 0,
        }
    }

    fn key_for(k: usize, id: ObjectId, history: &VecDeque<Time>) -> EvictKey {
        if history.len() >= k {
            // K-th most recent reference = front of the deque.
            (1, *history.front().expect("non-empty"), id)
        } else {
            // Fewer than K references: LRU by last (most recent) reference.
            (0, *history.back().expect("non-empty"), id)
        }
    }

    fn touch(&mut self, id: ObjectId, ts: Time) {
        // One probe: the slot's entry is updated in place.
        let k = self.k;
        let entry = self.entries.get_mut(id).expect("cached");
        self.queue.remove(&entry.key);
        entry.history.push_back(ts);
        if entry.history.len() > k {
            entry.history.pop_front();
        }
        let key = Self::key_for(k, id, &entry.history);
        entry.key = key;
        self.queue.insert(key);
    }

    fn evict_one(&mut self) {
        let key = *self
            .queue
            .iter()
            .next()
            .expect("queue empty while cache full");
        self.queue.remove(&key);
        let id = key.2;
        let entry = self.entries.remove(id).expect("queued but not cached");
        self.used -= entry.size;
        self.evictions += 1;
        self.retain_history(id, entry.history);
    }

    fn retain_history(&mut self, id: ObjectId, history: VecDeque<Time>) {
        if self.retained.insert(id, history).is_none() {
            self.retained_order.push_back(id);
        }
        while self.retained.len() > self.retained_limit {
            let old = self.retained_order.pop_front().expect("non-empty");
            self.retained.remove(&old);
        }
    }
}

impl CachePolicy for LruK {
    fn name(&self) -> &str {
        &self.name
    }
    fn capacity(&self) -> u64 {
        self.capacity
    }
    fn used_bytes(&self) -> u64 {
        self.used
    }
    fn contains(&self, id: ObjectId) -> bool {
        self.entries.contains_key(id)
    }

    fn handle(&mut self, req: &Request) -> Outcome {
        if self.entries.contains_key(req.id) {
            self.touch(req.id, req.ts);
            return Outcome::Hit;
        }
        if req.size > self.capacity {
            return Outcome::MissBypassed;
        }
        while self.used + req.size > self.capacity {
            self.evict_one();
        }
        // Resume any retained history.
        let mut history = self.retained.remove(&req.id).unwrap_or_default();
        history.push_back(req.ts);
        while history.len() > self.k {
            history.pop_front();
        }
        let key = Self::key_for(self.k, req.id, &history);
        self.entries.insert(
            req.id,
            Entry {
                size: req.size,
                history,
                key,
            },
        );
        self.queue.insert(key);
        self.used += req.size;
        Outcome::MissAdmitted
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }

    fn metadata_overhead_bytes(&self) -> u64 {
        ((self.entries.len() + self.retained.len()) * (48 + self.k * 8)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhr_trace::Time;

    fn req(t: u64, id: ObjectId, size: u64) -> Request {
        Request::new(Time::from_secs(t), id, size)
    }

    #[test]
    fn single_reference_objects_evicted_first() {
        let mut c = LruK::new(300, 2);
        c.handle(&req(0, 1, 100));
        c.handle(&req(1, 1, 100)); // object 1 now has 2 references
        c.handle(&req(2, 2, 100)); // 1 reference
        c.handle(&req(3, 3, 100)); // 1 reference
        c.handle(&req(4, 4, 100)); // must evict 2 (oldest single-ref), not 1
        assert!(c.contains(1), "multi-referenced object was evicted");
        assert!(!c.contains(2));
    }

    #[test]
    fn evicts_oldest_kth_reference() {
        let mut c = LruK::new(200, 2);
        // Object 1: refs at t=0,1 → 2nd-most-recent = 0.
        c.handle(&req(0, 1, 100));
        c.handle(&req(1, 1, 100));
        // Object 2: refs at t=2,3 → 2nd-most-recent = 2.
        c.handle(&req(2, 2, 100));
        c.handle(&req(3, 2, 100));
        // Admit 3: object 1 has the older K-distance → evicted.
        c.handle(&req(4, 3, 100));
        assert!(!c.contains(1));
        assert!(c.contains(2));
    }

    #[test]
    fn retained_history_survives_eviction() {
        let mut c = LruK::new(200, 2);
        c.handle(&req(0, 1, 100));
        c.handle(&req(1, 1, 100)); // two refs
        c.handle(&req(2, 2, 100));
        c.handle(&req(3, 3, 100)); // evicts 2 (single ref)
        assert!(!c.contains(2));
        // Re-admitting 2 resumes its history: now 2 refs (t=2 and t=10).
        c.handle(&req(10, 2, 100)); // evicts 3 (single-ref) to make room
        assert!(c.contains(2));
        // Object 2 should now rank as a 2-referenced object.
        let e = c.entries.get(2).expect("cached");
        assert_eq!(e.history.len(), 2);
        assert_eq!(e.key.0, 1);
    }

    #[test]
    fn capacity_respected_with_mixed_sizes() {
        let mut c = LruK::new(1_000, 4);
        for i in 0..200u64 {
            c.handle(&req(i, i % 17, 150));
            assert!(c.used_bytes() <= 1_000);
        }
    }

    #[test]
    fn k1_behaves_like_lru() {
        use crate::lru::Lru;
        let mut a = LruK::new(300, 1);
        let mut b = Lru::new(300);
        for (t, id) in [(0u64, 1u64), (1, 2), (2, 3), (3, 1), (4, 4), (5, 2), (6, 5)] {
            let r = req(t, id, 100);
            assert_eq!(
                a.handle(&r).is_hit(),
                b.handle(&r).is_hit(),
                "diverged at t={t}"
            );
        }
    }
}
