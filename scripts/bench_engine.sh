#!/usr/bin/env bash
# Records the sharded-engine scaling baseline into BENCH_engine.json (one
# `engine_scaling` JSON line for the medium trace: requests/sec at 1, 2,
# and 8 worker threads plus the t8/t1 speedup). The summary also records
# `host_cpus` — scaling beyond that core count is physically impossible, so
# judge `speedup_t8` against it (a 1-CPU container honestly reports ~1x).
# Re-run after any change to the engine or serving hot path and commit the
# refreshed file.
#
# Usage: scripts/bench_engine.sh [output-file]
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_engine.json}"

cargo build --release --offline -p lhr-bench --bin engine

: > "$out"
echo "==> engine bench, scale=medium"
LHR_BENCH_JSON="$out" \
  cargo run --release --offline -p lhr-bench --bin engine -- --scale medium

echo "wrote $out"
