//! Parallel simulation grids.
//!
//! The paper's figures sweep policies × cache sizes × traces. Individual
//! simulations are single-threaded and independent, so the sweep fans them
//! out over scoped threads (CPU-bound work ⇒ plain threads, not an async
//! runtime).

use crate::engine::{SimConfig, SimResult, Simulator};
use crate::policy::CachePolicy;
use lhr_obs::Obs;
use lhr_trace::Trace;

/// A named policy constructor: given a capacity in bytes, builds a fresh
/// policy instance.
pub struct PolicyFactory {
    /// Display name used in result tables.
    pub name: String,
    /// Builds the policy for a given capacity.
    pub build: Box<dyn Fn(u64) -> Box<dyn CachePolicy> + Sync>,
}

impl PolicyFactory {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        build: impl Fn(u64) -> Box<dyn CachePolicy> + Sync + 'static,
    ) -> Self {
        PolicyFactory {
            name: name.into(),
            build: Box::new(build),
        }
    }
}

/// One cell of a sweep: which policy, trace, and capacity to run.
#[derive(Debug, Clone, Copy)]
pub struct Cell<'a> {
    /// Index into the factory list.
    pub policy: usize,
    /// The trace to replay.
    pub trace: &'a Trace,
    /// Cache capacity in bytes.
    pub capacity: u64,
}

/// Runs every `(policy, trace, capacity)` combination, in parallel across
/// `threads` workers, preserving input order in the result vector.
pub fn run_grid(
    factories: &[PolicyFactory],
    cells: &[Cell<'_>],
    config: &SimConfig,
    threads: usize,
) -> Vec<SimResult> {
    run_grid_obs(factories, cells, config, threads, None)
}

/// [`run_grid`] with an optional observability recorder. Each worker gets a
/// private shard recorder (the [`crate::shard`] pattern — a `SpanTree`
/// assumes one thread per recorder) and wraps every cell it claims in a
/// `sweep.cell` span; the shards are absorbed into `obs` in worker order
/// once the scope ends. All workers share the single span path, so the
/// merged span count is exactly `cells.len()` and — in deterministic mode —
/// the export is byte-identical at any thread count even though *which*
/// worker ran a given cell is a race.
pub fn run_grid_obs(
    factories: &[PolicyFactory],
    cells: &[Cell<'_>],
    config: &SimConfig,
    threads: usize,
    obs: Option<&Obs>,
) -> Vec<SimResult> {
    assert!(threads > 0, "need at least one worker");
    let workers = threads.min(cells.len().max(1));
    let worker_obs: Vec<Obs> = match obs {
        Some(master) => (0..workers)
            .map(|_| Obs::new(master.config().clone()))
            .collect(),
        None => Vec::new(),
    };
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut results: Vec<Option<SimResult>> = (0..cells.len()).map(|_| None).collect();
    // Workers claim cells off a shared counter and send `(index, result)`
    // back over a channel; the scope's owning thread reorders into the
    // input-order result vector (no per-slot locks).
    let (tx, rx) = std::sync::mpsc::channel::<(usize, SimResult)>();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let wo = worker_obs.get(w);
            scope.spawn(move || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(cell) = cells.get(i) else { break };
                let _cell_span = wo.map(|o| o.span("sweep.cell"));
                let factory = &factories[cell.policy];
                let mut policy = (factory.build)(cell.capacity);
                let result = Simulator::new(config.clone()).run(&mut policy, cell.trace);
                tx.send((i, result)).expect("receiver outlives the scope");
            });
        }
        drop(tx); // the iterator below ends once every worker is done
        for (i, result) in rx {
            results[i] = Some(result);
        }
    });

    if let Some(master) = obs {
        master.absorb_shards(&worker_obs);
        master.counter_add("sweep.cells", cells.len() as u64);
    }

    results
        .into_iter()
        .map(|r| r.expect("every cell ran"))
        .collect()
}

/// Sweeps one policy over several capacities on one trace — the common
/// "hit ratio vs cache size" curve.
pub fn capacity_sweep(
    factory: &PolicyFactory,
    trace: &Trace,
    capacities: &[u64],
    config: &SimConfig,
    threads: usize,
) -> Vec<SimResult> {
    let factories = std::slice::from_ref(factory);
    let cells: Vec<Cell<'_>> = capacities
        .iter()
        .map(|&capacity| Cell {
            policy: 0,
            trace,
            capacity,
        })
        .collect();
    run_grid(factories, &cells, config, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Outcome;
    use lhr_trace::{ObjectId, Request, Time};
    use std::collections::HashSet;

    /// Cache-everything-until-full policy (no eviction) for sweep tests.
    struct FillOnce {
        capacity: u64,
        used: u64,
        cached: HashSet<ObjectId>,
    }

    impl CachePolicy for FillOnce {
        fn name(&self) -> &str {
            "fill-once"
        }
        fn capacity(&self) -> u64 {
            self.capacity
        }
        fn used_bytes(&self) -> u64 {
            self.used
        }
        fn contains(&self, id: ObjectId) -> bool {
            self.cached.contains(&id)
        }
        fn handle(&mut self, req: &Request) -> Outcome {
            if self.cached.contains(&req.id) {
                return Outcome::Hit;
            }
            if self.used + req.size <= self.capacity {
                self.cached.insert(req.id);
                self.used += req.size;
                Outcome::MissAdmitted
            } else {
                Outcome::MissBypassed
            }
        }
    }

    fn trace() -> Trace {
        let mut t = Trace::new("cycle");
        for i in 0..300u64 {
            t.push(Request::new(Time::from_secs(i), i % 3, 100));
        }
        t
    }

    fn factory() -> PolicyFactory {
        PolicyFactory::new("fill-once", |capacity| {
            Box::new(FillOnce {
                capacity,
                used: 0,
                cached: HashSet::new(),
            })
        })
    }

    #[test]
    fn capacity_sweep_is_monotone_for_fill_once() {
        let t = trace();
        let results = capacity_sweep(&factory(), &t, &[100, 200, 300], &SimConfig::default(), 2);
        assert_eq!(results.len(), 3);
        let ratios: Vec<f64> = results
            .iter()
            .map(|r| r.metrics.object_hit_ratio())
            .collect();
        assert!(ratios[0] < ratios[1] && ratios[1] < ratios[2], "{ratios:?}");
    }

    #[test]
    fn grid_preserves_order() {
        let t = trace();
        let factories = vec![factory(), factory()];
        let cells = vec![
            Cell {
                policy: 0,
                trace: &t,
                capacity: 100,
            },
            Cell {
                policy: 1,
                trace: &t,
                capacity: 300,
            },
        ];
        let results = run_grid(&factories, &cells, &SimConfig::default(), 4);
        assert_eq!(results.len(), 2);
        assert!(results[0].metrics.object_hit_ratio() < results[1].metrics.object_hit_ratio());
    }

    #[test]
    fn single_thread_works() {
        let t = trace();
        let results = capacity_sweep(&factory(), &t, &[300], &SimConfig::default(), 1);
        assert_eq!(results.len(), 1);
    }

    #[test]
    fn empty_cells_is_fine() {
        let results = run_grid(&[], &[], &SimConfig::default(), 2);
        assert!(results.is_empty());
    }

    /// One `sweep.cell` span per cell, and a deterministic-mode export that
    /// is byte-identical regardless of how many workers raced for cells.
    #[test]
    fn grid_obs_is_thread_count_invariant() {
        use lhr_obs::{Obs, ObsConfig};
        let t = trace();
        let factories = vec![factory(), factory()];
        let cells: Vec<Cell<'_>> = (0..6)
            .map(|i| Cell {
                policy: i % 2,
                trace: &t,
                capacity: 100 + 50 * i as u64,
            })
            .collect();
        let config = ObsConfig {
            deterministic: true,
            ..ObsConfig::default()
        };
        let export = |threads: usize| {
            let obs = Obs::new(config.clone());
            run_grid_obs(
                &factories,
                &cells,
                &SimConfig::default(),
                threads,
                Some(&obs),
            );
            obs.to_jsonl()
        };
        let one = export(1);
        assert!(one.contains("sweep.cell"), "{one}");
        assert!(one.contains("sweep.cells"), "{one}");
        assert_eq!(one, export(4));
        assert_eq!(one, export(8));
    }
}
