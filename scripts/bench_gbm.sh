#!/usr/bin/env bash
# Records the GBM training/prediction baseline into BENCH_gbm.json (one
# JSON line per bench group, small + medium scales). Groups cover fit,
# the quantized serving path (gbm_predict_batch — the trajectory group),
# and the per-path attribution benches (reference walk, single-row,
# raw blocked batch), plus a gbm_predict_summary line that records
# host_cpus so numbers are always read against the hardware that
# produced them. Re-run after any change to the lhr-gbm hot path and
# commit the refreshed file so the perf trajectory stays in history.
#
# Usage: scripts/bench_gbm.sh [output-file]
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_gbm.json}"

cargo build --release --offline -p lhr-bench --bin gbm

: > "$out"
for scale in small medium; do
  echo "==> gbm bench, scale=$scale"
  LHR_BENCH_JSON="$out" \
    cargo run --release --offline -p lhr-bench --bin gbm -- --scale "$scale"
done

echo "wrote $out"
