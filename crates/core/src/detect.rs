//! The detection mechanism (§5.2.2, Appendix A.2): a least-squares estimate
//! of the window's Zipf exponent α; the learning model is retrained only
//! when α shifts by at least ε between consecutive windows.

use crate::window::WindowData;

/// Least-squares fit of `log p_i = log A − α log i` over a window's
/// rank-frequency data. Returns `(alpha, log_a)`; `alpha` is the estimated
/// Zipf exponent. Complexity O(N log N) for the rank sort, O(N) for the
/// fit (the paper quotes O(N) assuming counts are already ranked).
pub fn estimate_zipf_alpha(counts: &mut Vec<u32>) -> (f64, f64) {
    counts.sort_unstable_by(|a, b| b.cmp(a));
    if counts.len() < 2 {
        return (0.0, 0.0);
    }
    let total: f64 = counts.iter().map(|&c| c as f64).sum();
    // Empirical counts in the tail are dominated by sampling noise (ranks
    // whose expected count is below ~3 observe 0/1/2 essentially at
    // random), which both biases the slope and inflates its window-to-
    // window variance — fatal for a change detector. Fit only the head
    // where counts are statistically meaningful, unless that leaves too
    // few points.
    let head = counts.partition_point(|&c| c >= 3);
    let fit = if head >= 10 {
        &counts[..head]
    } else {
        &counts[..]
    };
    // x = ln(rank), y = ln(share).
    let n = fit.len() as f64;
    let mut sx = 0.0;
    let mut sy = 0.0;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (i, &c) in fit.iter().enumerate() {
        let x = ((i + 1) as f64).ln();
        let y = (c as f64 / total).ln();
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return (0.0, 0.0);
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    (-slope, intercept)
}

/// The detector: holds the previous window's α and decides when the model
/// must be retrained.
#[derive(Debug, Clone)]
pub struct ZipfDetector {
    /// Retraining threshold ε on |α_k − α_{k−1}|.
    pub epsilon: f64,
    prev_alpha: Option<f64>,
    /// Number of windows flagged for retraining.
    pub detections: u64,
    /// Number of windows examined.
    pub windows: u64,
}

impl ZipfDetector {
    /// A detector with threshold `epsilon`.
    pub fn new(epsilon: f64) -> Self {
        ZipfDetector {
            epsilon,
            prev_alpha: None,
            detections: 0,
            windows: 0,
        }
    }

    /// Estimates α for `window` and reports whether the request pattern
    /// changed enough to warrant retraining. The first window always
    /// triggers (there is no model yet).
    pub fn observe(&mut self, window: &WindowData) -> DetectOutcome {
        let mut counts: Vec<u32> = window.counts.values().copied().collect();
        let (alpha, _) = estimate_zipf_alpha(&mut counts);
        self.windows += 1;
        let changed = match self.prev_alpha {
            None => true,
            Some(prev) => (alpha - prev).abs() >= self.epsilon,
        };
        self.prev_alpha = Some(alpha);
        if changed {
            self.detections += 1;
        }
        DetectOutcome {
            alpha,
            retrain: changed,
        }
    }
}

/// Result of examining one window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectOutcome {
    /// Estimated Zipf exponent of the window.
    pub alpha: f64,
    /// Whether the model should be retrained.
    pub retrain: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhr_trace::synth::zipf::zipf_pmf;
    use lhr_trace::Time;
    use lhr_util::hash::FastMap;

    fn window_with_counts(counts: &[u32]) -> WindowData {
        let mut map = FastMap::default();
        for (i, &c) in counts.iter().enumerate() {
            map.insert(i as u64, c);
        }
        WindowData {
            index: 0,
            requests: Vec::new(),
            counts: map,
            unique_bytes: 0,
            span: (Time::ZERO, Time::from_secs(1)),
        }
    }

    /// Ideal Zipf counts for n contents and R requests.
    fn ideal_counts(n: usize, alpha: f64, requests: f64) -> Vec<u32> {
        zipf_pmf(n, alpha)
            .iter()
            .map(|p| (p * requests).round().max(1.0) as u32)
            .collect()
    }

    #[test]
    fn recovers_alpha_on_ideal_data() {
        for &alpha in &[0.5, 0.8, 1.1] {
            let mut counts = ideal_counts(500, alpha, 1e6);
            let (est, _) = estimate_zipf_alpha(&mut counts);
            assert!((est - alpha).abs() < 0.05, "alpha {alpha}: estimated {est}");
        }
    }

    #[test]
    fn uniform_counts_give_zero_alpha() {
        let mut counts = vec![10u32; 100];
        let (est, _) = estimate_zipf_alpha(&mut counts);
        assert!(est.abs() < 1e-9, "estimated {est}");
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(estimate_zipf_alpha(&mut vec![]), (0.0, 0.0));
        assert_eq!(estimate_zipf_alpha(&mut vec![5]), (0.0, 0.0));
    }

    #[test]
    fn first_window_always_retrains() {
        let mut d = ZipfDetector::new(0.05);
        let out = d.observe(&window_with_counts(&ideal_counts(100, 0.8, 1e5)));
        assert!(out.retrain);
        assert_eq!(d.detections, 1);
    }

    #[test]
    fn stable_alpha_suppresses_retraining() {
        let mut d = ZipfDetector::new(0.05);
        let counts = ideal_counts(200, 0.9, 1e5);
        d.observe(&window_with_counts(&counts));
        let out = d.observe(&window_with_counts(&counts));
        assert!(!out.retrain, "identical window triggered retraining");
        assert_eq!(d.detections, 1);
    }

    #[test]
    fn alpha_shift_triggers_retraining() {
        let mut d = ZipfDetector::new(0.05);
        d.observe(&window_with_counts(&ideal_counts(200, 0.7, 1e5)));
        let out = d.observe(&window_with_counts(&ideal_counts(200, 1.1, 1e5)));
        assert!(out.retrain, "α 0.7 → 1.1 went undetected");
        assert!((out.alpha - 1.1).abs() < 0.1);
    }

    #[test]
    fn detection_accuracy_on_noisy_synthetic_shifts() {
        // Appendix A.2-style check: alternate α between 0.7 and 1.1 with
        // sampled (noisy) counts; the detector must flag ≥ 90% of true
        // shifts and not fire on repeats of the same α.
        use lhr_trace::synth::ZipfSampler;
        use lhr_util::rng::rngs::StdRng;
        use lhr_util::rng::SeedableRng;

        let mut rng = StdRng::seed_from_u64(1);
        let sample_counts = |alpha: f64, rng: &mut StdRng| {
            let s = ZipfSampler::new(300, alpha);
            let mut counts = vec![0u32; 300];
            for _ in 0..50_000 {
                counts[s.sample(rng)] += 1;
            }
            counts.retain(|&c| c > 0);
            counts
        };
        let mut d = ZipfDetector::new(0.1);
        let alphas = [0.7, 0.7, 1.1, 1.1, 0.7, 1.1, 0.7, 0.7, 1.1];
        let mut correct = 0;
        let mut total = 0;
        let mut prev: Option<f64> = None;
        for &a in &alphas {
            let out = d.observe(&window_with_counts(&sample_counts(a, &mut rng)));
            if let Some(p) = prev {
                let truly_changed = (a - p).abs() > 1e-9;
                total += 1;
                if out.retrain == truly_changed {
                    correct += 1;
                }
            }
            prev = Some(a);
        }
        assert!(
            correct as f64 / total as f64 >= 0.85,
            "accuracy {correct}/{total}"
        );
    }
}
