//! Future-request indexing shared by the offline bounds.

use lhr_trace::Trace;
use std::collections::HashMap;

/// Sentinel meaning "never requested again".
pub const NEVER: u64 = u64::MAX;

/// For each request index `i`, the index of the *next* request for the same
/// object, or [`NEVER`]. Computed in one backward pass.
pub fn next_use_indices(trace: &Trace) -> Vec<u64> {
    let mut next = vec![NEVER; trace.len()];
    let mut last_seen: HashMap<u64, u64> = HashMap::new();
    for (i, req) in trace.iter().enumerate().rev() {
        if let Some(&later) = last_seen.get(&req.id) {
            next[i] = later;
        }
        last_seen.insert(req.id, i as u64);
    }
    next
}

/// All reuse intervals of a trace: `(start index, end index, size)` for each
/// consecutive pair of requests to the same object. Caching the object over
/// `[start, end)` turns request `end` into a hit.
pub fn reuse_intervals(trace: &Trace) -> Vec<(u64, u64, u64)> {
    let next = next_use_indices(trace);
    let mut intervals = Vec::new();
    for (i, req) in trace.iter().enumerate() {
        if next[i] != NEVER {
            intervals.push((i as u64, next[i], req.size));
        }
    }
    intervals
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhr_trace::{Request, Time};

    fn trace() -> Trace {
        // ids: a b a c b a
        let ids = [1u64, 2, 1, 3, 2, 1];
        Trace::from_requests(
            "t",
            ids.iter()
                .enumerate()
                .map(|(i, &id)| Request::new(Time::from_secs(i as u64), id, 10 * id))
                .collect(),
        )
    }

    #[test]
    fn next_use_is_correct() {
        let next = next_use_indices(&trace());
        assert_eq!(next, vec![2, 4, 5, NEVER, NEVER, NEVER]);
    }

    #[test]
    fn reuse_intervals_cover_every_rerequest() {
        let intervals = reuse_intervals(&trace());
        assert_eq!(intervals, vec![(0, 2, 10), (1, 4, 20), (2, 5, 10)]);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new("e");
        assert!(next_use_indices(&t).is_empty());
        assert!(reuse_intervals(&t).is_empty());
    }
}
