//! Hyperbolic caching (Blankstein, Sen & Freedman, ATC '17).
//!
//! Each cached object carries the priority `p_i = n_i / (s_i · a_i)` where
//! `n_i` is its request count since admission, `a_i` its age since
//! admission, and `s_i` its size (the cost/size-aware variant). Priorities
//! decay continuously, so no queue can index them; like the original
//! system, eviction samples a handful of candidates and evicts the
//! smallest-priority one.

use lhr_sim::{CachePolicy, Outcome};
use lhr_trace::{ObjectId, Request, Time};
use lhr_util::hash::FastMap;
use lhr_util::rng::rngs::SmallRng;
use lhr_util::rng::{Rng, SeedableRng};

/// Eviction candidate sample size (the paper finds 64 indistinguishable
/// from exact).
const SAMPLE: usize = 64;

#[derive(Debug, Clone, Copy)]
struct Entry {
    size: u64,
    admitted: Time,
    hits: u64,
}

/// The hyperbolic caching policy.
#[derive(Debug)]
pub struct Hyperbolic {
    capacity: u64,
    used: u64,
    entries: FastMap<ObjectId, Entry>,
    dense: Vec<ObjectId>,
    positions: FastMap<ObjectId, usize>,
    rng: SmallRng,
    evictions: u64,
}

impl Hyperbolic {
    /// An empty hyperbolic cache of `capacity` bytes.
    pub fn new(capacity: u64, seed: u64) -> Self {
        Hyperbolic {
            capacity,
            used: 0,
            entries: FastMap::default(),
            dense: Vec::new(),
            positions: FastMap::default(),
            rng: SmallRng::seed_from_u64(seed),
            evictions: 0,
        }
    }

    fn priority(entry: &Entry, now: Time) -> f64 {
        let age = now.saturating_sub(entry.admitted).as_secs_f64().max(1e-6);
        entry.hits as f64 / (entry.size as f64 * age)
    }

    fn evict_one(&mut self, now: Time) {
        let n = self.dense.len();
        debug_assert!(n > 0);
        let mut victim: Option<(f64, ObjectId)> = None;
        // Sampling with replacement only pays off above the sample size;
        // below it, scanning everything is both cheaper and exact.
        for i in 0..SAMPLE.min(n) {
            let id = if n <= SAMPLE {
                self.dense[i]
            } else {
                self.dense[self.rng.gen_range(0..n)]
            };
            let p = Self::priority(&self.entries[&id], now);
            if victim.is_none_or(|(vp, _)| p < vp) {
                victim = Some((p, id));
            }
        }
        let id = victim.expect("k >= 1").1;
        let entry = self.entries.remove(&id).expect("sampled");
        self.used -= entry.size;
        let pos = self.positions.remove(&id).expect("indexed");
        self.dense.swap_remove(pos);
        if pos < self.dense.len() {
            self.positions.insert(self.dense[pos], pos);
        }
        self.evictions += 1;
    }
}

impl CachePolicy for Hyperbolic {
    fn name(&self) -> &str {
        "Hyperbolic"
    }
    fn capacity(&self) -> u64 {
        self.capacity
    }
    fn used_bytes(&self) -> u64 {
        self.used
    }
    fn contains(&self, id: ObjectId) -> bool {
        self.entries.contains_key(&id)
    }

    fn handle(&mut self, req: &Request) -> Outcome {
        if let Some(entry) = self.entries.get_mut(&req.id) {
            entry.hits += 1;
            return Outcome::Hit;
        }
        if req.size > self.capacity {
            return Outcome::MissBypassed;
        }
        while self.used + req.size > self.capacity {
            self.evict_one(req.ts);
        }
        self.entries.insert(
            req.id,
            Entry {
                size: req.size,
                admitted: req.ts,
                hits: 1,
            },
        );
        self.positions.insert(req.id, self.dense.len());
        self.dense.push(req.id);
        self.used += req.size;
        Outcome::MissAdmitted
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }

    fn metadata_overhead_bytes(&self) -> u64 {
        self.entries.len() as u64 * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(t: u64, id: ObjectId, size: u64) -> Request {
        Request::new(Time::from_secs(t), id, size)
    }

    #[test]
    fn hot_objects_survive() {
        let mut c = Hyperbolic::new(300, 1);
        for t in 0..30 {
            c.handle(&req(t, 1, 100)); // high frequency
        }
        c.handle(&req(30, 2, 100));
        c.handle(&req(31, 3, 100));
        c.handle(&req(40, 4, 100)); // must evict 2 or 3, not 1
        assert!(c.contains(1));
    }

    #[test]
    fn small_objects_preferred_at_equal_rate() {
        let mut c = Hyperbolic::new(1_000, 2);
        c.handle(&req(0, 1, 800)); // large
        c.handle(&req(1, 2, 100)); // small
                                   // Same frequency/age profile; admitting 3 (200 B) must evict the
                                   // large low-density object.
        c.handle(&req(2, 3, 200));
        assert!(!c.contains(1));
        assert!(c.contains(2));
    }

    #[test]
    fn capacity_respected() {
        let mut c = Hyperbolic::new(1_000, 3);
        for i in 0..500u64 {
            c.handle(&req(i, i % 31, 90));
            assert!(c.used_bytes() <= 1_000);
        }
        assert!(c.evictions() > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut c = Hyperbolic::new(500, seed);
            (0..1_000u64)
                .filter(|&i| c.handle(&req(i, i % 17, 100)).is_hit())
                .count()
        };
        assert_eq!(run(7), run(7));
    }
}
