//! **LHR — Learning from optimal caching for content delivery** (CoNEXT '21).
//!
//! This crate implements the paper's two contributions:
//!
//! 1. [`hazard::Hro`] — a practical *online* upper bound on the optimal hit
//!    probability. Per non-overlapping sliding window, each content's
//!    request process is approximated as Poisson, giving a size-aware
//!    hazard rate `ζ̃_i = λ_i / s_i`; requests to the contents with the top
//!    hazard rates (filling the cache under the fractional-knapsack
//!    relaxation) are classified as hits (§3, Appendix A.1).
//! 2. [`cache::LhrCache`] — a learning-augmented cache that trains a
//!    gradient-boosted model to imitate HRO's decisions, producing a
//!    per-content *admission probability* `p_i` used for both admission
//!    (against an auto-tuned threshold δ, §5.2.3) and eviction (rule
//!    `q_i = p_i / (s_i · IRT₁)`, §5.2.5), with a least-squares Zipf-α
//!    *detection mechanism* gating retraining (§5.2.2).
//!
//! The ablations the paper evaluates in §7.4 are configuration presets:
//! [`cache::LhrConfig::d_lhr`] (fixed δ = 0.5) and
//! [`cache::LhrConfig::n_lhr`] (fixed δ and no detection — retrain every
//! window).
//!
//! # Quick start
//!
//! ```
//! use lhr::cache::{LhrCache, LhrConfig};
//! use lhr_sim::{SimConfig, Simulator};
//! use lhr_trace::synth::IrmConfig;
//!
//! let trace = IrmConfig::new(500, 20_000).zipf_alpha(1.0).seed(7).generate();
//! let mut cache = LhrCache::new(64 << 20, LhrConfig::default());
//! let result = Simulator::new(SimConfig::default()).run(&mut cache, &trace);
//! assert!(result.metrics.object_hit_ratio() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod detect;
pub mod features;
pub mod hazard;
mod retrain;
pub mod threshold;
pub mod window;

pub use cache::{LhrCache, LhrConfig};
pub use hazard::Hro;
