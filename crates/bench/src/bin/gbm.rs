//! GBM training/prediction microbenchmark binary — the perf-trajectory
//! companion to `benches/gbm.rs`, runnable via plain `cargo run` so
//! `scripts/verify.sh` (smoke) and `scripts/bench_gbm.sh` (baseline
//! recording) can drive it:
//!
//! ```text
//! cargo run --release -p lhr-bench --bin gbm -- --scale medium
//! ```
//!
//! Measures `Gbm::fit` with one thread and with `--threads` workers, plus
//! `Gbm::predict_batch` throughput, at a per-scale row count. Set
//! `LHR_BENCH_JSON=<path>` to append machine-readable results (the format
//! committed as `BENCH_gbm.json`).

use lhr_gbm::{Dataset, Gbm, GbmParams};
use lhr_trace::synth::ProductionScale;
use lhr_util::bench::{black_box, Bench};
use lhr_util::rng::rngs::StdRng;
use lhr_util::rng::{Rng, SeedableRng};

/// LHR-shaped synthetic training set: ~10% missing values, 23 features,
/// binary labels keyed on the first feature.
fn synthetic_dataset(rows: usize, features: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Dataset::new(features);
    for _ in 0..rows {
        let row: Vec<f32> = (0..features)
            .map(|_| {
                if rng.gen_bool(0.1) {
                    f32::NAN
                } else {
                    rng.gen::<f32>() * 10.0
                }
            })
            .collect();
        let label = if row[0].is_nan() || row[0] > 5.0 {
            1.0
        } else {
            0.0
        };
        data.push_row(&row, label);
    }
    data
}

fn main() {
    let options = lhr_bench::harness::Options::from_args();
    let rows = match options.scale {
        ProductionScale::Tiny => 2_048,
        ProductionScale::Small => 8_192,
        ProductionScale::Medium => 32_768,
        ProductionScale::Full => 131_072,
    };
    let data = synthetic_dataset(rows, 23, options.seed);
    let params = GbmParams {
        n_trees: 25,
        max_depth: 6,
        ..GbmParams::default()
    };

    let mut fit = Bench::new("gbm_fit");
    fit.throughput_elems(rows as u64);
    fit.bench(format!("{rows}_t1"), || {
        Gbm::fit(
            black_box(&data),
            &GbmParams {
                threads: 1,
                ..params.clone()
            },
        )
    });
    if options.threads > 1 {
        fit.bench(format!("{rows}_t{}", options.threads), || {
            Gbm::fit(
                black_box(&data),
                &GbmParams {
                    threads: options.threads,
                    ..params.clone()
                },
            )
        });
    }
    fit.finish();

    let model = Gbm::fit(&data, &params);
    let mut predict = Bench::new("gbm_predict_batch");
    predict.throughput_elems(rows as u64);
    predict.bench(format!("{rows}_t{}", options.threads), || {
        model.predict_dataset(black_box(&data), options.threads)
    });
    predict.finish();
}
