//! State-of-the-art caching policies used as baselines throughout the
//! paper's evaluation (§6.2, §7.3): the classic eviction algorithms (LRU,
//! FIFO, Random, LRU-K, LFU-DA, GDSF, ARC), admission-controlled designs
//! (AdaptSize, B-LRU, TinyLFU / W-TinyLFU), and the learning-augmented
//! SOTAs LHR is compared against (LRB, Hawkeye).
//!
//! Every policy implements [`lhr_sim::CachePolicy`] and obeys its contract:
//! capacity is never exceeded, objects larger than the cache are never
//! admitted, and behaviour is deterministic given construction parameters.
//!
//! # Example
//!
//! ```
//! use lhr_policies::Lru;
//! use lhr_sim::{CachePolicy, Outcome};
//! use lhr_trace::{Request, Time};
//!
//! let mut lru = Lru::new(250);
//! let a = Request::new(Time::from_secs(0), 1, 100);
//! let b = Request::new(Time::from_secs(1), 2, 100);
//! let c = Request::new(Time::from_secs(2), 3, 100);
//! assert_eq!(lru.handle(&a), Outcome::MissAdmitted);
//! assert_eq!(lru.handle(&b), Outcome::MissAdmitted);
//! assert_eq!(lru.handle(&c), Outcome::MissAdmitted); // evicts object 1
//! assert!(!lru.contains(1));
//! assert_eq!(lru.handle(&b), Outcome::Hit);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptsize;
pub mod arc;
pub mod basic;
pub mod blru;
pub mod gdsf;
pub mod hawkeye;
pub mod hyperbolic;
pub mod lfo;
pub mod lfuda;
pub mod lhd;
pub mod lrb;
pub mod lru;
pub mod lruk;
pub mod popcache;
pub mod rlcache;
pub mod slru;
pub mod tinylfu;
pub mod util;

pub use adaptsize::AdaptSize;
pub use arc::Arc;
pub use basic::{Fifo, RandomEviction};
pub use blru::BLru;
pub use gdsf::Gdsf;
pub use hawkeye::Hawkeye;
pub use hyperbolic::Hyperbolic;
pub use lfo::Lfo;
pub use lfuda::LfuDa;
pub use lhd::Lhd;
pub use lrb::Lrb;
pub use lru::Lru;
pub use lruk::LruK;
pub use popcache::PopCache;
pub use rlcache::RlCache;
pub use slru::{s4lru, slru, SegmentedLru};
pub use tinylfu::{TinyLfu, WTinyLfu};
