//! Fleet chaos suite: replays traces across the N-node consistent-hash
//! fleet under node-level fault presets and asserts the contract from
//! ARCHITECTURE.md — reports and obs exports byte-identical at any thread
//! count, availability above the analytic floor when a node is hard-down,
//! and failover that moves only the ring-adjacent key range.

use lhr_repro::core::cache::{LhrCache, LhrConfig};
use lhr_repro::obs::{Obs, ObsConfig};
use lhr_repro::policies::Lru;
use lhr_repro::proto::{FleetConfig, FleetEngine, FleetReport, HashRing, NodeFaultConfig};
use lhr_repro::sim::shard::shard_seed;
use lhr_repro::trace::{Request, Time, Trace};

const MB: u64 = 1 << 20;

/// A mixed synthetic trace with skewed popularity and varied sizes,
/// expanded deterministically from `seed` (xorshift, as in chaos.rs).
fn mixed_trace(n: u64, seed: u64) -> Trace {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut trace = Trace::new("mixed");
    for i in 0..n {
        let id = if next() % 2 == 0 {
            next() % 16
        } else {
            16 + next() % 400
        };
        let size = (id % 7 + 1) * 100_000;
        trace.push(Request::new(Time::from_secs(i), id, size));
    }
    trace
}

fn fleet_config(trace: &Trace, preset: &str) -> FleetConfig {
    let mut config = FleetConfig::new(48 * MB);
    config.node_faults =
        NodeFaultConfig::preset(preset, 7, config.n_nodes, trace.duration().as_secs_f64())
            .expect("known preset");
    config
}

fn replay_lru(
    mut config: FleetConfig,
    trace: &Trace,
    threads: usize,
    obs: Option<&Obs>,
) -> FleetReport {
    config.route.threads = threads;
    let mut engine = FleetEngine::new(config);
    if let Some(o) = obs {
        engine = engine.with_obs(o.clone());
    }
    engine.replay(trace, |_node, _shard, capacity, _obs| Lru::new(capacity))
}

fn replay_lhr(
    mut config: FleetConfig,
    trace: &Trace,
    threads: usize,
    obs: Option<&Obs>,
) -> FleetReport {
    config.route.threads = threads;
    let mut engine = FleetEngine::new(config);
    if let Some(o) = obs {
        engine = engine.with_obs(o.clone());
    }
    engine.replay(trace, |node, shard, capacity, _obs| {
        LhrCache::new(
            capacity,
            LhrConfig {
                seed: shard_seed(shard_seed(9, node), shard),
                min_window_requests: 64,
                ..LhrConfig::default()
            },
        )
    })
}

/// The determinism contract: report and obs export are byte-identical at
/// threads 1, 2 and 8 for every fault preset × policy combination.
#[test]
fn fleet_reports_and_obs_are_byte_identical_across_thread_counts() {
    let trace = mixed_trace(4_000, 23);
    for preset in ["none", "node-brownout", "node-churn"] {
        for policy in ["lru", "lhr"] {
            let run = |threads: usize| {
                let obs = Obs::new(ObsConfig {
                    deterministic: true,
                    ..ObsConfig::default()
                });
                let config = fleet_config(&trace, preset);
                let report = match policy {
                    "lru" => replay_lru(config, &trace, threads, Some(&obs)),
                    _ => replay_lhr(config, &trace, threads, Some(&obs)),
                };
                (report.stable_json(), obs.to_jsonl())
            };
            let (report1, obs1) = run(1);
            let (report2, obs2) = run(2);
            let (report8, obs8) = run(8);
            assert_eq!(report1, report2, "{preset}/{policy}: threads 1 vs 2");
            assert_eq!(report1, report8, "{preset}/{policy}: threads 1 vs 8");
            assert_eq!(obs1, obs2, "{preset}/{policy}: obs threads 1 vs 2");
            assert_eq!(obs1, obs8, "{preset}/{policy}: obs threads 1 vs 8");
        }
    }
}

/// With one of N nodes hard-down for the whole trace, ring-successor
/// failover keeps every request routable, so availability stays at or
/// above the analytic floor — the worst case where every request owned
/// by the dead node during its downtime is lost:
/// `100 × (1 − share_of_keyspace × down_fraction)`.
#[test]
fn fleet_availability_floor_holds_with_one_node_hard_down() {
    let trace = mixed_trace(4_000, 31);
    let duration = trace.duration().as_secs_f64();

    let calm = replay_lru(fleet_config(&trace, "none"), &trace, 2, None);

    let mut config = fleet_config(&trace, "none");
    config.node_faults = NodeFaultConfig {
        seed: 7,
        windows: vec![(0, 0.0, duration + 1.0)],
        cold_restart: false,
    };
    let down = replay_lru(config, &trace, 2, None);

    // The dead node's keyspace share, measured from the calm run.
    let total: u64 = calm.per_node_requests.iter().sum();
    let share = calm.per_node_requests[0] as f64 / total as f64;
    let floor = 100.0 * (1.0 - share);
    assert!(
        down.availability_pct >= floor,
        "availability {:.3}% below analytic floor {:.3}%",
        down.availability_pct,
        floor
    );
    // Failover actually routes around the dead node: nothing unroutable,
    // no node-loss errors (the origin is healthy in this scenario).
    assert_eq!(down.unrouted, 0, "three live nodes must cover the keyspace");
    assert!(down.failovers > 0, "the dead node's keys must fail over");
    assert_eq!(
        down.per_node_requests[0], 0,
        "a hard-down node serves nothing"
    );
    assert!(
        down.availability_pct >= 99.9,
        "failover should keep availability near-perfect, got {:.3}%",
        down.availability_pct
    );
    // Offload degrades gracefully, not catastrophically: the surviving
    // nodes absorb the dead node's working set at reduced per-key capacity.
    assert!(
        down.origin_offload_pct >= calm.origin_offload_pct - 25.0,
        "offload collapsed: calm {:.2}% vs down {:.2}%",
        calm.origin_offload_pct,
        down.origin_offload_pct
    );

    // The node-brownout preset (1 of 4 nodes down for the middle 30 % of
    // the trace, warm rejoin) meets the same floor with its partial down
    // fraction, and keeps offload within the graceful-degradation band.
    let brown = replay_lru(fleet_config(&trace, "node-brownout"), &trace, 2, None);
    let browned = brown
        .per_node_requests
        .iter()
        .zip(&calm.per_node_requests)
        .position(|(b, c)| b < c)
        .expect("one node must have lost traffic to the brownout");
    let share = calm.per_node_requests[browned] as f64 / total as f64;
    let floor = 100.0 * (1.0 - share * 0.3);
    assert!(
        brown.availability_pct >= floor,
        "brownout availability {:.3}% below analytic floor {:.3}%",
        brown.availability_pct,
        floor
    );
    assert_eq!(brown.unrouted, 0);
    assert!(brown.failovers > 0, "brownout must trigger failovers");
    assert!(
        brown.origin_offload_pct >= calm.origin_offload_pct - 25.0,
        "brownout offload collapsed: calm {:.2}% vs brownout {:.2}%",
        calm.origin_offload_pct,
        brown.origin_offload_pct
    );
}

/// Consistent hashing's bounded-rehash property, end to end: taking one
/// node down moves only the keys that node owned — every other key keeps
/// its primary owner.
#[test]
fn fleet_failover_moves_only_the_ring_adjacent_range() {
    let ring = HashRing::new(5, 64);
    for dead in 0..5usize {
        let mut moved = 0u32;
        for id in 0..10_000u64 {
            let primary = ring.primary(id);
            let rerouted = ring.node_for(id, |n| n != dead).expect("4 of 5 live");
            if primary == dead {
                assert_ne!(rerouted, dead, "id {id} routed to the dead node");
                moved += 1;
            } else {
                assert_eq!(
                    rerouted, primary,
                    "id {id}: losing node {dead} must not move keys owned by node {primary}"
                );
            }
        }
        assert!(moved > 0, "node {dead} owned no keys at all");
    }
}
