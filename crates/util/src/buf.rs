//! Little-endian byte-buffer helpers for the binary trace format.
//!
//! A `Vec<u8>`-backed replacement for the slice of the `bytes` crate API
//! the workspace used: an append-only [`BytesMut`] writer and a [`Buf`]
//! reader trait implemented for `&[u8]` that consumes from the front.
//!
//! # Example
//!
//! ```
//! use lhr_util::buf::{Buf, BytesMut};
//!
//! let mut w = BytesMut::with_capacity(16);
//! w.put_slice(b"HDR!");
//! w.put_u64_le(123_456);
//! let mut r: &[u8] = &w[4..];
//! assert_eq!(r.get_u64_le(), 123_456);
//! assert!(r.is_empty()); // the read consumed the slice
//! ```

use std::ops::Deref;

/// A growable, append-only byte buffer (the write half).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends raw bytes.
    #[inline]
    pub fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Appends one byte.
    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32` in little-endian order.
    #[inline]
    pub fn put_u32_le(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` in little-endian order.
    #[inline]
    pub fn put_u64_le(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Bytes written so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written (or after [`clear`](Self::clear)).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Empties the buffer, keeping its allocation.
    #[inline]
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Consumes the buffer into its backing vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Front-consuming little-endian reads (the read half).
///
/// Implemented for `&[u8]`: each `get_*` advances the slice past the bytes
/// it read.
///
/// # Panics
/// All reads panic when fewer bytes remain than requested — binary trace
/// headers are length-checked before decoding, so short reads are bugs.
pub trait Buf {
    /// Reads one byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
    /// Bytes left to read.
    fn remaining(&self) -> usize;
}

impl Buf for &[u8] {
    #[inline]
    fn get_u8(&mut self) -> u8 {
        let (head, rest) = self.split_at(1);
        *self = rest;
        head[0]
    }

    #[inline]
    fn get_u32_le(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_le_bytes(head.try_into().expect("split_at(4)"))
    }

    #[inline]
    fn get_u64_le(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        *self = rest;
        u64::from_le_bytes(head.try_into().expect("split_at(8)"))
    }

    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut w = BytesMut::with_capacity(8);
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(u64::MAX - 1);
        w.put_slice(&[1, 2, 3]);
        assert_eq!(w.len(), 1 + 4 + 8 + 3);

        let mut r: &[u8] = &w;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.remaining(), 3);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut w = BytesMut::with_capacity(64);
        w.put_u64_le(1);
        w.clear();
        assert!(w.is_empty());
        w.put_u64_le(2);
        let mut r: &[u8] = &w;
        assert_eq!(r.get_u64_le(), 2);
    }

    #[test]
    #[should_panic]
    fn short_read_panics() {
        let mut r: &[u8] = &[1, 2, 3];
        r.get_u64_le();
    }
}
