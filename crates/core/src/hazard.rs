//! The HRO online upper bound (§3, Appendix A.1).
//!
//! Per window, each content's request process is approximated as Poisson
//! with rate `λ_i = n_i / T` (n_i requests over window span `T`). The
//! hazard rate of an exponential inter-request time is the constant `λ_i`,
//! so the size-aware hazard of equation (2) becomes `ζ̃_i = λ_i / s_i`.
//! The window's *top set* greedily fills the cache with contents in
//! decreasing hazard order (the fractional-knapsack relaxation of Appendix
//! A.1 — the boundary content is included whole, keeping the bound an upper
//! bound), and every request to a top-set content is classified as a hit,
//! except a content's first-ever appearance in the trace (a compulsory
//! miss even for an oracle without future knowledge — HRO is
//! *non-anticipative*).

use crate::window::{WindowData, WindowTracker};
use lhr_sim::bound::{base_metrics, OfflineBound};
use lhr_sim::SimMetrics;
use lhr_trace::{ObjectId, Trace};
use lhr_util::hash::{FastMap, FastSet};

/// The HRO bound. `window_multiplier` follows the paper's default of 4×
/// the cache size in unique bytes.
#[derive(Debug, Clone)]
pub struct Hro {
    /// Window size as a multiple of the cache capacity (unique bytes).
    pub window_multiplier: f64,
}

impl Default for Hro {
    fn default() -> Self {
        Hro {
            window_multiplier: 4.0,
        }
    }
}

/// Per-window HRO decisions: the set of contents whose requests the bound
/// classifies as hits. Reused by [`crate::cache::LhrCache`] to label its
/// training samples (§5.2.4: HRO's decisions are the supervision signal).
pub fn hro_top_set(window: &WindowData, capacity: u64) -> FastSet<ObjectId> {
    let span = window.span_secs();
    let mut sizes: FastMap<ObjectId, u64> = FastMap::default();
    for &(_, id, size) in &window.requests {
        sizes.entry(id).or_insert(size);
    }
    // Sized hazard ζ̃ = (n/T)/s; T is common, so ranking by n/s is
    // equivalent, but we keep the rate for clarity and testability.
    let mut ranked: Vec<(f64, ObjectId, u64)> = window
        .counts
        .iter()
        .map(|(&id, &count)| {
            let size = sizes[&id];
            let rate = count as f64 / span;
            let hazard = rate / size as f64;
            // A zero-size object makes the hazard +inf (rate > 0) or NaN
            // (0/0). Pin NaN below every real hazard — rates are never
            // negative — so the ranking is total and deterministic.
            (if hazard.is_nan() { -1.0 } else { hazard }, id, size)
        })
        .collect();
    // Descending hazard; ties broken by id for determinism. total_cmp
    // instead of partial_cmp().expect: ±inf hazards are legal inputs and
    // must order, not panic, on the scoring path.
    ranked.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));

    let mut top = FastSet::default();
    let mut filled = 0u64;
    for (_, id, size) in ranked {
        if size > capacity {
            continue;
        }
        if filled >= capacity {
            break;
        }
        // Fractional relaxation: the content straddling the boundary is
        // included whole.
        top.insert(id);
        filled += size;
    }
    top
}

impl OfflineBound for Hro {
    fn name(&self) -> &str {
        "HRO"
    }

    fn evaluate(&self, trace: &Trace, capacity: u64) -> SimMetrics {
        let mut metrics = base_metrics(trace);
        if trace.is_empty() {
            return metrics;
        }
        let target = ((capacity as f64 * self.window_multiplier) as u64).max(1);
        let mut tracker = WindowTracker::new(target);
        let mut ever_seen: FastSet<ObjectId> = FastSet::default();
        let mut windows: Vec<WindowData> = Vec::new();
        for req in trace.iter() {
            if let Some(done) = tracker.observe(req) {
                windows.push(done);
            }
        }
        // The trailing partial window still contains requests to classify.
        let partial = tracker.into_partial();
        if !partial.requests.is_empty() {
            windows.push(partial);
        }

        for window in &windows {
            let top = hro_top_set(window, capacity);
            for &(_, id, size) in &window.requests {
                let first_ever = ever_seen.insert(id);
                if !first_ever && top.contains(&id) {
                    metrics.hits += 1;
                    metrics.bytes_hit += size as u128;
                } else {
                    metrics.misses_admitted += 1;
                }
            }
        }
        metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhr_trace::{Request, Time, Trace};

    fn trace_of(entries: &[(u64, u64, u64)]) -> Trace {
        Trace::from_requests(
            "t",
            entries
                .iter()
                .map(|&(t, id, size)| Request::new(Time::from_secs(t), id, size))
                .collect(),
        )
    }

    #[test]
    fn top_set_prefers_high_rate_small_size() {
        // Window: content 1 requested 10× (size 100), content 2 once
        // (size 100), content 3 requested 5× but huge (size 10 000).
        let mut entries = Vec::new();
        for t in 0..10 {
            entries.push((t, 1, 100));
        }
        entries.push((10, 2, 100));
        for t in 11..16 {
            entries.push((t, 3, 10_000));
        }
        let trace = trace_of(&entries);
        let mut tracker = WindowTracker::new(u64::MAX);
        for r in trace.iter() {
            tracker.observe(r);
        }
        let window = tracker.into_partial();
        // Capacity 150: content 1 (hazard 10/100) beats 2 (1/100) and
        // 3 (5/10000).
        let top = hro_top_set(&window, 150);
        assert!(top.contains(&1));
        assert!(!top.contains(&3));
    }

    #[test]
    fn first_ever_request_is_never_a_hit() {
        let trace = trace_of(&[(0, 1, 100), (1, 1, 100), (2, 1, 100)]);
        let m = Hro::default().evaluate(&trace, 1_000);
        assert_eq!(m.hits, 2);
        assert_eq!(m.misses(), 1);
    }

    #[test]
    fn hro_dominates_every_feasible_policy_on_irm() {
        use lhr_sim::{CachePolicy, Outcome, SimConfig, Simulator};
        use lhr_trace::synth::{IrmConfig, SizeModel};

        // A simple feasible LFU baseline to dominate.
        struct MiniLfu {
            cap: u64,
            used: u64,
            counts: std::collections::HashMap<u64, (u64, u64)>,
        }
        impl CachePolicy for MiniLfu {
            fn name(&self) -> &str {
                "mini-lfu"
            }
            fn capacity(&self) -> u64 {
                self.cap
            }
            fn used_bytes(&self) -> u64 {
                self.used
            }
            fn contains(&self, id: u64) -> bool {
                self.counts.contains_key(&id)
            }
            fn handle(&mut self, req: &lhr_trace::Request) -> Outcome {
                if let Some(e) = self.counts.get_mut(&req.id) {
                    e.0 += 1;
                    return Outcome::Hit;
                }
                if req.size > self.cap {
                    return Outcome::MissBypassed;
                }
                while self.used + req.size > self.cap {
                    let (&victim, &(_, vsize)) = self
                        .counts
                        .iter()
                        .min_by_key(|(id, (c, _))| (*c, **id))
                        .expect("full");
                    self.counts.remove(&victim);
                    self.used -= vsize;
                }
                self.counts.insert(req.id, (1, req.size));
                self.used += req.size;
                Outcome::MissAdmitted
            }
        }

        let trace = IrmConfig::new(300, 20_000)
            .zipf_alpha(0.9)
            .size_model(SizeModel::Fixed { bytes: 1_000 })
            .seed(3)
            .generate();
        let capacity = 50_000u64;
        let hro = Hro::default().evaluate(&trace, capacity);
        let mut lfu = MiniLfu {
            cap: capacity,
            used: 0,
            counts: Default::default(),
        };
        let lfu_result = Simulator::new(SimConfig::default()).run(&mut lfu, &trace);
        assert!(
            hro.hits >= lfu_result.metrics.hits,
            "HRO {} < LFU {}",
            hro.hits,
            lfu_result.metrics.hits
        );
    }

    #[test]
    fn zero_size_hazards_rank_without_panicking() {
        // Content 2 has size 0 (hazard = rate/0 = +inf); content 3 has
        // size 0 *and* a zero count (hazard = 0/0 = NaN). Before the
        // total_cmp fix the sort panicked on the NaN; it must now rank
        // deterministically, with the NaN below every real hazard.
        let mut counts = FastMap::default();
        counts.insert(1u64, 4u32);
        counts.insert(2u64, 3u32);
        counts.insert(3u64, 0u32);
        let window = WindowData {
            index: 0,
            requests: vec![
                (Time::from_secs(0), 1, 100),
                (Time::from_secs(1), 2, 0),
                (Time::from_secs(2), 3, 0),
                (Time::from_secs(9), 1, 100),
            ],
            counts,
            unique_bytes: 100,
            span: (Time::from_secs(0), Time::from_secs(9)),
        };
        let top = hro_top_set(&window, 150);
        // The +inf hazard and the real hazard both fit; the NaN-ranked
        // content sorts last but capacity (100 of 150 used, size 0) still
        // admits it — what matters is that nothing panicked and the
        // legitimate contents are present.
        assert!(top.contains(&1));
        assert!(top.contains(&2));
    }

    #[test]
    fn oversized_contents_excluded_from_top_set() {
        let trace = trace_of(&[(0, 1, 500), (1, 1, 500), (2, 1, 500)]);
        let m = Hro::default().evaluate(&trace, 100);
        assert_eq!(m.hits, 0);
    }

    #[test]
    fn empty_trace() {
        let m = Hro::default().evaluate(&Trace::new("e"), 100);
        assert_eq!(m.requests, 0);
        assert_eq!(m.hits, 0);
    }

    #[test]
    fn multiple_windows_reset_rates() {
        // Window target small: two windows with different hot contents.
        let mut entries = Vec::new();
        for t in 0..20 {
            entries.push((t, 1, 60));
            entries.push((100 + t, 2, 60));
        }
        entries.sort();
        let trace = trace_of(&entries);
        let hro = Hro {
            window_multiplier: 1.0,
        };
        let m = hro.evaluate(&trace, 100);
        // Both hot contents get hits in their respective windows.
        assert!(m.hits >= 30, "hits {}", m.hits);
    }
}
