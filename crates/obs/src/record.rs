//! The JSONL line model: everything [`crate::Obs`] exports is one
//! [`ObsRecord`] per line, tagged by a leading `"record"` field so a
//! stream can be parsed back without knowing what produced it.
//!
//! Line shapes (field order is fixed — output is byte-deterministic):
//!
//! ```text
//! {"record":"meta","policy":"lhr","seed":42,...}
//! {"record":"window","index":0,"start_requests":0,...}
//! {"record":"event","t":12.5,"kind":"Retrain","fields":{...}}
//! {"record":"counter","name":"sim.requests","value":100000}
//! {"record":"gauge","name":"lhr.threshold","value":0.37}
//! {"record":"hist","name":"server.latency_us","total":...,"buckets":[[...]]}
//! {"record":"span","path":"sim.run","count":1,"total_secs":0,"self_secs":0}
//! {"record":"trace","id":1234,"object":...,"steps":[{...}]}
//! ```

use crate::event::Event;
use crate::hist::LogHistogram;
use crate::series::WindowRecord;
use crate::span::SpanRecord;
use crate::trace::TraceRecord;
use lhr_util::json::{FromJson, Json, JsonError, ToJson};

/// One line of an obs JSONL stream.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsRecord {
    /// Run-level metadata (policy, preset, seed, window spec, …).
    Meta(Vec<(String, Json)>),
    /// One completed window of the metric series.
    Window(WindowRecord),
    /// One structured event.
    Event(Event),
    /// A named monotonic counter's final value.
    Counter {
        /// Counter name, dot-namespaced (`sim.requests`).
        name: String,
        /// Final value.
        value: u64,
    },
    /// A named gauge's final value.
    Gauge {
        /// Gauge name, dot-namespaced (`lhr.threshold`).
        name: String,
        /// Final value.
        value: f64,
    },
    /// A named histogram.
    Hist {
        /// Histogram name, dot-namespaced (`server.latency_us`).
        name: String,
        /// The aggregated distribution.
        hist: LogHistogram,
    },
    /// One node of the profiling span tree.
    Span(SpanRecord),
    /// One sampled request's path trace.
    Trace(TraceRecord),
}

impl ObsRecord {
    /// The value of the `"record"` tag this variant serializes with.
    pub fn tag(&self) -> &'static str {
        match self {
            ObsRecord::Meta(_) => "meta",
            ObsRecord::Window(_) => "window",
            ObsRecord::Event(_) => "event",
            ObsRecord::Counter { .. } => "counter",
            ObsRecord::Gauge { .. } => "gauge",
            ObsRecord::Hist { .. } => "hist",
            ObsRecord::Span(_) => "span",
            ObsRecord::Trace(_) => "trace",
        }
    }

    /// Serializes to one JSONL line (no trailing newline).
    pub fn to_line(&self) -> String {
        self.to_json().to_string()
    }

    /// Parses one JSONL line.
    pub fn parse_line(line: &str) -> Result<ObsRecord, JsonError> {
        ObsRecord::from_json(&Json::parse(line)?)
    }
}

/// Prepends the `"record"` tag to a payload object's fields.
fn tagged(tag: &str, payload: Json) -> Json {
    let mut fields = vec![("record".to_string(), Json::Str(tag.to_string()))];
    match payload {
        Json::Object(rest) => fields.extend(rest),
        other => fields.push(("value".to_string(), other)),
    }
    Json::Object(fields)
}

impl ToJson for ObsRecord {
    fn to_json(&self) -> Json {
        let payload = match self {
            ObsRecord::Meta(fields) => Json::Object(fields.clone()),
            ObsRecord::Window(w) => w.to_json(),
            ObsRecord::Event(e) => e.to_json(),
            ObsRecord::Counter { name, value } => Json::Object(vec![
                ("name".to_string(), name.to_json()),
                ("value".to_string(), value.to_json()),
            ]),
            ObsRecord::Gauge { name, value } => Json::Object(vec![
                ("name".to_string(), name.to_json()),
                ("value".to_string(), value.to_json()),
            ]),
            ObsRecord::Hist { name, hist } => {
                let mut fields = vec![("name".to_string(), name.to_json())];
                match hist.to_json() {
                    Json::Object(rest) => fields.extend(rest),
                    _ => unreachable!("histograms serialize as objects"),
                }
                Json::Object(fields)
            }
            ObsRecord::Span(s) => s.to_json(),
            ObsRecord::Trace(t) => t.to_json(),
        };
        tagged(self.tag(), payload)
    }
}

impl FromJson for ObsRecord {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let tag: String = lhr_util::json::field(v, "record")?;
        // The struct FromJson impls look fields up by name and ignore the
        // extra "record" key, so the tagged object parses directly.
        match tag.as_str() {
            "meta" => {
                let fields = match v {
                    Json::Object(fields) => fields
                        .iter()
                        .filter(|(k, _)| k != "record")
                        .cloned()
                        .collect(),
                    _ => return Err(JsonError::new("meta record must be an object")),
                };
                Ok(ObsRecord::Meta(fields))
            }
            "window" => Ok(ObsRecord::Window(WindowRecord::from_json(v)?)),
            "event" => Ok(ObsRecord::Event(Event::from_json(v)?)),
            "counter" => Ok(ObsRecord::Counter {
                name: lhr_util::json::field(v, "name")?,
                value: lhr_util::json::field(v, "value")?,
            }),
            "gauge" => Ok(ObsRecord::Gauge {
                name: lhr_util::json::field(v, "name")?,
                value: lhr_util::json::field(v, "value")?,
            }),
            "hist" => Ok(ObsRecord::Hist {
                name: lhr_util::json::field(v, "name")?,
                hist: LogHistogram::from_json(v)?,
            }),
            "span" => Ok(ObsRecord::Span(SpanRecord::from_json(v)?)),
            "trace" => Ok(ObsRecord::Trace(TraceRecord::from_json(v)?)),
            other => Err(JsonError::new(format!("unknown obs record tag `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn every_variant_roundtrips_byte_identically() {
        let mut hist = LogHistogram::new();
        hist.record(100);
        let records = vec![
            ObsRecord::Meta(vec![
                ("policy".to_string(), "lhr".to_json()),
                ("seed".to_string(), 42u64.to_json()),
            ]),
            ObsRecord::Window(WindowRecord {
                index: 1,
                requests: 10,
                hits: 7,
                ..WindowRecord::default()
            }),
            ObsRecord::Event(Event::new(3.5, EventKind::Detect).field("alpha", 0.8f64)),
            ObsRecord::Counter {
                name: "sim.requests".to_string(),
                value: 100_000,
            },
            ObsRecord::Gauge {
                name: "lhr.threshold".to_string(),
                value: 0.375,
            },
            ObsRecord::Hist {
                name: "server.latency_us".to_string(),
                hist,
            },
            ObsRecord::Span(SpanRecord {
                path: "sim.run".to_string(),
                count: 1,
                total_secs: 0.0,
                self_secs: 0.0,
            }),
            ObsRecord::Trace(crate::trace::TraceRecord {
                id: 9,
                object: 0xFEED,
                t: 1.5,
                bytes: 4096,
                window: 0,
                latency_ms: 42.5,
                exemplar: true,
                steps: vec![crate::trace::TraceStep {
                    step: "edge_lookup".to_string(),
                    dt_ms: 0.0,
                    bytes: 4096,
                    detail: vec![
                        ("node".to_string(), 1u64.to_json()),
                        ("hit".to_string(), true.to_json()),
                    ],
                }],
            }),
        ];
        for r in records {
            let line = r.to_line();
            assert!(line.starts_with("{\"record\":\""), "{line}");
            let back = ObsRecord::parse_line(&line).unwrap();
            assert_eq!(back, r, "{line}");
            assert_eq!(back.to_line(), line);
        }
    }

    #[test]
    fn unknown_tag_is_an_error() {
        assert!(ObsRecord::parse_line("{\"record\":\"nope\"}").is_err());
        assert!(ObsRecord::parse_line("not json").is_err());
    }
}
