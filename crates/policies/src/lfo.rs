//! LFO — Learning From OPT (Berger, HotNets '18): the first
//! learning-augmented CDN admission scheme, and the design LHR's paper
//! contrasts itself against (§8: LFO "learns from heuristic OPT but
//! performs even worse than some conventional algorithms on production
//! traces").
//!
//! LFO computes offline-optimal decisions (here: Bélády-Size admissions)
//! over a past window of requests, trains a classifier mapping request
//! features to those decisions, and gates *admission* with the learned
//! predictor at a fixed 0.5 threshold; eviction stays plain LRU. The
//! original uses boosted trees over features very similar to ours, so this
//! implementation reuses the workspace GBM.

use crate::util::{Handle, LruList};
use lhr_gbm::{Dataset, Gbm, GbmParams};
use lhr_sim::{CachePolicy, Outcome};
use lhr_trace::{ObjectId, Request, Time};
use lhr_util::hash::FastMap;
use std::collections::{BTreeSet, VecDeque};

/// Feature width: ln(size), ln(1+count), ln(IRT₁..IRT₄).
const N_FEATURES: usize = 6;
/// Fixed admission threshold (LFO uses 0.5; LHR's §5.2.3 argues this is a
/// weakness).
const THRESHOLD: f64 = 0.5;

#[derive(Debug, Clone)]
struct History {
    size: u64,
    count: u64,
    /// Recent request times, newest last (≤ 5 kept → 4 IRTs).
    times: VecDeque<Time>,
}

/// The LFO policy.
pub struct Lfo {
    capacity: u64,
    used: u64,
    list: LruList<(ObjectId, u64)>,
    map: FastMap<ObjectId, Handle>,
    history: FastMap<ObjectId, History>,
    /// The training window: (features, id, size) per request.
    window: Vec<([f32; N_FEATURES], ObjectId, u64)>,
    window_len: usize,
    model: Option<Gbm>,
    trainings: u64,
    evictions: u64,
}

impl Lfo {
    /// An LFO cache of `capacity` bytes retraining every `window_len`
    /// requests.
    pub fn new(capacity: u64, window_len: usize) -> Self {
        Lfo {
            capacity,
            used: 0,
            list: LruList::new(),
            map: FastMap::default(),
            history: FastMap::default(),
            window: Vec::new(),
            window_len: window_len.max(256),
            model: None,
            trainings: 0,
            evictions: 0,
        }
    }

    /// Number of retrainings so far.
    pub fn trainings(&self) -> u64 {
        self.trainings
    }

    fn features(&self, req: &Request) -> [f32; N_FEATURES] {
        let mut f = [f32::NAN; N_FEATURES];
        f[0] = (req.size.max(1) as f32).ln();
        match self.history.get(&req.id) {
            Some(h) => {
                f[1] = (h.count as f32).ln_1p();
                for (j, pair) in h
                    .times
                    .iter()
                    .rev()
                    .zip(h.times.iter().rev().skip(1))
                    .enumerate()
                {
                    if j >= 4 {
                        break;
                    }
                    // Gap between consecutive historical requests.
                    let gap = pair.0.saturating_sub(*pair.1).as_secs_f64().max(1e-6);
                    f[2 + j] = gap.ln() as f32;
                }
                // IRT₁ relative to now replaces the first slot.
                if let Some(&last) = h.times.back() {
                    f[2] = (req.ts.saturating_sub(last).as_secs_f64().max(1e-6)).ln() as f32;
                }
            }
            None => {
                f[1] = 0.0;
            }
        }
        f
    }

    fn record(&mut self, req: &Request) {
        let h = self.history.entry(req.id).or_insert_with(|| History {
            size: req.size,
            count: 0,
            times: VecDeque::new(),
        });
        h.count += 1;
        h.times.push_back(req.ts);
        if h.times.len() > 5 {
            h.times.pop_front();
        }
        let _ = h.size;
    }

    /// Offline-optimal admissions over the window: replay Bélády-Size
    /// (future-aware within the window) and label each request 1 if OPT
    /// admitted or already cached it.
    fn opt_labels(&self) -> Vec<f32> {
        // next-use indices within the window
        let n = self.window.len();
        let mut next = vec![u64::MAX; n];
        let mut last_seen: FastMap<ObjectId, u64> = FastMap::default();
        for i in (0..n).rev() {
            let id = self.window[i].1;
            if let Some(&later) = last_seen.get(&id) {
                next[i] = later;
            }
            last_seen.insert(id, i as u64);
        }
        let mut by_next: BTreeSet<(u64, ObjectId)> = BTreeSet::new();
        let mut cached: FastMap<ObjectId, (u64, u64)> = FastMap::default();
        let mut used = 0u64;
        let mut labels = vec![0f32; n];
        for i in 0..n {
            let (_, id, size) = self.window[i];
            let this_next = next[i];
            if let Some(&(old_next, s)) = cached.get(&id) {
                labels[i] = 1.0;
                by_next.remove(&(old_next, id));
                if this_next == u64::MAX {
                    cached.remove(&id);
                    used -= s;
                } else {
                    cached.insert(id, (this_next, s));
                    by_next.insert((this_next, id));
                }
                continue;
            }
            if size > self.capacity || this_next == u64::MAX {
                continue;
            }
            let mut admitted = true;
            while used + size > self.capacity {
                let &(victim_next, victim) = by_next.iter().next_back().expect("full");
                if victim_next <= this_next {
                    admitted = false;
                    break;
                }
                by_next.remove(&(victim_next, victim));
                let (_, vs) = cached.remove(&victim).expect("indexed");
                used -= vs;
            }
            if admitted {
                labels[i] = 1.0;
                cached.insert(id, (this_next, size));
                by_next.insert((this_next, id));
                used += size;
            }
        }
        labels
    }

    fn retrain(&mut self) {
        let labels = self.opt_labels();
        let mut data = Dataset::new(N_FEATURES);
        data.reserve(self.window.len());
        for ((features, _, _), &label) in self.window.iter().zip(labels.iter()) {
            data.push_row(features, label);
        }
        if !data.is_empty() {
            let params = GbmParams {
                n_trees: 20,
                max_depth: 5,
                ..GbmParams::default()
            };
            self.model = Some(Gbm::fit(&data, &params));
            self.trainings += 1;
        }
        self.window.clear();
        // Bound the history map to roughly the window's population.
        if self.history.len() > 4 * self.window_len {
            self.history.clear();
        }
    }

    fn admit_probability(&self, features: &[f32; N_FEATURES]) -> f64 {
        match &self.model {
            Some(model) => model.predict_probability(features),
            None => 1.0, // admit-all until the first window trains
        }
    }
}

impl CachePolicy for Lfo {
    fn name(&self) -> &str {
        "LFO"
    }
    fn capacity(&self) -> u64 {
        self.capacity
    }
    fn used_bytes(&self) -> u64 {
        self.used
    }
    fn contains(&self, id: ObjectId) -> bool {
        self.map.contains_key(&id)
    }

    fn handle(&mut self, req: &Request) -> Outcome {
        let features = self.features(req);
        self.window.push((features, req.id, req.size));
        self.record(req);
        if self.window.len() >= self.window_len {
            self.retrain();
        }

        if let Some(&handle) = self.map.get(&req.id) {
            self.list.move_to_front(handle);
            return Outcome::Hit;
        }
        if req.size > self.capacity || self.admit_probability(&features) < THRESHOLD {
            return Outcome::MissBypassed;
        }
        while self.used + req.size > self.capacity {
            let (id, size) = self.list.pop_back().expect("full but empty");
            self.map.remove(&id);
            self.used -= size;
            self.evictions += 1;
        }
        let handle = self.list.push_front((req.id, req.size));
        self.map.insert(req.id, handle);
        self.used += req.size;
        Outcome::MissAdmitted
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }

    fn metadata_overhead_bytes(&self) -> u64 {
        let model = self.model.as_ref().map_or(0, |m| m.approx_size_bytes()) as u64;
        self.map.len() as u64 * 48
            + self.history.len() as u64 * 88
            + self.window.len() as u64 * 40
            + model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(t: u64, id: ObjectId, size: u64) -> Request {
        Request::new(Time::from_secs(t), id, size)
    }

    #[test]
    fn admits_all_before_first_training() {
        let mut c = Lfo::new(1_000, 1_000);
        assert_eq!(c.handle(&req(0, 1, 100)), Outcome::MissAdmitted);
    }

    #[test]
    fn trains_after_window_fills() {
        let mut c = Lfo::new(2_000, 256);
        for i in 0..600u64 {
            c.handle(&req(i, i % 13, 150));
        }
        assert!(c.trainings() >= 2);
    }

    #[test]
    fn opt_labels_mark_rerequested_content() {
        let mut c = Lfo::new(1_000, 1 << 30);
        // hot object + one-hit wonders
        let mut t = 0;
        for round in 0..20u64 {
            c.handle(&req(t, 1, 100));
            t += 1;
            c.handle(&req(t, 1_000 + round, 100));
            t += 1;
        }
        let labels = c.opt_labels();
        // Requests to object 1 after the first must be OPT hits (label 1).
        let window = c.window.clone();
        for (i, (_, id, _)) in window.iter().enumerate() {
            if *id == 1 && i > 0 {
                assert_eq!(labels[i], 1.0, "request {i} to hot object not labeled");
            }
            if *id >= 1_000 {
                assert_eq!(labels[i], 0.0, "one-hit wonder {id} labeled admit");
            }
        }
    }

    #[test]
    fn learned_gate_blocks_one_hit_wonders() {
        let mut c = Lfo::new(1_000, 512);
        let mut t = 0;
        // Train through several windows of hot-vs-one-hit traffic.
        for round in 0..3_000u64 {
            for hot in 0..3u64 {
                c.handle(&req(t, hot, 100));
                t += 1;
            }
            c.handle(&req(t, 10_000 + round, 100));
            t += 1;
        }
        assert!(c.trainings() > 0);
        // A brand-new object (cold features) should now be bypassed.
        let outcome = c.handle(&req(t, 999_999, 100));
        assert_eq!(outcome, Outcome::MissBypassed);
        // While the hot set hits.
        assert!(c.handle(&req(t + 1, 0, 100)).is_hit());
    }

    #[test]
    fn capacity_respected() {
        let mut c = Lfo::new(1_000, 512);
        for i in 0..3_000u64 {
            c.handle(&req(i, i % 29, 120));
            assert!(c.used_bytes() <= 1_000);
        }
    }
}
