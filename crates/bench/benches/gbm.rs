//! Training and prediction cost of the gradient-boosting model — the
//! dominant term in LHR's retraining time (§7.4).
//!
//! Run with `cargo bench --bench gbm`; see `lhr_util::bench` for the
//! harness knobs (`LHR_BENCH_MEASURE_MS`, `LHR_BENCH_JSON`, …).

use lhr_gbm::{Dataset, Gbm, GbmParams};
use lhr_util::bench::{black_box, Bench};
use lhr_util::rng::rngs::StdRng;
use lhr_util::rng::{Rng, SeedableRng};

fn synthetic_dataset(rows: usize, features: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Dataset::new(features);
    for _ in 0..rows {
        let row: Vec<f32> = (0..features)
            .map(|_| {
                if rng.gen_bool(0.1) {
                    f32::NAN
                } else {
                    rng.gen::<f32>() * 10.0
                }
            })
            .collect();
        let label = if row[0].is_nan() || row[0] > 5.0 {
            1.0
        } else {
            0.0
        };
        data.push_row(&row, label);
    }
    data
}

fn bench_fit() {
    for &rows in &[2_048usize, 8_192, 32_768] {
        let data = synthetic_dataset(rows, 23, 1);
        let mut group = Bench::new("gbm_fit");
        group.throughput_elems(rows as u64);
        group.bench(format!("{rows}"), || {
            let params = GbmParams {
                n_trees: 25,
                max_depth: 6,
                ..GbmParams::default()
            };
            Gbm::fit(black_box(&data), &params)
        });
        group.finish();
    }
}

fn bench_predict() {
    let data = synthetic_dataset(8_192, 23, 2);
    let params = GbmParams {
        n_trees: 25,
        max_depth: 6,
        ..GbmParams::default()
    };
    let model = Gbm::fit(&data, &params);
    let mut group = Bench::new("gbm_predict");
    group.throughput_elems(data.n_rows() as u64);
    group.bench("8192_rows", || {
        let mut acc = 0.0f32;
        for i in 0..data.n_rows() {
            acc += model.predict(data.row(i));
        }
        acc
    });
    group.finish();
}

fn main() {
    bench_fit();
    bench_predict();
}
