//! Content feature extraction (§5.2.1): up to 20 inter-request times plus
//! static features.
//!
//! The feature vector layout is:
//!
//! | index | feature |
//! |-------|---------|
//! | 0     | ln(size in bytes) |
//! | 1     | ln(1 + requests seen so far) |
//! | 2     | ln(age since first request, seconds) |
//! | 3..3+K | ln(IRT₁..IRT_K in seconds); `NaN` where history is shorter |
//!
//! IRT₁ is the time since the last request, IRT₂ the gap between the two
//! previous requests, and so on — exactly the paper's definition. Missing
//! IRTs are `NaN`, which the GBM routes through learned default directions.

use lhr_trace::{ObjectId, Time};
use lhr_util::hash::FastMap;

/// Number of static features preceding the IRTs.
pub const N_STATIC: usize = 3;

/// Per-object request history sufficient to produce features.
#[derive(Debug, Clone)]
pub struct ObjectHistory {
    /// Object size in bytes.
    pub size: u64,
    /// Time of the object's first observed request.
    pub first_seen: Time,
    /// Total requests observed.
    pub count: u64,
    /// Recent request timestamps, newest last; at most `irts + 1` retained.
    times: Vec<Time>,
    /// Window index of the most recent request (for pruning).
    pub last_window: u64,
}

/// Tracks histories for all recently active objects and renders feature
/// rows.
#[derive(Debug)]
pub struct FeatureStore {
    /// Number of IRT features (the paper settles on 20; Figure 6 sweeps
    /// 10/20/30).
    pub n_irts: usize,
    objects: FastMap<ObjectId, ObjectHistory>,
    /// History shells reclaimed by [`Self::prune_before`] and reused by
    /// [`Self::record`], so re-sighting a pruned object in steady state
    /// does not allocate a fresh `times` vector.
    spare: Vec<ObjectHistory>,
}

impl FeatureStore {
    /// A store producing `n_irts` IRT features.
    pub fn new(n_irts: usize) -> Self {
        assert!(n_irts >= 1);
        FeatureStore {
            n_irts,
            objects: FastMap::default(),
            spare: Vec::new(),
        }
    }

    /// Width of feature rows produced by [`FeatureStore::features`].
    pub fn n_features(&self) -> usize {
        N_STATIC + self.n_irts
    }

    /// Records a request, updating the object's history.
    pub fn record(&mut self, id: ObjectId, size: u64, ts: Time, window: u64) {
        let keep = self.n_irts + 1;
        let spare = &mut self.spare;
        let entry = self.objects.entry(id).or_insert_with(|| {
            // Prefer a shell reclaimed by pruning — its `times` allocation
            // is already the right capacity.
            let mut h = spare.pop().unwrap_or_else(|| ObjectHistory {
                size,
                first_seen: ts,
                count: 0,
                times: Vec::with_capacity(keep),
                last_window: window,
            });
            h.size = size;
            h.first_seen = ts;
            h.count = 0;
            h.times.clear();
            h.last_window = window;
            h
        });
        entry.count += 1;
        entry.last_window = window;
        // Trim *before* pushing: the push then always fits in the
        // `with_capacity(keep)` allocation, so a warm object's history
        // never reallocates (the serve path stays allocation-free).
        if entry.times.len() >= keep {
            entry.times.remove(0);
        }
        entry.times.push(ts);
    }

    /// Renders the feature row for `id` *as of time `now`*, or `None` if the
    /// object has never been recorded.
    pub fn features(&self, id: ObjectId, now: Time) -> Option<Vec<f32>> {
        let mut row = vec![f32::NAN; self.n_features()];
        self.row_into(id, now, &mut row).then_some(row)
    }

    /// In-place form of [`FeatureStore::features`]: fills `out` (which must
    /// be `n_features()` wide) and returns `true`, or returns `false`
    /// untouched for a never-recorded object. The serve path calls this
    /// with a reused buffer so steady-state replay does not allocate.
    pub fn row_into(&self, id: ObjectId, now: Time, out: &mut [f32]) -> bool {
        debug_assert_eq!(out.len(), self.n_features());
        let Some(h) = self.objects.get(&id) else {
            return false;
        };
        out.fill(f32::NAN);
        out[0] = (h.size.max(1) as f32).ln();
        out[1] = (h.count as f32).ln_1p();
        out[2] = ln_secs(now.saturating_sub(h.first_seen));
        // IRT₁ = now − most recent request; IRT_{j>1} = gaps of history.
        let times = &h.times;
        if let Some(&last) = times.last() {
            out[N_STATIC] = ln_secs(now.saturating_sub(last));
        }
        for j in 1..self.n_irts {
            // IRT_{j+1} spans times[len-j-1] .. times[len-j].
            if times.len() > j {
                let a = times[times.len() - j - 1];
                let b = times[times.len() - j];
                out[N_STATIC + j] = ln_secs(b.saturating_sub(a));
            } else {
                break;
            }
        }
        true
    }

    /// Per-object history, if tracked.
    pub fn history(&self, id: ObjectId) -> Option<&ObjectHistory> {
        self.objects.get(&id)
    }

    /// Drops objects last requested before `horizon_window` (keeps the
    /// store bounded to a few windows of state, mirroring §5.1's "only use
    /// data within the window").
    pub fn prune_before(&mut self, horizon_window: u64) {
        let spare = &mut self.spare;
        self.objects.retain(|_, h| {
            let keep = h.last_window >= horizon_window;
            if !keep {
                // Reclaim the shell (with its `times` allocation) for the
                // next first-sighting instead of dropping it.
                spare.push(std::mem::replace(
                    h,
                    ObjectHistory {
                        size: 0,
                        first_seen: Time::ZERO,
                        count: 0,
                        times: Vec::new(),
                        last_window: 0,
                    },
                ));
            }
            keep
        });
    }

    /// Number of tracked objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when no objects are tracked.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Approximate metadata footprint in bytes.
    pub fn overhead_bytes(&self) -> u64 {
        ((self.objects.len() + self.spare.len()) * (48 + (self.n_irts + 1) * 8)) as u64
    }
}

fn ln_secs(t: Time) -> f32 {
    (t.as_secs_f64().max(1e-6) as f32).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn features_have_expected_width_and_statics() {
        let mut fs = FeatureStore::new(20);
        fs.record(7, 1 << 20, Time::from_secs(10), 0);
        let row = fs.features(7, Time::from_secs(15)).expect("recorded");
        assert_eq!(row.len(), 23);
        assert!((row[0] - (1024.0f32 * 1024.0).ln()).abs() < 1e-4);
        assert!((row[1] - 1.0f32.ln_1p()).abs() < 1e-6);
        assert!((row[2] - 5.0f32.ln()).abs() < 1e-4); // age = 5 s
    }

    #[test]
    fn irt1_is_time_since_last_request() {
        let mut fs = FeatureStore::new(5);
        fs.record(1, 100, Time::from_secs(0), 0);
        fs.record(1, 100, Time::from_secs(4), 0);
        let row = fs.features(1, Time::from_secs(10)).expect("recorded");
        assert!((row[N_STATIC] - 6.0f32.ln()).abs() < 1e-4);
        // IRT₂ = 4 − 0.
        assert!((row[N_STATIC + 1] - 4.0f32.ln()).abs() < 1e-4);
        // IRT₃ missing.
        assert!(row[N_STATIC + 2].is_nan());
    }

    #[test]
    fn history_is_bounded_to_n_irts_plus_one() {
        let mut fs = FeatureStore::new(3);
        for t in 0..50 {
            fs.record(1, 100, Time::from_secs(t), 0);
        }
        assert_eq!(fs.history(1).expect("tracked").times.len(), 4);
        let row = fs.features(1, Time::from_secs(50)).expect("tracked");
        // All three IRTs present, each equal to 1 s.
        for j in 0..3 {
            assert!((row[N_STATIC + j] - 1.0f32.ln()).abs() < 1e-4, "irt {j}");
        }
    }

    #[test]
    fn unknown_object_yields_none() {
        let fs = FeatureStore::new(4);
        assert!(fs.features(99, Time::ZERO).is_none());
    }

    #[test]
    fn pruning_drops_stale_objects() {
        let mut fs = FeatureStore::new(4);
        fs.record(1, 100, Time::from_secs(0), 0);
        fs.record(2, 100, Time::from_secs(1), 5);
        fs.prune_before(3);
        assert!(fs.features(1, Time::from_secs(2)).is_none());
        assert!(fs.features(2, Time::from_secs(2)).is_some());
        assert_eq!(fs.len(), 1);
    }

    #[test]
    fn count_accumulates_across_windows() {
        let mut fs = FeatureStore::new(2);
        for w in 0..5u64 {
            fs.record(1, 100, Time::from_secs(w), w);
        }
        assert_eq!(fs.history(1).expect("tracked").count, 5);
    }
}
