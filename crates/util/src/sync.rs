//! Panic-robust synchronization shims over `std::sync`.
//!
//! The workspace previously used `parking_lot` for its unpoisonable locks
//! and `crossbeam` for scoped threads and channels. Under the zero-external-
//! dependency policy (DESIGN.md) those shrink to:
//!
//! - [`Mutex`]/[`RwLock`] — thin wrappers whose guards are acquired without
//!   a `Result`: a poisoned std lock is recovered instead of propagated,
//!   matching `parking_lot` semantics. All workspace invariants are
//!   per-shard and re-established at the start of each operation, so
//!   observing a value from a panicked critical section is safe here.
//! - [`mpsc`] — a re-export of `std::sync::mpsc` (what the crossbeam
//!   channels were used as).
//! - Scoped threads — use `std::thread::scope` directly (stable since Rust
//!   1.63); no shim needed.
//!
//! # Example
//!
//! ```
//! use lhr_util::sync::Mutex;
//!
//! let shard = Mutex::new(vec![1u64, 2, 3]);
//! shard.lock().push(4);                  // no `.unwrap()` — guards are infallible
//! assert_eq!(shard.lock().len(), 4);
//! ```

use std::sync::PoisonError;

/// Re-export of `std::sync::mpsc`: the workspace's channel flavor.
pub use std::sync::mpsc;

/// A mutual-exclusion lock whose [`lock`](Mutex::lock) never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`]; derefs to the protected value.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the value (poison recovered).
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread. Poisoning from a
    /// panicked holder is recovered, not propagated.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose guards are acquired without a `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value (poison recovered).
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard; poisoning is recovered.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires the exclusive write guard; poisoning is recovered.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn shared_across_scoped_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
