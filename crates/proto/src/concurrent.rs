//! A sharded, thread-safe cache front end and the fetch-coalescing table
//! behind it.
//!
//! The paper's ATS prototype serves requests from many threads with the
//! admission/lookup path asynchronous to eviction (§6.1). This module
//! provides the equivalent building blocks for Rust deployments:
//!
//! - [`FetchTable`] — a hash-sharded map keyed by object id whose
//!   `begin`/`finish` pair elects exactly one origin-fetch leader per
//!   object and counts everyone else as coalesced. It is the coalescing
//!   primitive shared by [`ConcurrentCache`] (as `FetchTable<()>`) and the
//!   threaded serving engine (as `FetchTable<(Time, bool)>`, recording
//!   when each in-flight fetch lands).
//! - [`ConcurrentCache`] — object ids hash-partitioned across `N` shards,
//!   each shard an independent policy instance behind its own lock, so
//!   unrelated requests never contend. Capacity is split evenly across
//!   shards, so the aggregate capacity bound still holds.
//!
//! Both use [`lhr_sim::shard::shard_of`] — the one hash every sharded
//! component in the workspace agrees on — so a cache, a fetch table, and
//! an engine built with the same shard count partition objects
//! identically.

use lhr_sim::shard::shard_of;
use lhr_sim::{CachePolicy, Outcome};
use lhr_trace::{ObjectId, Request};
use lhr_util::hash::FastMap;
use lhr_util::sync::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// A hash-sharded in-flight fetch table with leader election.
///
/// One entry per object whose origin fetch is outstanding (or, for the
/// engine's timed variant, recently landed). [`FetchTable::begin`] claims
/// the fetch: the first caller per object becomes the leader and must
/// eventually call [`FetchTable::finish`]; every other caller in between
/// is counted as coalesced. The value type `V` carries whatever the
/// claimant wants followers to see (`()` for plain leader election,
/// `(Time, bool)` for "when does this fetch land, and did it succeed").
///
/// Sharding uses [`shard_of`], so a table built with the same shard count
/// as a [`ConcurrentCache`] or an engine partitions objects identically —
/// each table shard is then only ever touched by the component shard that
/// owns those objects.
///
/// ```
/// use lhr_proto::FetchTable;
///
/// let table: FetchTable<()> = FetchTable::new(4);
/// assert!(table.begin(7, ()), "first claimant is the leader");
/// assert!(!table.begin(7, ()), "second claimant coalesces");
/// table.finish(7);
/// assert!(table.begin(7, ()), "claim is released by finish");
/// assert_eq!(table.coalesced(), 1);
/// ```
pub struct FetchTable<V> {
    shards: Vec<Mutex<FastMap<ObjectId, V>>>,
    coalesced: AtomicU64,
}

impl<V> FetchTable<V> {
    /// An empty table with `n_shards` lock shards.
    pub fn new(n_shards: usize) -> Self {
        assert!(n_shards > 0, "need at least one shard");
        FetchTable {
            shards: (0..n_shards)
                .map(|_| Mutex::new(FastMap::default()))
                .collect(),
            coalesced: AtomicU64::new(0),
        }
    }

    /// Number of lock shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Claims the fetch for `id`, storing `value` if no claim exists.
    /// Returns `true` for the leader (who must later call
    /// [`FetchTable::finish`]); `false` means a fetch is already claimed
    /// and this caller was counted as coalesced.
    pub fn begin(&self, id: ObjectId, value: V) -> bool {
        use std::collections::hash_map::Entry;
        match self.shards[shard_of(id, self.shards.len())]
            .lock()
            .entry(id)
        {
            Entry::Vacant(slot) => {
                slot.insert(value);
                true
            }
            Entry::Occupied(_) => {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Releases the claim taken by [`FetchTable::begin`], returning its
    /// value (if a claim was held).
    pub fn finish(&self, id: ObjectId) -> Option<V> {
        self.shards[shard_of(id, self.shards.len())]
            .lock()
            .remove(&id)
    }

    /// The current claim value for `id`, if any.
    pub fn get(&self, id: ObjectId) -> Option<V>
    where
        V: Clone,
    {
        self.shards[shard_of(id, self.shards.len())]
            .lock()
            .get(&id)
            .cloned()
    }

    /// Sets (or replaces) the claim value for `id` unconditionally,
    /// without leader election.
    pub fn set(&self, id: ObjectId, value: V) {
        self.shards[shard_of(id, self.shards.len())]
            .lock()
            .insert(id, value);
    }

    /// Keeps only the entries of lock shard `shard` satisfying `keep`.
    /// Periodic maintenance: each engine shard prunes its own lock shard,
    /// never touching entries owned by other shards.
    pub fn retain_shard(&self, shard: usize, keep: impl FnMut(&ObjectId, &mut V) -> bool) {
        self.shards[shard].lock().retain(keep);
    }

    /// How many [`FetchTable::begin`] calls found a fetch already claimed.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }
}

/// A sharded wrapper over any cache policy. Shared by reference across
/// threads (`&ConcurrentCache<P>` is `Sync` when `P: Send`).
///
/// The begin/finish pair delegates to an embedded [`FetchTable`] — one
/// leader fetches from the origin per object, followers coalesce:
///
/// ```
/// use lhr_policies::Lru;
/// use lhr_proto::ConcurrentCache;
///
/// let cache = ConcurrentCache::new(1 << 20, 4, Lru::new);
/// assert!(cache.begin_fetch(7), "this request leads the origin fetch");
/// assert!(!cache.begin_fetch(7), "concurrent request waits on the leader");
/// cache.finish_fetch(7);
/// assert!(cache.begin_fetch(7), "claim was released");
/// assert_eq!(cache.coalesced_fetches(), 1);
/// ```
pub struct ConcurrentCache<P> {
    name: String,
    shards: Vec<Mutex<P>>,
    shard_capacity: u64,
    /// Objects with an origin fetch in flight (the request-coalescing
    /// primitive: one leader fetches, followers wait).
    pending: FetchTable<()>,
}

impl<P: CachePolicy> ConcurrentCache<P> {
    /// Builds `n_shards` shards with `build(shard_capacity)`; total
    /// capacity is divided evenly.
    pub fn new(total_capacity: u64, n_shards: usize, build: impl Fn(u64) -> P) -> Self {
        assert!(n_shards > 0, "need at least one shard");
        let shard_capacity = (total_capacity / n_shards as u64).max(1);
        let shards: Vec<Mutex<P>> = (0..n_shards)
            .map(|_| Mutex::new(build(shard_capacity)))
            .collect();
        let name = format!("sharded({})x{}", shards[0].lock().name(), n_shards);
        ConcurrentCache {
            name,
            shards,
            shard_capacity,
            pending: FetchTable::new(n_shards),
        }
    }

    #[inline]
    fn shard_of(&self, id: ObjectId) -> usize {
        shard_of(id, self.shards.len())
    }

    /// Processes one request on the owning shard.
    pub fn handle(&self, req: &Request) -> Outcome {
        self.shards[self.shard_of(req.id)].lock().handle(req)
    }

    /// Whether `id` is cached (in its shard).
    pub fn contains(&self, id: ObjectId) -> bool {
        self.shards[self.shard_of(id)].lock().contains(id)
    }

    /// Total bytes cached across shards.
    pub fn used_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().used_bytes()).sum()
    }

    /// Aggregate capacity (shard slice × shard count).
    pub fn capacity(&self) -> u64 {
        self.shard_capacity * self.shards.len() as u64
    }

    /// Total evictions across shards.
    pub fn evictions(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().evictions()).sum()
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total policy metadata across shards.
    pub fn metadata_overhead_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().metadata_overhead_bytes())
            .sum()
    }

    /// Claims the origin fetch for `id`. Returns `true` for the leader
    /// (the caller must fetch and then call [`Self::finish_fetch`]);
    /// `false` means another request's fetch is already in flight and this
    /// one was counted as coalesced.
    pub fn begin_fetch(&self, id: ObjectId) -> bool {
        self.pending.begin(id, ())
    }

    /// Releases the in-flight claim taken by [`Self::begin_fetch`].
    pub fn finish_fetch(&self, id: ObjectId) {
        self.pending.finish(id);
    }

    /// How many fetches were coalesced into an already in-flight one.
    pub fn coalesced_fetches(&self) -> u64 {
        self.pending.coalesced()
    }
}

/// The sharded front end is itself a [`CachePolicy`], so it can sit behind
/// a [`crate::CdnServer`] or any harness written against the trait (the
/// `&mut self` methods simply delegate to the lock-per-shard `&self` path).
impl<P: CachePolicy> CachePolicy for ConcurrentCache<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn capacity(&self) -> u64 {
        ConcurrentCache::capacity(self)
    }

    fn used_bytes(&self) -> u64 {
        ConcurrentCache::used_bytes(self)
    }

    fn contains(&self, id: ObjectId) -> bool {
        ConcurrentCache::contains(self, id)
    }

    fn handle(&mut self, req: &Request) -> Outcome {
        ConcurrentCache::handle(&*self, req)
    }

    fn evictions(&self) -> u64 {
        ConcurrentCache::evictions(self)
    }

    fn metadata_overhead_bytes(&self) -> u64 {
        ConcurrentCache::metadata_overhead_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhr_policies::Lru;
    use lhr_trace::Time;

    fn req(t: u64, id: ObjectId, size: u64) -> Request {
        Request::new(Time::from_secs(t), id, size)
    }

    #[test]
    fn routes_ids_consistently() {
        let cache = ConcurrentCache::new(1_000_000, 8, Lru::new);
        assert_eq!(cache.handle(&req(0, 42, 100)), Outcome::MissAdmitted);
        assert_eq!(cache.handle(&req(1, 42, 100)), Outcome::Hit);
        assert!(cache.contains(42));
    }

    #[test]
    fn capacity_is_split_and_enforced() {
        let cache = ConcurrentCache::new(8_000, 4, Lru::new);
        assert_eq!(cache.capacity(), 8_000);
        for i in 0..1_000u64 {
            cache.handle(&req(i, i, 500));
            assert!(cache.used_bytes() <= cache.capacity());
        }
        assert!(cache.evictions() > 0);
    }

    #[test]
    fn parallel_access_is_safe_and_complete() {
        let cache = ConcurrentCache::new(1 << 24, 16, Lru::new);
        let threads = 8;
        let per_thread = 5_000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..per_thread {
                        // Each thread touches its own id range twice.
                        let id = t * per_thread + i;
                        cache.handle(&req(i, id, 100));
                        assert!(
                            cache.handle(&req(i + 1, id, 100)).is_hit(),
                            "lost an insert under concurrency"
                        );
                    }
                });
            }
        });
        assert_eq!(cache.used_bytes(), threads * per_thread * 100);
    }

    #[test]
    fn contended_hot_keys_do_not_corrupt_accounting() {
        let cache = ConcurrentCache::new(1_000_000, 4, Lru::new);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        cache.handle(&req(i, i % 64, 1_000));
                    }
                });
            }
        });
        // 64 distinct objects of 1 000 B cached exactly once each.
        assert_eq!(cache.used_bytes(), 64 * 1_000);
    }

    #[test]
    fn begin_fetch_elects_one_leader_and_counts_followers() {
        let cache = ConcurrentCache::new(1 << 20, 4, Lru::new);
        assert!(cache.begin_fetch(7), "first claimant leads");
        assert!(!cache.begin_fetch(7), "second coalesces");
        assert!(!cache.begin_fetch(7));
        assert!(cache.begin_fetch(8), "other objects are independent");
        cache.finish_fetch(7);
        assert!(cache.begin_fetch(7), "claim released after finish");
        assert_eq!(cache.coalesced_fetches(), 2);
    }

    #[test]
    fn fetch_table_stores_and_prunes_timed_claims() {
        let table: FetchTable<(f64, bool)> = FetchTable::new(4);
        table.set(1, (5.0, true));
        table.set(2, (9.0, false));
        assert_eq!(table.get(1), Some((5.0, true)));
        for s in 0..table.n_shards() {
            table.retain_shard(s, |_, &mut (done_at, _)| done_at > 6.0);
        }
        assert_eq!(table.get(1), None, "landed fetch is pruned");
        assert_eq!(table.get(2), Some((9.0, false)), "in-flight one stays");
    }

    #[test]
    fn coalescing_under_contention_elects_exactly_one_leader() {
        let cache = ConcurrentCache::new(1 << 20, 4, Lru::new);
        let threads = 8u64;
        let leaders: u64 = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let cache = &cache;
                    scope.spawn(move || u64::from(cache.begin_fetch(99)))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("join")).sum()
        });
        assert_eq!(leaders, 1, "exactly one fetch leader per object");
        assert_eq!(cache.coalesced_fetches(), threads - 1);
    }

    #[test]
    fn implements_cache_policy_trait() {
        fn exercise<P: CachePolicy>(p: &mut P) {
            p.handle(&req(0, 1, 100));
            assert!(p.contains(1));
            assert!(p.used_bytes() <= p.capacity());
            assert!(p.metadata_overhead_bytes() > 0);
        }
        let mut cache = ConcurrentCache::new(1 << 20, 8, Lru::new);
        exercise(&mut cache);
        assert_eq!(CachePolicy::name(&cache), "sharded(LRU)x8");
    }

    #[test]
    fn single_shard_degenerates_to_plain_policy() {
        let cache = ConcurrentCache::new(300, 1, Lru::new);
        cache.handle(&req(0, 1, 100));
        cache.handle(&req(1, 2, 100));
        cache.handle(&req(2, 3, 100));
        cache.handle(&req(3, 4, 100)); // evicts 1
        assert!(!cache.contains(1));
        assert!(cache.contains(4));
    }
}
