//! Log-bucketed histograms: 65 power-of-two buckets covering the full
//! `u64` range, constant memory, O(1) record.
//!
//! Bucket `b` (for `b ≥ 1`) holds values in `[2^(b−1), 2^b)`; bucket 0
//! holds exactly the value 0. Instrumented loops keep a local histogram
//! (no locking) and merge it into the shared [`crate::Obs`] registry once
//! at the end of the run.

use lhr_util::json::{FromJson, Json, JsonError, ToJson};

/// A log₂-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: vec![0; 65],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.total += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// The bucket index a value falls into.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Inclusive lower bound of bucket `b`.
    pub fn bucket_floor(b: usize) -> u64 {
        if b == 0 {
            0
        } else {
            1u64 << (b - 1)
        }
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate `p`-quantile: the inclusive floor of the bucket holding
    /// the p-th sample (so the true quantile is within 2× above it).
    pub fn quantile_floor(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((self.total as f64 * p).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (b, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Self::bucket_floor(b);
            }
        }
        Self::bucket_floor(64)
    }

    /// The non-empty buckets as `(floor, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (Self::bucket_floor(b), c))
            .collect()
    }
}

impl ToJson for LogHistogram {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("total".to_string(), self.total.to_json()),
            ("sum".to_string(), self.sum.to_json()),
            ("min".to_string(), self.min().to_json()),
            ("max".to_string(), self.max.to_json()),
            ("buckets".to_string(), self.nonzero_buckets().to_json()),
        ])
    }
}

impl FromJson for LogHistogram {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut h = LogHistogram::new();
        h.total = lhr_util::json::field(v, "total")?;
        h.sum = lhr_util::json::field(v, "sum")?;
        h.max = lhr_util::json::field(v, "max")?;
        let min: u64 = lhr_util::json::field(v, "min")?;
        h.min = if h.total == 0 { u64::MAX } else { min };
        let pairs: Vec<(u64, u64)> = lhr_util::json::field(v, "buckets")?;
        for (floor, count) in pairs {
            h.buckets[Self::bucket_of(floor)] = count;
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 2);
        assert_eq!(LogHistogram::bucket_of(4), 3);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), 64);
        for b in 0..=64usize {
            let floor = LogHistogram::bucket_floor(b);
            assert_eq!(LogHistogram::bucket_of(floor), b, "floor of bucket {b}");
        }
    }

    #[test]
    fn records_and_quantiles() {
        let mut h = LogHistogram::new();
        for v in [1u64, 2, 3, 100, 1000, 1000, 1000, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.total(), 8);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1_000_000);
        assert!(h.mean() > 0.0);
        // The median sample (rank 4 of 8) is 100 → bucket floor 64.
        assert_eq!(h.quantile_floor(0.5), 64);
        assert_eq!(h.quantile_floor(1.0), 524_288); // bucket of 1e6
    }

    #[test]
    fn merge_equals_recording_everything() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for v in 0..100u64 {
            if v % 2 == 0 {
                a.record(v * 17)
            } else {
                b.record(v * 17)
            }
            all.record(v * 17);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn json_roundtrip() {
        let mut h = LogHistogram::new();
        for v in [0u64, 5, 5, 900, u64::MAX] {
            h.record(v);
        }
        let text = h.to_json().to_string();
        let back = LogHistogram::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.to_json().to_string(), text);
        // Empty histogram survives too.
        let e = LogHistogram::new();
        let back =
            LogHistogram::from_json(&Json::parse(&e.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, e);
    }
}
