//! Simulated CDN server prototypes (§6, §7.2, Appendix A.3).
//!
//! The paper implements LHR inside Apache Traffic Server (C++) and Caffeine
//! (Java) and compares hit probability, latency, throughput and resource
//! usage. Neither server is available here, so this crate models the
//! *serving path* those experiments exercise:
//!
//! ```text
//! user ── edge RTT ──► [cache lookup → freshness check]
//!                        │ hit: serve at the edge link rate
//!                        └ miss: origin RTT + origin fetch, then serve
//! ```
//!
//! A [`server::CdnServer`] wraps any [`lhr_sim::CachePolicy`]; the
//! [`server::ServerReport`] it produces contains every row of the paper's
//! Tables 2–4 (throughput, peak CPU, peak memory, P90/P99/mean latency,
//! WAN traffic, content hit ratio). "ATS" is the server wrapped around LRU
//! (ATS's default), "Caffeine" around W-TinyLFU (Caffeine's policy), and
//! the LHR prototype around [`lhr::LhrCache`] — constructors in
//! [`presets`].
//!
//! The origin side is fallible: [`fault`] provides a deterministic seeded
//! fault schedule (errors, timeouts, latency spikes, outage windows,
//! slow-start recovery) and the resilience primitives the hardened serving
//! path layers over it — retries with backoff and jitter, a per-origin
//! circuit breaker, RFC 5861 stale serving, and request coalescing. The
//! report's availability/degradation counters quantify what survived.
//!
//! [`engine::ShardedEngine`] scales the serving path across cores: the
//! keyspace is hash-sharded over independent servers, N worker threads
//! replay the trace over bounded channels, and the per-shard results merge
//! in fixed shard order, so reports and obs exports are byte-identical at
//! any thread count (the determinism contract in `ARCHITECTURE.md`).
//!
//! [`fleet::FleetEngine`] turns the single cache into a CDN: N edge
//! nodes on a consistent-hash ring over a shared origin-shield tier,
//! with node-level fault injection (down/up windows, churn with cold
//! restarts), ring-successor failover, and a peer-hint protocol — under
//! the same determinism contract.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod concurrent;
pub mod engine;
pub mod fault;
pub mod fleet;
pub mod latency;
pub mod presets;
pub mod server;
pub mod tiered;

pub use concurrent::{ConcurrentCache, FetchTable};
pub use engine::{EngineConfig, EngineReport, ShardedEngine};
pub use fault::{
    BreakerConfig, BreakerState, CircuitBreaker, FaultConfig, FaultPlan, OriginOutcome,
    ResilienceConfig, RetryPolicy,
};
pub use fleet::{FleetConfig, FleetEngine, FleetReport, HashRing, NodeFaultConfig};
pub use latency::LatencyModel;
pub use server::{CdnServer, ServerConfig, ServerReport};
pub use tiered::{Tier, TieredCache};
