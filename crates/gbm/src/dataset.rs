//! Training data container and quantile binning.

use std::sync::{Arc, OnceLock};

/// A dense, row-major training set. Missing feature values are `f32::NAN`.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    n_features: usize,
    /// Row-major feature matrix, `n_rows × n_features`.
    features: Vec<f32>,
    /// Regression targets, one per row.
    labels: Vec<f32>,
    /// Lazily built binning of the current rows, shared between `fit` and
    /// the batched scoring path; reset by every mutation.
    cache: OnceLock<Arc<BinnedCache>>,
}

impl lhr_util::json::ToJson for Dataset {
    fn to_json(&self) -> lhr_util::json::Json {
        lhr_util::json::Json::Object(vec![
            ("n_features".to_string(), self.n_features.to_json()),
            ("features".to_string(), self.features.to_json()),
            ("labels".to_string(), self.labels.to_json()),
        ])
    }
}

impl lhr_util::json::FromJson for Dataset {
    fn from_json(v: &lhr_util::json::Json) -> Result<Self, lhr_util::json::JsonError> {
        use lhr_util::json::field;
        Ok(Dataset {
            n_features: field(v, "n_features")?,
            features: field(v, "features")?,
            labels: field(v, "labels")?,
            cache: OnceLock::new(),
        })
    }
}

impl Dataset {
    /// An empty dataset whose rows will have `n_features` columns.
    pub fn new(n_features: usize) -> Self {
        assert!(n_features > 0, "need at least one feature");
        Dataset {
            n_features,
            features: Vec::new(),
            labels: Vec::new(),
            cache: OnceLock::new(),
        }
    }

    /// Reserves room for `rows` additional rows.
    pub fn reserve(&mut self, rows: usize) {
        self.features.reserve(rows * self.n_features);
        self.labels.reserve(rows);
    }

    /// Appends one row.
    ///
    /// # Panics
    /// Panics if `row.len() != n_features` or the label is not finite.
    pub fn push_row(&mut self, row: &[f32], label: f32) {
        assert_eq!(row.len(), self.n_features, "row width mismatch");
        assert!(label.is_finite(), "labels must be finite");
        self.features.extend_from_slice(row);
        self.labels.push(label);
        self.cache = OnceLock::new();
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.labels.len()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The `i`-th row's features.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.features[i * self.n_features..(i + 1) * self.n_features]
    }

    /// All labels.
    pub fn labels(&self) -> &[f32] {
        &self.labels
    }

    /// Drops all rows, keeping the allocation (used when a sliding window
    /// rebuilds its training set).
    pub fn clear(&mut self) {
        self.features.clear();
        self.labels.clear();
        self.cache = OnceLock::new();
    }

    /// The binning of the current rows, built on first use and shared
    /// (`Arc`) by every later call until the dataset is mutated. `fit`
    /// and the batched scoring path both go through here, so a model's
    /// node thresholds are bin edges of *this exact* [`Binned`] whenever
    /// it scores its own training set.
    pub(crate) fn binned_cache(&self) -> Arc<BinnedCache> {
        Arc::clone(self.cache.get_or_init(|| {
            Arc::new(BinnedCache {
                binned: Binned::build(self),
                has_infinite: self.features.iter().any(|v| v.is_infinite()),
            })
        }))
    }
}

/// [`Binned`] plus the one fact the bitset scoring path needs about the
/// raw values: whether any is ±inf. [`Binned`] codes every non-finite
/// value as [`MISSING_BIN`], but at predict time only NaN is "missing"
/// (±inf routes by ordinary comparison), so code-space scoring is exact
/// only for datasets without infinities.
#[derive(Debug)]
pub(crate) struct BinnedCache {
    pub binned: Binned,
    pub has_infinite: bool,
}

/// Per-feature quantile bin edges plus the prebinned (u8) feature matrix.
///
/// Bin index `MISSING_BIN` marks a missing (NaN) value. A value `v` falls
/// into bin `j` where `j` is the number of edges `< v` — i.e. edges are
/// *lower-exclusive* cut points, so `tree::SplitCandidate` thresholds can be
/// reconstructed as real feature values.
///
/// `codes` is stored **feature-major** (column-major): histogram
/// construction streams one contiguous `u8` column per feature instead of
/// striding `n_features` bytes between consecutive rows.
#[derive(Debug, Clone)]
pub(crate) struct Binned {
    pub n_features: usize,
    /// `edges[f]` — ascending cut values for feature `f` (may be empty when
    /// the feature is constant).
    pub edges: Vec<Vec<f32>>,
    /// Feature-major bin indices: `codes[f * n_rows + r]`.
    pub codes: Vec<u8>,
    pub n_rows: usize,
    /// Histogram slot layout: feature `f` owns slots
    /// `slot_offsets[f]..slot_offsets[f + 1]` in a node histogram — its
    /// `n_bins(f)` real bins followed by one missing-value slot.
    pub slot_offsets: Vec<usize>,
}

/// Bin code reserved for missing values.
pub(crate) const MISSING_BIN: u8 = u8::MAX;
/// Maximum number of real bins per feature (exclusive of the missing bin).
pub(crate) const MAX_BINS: usize = 64;

impl Binned {
    /// Builds quantile bins from the dataset and encodes every value.
    pub fn build(data: &Dataset) -> Binned {
        let n_features = data.n_features();
        let n_rows = data.n_rows();
        let mut edges: Vec<Vec<f32>> = Vec::with_capacity(n_features);
        let mut scratch: Vec<f32> = Vec::with_capacity(n_rows);
        for f in 0..n_features {
            scratch.clear();
            for r in 0..n_rows {
                let v = data.row(r)[f];
                if v.is_finite() {
                    scratch.push(v);
                }
            }
            // total_cmp, not partial_cmp().expect: the filter above keeps
            // only finite values today, but a NaN slipping through must
            // degrade to an extra bin edge, never a panic on the scoring
            // path.
            scratch.sort_unstable_by(f32::total_cmp);
            scratch.dedup();
            let mut cuts = Vec::new();
            if scratch.len() > 1 {
                let want = MAX_BINS.min(scratch.len());
                // Quantile cut points. A cut at value `e` separates
                // `v ≤ e` from `v > e`, so cuts are drawn from all distinct
                // values except the largest (a cut at the max separates
                // nothing).
                for k in 1..=want.saturating_sub(1) {
                    let idx = (k * scratch.len() / want).max(1) - 1;
                    let cut = scratch[idx.min(scratch.len() - 2)];
                    if cuts.last() != Some(&cut) {
                        cuts.push(cut);
                    }
                }
            }
            edges.push(cuts);
        }

        let mut codes = vec![0u8; n_rows * n_features];
        for f in 0..n_features {
            let col = &mut codes[f * n_rows..(f + 1) * n_rows];
            let cuts = &edges[f];
            for (r, slot) in col.iter_mut().enumerate() {
                let v = data.row(r)[f];
                *slot = if v.is_finite() {
                    bin_of(cuts, v)
                } else {
                    MISSING_BIN
                };
            }
        }
        let mut slot_offsets = Vec::with_capacity(n_features + 1);
        let mut total = 0usize;
        slot_offsets.push(0);
        for cuts in &edges {
            total += cuts.len() + 2; // real bins (edges + 1) + missing slot
            slot_offsets.push(total);
        }
        Binned {
            n_features,
            edges,
            codes,
            n_rows,
            slot_offsets,
        }
    }

    /// Bin index for row `r`, feature `f` (hot paths stream [`Binned::col`]
    /// instead; kept for tests and oracles).
    #[cfg(test)]
    #[inline]
    pub fn code(&self, r: usize, f: usize) -> u8 {
        self.codes[f * self.n_rows + r]
    }

    /// The contiguous code column of feature `f` (one `u8` per row).
    #[inline]
    pub fn col(&self, f: usize) -> &[u8] {
        &self.codes[f * self.n_rows..(f + 1) * self.n_rows]
    }

    /// Total histogram slots across all features (see `slot_offsets`).
    pub fn n_slots(&self) -> usize {
        *self.slot_offsets.last().expect("offsets never empty")
    }

    /// Number of real bins for feature `f` (edges + 1).
    pub fn n_bins(&self, f: usize) -> usize {
        self.edges[f].len() + 1
    }

    /// The real-valued threshold "value ≤ edges\[f\]\[bin\]" that separates
    /// bins `0..=bin` from the rest.
    pub fn threshold(&self, f: usize, bin: u8) -> f32 {
        self.edges[f][bin as usize]
    }
}

/// Number of edges strictly less than `v` — the bin index.
#[inline]
pub(crate) fn bin_of(edges: &[f32], v: f32) -> u8 {
    edges.partition_point(|&e| e < v) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_rows() {
        let mut d = Dataset::new(3);
        d.push_row(&[1.0, 2.0, 3.0], 0.5);
        d.push_row(&[4.0, f32::NAN, 6.0], 1.0);
        assert_eq!(d.n_rows(), 2);
        assert_eq!(d.row(0), &[1.0, 2.0, 3.0]);
        assert!(d.row(1)[1].is_nan());
        assert_eq!(d.labels(), &[0.5, 1.0]);
    }

    #[test]
    #[should_panic]
    fn wrong_width_panics() {
        let mut d = Dataset::new(2);
        d.push_row(&[1.0], 0.0);
    }

    #[test]
    #[should_panic]
    fn nan_label_panics() {
        let mut d = Dataset::new(1);
        d.push_row(&[1.0], f32::NAN);
    }

    #[test]
    fn binning_separates_values() {
        let mut d = Dataset::new(1);
        for i in 0..100 {
            d.push_row(&[i as f32], 0.0);
        }
        let b = Binned::build(&d);
        assert!(b.n_bins(0) > 10);
        // Codes are monotone in the underlying value.
        for r in 1..100 {
            assert!(b.code(r, 0) >= b.code(r - 1, 0));
        }
    }

    #[test]
    fn binning_handles_constant_feature() {
        let mut d = Dataset::new(2);
        for i in 0..10 {
            d.push_row(&[5.0, i as f32], 0.0);
        }
        let b = Binned::build(&d);
        assert_eq!(b.n_bins(0), 1);
        assert!((0..10).all(|r| b.code(r, 0) == 0));
    }

    #[test]
    fn binning_marks_missing() {
        let mut d = Dataset::new(1);
        d.push_row(&[1.0], 0.0);
        d.push_row(&[f32::NAN], 0.0);
        d.push_row(&[2.0], 0.0);
        let b = Binned::build(&d);
        assert_eq!(b.code(1, 0), MISSING_BIN);
        assert_ne!(b.code(0, 0), MISSING_BIN);
    }

    #[test]
    fn threshold_reconstruction_respects_encoding() {
        let mut d = Dataset::new(1);
        for v in [1.0f32, 2.0, 3.0, 4.0, 5.0] {
            d.push_row(&[v], 0.0);
        }
        let b = Binned::build(&d);
        // For every (bin, value) pair: value's bin ≤ bin iff value ≤ threshold(bin).
        for bin in 0..(b.n_bins(0) - 1) as u8 {
            let thr = b.threshold(0, bin);
            for v in [1.0f32, 2.0, 3.0, 4.0, 5.0] {
                let code = bin_of(&b.edges[0], v);
                assert_eq!(
                    code <= bin,
                    v <= thr,
                    "bin {bin} thr {thr} v {v} code {code}"
                );
            }
        }
    }

    #[test]
    fn slot_offsets_cover_bins_plus_missing() {
        let mut d = Dataset::new(2);
        for i in 0..100 {
            d.push_row(&[i as f32, 5.0], 0.0);
        }
        let b = Binned::build(&d);
        assert_eq!(b.slot_offsets.len(), 3);
        assert_eq!(b.slot_offsets[1], b.n_bins(0) + 1);
        assert_eq!(b.n_slots(), b.n_bins(0) + 1 + b.n_bins(1) + 1);
        assert_eq!(b.col(0).len(), 100);
    }

    #[test]
    fn feature_major_codes_roundtrip_against_row_major_oracle() {
        use lhr_util::{prop, prop_assert_eq, prop_check};
        // The binned matrix is stored feature-major; this property rebins
        // every value with a naive row-major oracle (including NaN rows and
        // a constant column) and asserts `code(r, f)` / `col(f)` agree.
        prop_check!(cases: 48, (cells in prop::vec(prop::range(0u32..9), 4..240),
                                 extra in prop::range(1usize..5)) => {
            let n_features = extra + 1; // feature 0 is held constant
            let n_rows = cells.len() / extra;
            if n_rows == 0 {
                return Ok(());
            }
            let mut d = Dataset::new(n_features);
            let mut raw: Vec<Vec<f32>> = Vec::with_capacity(n_rows);
            for r in 0..n_rows {
                let mut row = vec![5.0f32]; // constant column
                for f in 0..extra {
                    // Cell value 8 encodes a missing (NaN) entry.
                    let c = cells[r * extra + f];
                    row.push(if c == 8 { f32::NAN } else { c as f32 * 1.5 });
                }
                d.push_row(&row, 0.0);
                raw.push(row);
            }
            let b = Binned::build(&d);
            for (r, row) in raw.iter().enumerate() {
                for (f, &v) in row.iter().enumerate() {
                    let expected = if v.is_finite() {
                        bin_of(&b.edges[f], v)
                    } else {
                        MISSING_BIN
                    };
                    prop_assert_eq!(b.code(r, f), expected,
                        "row {} feature {} value {}", r, f, v);
                    prop_assert_eq!(b.col(f)[r], expected,
                        "column access row {} feature {}", r, f);
                }
            }
            // The constant column collapses to a single real bin.
            prop_assert_eq!(b.n_bins(0), 1);
        });
    }

    #[test]
    fn binning_survives_nan_and_infinite_columns() {
        // Regression: the quantile sort must be NaN-total, and ±inf (which
        // passes no `is_finite` gate at *predict* time) must encode
        // deterministically. A column that is mostly NaN/±inf still bins.
        let mut d = Dataset::new(2);
        for i in 0..40 {
            let x0 = match i % 4 {
                0 => f32::NAN,
                1 => f32::INFINITY,
                2 => f32::NEG_INFINITY,
                _ => i as f32,
            };
            d.push_row(&[x0, i as f32], 0.0);
        }
        let b = Binned::build(&d);
        for r in 0..40 {
            match r % 4 {
                0 | 1 | 2 => assert_eq!(b.code(r, 0), MISSING_BIN, "row {r}"),
                _ => assert_ne!(b.code(r, 0), MISSING_BIN, "row {r}"),
            }
        }
        // bin_of itself is total on ±inf: -inf sorts before every edge,
        // +inf after all of them.
        assert_eq!(bin_of(&b.edges[0], f32::NEG_INFINITY), 0);
        assert_eq!(
            bin_of(&b.edges[0], f32::INFINITY) as usize,
            b.edges[0].len()
        );
    }

    #[test]
    fn dedup_repeated_values() {
        let mut d = Dataset::new(1);
        for _ in 0..50 {
            d.push_row(&[7.0], 0.0);
            d.push_row(&[9.0], 0.0);
        }
        let b = Binned::build(&d);
        assert_eq!(b.n_bins(0), 2);
    }
}
