//! Reproduces Figure 8: hit probability and WAN traffic of LHR vs the
//! seven SOTAs across traces and cache sizes.
fn main() {
    let options = lhr_bench::harness::Options::from_args();
    let (fig8, _fig9) = lhr_bench::experiments::sota_comparison(&options);
    println!("{fig8}");
    lhr_bench::harness::write_obs(&options);
}
