#!/usr/bin/env bash
# Tier-1 verification gate. Runs entirely offline — the workspace has no
# external dependencies, so an empty cargo registry is fine.
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release (warnings are errors)"
RUSTFLAGS="${RUSTFLAGS:-} -D warnings" cargo build --release --offline --workspace

echo "==> cargo test"
cargo test -q --offline --workspace

echo "==> cargo test --doc"
cargo test -q --doc --offline --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> gbm bench smoke (tiny scale)"
LHR_BENCH_WARMUP_MS=20 LHR_BENCH_MEASURE_MS=100 \
  cargo run --release --offline -p lhr-bench --bin gbm -- --scale tiny

echo "==> chaos suite (fault-injected serving path)"
cargo test -q --offline --test chaos

echo "==> CLI fault-preset smoke (--faults flaky)"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
cargo run --release --offline -p lhr-cli -- generate \
  --kind zipf --objects 200 --requests 5000 --seed 7 --out "$smoke_dir/t.csv"
# Capture instead of piping into `grep -q`: grep would exit at the first
# match and the CLI's line-buffered stdout then panics on EPIPE.
cargo run --release --offline -p lhr-cli -- server \
  --policy LRU --capacity 50MB --faults flaky "$smoke_dir/t.csv" \
  > "$smoke_dir/server.out"
grep -q "availability:" "$smoke_dir/server.out"

echo "==> CLI observability smoke (--obs + obs summarize)"
cargo run --release --offline -p lhr-cli -- simulate \
  --policy LHR --capacity 1MB --obs "$smoke_dir/obs.jsonl" \
  --obs-window 1000r --obs-deterministic true "$smoke_dir/t.csv"
cargo run --release --offline -p lhr-cli -- obs summarize "$smoke_dir/obs.jsonl" \
  > "$smoke_dir/summary.out"
grep -q "== obs summary ==" "$smoke_dir/summary.out"

echo "==> obs overhead bench smoke (tiny scale)"
LHR_BENCH_WARMUP_MS=20 LHR_BENCH_MEASURE_MS=100 \
  cargo run --release --offline -p lhr-bench --bin obs -- --scale tiny

echo "==> threaded-engine determinism smoke (--threads 1 vs 4)"
# The determinism contract (ARCHITECTURE.md): stable reports and
# deterministic --obs exports are byte-identical at any thread count.
cargo run --release --offline -p lhr-cli -- server \
  --policy LHR --capacity 1MB --faults flaky --threads 1 \
  --report "$smoke_dir/r1.json" \
  --obs "$smoke_dir/e1.jsonl" --obs-window 1000r --obs-deterministic true \
  "$smoke_dir/t.csv" > /dev/null
cargo run --release --offline -p lhr-cli -- server \
  --policy LHR --capacity 1MB --faults flaky --threads 4 \
  --report "$smoke_dir/r4.json" \
  --obs "$smoke_dir/e4.jsonl" --obs-window 1000r --obs-deterministic true \
  "$smoke_dir/t.csv" > /dev/null
cmp "$smoke_dir/r1.json" "$smoke_dir/r4.json"
cmp "$smoke_dir/e1.jsonl" "$smoke_dir/e4.jsonl"

echo "==> shadow-retrain determinism smoke (N-LHR, --threads 1 vs 4)"
# N-LHR retrains every window, and background_retrain (the default) runs
# each of those fits on a shadow thread with the model swap pinned to a
# deterministic later window edge — so this run swaps models repeatedly
# while trainer threads race the serving threads. Reports and obs
# exports must still be byte-identical across thread counts. The trace
# is sized so every shard crosses several retraining windows (the LHR
# window floor is 4096 requests per shard).
cargo run --release --offline -p lhr-cli -- generate \
  --kind syn-one --objects 500 --requests 40000 --seed 11 \
  --out "$smoke_dir/retrain.csv"
for t in 1 4; do
  cargo run --release --offline -p lhr-cli -- server \
    --policy N-LHR --capacity 1MB --shards 2 --threads "$t" \
    --report "$smoke_dir/nr$t.json" \
    --obs "$smoke_dir/ne$t.jsonl" --obs-window 4000r \
    --obs-deterministic true "$smoke_dir/retrain.csv" > /dev/null
done
cmp "$smoke_dir/nr1.json" "$smoke_dir/nr4.json"
cmp "$smoke_dir/ne1.jsonl" "$smoke_dir/ne4.jsonl"
# The run must actually have exercised the shadow path.
grep -q '"kind":"ModelSwap"' "$smoke_dir/ne1.jsonl"

echo "==> CLI compare --obs smoke (one recording per policy)"
cargo run --release --offline -p lhr-cli -- compare \
  --capacity 1MB --obs "$smoke_dir/cmp.jsonl" --obs-window 1000r \
  --obs-deterministic true "$smoke_dir/t.csv" > "$smoke_dir/compare.out"
grep -q "^LRU" "$smoke_dir/compare.out"
test -s "$smoke_dir/cmp.lru.jsonl"

echo "==> engine scaling bench smoke (tiny scale)"
LHR_BENCH_WARMUP_MS=20 LHR_BENCH_MEASURE_MS=100 \
  cargo run --release --offline -p lhr-bench --bin engine -- --scale tiny

echo "==> per-policy hit-path bench smoke (tiny scale)"
LHR_BENCH_WARMUP_MS=20 LHR_BENCH_MEASURE_MS=100 \
  cargo run --release --offline -p lhr-bench --bin policies -- --scale tiny

echo "==> two-process determinism test (fixed-seed hashing across OS processes)"
cargo test -q --offline --test process_determinism

echo "==> fleet chaos suite (node churn, availability floor, bounded rehash)"
cargo test -q --offline --test fleet

echo "==> CLI fleet smoke (--faults node-brownout)"
cargo run --release --offline -p lhr-cli -- fleet \
  --policy LRU --capacity 50MB --nodes 4 --faults node-brownout \
  "$smoke_dir/t.csv" > "$smoke_dir/fleet.out"
grep -q "availability:" "$smoke_dir/fleet.out"
grep -q "failovers:" "$smoke_dir/fleet.out"

echo "==> fleet determinism smoke (--threads 1 vs 4 under node-churn)"
# The fleet clause of the determinism contract (ARCHITECTURE.md): stable
# reports and deterministic --obs exports are byte-identical at any
# thread count, even while nodes leave and rejoin cold.
for t in 1 4; do
  cargo run --release --offline -p lhr-cli -- fleet \
    --policy LHR --capacity 1MB --nodes 4 --faults node-churn --threads "$t" \
    --report "$smoke_dir/f$t.json" \
    --obs "$smoke_dir/fo$t.jsonl" --obs-window 1000r --obs-deterministic true \
    "$smoke_dir/t.csv" > /dev/null
done
cmp "$smoke_dir/f1.json" "$smoke_dir/f4.json"
cmp "$smoke_dir/fo1.jsonl" "$smoke_dir/fo4.jsonl"

echo "==> trace-determinism smoke (fleet node-brownout, --trace-sample, threads 1 vs 4)"
# The seventh clause of the determinism contract (ARCHITECTURE.md):
# request-path trace sampling, exemplar marks, and SLO events are pure
# functions of the replayed trace, so traced exports stay byte-identical
# across thread counts even under node-level faults.
for t in 1 4; do
  cargo run --release --offline -p lhr-cli -- fleet \
    --policy LRU --capacity 1MB --nodes 4 --faults node-brownout --threads "$t" \
    --obs "$smoke_dir/tr$t.jsonl" --obs-window 1000r --obs-deterministic true \
    --trace-sample 1/64 "$smoke_dir/t.csv" > /dev/null
done
cmp "$smoke_dir/tr1.jsonl" "$smoke_dir/tr4.jsonl"
grep -q '"record":"trace"' "$smoke_dir/tr1.jsonl"
cargo run --release --offline -p lhr-cli -- obs trace "$smoke_dir/tr1.jsonl" \
  --slowest 3 > "$smoke_dir/trace.out"
grep -q "origin_fetch\|edge_lookup" "$smoke_dir/trace.out"

echo "==> SLO engine smoke (obs slo on a fault-free export)"
# A fault-free replay must meet a tight availability objective: obs slo
# exits 0 and prints a met verdict. (Breaches exit 1 — covered by the
# trace_determinism integration test.)
cargo run --release --offline -p lhr-cli -- server \
  --policy LRU --capacity 1MB --threads 2 \
  --obs "$smoke_dir/slo.jsonl" --obs-window 1000r --obs-deterministic true \
  --slo avail:99.9 "$smoke_dir/t.csv" > /dev/null
cargo run --release --offline -p lhr-cli -- obs slo "$smoke_dir/slo.jsonl" \
  > "$smoke_dir/slo.out"
grep -q "MET" "$smoke_dir/slo.out"

echo "==> fleet scaling bench smoke (tiny scale)"
LHR_BENCH_WARMUP_MS=20 LHR_BENCH_MEASURE_MS=100 \
  cargo run --release --offline -p lhr-bench --bin fleet -- --scale tiny

echo "==> bench --obs determinism smoke (fig2, threads 1 vs 4)"
# Sweep workers record per-cell spans into private shard recorders; the
# merged deterministic export must not depend on which worker won a cell.
for t in 1 4; do
  cargo run --release --offline -q -p lhr-bench --bin fig2 -- \
    --scale tiny --threads "$t" --obs "$smoke_dir/bench-obs$t.jsonl" > /dev/null
done
cmp "$smoke_dir/bench-obs1.jsonl" "$smoke_dir/bench-obs4.jsonl"

echo "verify: OK"
