//! Independent-reference-model (IRM) trace generation with Poisson arrivals.
//!
//! Requests arrive as a Poisson process of configurable aggregate rate; each
//! request picks an object independently from a Zipf(α) popularity
//! distribution. By Poisson thinning, each object's own request process is
//! then Poisson with rate `λ·p_i` — the exact setting in which the hazard
//! rate of the inter-request-time distribution is constant and HRO reduces
//! to size-aware LFU.

use crate::request::{Request, Time, Trace};
use crate::synth::size::SizeModel;
use crate::synth::zipf::ZipfSampler;
use lhr_util::rng::rngs::StdRng;
use lhr_util::rng::{Rng, SeedableRng};

/// Configuration for an IRM trace. Build with [`IrmConfig::new`] and the
/// chained setters, finish with [`IrmConfig::generate`].
#[derive(Debug, Clone)]
pub struct IrmConfig {
    name: String,
    n_objects: usize,
    n_requests: usize,
    zipf_alpha: f64,
    requests_per_sec: f64,
    size_model: SizeModel,
    seed: u64,
    id_offset: u64,
}

impl IrmConfig {
    /// A trace over `n_objects` distinct objects and `n_requests` requests,
    /// with defaults: Zipf(0.8) popularity, 100 req/s, 1 MiB fixed sizes,
    /// seed 0.
    pub fn new(n_objects: usize, n_requests: usize) -> Self {
        assert!(n_objects > 0, "need at least one object");
        IrmConfig {
            name: format!("irm-{n_objects}x{n_requests}"),
            n_objects,
            n_requests,
            zipf_alpha: 0.8,
            requests_per_sec: 100.0,
            size_model: SizeModel::Fixed { bytes: 1 << 20 },
            seed: 0,
            id_offset: 0,
        }
    }

    /// Sets the trace name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the Zipf popularity exponent.
    pub fn zipf_alpha(mut self, alpha: f64) -> Self {
        self.zipf_alpha = alpha;
        self
    }

    /// Sets the aggregate Poisson arrival rate in requests per second.
    pub fn requests_per_sec(mut self, rate: f64) -> Self {
        assert!(rate > 0.0, "arrival rate must be positive");
        self.requests_per_sec = rate;
        self
    }

    /// Sets the object size model.
    pub fn size_model(mut self, model: SizeModel) -> Self {
        self.size_model = model;
        self
    }

    /// Sets the PRNG seed (identical configs + seeds yield identical traces).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Offsets all object ids — useful when concatenating traces whose
    /// object populations must not overlap.
    pub fn id_offset(mut self, offset: u64) -> Self {
        self.id_offset = offset;
        self
    }

    /// Generates the trace.
    pub fn generate(&self) -> Trace {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let sampler = ZipfSampler::new(self.n_objects, self.zipf_alpha);
        let mut trace = Trace::new(self.name.clone());
        trace.requests.reserve_exact(self.n_requests);
        let mut now = 0.0f64;
        for _ in 0..self.n_requests {
            now += exp_variate(&mut rng, self.requests_per_sec);
            let rank = sampler.sample(&mut rng) as u64;
            let id = rank + self.id_offset;
            let size = self.size_model.size_for(self.seed, id);
            trace.push(Request::new(Time::from_secs_f64(now), id, size));
        }
        trace
    }
}

/// One exponential variate with the given rate (mean `1/rate`).
pub(crate) fn exp_variate<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    let u: f64 = rng.gen();
    // 1-u is in (0, 1]; ln is finite.
    -(1.0 - u).ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{rank_frequency, TraceStats};

    #[test]
    fn generates_requested_count() {
        let t = IrmConfig::new(100, 5_000).seed(1).generate();
        assert_eq!(t.len(), 5_000);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = IrmConfig::new(50, 1_000).seed(9).generate();
        let b = IrmConfig::new(50, 1_000).seed(9).generate();
        assert_eq!(a.requests, b.requests);
        let c = IrmConfig::new(50, 1_000).seed(10).generate();
        assert_ne!(a.requests, c.requests);
    }

    #[test]
    fn arrival_rate_is_respected() {
        let t = IrmConfig::new(10, 50_000)
            .requests_per_sec(200.0)
            .seed(3)
            .generate();
        let dur = t.duration().as_secs_f64();
        let rate = t.len() as f64 / dur;
        assert!((rate - 200.0).abs() / 200.0 < 0.05, "rate {rate}");
    }

    #[test]
    fn fixed_seed_generation_is_bit_reproducible() {
        // Two runs with the same seed must agree request-for-request, and
        // the stream itself is pinned against golden values so any change
        // to the PRNG or samplers that would silently alter every
        // experiment shows up here first.
        let a = IrmConfig::new(500, 5_000)
            .zipf_alpha(0.9)
            .seed(42)
            .generate();
        let b = IrmConfig::new(500, 5_000)
            .zipf_alpha(0.9)
            .seed(42)
            .generate();
        assert_eq!(a.requests, b.requests);
        let ids: Vec<u64> = a.requests.iter().take(8).map(|r| r.id).collect();
        assert_eq!(ids, [210, 83, 11, 21, 165, 3, 0, 115]);
        let ts: Vec<u64> = a
            .requests
            .iter()
            .take(4)
            .map(|r| r.ts.as_micros())
            .collect();
        assert_eq!(ts, [13_397, 32_110, 38_957, 49_989]);
    }

    #[test]
    fn popularity_is_zipf_skewed() {
        let t = IrmConfig::new(1_000, 100_000)
            .zipf_alpha(1.0)
            .seed(4)
            .generate();
        let rf = rank_frequency(&t);
        // Rank-1 object should be requested far more than rank-100.
        assert!(rf[0] > 20 * rf.get(99).copied().unwrap_or(1));
    }

    #[test]
    fn id_offset_shifts_population() {
        let t = IrmConfig::new(10, 100).id_offset(1_000).seed(5).generate();
        assert!(t.iter().all(|r| (1_000..1_010).contains(&r.id)));
    }

    #[test]
    fn stats_see_all_objects_eventually() {
        let t = IrmConfig::new(20, 20_000)
            .zipf_alpha(0.5)
            .seed(6)
            .generate();
        assert_eq!(TraceStats::compute(&t).unique_contents, 20);
    }

    #[test]
    fn exp_variate_mean() {
        let mut rng = StdRng::seed_from_u64(0);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| exp_variate(&mut rng, 4.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }
}
