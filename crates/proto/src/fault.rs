//! Deterministic origin fault injection and the resilience primitives the
//! hardened serving path is built from.
//!
//! The paper's §6 prototype serves real traffic where origins time out,
//! brown out, and go down entirely. This module models that world without
//! giving up reproducibility:
//!
//! - [`FaultPlan`] draws a per-attempt [`OriginOutcome`] (success, error,
//!   timeout, latency spike) from a seeded schedule keyed on the global
//!   origin-attempt counter — pure [`lhr_util::rng`] arithmetic, no wall
//!   clock, so two replays with the same seed see byte-identical faults.
//!   Hard outage windows and post-outage slow-start ramps are driven by
//!   *trace* time.
//! - [`RetryPolicy`] is capped exponential backoff with deterministic
//!   jitter (the jitter draws come from their own stream of the plan's
//!   seed, so retries never perturb the fault schedule).
//! - [`CircuitBreaker`] is the classic closed → open → half-open machine:
//!   consecutive fetch failures trip it open, a trace-time cool-down later
//!   it admits probes, and enough probe successes close it again.
//! - [`ResilienceConfig`] bundles the above with the RFC 5861 stale-serving
//!   windows (`stale-if-error`, `stale-while-revalidate`) and the request
//!   coalescing switch.

use lhr_trace::Time;
use lhr_util::rng::{Rng, SeedableRng, SplitMix64};

/// Stream constants separating the plan's independent draw sequences.
const STREAM_OUTCOME: u64 = 0x0F_AC_ED;
const STREAM_JITTER: u64 = 0x31_77_E5;

/// One uniform draw in `[0, 1)` keyed on `(seed, stream, n)` — stateless,
/// so outcome number `n` is the same no matter what was drawn before it.
/// Crate-visible so [`crate::fleet`] can compile node-fault presets from
/// the same deterministic draw sequence.
pub(crate) fn keyed_uniform(seed: u64, stream: u64, n: u64) -> f64 {
    let mut rng = SplitMix64::seed_from_u64(
        seed.wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(n.wrapping_mul(0xD1B5_4A32_D192_ED03)),
    );
    rng.gen()
}

/// What the origin did with one fetch attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OriginOutcome {
    /// The fetch succeeds at the nominal origin rate.
    Success,
    /// The fetch succeeds but the origin transfers at `rate_scale` of its
    /// nominal rate (latency spike or slow-start epoch).
    Slow {
        /// Multiplier in `(0, 1]` on the origin transfer rate.
        rate_scale: f64,
    },
    /// The origin answered immediately with an error (costs one origin RTT).
    Error,
    /// No answer within the client timeout (costs the full timeout).
    Timeout,
}

/// A deterministic, seeded fault schedule for the origin.
///
/// Probabilities apply per *attempt* (retries of the same request draw
/// fresh outcomes). `outages` are hard windows of trace time during which
/// every attempt times out; each outage is followed by a linear slow-start
/// ramp of `slow_start_secs` during which successful fetches run at a
/// reduced rate climbing from 10 % back to 100 %.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed for the outcome and jitter draw streams.
    pub seed: u64,
    /// Probability an attempt returns an immediate origin error.
    pub error_prob: f64,
    /// Probability an attempt times out.
    pub timeout_prob: f64,
    /// Probability an attempt succeeds slowly (latency spike).
    pub slow_prob: f64,
    /// Rate multiplier applied on a latency spike.
    pub slow_rate_scale: f64,
    /// Hard outage windows `[start_secs, end_secs)` in trace time.
    pub outages: Vec<(f64, f64)>,
    /// Length of the slow-start ramp after each outage (0 disables).
    pub slow_start_secs: f64,
}

impl Default for FaultConfig {
    /// An infallible origin — the behaviour of the pre-fault serving path.
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            error_prob: 0.0,
            timeout_prob: 0.0,
            slow_prob: 0.0,
            slow_rate_scale: 1.0,
            outages: Vec::new(),
            slow_start_secs: 0.0,
        }
    }
}

impl FaultConfig {
    /// Names accepted by [`FaultConfig::preset`] (and `--faults` in the CLI).
    pub fn preset_names() -> &'static [&'static str] {
        &["none", "flaky", "brownout", "outage", "recovery"]
    }

    /// Builds a named preset scaled to a trace of `duration_secs`:
    ///
    /// - `none` — infallible origin.
    /// - `flaky` — 5 % errors, 2 % timeouts, 5 % latency spikes at ¼ rate.
    /// - `brownout` — most fetches crawl at 1/10 rate, some error outright.
    /// - `outage` — a hard outage over the middle fifth of the trace.
    /// - `recovery` — an outage followed by a slow-start ramp, plus light
    ///   background flakiness.
    pub fn preset(name: &str, seed: u64, duration_secs: f64) -> Option<FaultConfig> {
        let d = duration_secs.max(0.0);
        Some(match name.to_ascii_lowercase().as_str() {
            "none" => FaultConfig {
                seed,
                ..FaultConfig::default()
            },
            "flaky" => FaultConfig {
                seed,
                error_prob: 0.05,
                timeout_prob: 0.02,
                slow_prob: 0.05,
                slow_rate_scale: 0.25,
                ..FaultConfig::default()
            },
            "brownout" => FaultConfig {
                seed,
                error_prob: 0.05,
                slow_prob: 0.75,
                slow_rate_scale: 0.1,
                ..FaultConfig::default()
            },
            "outage" => FaultConfig {
                seed,
                outages: vec![(0.4 * d, 0.6 * d)],
                ..FaultConfig::default()
            },
            "recovery" => FaultConfig {
                seed,
                error_prob: 0.02,
                timeout_prob: 0.01,
                slow_prob: 0.02,
                slow_rate_scale: 0.25,
                outages: vec![(0.3 * d, 0.5 * d)],
                slow_start_secs: 0.2 * d,
                ..FaultConfig::default()
            },
            _ => return None,
        })
    }
}

/// The live fault schedule: a [`FaultConfig`] plus the draw counters.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
    attempts: u64,
    jitters: u64,
}

impl FaultPlan {
    /// Builds a plan with fresh counters.
    pub fn new(config: FaultConfig) -> Self {
        FaultPlan {
            config,
            attempts: 0,
            jitters: 0,
        }
    }

    /// The configuration this plan draws from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Total origin attempts drawn so far.
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Whether trace time `now` falls inside a hard outage window.
    pub fn in_outage(&self, now: Time) -> bool {
        let t = now.as_secs_f64();
        self.config.outages.iter().any(|&(s, e)| t >= s && t < e)
    }

    /// Slow-start rate multiplier at `now`: ramps linearly from 0.1 to 1.0
    /// over `slow_start_secs` after each outage ends; 1.0 elsewhere.
    pub fn recovery_scale(&self, now: Time) -> f64 {
        if self.config.slow_start_secs <= 0.0 {
            return 1.0;
        }
        let t = now.as_secs_f64();
        let mut scale = 1.0f64;
        for &(_, end) in &self.config.outages {
            if t >= end && t < end + self.config.slow_start_secs {
                let frac = (t - end) / self.config.slow_start_secs;
                scale = scale.min(0.1 + 0.9 * frac);
            }
        }
        scale
    }

    /// Draws the outcome of the next origin attempt at trace time `now`.
    pub fn outcome(&mut self, now: Time) -> OriginOutcome {
        let n = self.attempts;
        self.attempts += 1;
        if self.in_outage(now) {
            return OriginOutcome::Timeout;
        }
        let c = &self.config;
        let u = keyed_uniform(c.seed, STREAM_OUTCOME, n);
        let base = if u < c.timeout_prob {
            OriginOutcome::Timeout
        } else if u < c.timeout_prob + c.error_prob {
            OriginOutcome::Error
        } else if u < c.timeout_prob + c.error_prob + c.slow_prob {
            OriginOutcome::Slow {
                rate_scale: c.slow_rate_scale,
            }
        } else {
            OriginOutcome::Success
        };
        let ramp = self.recovery_scale(now);
        match base {
            OriginOutcome::Success if ramp < 1.0 => OriginOutcome::Slow { rate_scale: ramp },
            OriginOutcome::Slow { rate_scale } if ramp < 1.0 => OriginOutcome::Slow {
                rate_scale: rate_scale * ramp,
            },
            other => other,
        }
    }

    /// The next deterministic jitter draw in `[0, 1)` (its own stream, so
    /// backoff jitter never shifts the fault schedule).
    pub fn jitter(&mut self) -> f64 {
        let n = self.jitters;
        self.jitters += 1;
        keyed_uniform(self.config.seed, STREAM_JITTER, n)
    }
}

/// Retry-with-exponential-backoff configuration for origin fetches.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (total attempts = `max_retries + 1`).
    pub max_retries: u32,
    /// First backoff in milliseconds; doubles per retry.
    pub base_backoff_ms: f64,
    /// Backoff cap in milliseconds.
    pub max_backoff_ms: f64,
    /// Jitter fraction in `[0, 1]`: each backoff is scaled by a uniform
    /// factor in `[1 - jitter/2, 1 + jitter/2)`.
    pub jitter: f64,
    /// Client-side per-attempt timeout in milliseconds (the cost of an
    /// attempt the origin never answers).
    pub timeout_ms: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff_ms: 50.0,
            max_backoff_ms: 2_000.0,
            jitter: 0.5,
            timeout_ms: 500.0,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (0-based), jittered by the
    /// uniform draw `u ∈ [0, 1)`.
    pub fn backoff_ms(&self, attempt: u32, u: f64) -> f64 {
        let exp = self.base_backoff_ms * 2f64.powi(attempt.min(30) as i32);
        exp.min(self.max_backoff_ms) * (1.0 - self.jitter * 0.5 + self.jitter * u)
    }
}

/// Circuit-breaker thresholds.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive fetch failures that trip the breaker open.
    pub failure_threshold: u32,
    /// Trace-time cool-down in seconds before half-open probing starts.
    pub open_secs: f64,
    /// Consecutive probe successes in half-open that close the breaker.
    pub half_open_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            open_secs: 30.0,
            half_open_successes: 2,
        }
    }
}

/// The breaker's observable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Origin considered healthy; all fetches pass through.
    Closed,
    /// Origin considered down; fetches fail fast without contacting it.
    Open,
    /// Cool-down elapsed; fetches are admitted as probes.
    HalfOpen,
}

/// Per-origin circuit breaker: closed → open → half-open, driven entirely
/// by trace time and fetch results.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    probe_successes: u32,
    open_until: Time,
    opens: u64,
    closes: u64,
}

impl CircuitBreaker {
    /// A closed breaker with zeroed counters.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            probe_successes: 0,
            open_until: Time::ZERO,
            opens: 0,
            closes: 0,
        }
    }

    /// Current state (after any cool-down transition at `allow` time).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker transitioned closed/half-open → open.
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// Times the breaker transitioned half-open → closed.
    pub fn closes(&self) -> u64 {
        self.closes
    }

    /// Whether a fetch may proceed at trace time `now`. Moves open →
    /// half-open once the cool-down has elapsed.
    pub fn allow(&mut self, now: Time) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now >= self.open_until {
                    self.state = BreakerState::HalfOpen;
                    self.probe_successes = 0;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful fetch (or probe).
    pub fn record_success(&mut self) {
        match self.state {
            BreakerState::Closed => self.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                self.probe_successes += 1;
                if self.probe_successes >= self.config.half_open_successes {
                    self.state = BreakerState::Closed;
                    self.consecutive_failures = 0;
                    self.closes += 1;
                }
            }
            BreakerState::Open => {}
        }
    }

    /// Records a failed fetch (or probe) at trace time `now`.
    pub fn record_failure(&mut self, now: Time) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.trip(now);
                }
            }
            BreakerState::HalfOpen => self.trip(now),
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, now: Time) {
        self.state = BreakerState::Open;
        self.open_until = now + Time::from_secs_f64(self.config.open_secs);
        self.consecutive_failures = 0;
        self.opens += 1;
    }
}

/// Everything the hardened serving path layers over the raw origin fetch.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Retry/backoff/timeout settings.
    pub retry: RetryPolicy,
    /// Circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// RFC 5861 `stale-if-error`: an expired cached copy may still be
    /// served for this many seconds past its freshness lifetime when the
    /// origin is unreachable. 0 disables stale-if-error.
    pub stale_if_error_secs: f64,
    /// RFC 5861 `stale-while-revalidate`: an expired copy within this many
    /// seconds past its lifetime is served immediately while revalidation
    /// happens off the user's critical path. 0 disables (revalidation stays
    /// synchronous, the pre-fault behaviour).
    pub stale_while_revalidate_secs: f64,
    /// Coalesce concurrent misses of one object into a single origin fetch.
    pub coalesce: bool,
}

impl Default for ResilienceConfig {
    /// Retries and breaker on, stale-serving off — identical user-visible
    /// behaviour to the pre-fault serving path when the origin never fails.
    fn default() -> Self {
        ResilienceConfig {
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            stale_if_error_secs: 0.0,
            stale_while_revalidate_secs: 0.0,
            coalesce: true,
        }
    }
}

impl ResilienceConfig {
    /// The full graceful-degradation stack: stale-serving enabled with a
    /// day of stale-if-error headroom and a minute of
    /// stale-while-revalidate, on top of the default retries and breaker.
    pub fn hardened() -> Self {
        ResilienceConfig {
            stale_if_error_secs: 86_400.0,
            stale_while_revalidate_secs: 60.0,
            ..ResilienceConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_always_succeeds() {
        let mut plan = FaultPlan::new(FaultConfig::default());
        for t in 0..1_000u64 {
            assert_eq!(plan.outcome(Time::from_secs(t)), OriginOutcome::Success);
        }
        assert_eq!(plan.attempts(), 1_000);
    }

    #[test]
    fn plan_is_deterministic_per_seed() {
        let config = FaultConfig::preset("flaky", 7, 100.0).unwrap();
        let mut a = FaultPlan::new(config.clone());
        let mut b = FaultPlan::new(config);
        for t in 0..5_000u64 {
            assert_eq!(
                a.outcome(Time::from_secs(t % 100)),
                b.outcome(Time::from_secs(t % 100))
            );
            assert_eq!(a.jitter().to_bits(), b.jitter().to_bits());
        }
    }

    #[test]
    fn flaky_probabilities_are_roughly_respected() {
        let mut plan = FaultPlan::new(FaultConfig::preset("flaky", 3, 1e6).unwrap());
        let n = 50_000;
        let mut errors = 0;
        let mut timeouts = 0;
        for t in 0..n {
            match plan.outcome(Time::from_secs(t)) {
                OriginOutcome::Error => errors += 1,
                OriginOutcome::Timeout => timeouts += 1,
                _ => {}
            }
        }
        let err_frac = errors as f64 / n as f64;
        let to_frac = timeouts as f64 / n as f64;
        assert!((0.04..0.06).contains(&err_frac), "{err_frac}");
        assert!((0.015..0.025).contains(&to_frac), "{to_frac}");
    }

    #[test]
    fn outage_window_times_out_every_attempt() {
        let config = FaultConfig {
            outages: vec![(10.0, 20.0)],
            ..FaultConfig::default()
        };
        let mut plan = FaultPlan::new(config);
        assert_eq!(plan.outcome(Time::from_secs(9)), OriginOutcome::Success);
        for t in 10..20u64 {
            assert_eq!(plan.outcome(Time::from_secs(t)), OriginOutcome::Timeout);
        }
        assert_eq!(plan.outcome(Time::from_secs(20)), OriginOutcome::Success);
    }

    #[test]
    fn slow_start_ramp_recovers_linearly() {
        let config = FaultConfig {
            outages: vec![(0.0, 100.0)],
            slow_start_secs: 50.0,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::new(config);
        assert!((plan.recovery_scale(Time::from_secs(100)) - 0.1).abs() < 1e-9);
        let mid = plan.recovery_scale(Time::from_secs(125));
        assert!((mid - 0.55).abs() < 1e-9, "{mid}");
        assert!((plan.recovery_scale(Time::from_secs(150)) - 1.0).abs() < 1e-9);
        // Outcomes during the ramp are Slow with the ramp's scale.
        let mut plan = plan;
        match plan.outcome(Time::from_secs(100)) {
            OriginOutcome::Slow { rate_scale } => assert!((rate_scale - 0.1).abs() < 1e-9),
            other => panic!("expected Slow, got {other:?}"),
        }
    }

    #[test]
    fn backoff_doubles_caps_and_jitters_within_bounds() {
        let retry = RetryPolicy {
            max_retries: 8,
            base_backoff_ms: 100.0,
            max_backoff_ms: 1_000.0,
            jitter: 0.5,
            timeout_ms: 500.0,
        };
        for (attempt, nominal) in [(0u32, 100.0), (1, 200.0), (2, 400.0), (5, 1_000.0)] {
            for u in [0.0, 0.5, 0.999] {
                let b = retry.backoff_ms(attempt, u);
                assert!(
                    b >= nominal * 0.75 && b < nominal * 1.25,
                    "{attempt} {u} {b}"
                );
            }
        }
        // jitter == 0 is exact: retry 1 backs off 2 × base.
        let retry = RetryPolicy {
            jitter: 0.0,
            ..retry
        };
        assert!((retry.backoff_ms(1, 0.7) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn breaker_walks_closed_open_half_open_closed() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            open_secs: 10.0,
            half_open_successes: 2,
        });
        assert_eq!(b.state(), BreakerState::Closed);
        for t in 0..3u64 {
            assert!(b.allow(Time::from_secs(t)));
            b.record_failure(Time::from_secs(t));
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 1);
        // Still cooling down: fail fast.
        assert!(!b.allow(Time::from_secs(5)));
        // Cool-down elapsed: half-open probes.
        assert!(b.allow(Time::from_secs(12)));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.closes(), 1);
    }

    #[test]
    fn half_open_failure_reopens() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            open_secs: 5.0,
            half_open_successes: 1,
        });
        b.record_failure(Time::from_secs(0));
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.allow(Time::from_secs(6)));
        b.record_failure(Time::from_secs(6));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 2);
        // The new cool-down starts at the reopening failure.
        assert!(!b.allow(Time::from_secs(10)));
        assert!(b.allow(Time::from_secs(11)));
    }

    #[test]
    fn success_resets_consecutive_failures() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            open_secs: 5.0,
            half_open_successes: 1,
        });
        b.record_failure(Time::from_secs(0));
        b.record_success();
        b.record_failure(Time::from_secs(1));
        assert_eq!(
            b.state(),
            BreakerState::Closed,
            "non-consecutive failures must not trip"
        );
        b.record_failure(Time::from_secs(2));
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn presets_build_and_unknown_is_none() {
        for name in FaultConfig::preset_names() {
            assert!(FaultConfig::preset(name, 1, 100.0).is_some(), "{name}");
        }
        assert!(FaultConfig::preset("FLAKY", 1, 100.0).is_some());
        assert!(FaultConfig::preset("nope", 1, 100.0).is_none());
    }
}
