//! Analytic cache modeling tools that complement the simulator:
//!
//! - [`che`] — the Che approximation: closed-form LRU (and LFU) hit-ratio
//!   estimates under the independent reference model, from per-object
//!   request rates. Lets operators predict hit ratios without replaying a
//!   trace, and gives the test suite an independent oracle for the
//!   simulator's LRU.
//! - [`mrc`] — miss-ratio curves for LRU with variable object sizes:
//!   exact, via byte-weighted reuse distances (a Mattson stack analysis
//!   with a Fenwick tree), and approximate via SHARDS-style spatial
//!   hash sampling for large traces.
//! - [`workingset`] — working-set-size profiles (unique bytes touched per
//!   time window), the quantity behind the paper's "active bytes" sizing
//!   argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod che;
pub mod mrc;
pub mod workingset;

pub use che::CheModel;
pub use mrc::{MissRatioCurve, MrcConfig};
pub use workingset::working_set_profile;
