//! Training data container and quantile binning.

/// A dense, row-major training set. Missing feature values are `f32::NAN`.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    n_features: usize,
    /// Row-major feature matrix, `n_rows × n_features`.
    features: Vec<f32>,
    /// Regression targets, one per row.
    labels: Vec<f32>,
}

lhr_util::impl_json!(struct Dataset { n_features, features, labels });

impl Dataset {
    /// An empty dataset whose rows will have `n_features` columns.
    pub fn new(n_features: usize) -> Self {
        assert!(n_features > 0, "need at least one feature");
        Dataset {
            n_features,
            features: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Reserves room for `rows` additional rows.
    pub fn reserve(&mut self, rows: usize) {
        self.features.reserve(rows * self.n_features);
        self.labels.reserve(rows);
    }

    /// Appends one row.
    ///
    /// # Panics
    /// Panics if `row.len() != n_features` or the label is not finite.
    pub fn push_row(&mut self, row: &[f32], label: f32) {
        assert_eq!(row.len(), self.n_features, "row width mismatch");
        assert!(label.is_finite(), "labels must be finite");
        self.features.extend_from_slice(row);
        self.labels.push(label);
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.labels.len()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The `i`-th row's features.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.features[i * self.n_features..(i + 1) * self.n_features]
    }

    /// All labels.
    pub fn labels(&self) -> &[f32] {
        &self.labels
    }

    /// Drops all rows, keeping the allocation (used when a sliding window
    /// rebuilds its training set).
    pub fn clear(&mut self) {
        self.features.clear();
        self.labels.clear();
    }
}

/// Per-feature quantile bin edges plus the prebinned (u8) feature matrix.
///
/// Bin index `MISSING_BIN` marks a missing (NaN) value. A value `v` falls
/// into bin `j` where `j` is the number of edges `< v` — i.e. edges are
/// *lower-exclusive* cut points, so `tree::SplitCandidate` thresholds can be
/// reconstructed as real feature values.
#[derive(Debug, Clone)]
pub(crate) struct Binned {
    pub n_features: usize,
    /// `edges[f]` — ascending cut values for feature `f` (may be empty when
    /// the feature is constant).
    pub edges: Vec<Vec<f32>>,
    /// Row-major bin indices, same shape as the dataset.
    pub codes: Vec<u8>,
    pub n_rows: usize,
}

/// Bin code reserved for missing values.
pub(crate) const MISSING_BIN: u8 = u8::MAX;
/// Maximum number of real bins per feature (exclusive of the missing bin).
pub(crate) const MAX_BINS: usize = 64;

impl Binned {
    /// Builds quantile bins from the dataset and encodes every value.
    pub fn build(data: &Dataset) -> Binned {
        let n_features = data.n_features();
        let n_rows = data.n_rows();
        let mut edges: Vec<Vec<f32>> = Vec::with_capacity(n_features);
        let mut scratch: Vec<f32> = Vec::with_capacity(n_rows);
        for f in 0..n_features {
            scratch.clear();
            for r in 0..n_rows {
                let v = data.row(r)[f];
                if v.is_finite() {
                    scratch.push(v);
                }
            }
            scratch.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
            scratch.dedup();
            let mut cuts = Vec::new();
            if scratch.len() > 1 {
                let want = MAX_BINS.min(scratch.len());
                // Quantile cut points. A cut at value `e` separates
                // `v ≤ e` from `v > e`, so cuts are drawn from all distinct
                // values except the largest (a cut at the max separates
                // nothing).
                for k in 1..=want.saturating_sub(1) {
                    let idx = (k * scratch.len() / want).max(1) - 1;
                    let cut = scratch[idx.min(scratch.len() - 2)];
                    if cuts.last() != Some(&cut) {
                        cuts.push(cut);
                    }
                }
            }
            edges.push(cuts);
        }

        let mut codes = vec![0u8; n_rows * n_features];
        for r in 0..n_rows {
            let row = data.row(r);
            for f in 0..n_features {
                let v = row[f];
                codes[r * n_features + f] = if v.is_finite() {
                    bin_of(&edges[f], v)
                } else {
                    MISSING_BIN
                };
            }
        }
        Binned {
            n_features,
            edges,
            codes,
            n_rows,
        }
    }

    /// Bin index for row `r`, feature `f`.
    #[inline]
    pub fn code(&self, r: usize, f: usize) -> u8 {
        self.codes[r * self.n_features + f]
    }

    /// Number of real bins for feature `f` (edges + 1).
    pub fn n_bins(&self, f: usize) -> usize {
        self.edges[f].len() + 1
    }

    /// The real-valued threshold "value ≤ edges\[f\]\[bin\]" that separates
    /// bins `0..=bin` from the rest.
    pub fn threshold(&self, f: usize, bin: u8) -> f32 {
        self.edges[f][bin as usize]
    }
}

/// Number of edges strictly less than `v` — the bin index.
#[inline]
pub(crate) fn bin_of(edges: &[f32], v: f32) -> u8 {
    edges.partition_point(|&e| e < v) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_rows() {
        let mut d = Dataset::new(3);
        d.push_row(&[1.0, 2.0, 3.0], 0.5);
        d.push_row(&[4.0, f32::NAN, 6.0], 1.0);
        assert_eq!(d.n_rows(), 2);
        assert_eq!(d.row(0), &[1.0, 2.0, 3.0]);
        assert!(d.row(1)[1].is_nan());
        assert_eq!(d.labels(), &[0.5, 1.0]);
    }

    #[test]
    #[should_panic]
    fn wrong_width_panics() {
        let mut d = Dataset::new(2);
        d.push_row(&[1.0], 0.0);
    }

    #[test]
    #[should_panic]
    fn nan_label_panics() {
        let mut d = Dataset::new(1);
        d.push_row(&[1.0], f32::NAN);
    }

    #[test]
    fn binning_separates_values() {
        let mut d = Dataset::new(1);
        for i in 0..100 {
            d.push_row(&[i as f32], 0.0);
        }
        let b = Binned::build(&d);
        assert!(b.n_bins(0) > 10);
        // Codes are monotone in the underlying value.
        for r in 1..100 {
            assert!(b.code(r, 0) >= b.code(r - 1, 0));
        }
    }

    #[test]
    fn binning_handles_constant_feature() {
        let mut d = Dataset::new(2);
        for i in 0..10 {
            d.push_row(&[5.0, i as f32], 0.0);
        }
        let b = Binned::build(&d);
        assert_eq!(b.n_bins(0), 1);
        assert!((0..10).all(|r| b.code(r, 0) == 0));
    }

    #[test]
    fn binning_marks_missing() {
        let mut d = Dataset::new(1);
        d.push_row(&[1.0], 0.0);
        d.push_row(&[f32::NAN], 0.0);
        d.push_row(&[2.0], 0.0);
        let b = Binned::build(&d);
        assert_eq!(b.code(1, 0), MISSING_BIN);
        assert_ne!(b.code(0, 0), MISSING_BIN);
    }

    #[test]
    fn threshold_reconstruction_respects_encoding() {
        let mut d = Dataset::new(1);
        for v in [1.0f32, 2.0, 3.0, 4.0, 5.0] {
            d.push_row(&[v], 0.0);
        }
        let b = Binned::build(&d);
        // For every (bin, value) pair: value's bin ≤ bin iff value ≤ threshold(bin).
        for bin in 0..(b.n_bins(0) - 1) as u8 {
            let thr = b.threshold(0, bin);
            for v in [1.0f32, 2.0, 3.0, 4.0, 5.0] {
                let code = bin_of(&b.edges[0], v);
                assert_eq!(
                    code <= bin,
                    v <= thr,
                    "bin {bin} thr {thr} v {v} code {code}"
                );
            }
        }
    }

    #[test]
    fn dedup_repeated_values() {
        let mut d = Dataset::new(1);
        for _ in 0..50 {
            d.push_row(&[7.0], 0.0);
            d.push_row(&[9.0], 0.0);
        }
        let b = Binned::build(&d);
        assert_eq!(b.n_bins(0), 2);
    }
}
