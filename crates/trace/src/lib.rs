//! Request/trace model, trace I/O, statistics, and synthetic CDN workload
//! generators for the LHR reproduction.
//!
//! A [`Trace`] is an ordered sequence of [`Request`]s, each carrying a
//! timestamp (microsecond resolution, monotone non-decreasing), an object id,
//! and an object size in bytes. All simulator crates in this workspace
//! consume traces through this crate.
//!
//! # Modules
//!
//! - [`request`] — the core [`Request`] / [`Trace`] types and the [`Time`]
//!   newtype used everywhere for determinism (no wall-clock in algorithms).
//! - [`io`] — CSV and compact binary trace readers/writers.
//! - [`stats`] — the Table 1 trace characteristics, popularity
//!   rank-frequency curves, and inter-request-time distributions (Figure 1).
//! - [`transform`] — trace sampling, slicing, and composition utilities.
//! - [`synth`] — synthetic workload generators: independent-reference Zipf,
//!   Markov-modulated processes ("Syn One" / "Syn Two" from §7.6), and
//!   production-like traces calibrated to the paper's Table 1.
//!
//! # Quick start
//!
//! ```
//! use lhr_trace::synth::{IrmConfig, SizeModel};
//!
//! // A 10k-request Zipf(0.9) trace over 1 000 objects with ~1 MiB objects.
//! let trace = IrmConfig::new(1_000, 10_000)
//!     .zipf_alpha(0.9)
//!     .size_model(SizeModel::LogNormal { median: 1 << 20, sigma: 1.0 })
//!     .seed(42)
//!     .generate();
//! assert_eq!(trace.len(), 10_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod io;
pub mod request;
pub mod stats;
pub mod synth;
pub mod transform;

pub use request::{ObjectId, Request, Time, Trace};
pub use stats::TraceStats;
