//! The latency/throughput model of §7.3: an ideal environment where the
//! edge link transmits at 8 Gbps and latency is driven by distance (RTTs)
//! and content size.

/// Deterministic service-time model.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// User ↔ edge round-trip time in milliseconds.
    pub edge_rtt_ms: f64,
    /// Edge ↔ origin round-trip time in milliseconds.
    pub origin_rtt_ms: f64,
    /// Edge link rate in Gbps (the paper's 8 Gbps).
    pub edge_gbps: f64,
    /// Origin fetch rate in Gbps (WAN bottleneck on misses).
    pub origin_gbps: f64,
}

lhr_util::impl_json!(struct LatencyModel { edge_rtt_ms, origin_rtt_ms, edge_gbps, origin_gbps });

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            edge_rtt_ms: 10.0,
            origin_rtt_ms: 60.0,
            edge_gbps: 8.0,
            origin_gbps: 2.0,
        }
    }
}

impl LatencyModel {
    /// User-perceived latency of a cache hit, in milliseconds:
    /// RTT + transfer at the edge rate (+ per-request compute time).
    pub fn hit_latency_ms(&self, size: u64, compute_ms: f64) -> f64 {
        self.edge_rtt_ms + transfer_ms(size, self.edge_gbps) + compute_ms
    }

    /// Latency of a miss: edge RTT + origin RTT + origin fetch + edge
    /// transfer (fetch and delivery overlap is ignored, matching the
    /// paper's "the larger the size, the slower the user receives the
    /// complete content").
    pub fn miss_latency_ms(&self, size: u64, compute_ms: f64) -> f64 {
        self.edge_rtt_ms
            + self.origin_rtt_ms
            + transfer_ms(size, self.origin_gbps)
            + transfer_ms(size, self.edge_gbps)
            + compute_ms
    }

    /// Latency of a revalidation that found the content unchanged: one
    /// origin RTT on top of a hit.
    pub fn revalidate_latency_ms(&self, size: u64, compute_ms: f64) -> f64 {
        self.hit_latency_ms(size, compute_ms) + self.origin_rtt_ms
    }

    /// Miss latency when the origin transfers at `rate_scale` of its
    /// nominal rate (latency spikes and slow-start epochs; `1.0` is
    /// [`LatencyModel::miss_latency_ms`]).
    pub fn miss_latency_scaled_ms(&self, size: u64, compute_ms: f64, rate_scale: f64) -> f64 {
        self.edge_rtt_ms
            + self.origin_fetch_ms(size, rate_scale)
            + transfer_ms(size, self.edge_gbps)
            + compute_ms
    }

    /// How long an origin fetch occupies the WAN side: one origin RTT plus
    /// the transfer at `rate_scale` of the nominal origin rate. This is the
    /// in-flight window concurrent misses coalesce into.
    pub fn origin_fetch_ms(&self, size: u64, rate_scale: f64) -> f64 {
        self.origin_rtt_ms + transfer_ms(size, self.origin_gbps * rate_scale.max(1e-6))
    }

    /// Latency of a request the serving path could not satisfy: the error
    /// response itself is tiny, so only the edge RTT (plus compute) remains;
    /// retry backoffs and timeouts are charged by the caller.
    pub fn error_latency_ms(&self, compute_ms: f64) -> f64 {
        self.edge_rtt_ms + compute_ms
    }

    /// Server-side occupancy of one request in milliseconds — the time the
    /// serving path is busy with it. Throughput in the "max" experiment is
    /// `total bytes / Σ service time`.
    pub fn service_ms(&self, size: u64, hit: bool, compute_ms: f64) -> f64 {
        let wire = if hit {
            transfer_ms(size, self.edge_gbps)
        } else {
            transfer_ms(size, self.origin_gbps)
        };
        wire + compute_ms
    }
}

/// Milliseconds to move `size` bytes at `gbps`.
pub fn transfer_ms(size: u64, gbps: f64) -> f64 {
    (size as f64 * 8.0) / (gbps * 1e9) * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_linearly() {
        // 1 GB at 8 Gbps = 1 s.
        assert!((transfer_ms(1_000_000_000, 8.0) - 1_000.0).abs() < 1e-6);
        assert!((transfer_ms(500_000_000, 8.0) - 500.0).abs() < 1e-6);
    }

    #[test]
    fn miss_is_slower_than_hit() {
        let m = LatencyModel::default();
        let size = 25_000_000; // ~25 MB, the CDN-A mean
        assert!(m.miss_latency_ms(size, 0.0) > m.hit_latency_ms(size, 0.0) + m.origin_rtt_ms);
    }

    #[test]
    fn compute_time_adds_to_latency() {
        let m = LatencyModel::default();
        let base = m.hit_latency_ms(1_000, 0.0);
        assert!((m.hit_latency_ms(1_000, 2.5) - base - 2.5).abs() < 1e-9);
    }

    #[test]
    fn hit_service_uses_edge_rate() {
        let m = LatencyModel::default();
        assert!(m.service_ms(1 << 20, true, 0.0) < m.service_ms(1 << 20, false, 0.0));
    }

    #[test]
    fn scaled_miss_latency_degrades_with_rate() {
        let m = LatencyModel::default();
        let size = 1 << 20;
        assert!(
            (m.miss_latency_scaled_ms(size, 0.0, 1.0) - m.miss_latency_ms(size, 0.0)).abs() < 1e-9
        );
        assert!(m.miss_latency_scaled_ms(size, 0.0, 0.1) > m.miss_latency_ms(size, 0.0));
        // The in-flight window grows as the origin slows.
        assert!(m.origin_fetch_ms(size, 0.25) > m.origin_fetch_ms(size, 1.0));
        // Error responses cost no transfer.
        assert!((m.error_latency_ms(0.0) - m.edge_rtt_ms).abs() < 1e-9);
    }

    #[test]
    fn magnitudes_match_paper_scale() {
        // The paper's Table 2 reports overall average latencies around
        // 90–170 ms on traces with mean sizes 25–100 MB; one 25 MB hit plus
        // occasional misses lands in that range.
        let m = LatencyModel::default();
        let hit = m.hit_latency_ms(25_000_000, 0.0);
        assert!((30.0..60.0).contains(&hit), "hit latency {hit}");
        let miss = m.miss_latency_ms(25_000_000, 0.0);
        assert!((150.0..300.0).contains(&miss), "miss latency {miss}");
    }
}
