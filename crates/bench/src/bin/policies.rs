//! Per-policy `handle()` throughput benchmark — the number the hot-path
//! memory-layout work (fast hashing, fused `ObjectTable`, alloc-free
//! replay) is judged by:
//!
//! ```text
//! cargo run --release -p lhr-bench --bin policies -- --scale small
//! ```
//!
//! Each policy replays the same fixed-seed IRM trace through a bare
//! `handle()` loop (no server, no simulator) and reports mean ns per
//! request. Set `LHR_BENCH_JSON=<path>` to append machine-readable results
//! plus a `policy_ns_per_op` summary line (the format committed as
//! `BENCH_policies.json`), with `host_cpus` recorded honestly as in the
//! other BENCH files.

use lhr::cache::{LhrCache, LhrConfig};
use lhr_policies::*;
use lhr_sim::CachePolicy;
use lhr_trace::synth::{IrmConfig, ProductionScale, SizeModel};
use lhr_trace::Trace;
use lhr_util::bench::{black_box, Bench};
use lhr_util::json::{Json, ToJson};
use std::io::Write;

/// Replays the trace through a fresh policy; returns a counter so the
/// optimizer can't discard the loop.
fn replay(trace: &Trace, mut policy: Box<dyn CachePolicy>) -> u64 {
    let mut hits = 0u64;
    for req in trace.iter() {
        if black_box(policy.handle(req)) == lhr_sim::Outcome::Hit {
            hits += 1;
        }
    }
    hits
}

fn main() {
    let options = lhr_bench::harness::Options::from_args();
    let requests = match options.scale {
        ProductionScale::Tiny => 20_000,
        ProductionScale::Small => 100_000,
        ProductionScale::Medium => 400_000,
        ProductionScale::Full => 1_000_000,
    };
    let trace = IrmConfig::new(10_000, requests)
        .zipf_alpha(0.9)
        .size_model(SizeModel::BoundedPareto {
            alpha: 1.2,
            min: 10_000,
            max: 10_000_000,
        })
        .seed(options.seed)
        .generate();
    let capacity = 25_000_000u64;
    let objects = 10_000u64;
    let window = (trace.duration().as_secs_f64() / 4.0).max(60.0);
    let horizon = trace.duration().as_secs_f64() / 8.0;
    let seed = options.seed;
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Every policy in the crate plus LHR itself, bare `handle()` loop.
    let policies: Vec<(&str, Box<dyn Fn() -> Box<dyn CachePolicy>>)> = vec![
        ("LRU", Box::new(move || Box::new(Lru::new(capacity)))),
        ("FIFO", Box::new(move || Box::new(Fifo::new(capacity)))),
        (
            "Random",
            Box::new(move || Box::new(RandomEviction::new(capacity, seed))),
        ),
        ("SLRU", Box::new(move || Box::new(slru(capacity)))),
        ("S4LRU", Box::new(move || Box::new(s4lru(capacity)))),
        (
            "B-LRU",
            Box::new(move || Box::new(BLru::new(capacity, objects))),
        ),
        ("LRU-4", Box::new(move || Box::new(LruK::new(capacity, 4)))),
        ("LFU-DA", Box::new(move || Box::new(LfuDa::new(capacity)))),
        ("GDSF", Box::new(move || Box::new(Gdsf::new(capacity)))),
        ("ARC", Box::new(move || Box::new(Arc::new(capacity)))),
        (
            "AdaptSize",
            Box::new(move || Box::new(AdaptSize::new(capacity, seed))),
        ),
        (
            "TinyLFU",
            Box::new(move || Box::new(TinyLfu::new(capacity, objects))),
        ),
        (
            "W-TinyLFU",
            Box::new(move || Box::new(WTinyLfu::new(capacity, objects))),
        ),
        (
            "Hyperbolic",
            Box::new(move || Box::new(Hyperbolic::new(capacity, seed))),
        ),
        ("LHD", Box::new(move || Box::new(Lhd::new(capacity, seed)))),
        ("LFO", Box::new(move || Box::new(Lfo::new(capacity, 8_192)))),
        (
            "PopCache",
            Box::new(move || Box::new(PopCache::new(capacity, horizon, seed))),
        ),
        (
            "RLCache",
            Box::new(move || Box::new(RlCache::new(capacity, horizon, seed))),
        ),
        (
            "LRB",
            Box::new(move || Box::new(Lrb::new(capacity, window, seed))),
        ),
        (
            "Hawkeye",
            Box::new(move || Box::new(Hawkeye::new(capacity))),
        ),
        (
            "LHR",
            Box::new(move || {
                Box::new(LhrCache::new(
                    capacity,
                    LhrConfig {
                        seed,
                        background_retrain: false,
                        ..LhrConfig::default()
                    },
                ))
            }),
        ),
    ];

    let mut group = Bench::new("policy_handle");
    group.throughput_elems(requests as u64);
    for (name, build) in &policies {
        group.bench(name.to_string(), || replay(black_box(&trace), build()));
    }
    let results = group.finish();

    println!("per-request handle() cost over {requests} requests ({host_cpus} host cpu(s)):");
    let mut summary: Vec<(String, f64)> = Vec::new();
    for r in &results {
        let ns_per_op = r.mean_ns / requests as f64;
        println!("  {:<12} {:>8.1} ns/op", r.name, ns_per_op);
        summary.push((r.name.clone(), ns_per_op));
    }

    if let Ok(path) = std::env::var("LHR_BENCH_JSON") {
        let mut fields = vec![
            ("group".to_string(), "policy_ns_per_op".to_json()),
            ("requests".to_string(), (requests as u64).to_json()),
            ("host_cpus".to_string(), (host_cpus as u64).to_json()),
        ];
        for (name, ns) in &summary {
            fields.push((name.clone(), ns.to_json()));
        }
        let record = Json::Object(fields);
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| writeln!(f, "{record}"));
        if let Err(e) = appended {
            eprintln!("warning: could not write {path}: {e}");
        }
    }
    lhr_bench::harness::write_obs(&options);
}
