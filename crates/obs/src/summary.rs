//! Offline rendering of an obs JSONL stream into a human-readable text
//! report — the engine behind `lhr-cache obs summarize`.
//!
//! The report shows run metadata, aggregate ratios, a sparkline of the
//! per-window hit ratio (and availability when any errors occurred), event
//! counts by kind with the first few learning-loop events spelled out, the
//! profiling span tree indented by depth, and the counter / gauge /
//! histogram registries.

use crate::event::{Event, EventKind};
use crate::hist::LogHistogram;
use crate::record::ObsRecord;
use crate::series::WindowRecord;
use crate::span::SpanRecord;
use crate::trace::TraceRecord;
use lhr_util::json::ToJson;
use std::fmt::Write as _;

const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
const SPARK_WIDTH: usize = 60;
const EVENT_DETAIL_LIMIT: usize = 10;

/// Renders a sequence of `[0, 1]` values as a sparkline, averaging down to
/// at most [`SPARK_WIDTH`] characters.
fn sparkline(values: &[f64]) -> String {
    if values.is_empty() {
        return String::new();
    }
    let chunks = values.len().min(SPARK_WIDTH);
    let mut out = String::with_capacity(chunks * 3);
    for c in 0..chunks {
        let lo = c * values.len() / chunks;
        let hi = ((c + 1) * values.len() / chunks).max(lo + 1);
        let mean = values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
        // A NaN/∞ sample (degenerate window, hand-edited export) renders as
        // the lowest bar instead of poisoning the cast.
        let mean = if mean.is_finite() { mean } else { 0.0 };
        let level = (mean.clamp(0.0, 1.0) * (SPARK.len() - 1) as f64).round() as usize;
        out.push(SPARK[level]);
    }
    out
}

fn kind_name(kind: EventKind) -> String {
    match kind.to_json() {
        lhr_util::json::Json::Str(s) => s,
        other => other.to_string(),
    }
}

fn render_windows(out: &mut String, windows: &[WindowRecord]) {
    let requests: u64 = windows.iter().map(|w| w.requests).sum();
    let hits: u64 = windows.iter().map(|w| w.hits).sum();
    let bytes_requested: u128 = windows.iter().map(|w| w.bytes_requested).sum();
    let bytes_hit: u128 = windows.iter().map(|w| w.bytes_hit).sum();
    let errors: u64 = windows.iter().map(|w| w.errors).sum();
    let evictions: u64 = windows.iter().map(|w| w.evictions).sum();
    let _ = writeln!(
        out,
        "windows: {} ({} measured requests)",
        windows.len(),
        requests
    );
    if requests > 0 {
        let _ = writeln!(
            out,
            "  hit ratio       {:.4}",
            hits as f64 / requests as f64
        );
    }
    if bytes_requested > 0 {
        let _ = writeln!(
            out,
            "  byte hit ratio  {:.4}",
            bytes_hit as f64 / bytes_requested as f64
        );
    }
    if evictions > 0 {
        let _ = writeln!(out, "  evictions       {evictions}");
    }
    // A one-character sparkline carries no trend information; skip it.
    if windows.len() > 1 {
        let ratios: Vec<f64> = windows.iter().map(|w| w.hit_ratio()).collect();
        let _ = writeln!(out, "  hit ratio/win   {}", sparkline(&ratios));
    }
    if errors > 0 {
        if windows.len() > 1 {
            let avail: Vec<f64> = windows.iter().map(|w| w.availability()).collect();
            let _ = writeln!(out, "  availability    {}", sparkline(&avail));
        }
        let _ = writeln!(out, "  errors          {errors}");
    }
}

fn render_events(out: &mut String, events: &[Event]) {
    let _ = writeln!(out, "events: {}", events.len());
    // Counts per kind, in first-seen order.
    let mut counts: Vec<(String, u64)> = Vec::new();
    for e in events {
        let name = kind_name(e.kind);
        match counts.iter_mut().find(|(k, _)| *k == name) {
            Some((_, n)) => *n += 1,
            None => counts.push((name, 1)),
        }
    }
    for (kind, n) in &counts {
        let _ = writeln!(out, "  {kind:<16} {n}");
    }
    // The learning loop's story, spelled out.
    let learning: Vec<&Event> = events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                EventKind::Detect
                    | EventKind::Retrain
                    | EventKind::ThresholdUpdate
                    | EventKind::ModelSwap
            )
        })
        .collect();
    if !learning.is_empty() {
        let shown = learning.len().min(EVENT_DETAIL_LIMIT);
        let _ = writeln!(out, "  first {shown} learning events:");
        for e in &learning[..shown] {
            let fields: Vec<String> = e.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
            let _ = writeln!(
                out,
                "    t={:<10} {:<16} {}",
                e.t,
                kind_name(e.kind),
                fields.join(" ")
            );
        }
        if learning.len() > shown {
            let _ = writeln!(out, "    … {} more", learning.len() - shown);
        }
    }
}

/// The per-window story: each window with a sampled exemplar gets one
/// line linking its aggregate hit ratio (and errors) to the concrete
/// worst-latency trace id `obs trace --id` can pull up.
fn render_traces(out: &mut String, windows: &[WindowRecord], traces: &[TraceRecord]) {
    let _ = writeln!(out, "traces: {} sampled", traces.len());
    let exemplars: Vec<&TraceRecord> = traces.iter().filter(|t| t.exemplar).collect();
    if exemplars.is_empty() {
        return;
    }
    let _ = writeln!(out, "  per-window exemplars (worst sampled latency):");
    let shown = exemplars.len().min(EVENT_DETAIL_LIMIT);
    for t in &exemplars[..shown] {
        let window = windows.iter().find(|w| w.index == t.window);
        let story = match window {
            Some(w) => {
                let mut s = format!("hit {:.2}", w.hit_ratio());
                if w.errors > 0 {
                    let _ = write!(s, ", {} errors", w.errors);
                }
                s
            }
            None => "no window record".to_string(),
        };
        let _ = writeln!(
            out,
            "    window {:<4} {story:<24} exemplar trace {} ({:.1} ms, {} steps)",
            t.window,
            t.id,
            t.latency_ms,
            t.steps.len()
        );
    }
    if exemplars.len() > shown {
        let _ = writeln!(out, "    … {} more", exemplars.len() - shown);
    }
}

fn render_spans(out: &mut String, spans: &[SpanRecord]) {
    let _ = writeln!(out, "spans:");
    let _ = writeln!(
        out,
        "  {:<40} {:>10} {:>12} {:>12}",
        "span", "count", "total_s", "self_s"
    );
    for s in spans {
        let depth = s.path.matches('/').count();
        let name = s.path.rsplit('/').next().unwrap_or(&s.path);
        let label = format!("{}{}", "  ".repeat(depth), name);
        let _ = writeln!(
            out,
            "  {:<40} {:>10} {:>12.6} {:>12.6}",
            label, s.count, s.total_secs, s.self_secs
        );
    }
}

fn render_hist(out: &mut String, name: &str, h: &LogHistogram) {
    let _ = writeln!(
        out,
        "  {:<24} n={} mean={:.1} min={} max={} p50≥{} p99≥{}",
        name,
        h.total(),
        h.mean(),
        h.min(),
        h.max(),
        h.quantile_floor(0.5),
        h.quantile_floor(0.99),
    );
}

/// A hottest-shard/mean ratio above this renders the skew hint. Kept in
/// sync with `lhr_proto::engine::SKEW_HINT_THRESHOLD` (obs can't depend on
/// proto — the dependency points the other way).
const SKEW_HINT_THRESHOLD: f64 = 1.25;

/// One-line `--shards` hint when the engine's exported gauges say the
/// keyspace is skewed (see `lhr_proto::engine::shard_skew`).
fn render_skew_hint(out: &mut String, gauges: &[(String, f64)]) {
    let find = |name: &str| gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v);
    let (Some(imbalance), Some(suggested)) = (
        find("engine.shard_imbalance"),
        find("engine.suggested_shards"),
    ) else {
        return;
    };
    if imbalance > SKEW_HINT_THRESHOLD {
        let _ = writeln!(
            out,
            "hint: hottest shard served {imbalance:.2}× the mean — consider --shards {}",
            suggested as u64
        );
    }
}

/// Parses an obs JSONL stream and renders the text report. Returns an error
/// string naming the first malformed line.
pub fn summarize(jsonl: &str) -> Result<String, String> {
    let mut meta: Vec<(String, String)> = Vec::new();
    let mut windows: Vec<WindowRecord> = Vec::new();
    let mut events: Vec<Event> = Vec::new();
    let mut counters: Vec<(String, u64)> = Vec::new();
    let mut gauges: Vec<(String, f64)> = Vec::new();
    let mut hists: Vec<(String, LogHistogram)> = Vec::new();
    let mut spans: Vec<SpanRecord> = Vec::new();
    let mut traces: Vec<TraceRecord> = Vec::new();
    let mut tracing_enabled = false;
    for (i, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record = ObsRecord::parse_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        match record {
            ObsRecord::Meta(fields) => {
                tracing_enabled |= fields.iter().any(|(k, _)| k == "trace_sample");
                meta.extend(fields.into_iter().map(|(k, v)| (k, v.to_string())))
            }
            ObsRecord::Window(w) => windows.push(w),
            ObsRecord::Event(e) => events.push(e),
            ObsRecord::Counter { name, value } => counters.push((name, value)),
            ObsRecord::Gauge { name, value } => gauges.push((name, value)),
            ObsRecord::Hist { name, hist } => hists.push((name, hist)),
            ObsRecord::Span(s) => spans.push(s),
            ObsRecord::Trace(t) => traces.push(t),
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "== obs summary ==");
    if !meta.is_empty() {
        let rendered: Vec<String> = meta.iter().map(|(k, v)| format!("{k}={v}")).collect();
        let _ = writeln!(out, "meta: {}", rendered.join(" "));
    }
    // Degenerate exports (a crashed run, a meta-only stream, a recorder
    // that never completed a window) say so explicitly rather than
    // rendering an empty report that reads like truncated output.
    if windows.is_empty() {
        let _ = writeln!(out, "windows: none (no completed metric windows)");
    } else {
        render_windows(&mut out, &windows);
    }
    if events.is_empty() {
        let _ = writeln!(out, "events: none");
    } else {
        render_events(&mut out, &events);
    }
    // Only say "traces: none" when tracing was actually on for the run
    // (the meta line carries `trace_sample`) — an untraced export just
    // omits the section, a degenerate traced one says so explicitly.
    if !traces.is_empty() {
        render_traces(&mut out, &windows, &traces);
    } else if tracing_enabled {
        let _ = writeln!(out, "traces: none (sampling enabled, nothing sampled)");
    }
    if !counters.is_empty() {
        let _ = writeln!(out, "counters:");
        for (name, value) in &counters {
            let _ = writeln!(out, "  {name:<24} {value}");
        }
    }
    if !gauges.is_empty() {
        let _ = writeln!(out, "gauges:");
        for (name, value) in &gauges {
            let _ = writeln!(out, "  {name:<24} {value}");
        }
    }
    render_skew_hint(&mut out, &gauges);
    if !hists.is_empty() {
        let _ = writeln!(out, "histograms:");
        for (name, h) in &hists {
            render_hist(&mut out, name, h);
        }
    }
    if !spans.is_empty() {
        render_spans(&mut out, &spans);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Obs, ObsConfig};
    use crate::series::{ObsWindow, ReqSample, SeriesAcc};

    #[test]
    fn sparkline_scales_and_downsamples() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0.0, 1.0]), "▁█");
        let many: Vec<f64> = (0..600).map(|i| i as f64 / 599.0).collect();
        assert_eq!(sparkline(&many).chars().count(), SPARK_WIDTH);
    }

    #[test]
    fn summarize_renders_a_full_report() {
        let obs = Obs::new(ObsConfig {
            window: ObsWindow::Requests(2),
            deterministic: true,
            ..ObsConfig::default()
        });
        obs.set_meta("policy", "lhr");
        let mut acc = SeriesAcc::new(obs.window());
        for i in 0..6u64 {
            let s = if i % 2 == 0 {
                ReqSample::hit(i, 100)
            } else {
                ReqSample::miss_admitted(i, 100)
            };
            acc.on_request(s);
        }
        obs.push_windows(acc.finish());
        obs.emit(crate::Event::new(2.0, EventKind::Detect).field("alpha", 0.9f64));
        obs.emit(crate::Event::new(2.0, EventKind::Retrain).field("rows", 128u64));
        obs.counter_add("sim.requests", 6);
        obs.gauge_set("lhr.threshold", 0.25);
        let mut h = LogHistogram::new();
        h.record(500);
        obs.hist_merge("latency_us", &h);
        {
            let _g = obs.span("sim.run");
        }
        let report = summarize(&obs.to_jsonl()).unwrap();
        for needle in [
            "== obs summary ==",
            "policy=\"lhr\"",
            "windows: 3",
            "hit ratio       0.5000",
            "Detect",
            "Retrain",
            "alpha=0.9",
            "sim.requests",
            "lhr.threshold",
            "latency_us",
            "sim.run",
        ] {
            assert!(report.contains(needle), "missing {needle:?} in:\n{report}");
        }
    }

    #[test]
    fn skew_hint_appears_only_when_imbalanced() {
        let skewed = Obs::new(ObsConfig::default());
        skewed.gauge_set("engine.shard_imbalance", 3.4);
        skewed.gauge_set("engine.suggested_shards", 64.0);
        let report = summarize(&skewed.to_jsonl()).unwrap();
        assert!(
            report.contains("hint: hottest shard served 3.40× the mean — consider --shards 64"),
            "{report}"
        );

        let even = Obs::new(ObsConfig::default());
        even.gauge_set("engine.shard_imbalance", 1.01);
        even.gauge_set("engine.suggested_shards", 16.0);
        let report = summarize(&even.to_jsonl()).unwrap();
        assert!(!report.contains("hint:"), "{report}");
    }

    #[test]
    fn summarize_rejects_garbage() {
        assert!(summarize("{\"record\":\"window\"").is_err());
        assert!(summarize("").unwrap().contains("obs summary"));
    }

    #[test]
    fn sparkline_survives_non_finite_values() {
        let s = sparkline(&[f64::NAN, 0.5, f64::INFINITY, f64::NEG_INFINITY]);
        assert_eq!(s.chars().count(), 4, "{s}");
        assert_eq!(s.chars().next(), Some(SPARK[0]));
    }

    /// A meta-only export (e.g. a run that crashed before its first window
    /// closed, with an empty event bus) must render an explicit report, not
    /// a bare header that reads like truncated output.
    #[test]
    fn summarize_handles_meta_only_export() {
        let obs = Obs::new(ObsConfig::default());
        obs.set_meta("policy", "lru");
        let report = summarize(&obs.to_jsonl()).unwrap();
        assert!(report.contains("policy=\"lru\""), "{report}");
        assert!(
            report.contains("windows: none (no completed metric windows)"),
            "{report}"
        );
        assert!(report.contains("events: none"), "{report}");
    }

    /// A single completed window renders its aggregates but skips the
    /// one-character sparklines, which carry no trend information.
    #[test]
    fn summarize_handles_single_window_without_sparkline() {
        let obs = Obs::new(ObsConfig {
            window: ObsWindow::Requests(4),
            deterministic: true,
            ..ObsConfig::default()
        });
        let mut acc = SeriesAcc::new(obs.window());
        for i in 0..4u64 {
            acc.on_request(ReqSample::hit(i, 100));
        }
        obs.push_windows(acc.finish());
        let report = summarize(&obs.to_jsonl()).unwrap();
        assert!(
            report.contains("windows: 1 (4 measured requests)"),
            "{report}"
        );
        assert!(report.contains("hit ratio       1.0000"), "{report}");
        assert!(!report.contains("hit ratio/win"), "{report}");
    }

    /// Windows that measured nothing (all warmup, or an idle tail) must not
    /// divide by zero anywhere in the report.
    #[test]
    fn summarize_handles_zero_request_windows() {
        let zero = WindowRecord {
            index: 0,
            ..WindowRecord::default()
        };
        let jsonl = format!("{}\n", ObsRecord::Window(zero).to_line());
        let report = summarize(&jsonl).unwrap();
        assert!(
            report.contains("windows: 1 (0 measured requests)"),
            "{report}"
        );
        assert!(!report.contains("hit ratio "), "{report}");
        assert!(!report.contains("NaN"), "{report}");
    }

    /// Sampled traces surface in the report: a count line plus one
    /// per-window exemplar line naming the trace id `obs trace --id` takes.
    #[test]
    fn summarize_surfaces_exemplar_trace_ids() {
        let obs = Obs::new(ObsConfig {
            window: ObsWindow::Requests(2),
            deterministic: true,
            trace_sample: 1,
            ..ObsConfig::default()
        });
        let mut acc = SeriesAcc::new(obs.window());
        for i in 0..4u64 {
            acc.on_request(ReqSample::hit(i, 100));
            let w = acc.last_index();
            let b = crate::trace::TraceBuilder::new(i, i * 10, (i as u64) * 1_000_000, 100);
            obs.push_trace(b.finish(1.0 + i as f64, w));
        }
        obs.push_windows(acc.finish());
        let report = summarize(&obs.to_jsonl()).unwrap();
        assert!(report.contains("traces: 4 sampled"), "{report}");
        // Worst latency in window 0 is trace 1 (2.0 ms), in window 1 trace 3.
        assert!(report.contains("exemplar trace 1 (2.0 ms"), "{report}");
        assert!(report.contains("exemplar trace 3 (4.0 ms"), "{report}");
    }

    /// A traced run that sampled nothing says so explicitly; an untraced
    /// export keeps its old byte-for-byte report (no traces section).
    #[test]
    fn summarize_renders_traces_none_only_when_tracing_was_on() {
        let traced = Obs::new(ObsConfig {
            trace_sample: 1_000_000,
            ..ObsConfig::default()
        });
        let report = summarize(&traced.to_jsonl()).unwrap();
        assert!(
            report.contains("traces: none (sampling enabled, nothing sampled)"),
            "{report}"
        );

        let untraced = Obs::new(ObsConfig::default());
        let report = summarize(&untraced.to_jsonl()).unwrap();
        assert!(!report.contains("traces"), "{report}");
    }
}
