//! Hawkeye (Jain & Lin, ISCA '16) adapted from hardware caches to CDN
//! objects, per the paper's §8: "applying Bélády to history data".
//!
//! Hawkeye's two pieces survive the adaptation intact:
//!
//! - **OPTgen**: a liveness-interval oracle over recent history. For each
//!   reuse interval `[prev, now]` it asks whether Belady-with-sizes could
//!   have kept the object, by checking a per-slot byte-occupancy vector;
//!   if every slot in the interval has headroom, OPT would have hit, and
//!   the occupancy is charged.
//! - **A learned predictor** trained by OPTgen's verdicts. Hardware
//!   Hawkeye keys the predictor by load PC; CDN requests have no PC, so the
//!   predictor is a hashed table over object ids (which also generalizes to
//!   hash-colliding "content groups", mirroring the paper's observation
//!   that the idea carries over to CDNs).
//!
//! Cache-friendly objects are inserted at MRU of a friendly list;
//! cache-averse ones go to an averse list that is always evicted first.

use crate::util::{Handle, LruList};
use lhr_sim::{CachePolicy, Outcome};
use lhr_trace::{ObjectId, Request};
use lhr_util::hash::FastMap;

/// Requests per OPTgen occupancy slot (coarsening keeps the interval walk
/// cheap; hardware OPTgen uses one slot per set access for the same
/// reason).
const REQS_PER_SLOT: u64 = 16;
/// Number of occupancy slots retained (history window = SLOTS × REQS_PER_SLOT
/// requests).
const SLOTS: usize = 4_096;
/// Size of the hashed predictor table.
const PREDICTOR_SLOTS: usize = 32_768;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ListKind {
    Friendly,
    Averse,
}

/// The Hawkeye policy.
#[derive(Debug)]
pub struct Hawkeye {
    capacity: u64,
    used: u64,
    friendly: LruList<(ObjectId, u64)>,
    averse: LruList<(ObjectId, u64)>,
    map: FastMap<ObjectId, (Handle, ListKind, u64)>,
    /// 3-bit saturating counters indexed by hashed id; ≥ 0 ⇒ friendly.
    predictor: Vec<i8>,
    /// OPTgen ring: bytes OPT would hold during each slot.
    occupancy: Vec<u64>,
    /// Absolute slot number of `occupancy`'s logical start.
    first_slot: u64,
    /// Monotone request counter.
    clock: u64,
    /// id → absolute slot of its previous request (pruned as it ages out).
    last_seen: FastMap<ObjectId, u64>,
    evictions: u64,
}

impl Hawkeye {
    /// A Hawkeye cache of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Hawkeye {
            capacity,
            used: 0,
            friendly: LruList::new(),
            averse: LruList::new(),
            map: FastMap::default(),
            predictor: vec![0i8; PREDICTOR_SLOTS],
            occupancy: vec![0u64; SLOTS],
            first_slot: 0,
            clock: 0,
            last_seen: FastMap::default(),
            evictions: 0,
        }
    }

    #[inline]
    fn slot_of(clock: u64) -> u64 {
        clock / REQS_PER_SLOT
    }

    #[inline]
    fn predictor_index(id: ObjectId) -> usize {
        let mut x = id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 29;
        (x as usize) & (PREDICTOR_SLOTS - 1)
    }

    fn is_friendly(&self, id: ObjectId) -> bool {
        self.predictor[Self::predictor_index(id)] >= 0
    }

    fn train(&mut self, id: ObjectId, opt_hit: bool) {
        let counter = &mut self.predictor[Self::predictor_index(id)];
        if opt_hit {
            *counter = (*counter + 1).min(3);
        } else {
            *counter = (*counter - 1).max(-4);
        }
    }

    /// Advances the occupancy ring so it covers `slot`.
    fn advance_to(&mut self, slot: u64) {
        while self.first_slot + (SLOTS as u64) <= slot {
            // Drop the oldest slot, append a fresh one.
            let idx = (self.first_slot % SLOTS as u64) as usize;
            self.occupancy[idx] = 0;
            self.first_slot += 1;
        }
    }

    /// OPTgen: would Belady have hit this reuse interval? Charges occupancy
    /// when yes. The interval is end-exclusive (`[prev, now)`), mirroring
    /// hardware OPTgen where each access owns its own time quantum; a reuse
    /// within one slot is below the oracle's resolution and counts as a
    /// free hit.
    fn optgen_decide(&mut self, size: u64, prev_slot: u64, now_slot: u64) -> bool {
        if prev_slot == now_slot {
            return true;
        }
        let lo = prev_slot.max(self.first_slot);
        if lo >= now_slot {
            return false; // interval entirely aged out
        }
        for s in lo..now_slot {
            let idx = (s % SLOTS as u64) as usize;
            if self.occupancy[idx] + size > self.capacity {
                return false;
            }
        }
        for s in lo..now_slot {
            let idx = (s % SLOTS as u64) as usize;
            self.occupancy[idx] += size;
        }
        true
    }

    fn evict_one(&mut self) {
        let (id, size) = if let Some(victim) = self.averse.pop_back() {
            victim
        } else {
            self.friendly
                .pop_back()
                .expect("cache full but both lists empty")
        };
        self.map.remove(&id);
        self.used -= size;
        self.evictions += 1;
    }

    /// Prunes aged-out reuse anchors to bound `last_seen`.
    fn prune_last_seen(&mut self) {
        let horizon = self.first_slot;
        self.last_seen.retain(|_, &mut slot| slot >= horizon);
    }
}

impl CachePolicy for Hawkeye {
    fn name(&self) -> &str {
        "Hawkeye"
    }
    fn capacity(&self) -> u64 {
        self.capacity
    }
    fn used_bytes(&self) -> u64 {
        self.used
    }
    fn contains(&self, id: ObjectId) -> bool {
        self.map.contains_key(&id)
    }

    fn handle(&mut self, req: &Request) -> Outcome {
        // --- OPTgen bookkeeping (independent of the real cache state) ---
        let now_slot = Self::slot_of(self.clock);
        self.advance_to(now_slot);
        if let Some(prev_slot) = self.last_seen.insert(req.id, now_slot) {
            let opt_hit = self.optgen_decide(req.size, prev_slot, now_slot);
            self.train(req.id, opt_hit);
        }
        self.clock += 1;
        if self.clock.is_multiple_of(REQS_PER_SLOT * SLOTS as u64 / 4) {
            self.prune_last_seen();
        }

        // --- Real cache ---
        if let Some(&(handle, kind, _)) = self.map.get(&req.id) {
            let friendly_now = self.is_friendly(req.id);
            match (kind, friendly_now) {
                (ListKind::Friendly, true) => self.friendly.move_to_front(handle),
                (ListKind::Averse, false) => self.averse.move_to_front(handle),
                (ListKind::Friendly, false) => {
                    let (id, size) = self.friendly.remove(handle);
                    let h = self.averse.push_front((id, size));
                    self.map.insert(id, (h, ListKind::Averse, size));
                }
                (ListKind::Averse, true) => {
                    let (id, size) = self.averse.remove(handle);
                    let h = self.friendly.push_front((id, size));
                    self.map.insert(id, (h, ListKind::Friendly, size));
                }
            }
            return Outcome::Hit;
        }
        if req.size > self.capacity {
            return Outcome::MissBypassed;
        }
        while self.used + req.size > self.capacity {
            self.evict_one();
        }
        let kind = if self.is_friendly(req.id) {
            ListKind::Friendly
        } else {
            ListKind::Averse
        };
        let handle = match kind {
            ListKind::Friendly => self.friendly.push_front((req.id, req.size)),
            ListKind::Averse => self.averse.push_front((req.id, req.size)),
        };
        self.map.insert(req.id, (handle, kind, req.size));
        self.used += req.size;
        Outcome::MissAdmitted
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }

    fn metadata_overhead_bytes(&self) -> u64 {
        (self.map.len() * 64
            + self.last_seen.len() * 16
            + self.predictor.len()
            + self.occupancy.len() * 8) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhr_trace::Time;

    fn req(t: u64, id: ObjectId, size: u64) -> Request {
        Request::new(Time::from_secs(t), id, size)
    }

    #[test]
    fn basic_hits() {
        let mut c = Hawkeye::new(1_000);
        assert_eq!(c.handle(&req(0, 1, 400)), Outcome::MissAdmitted);
        assert!(c.handle(&req(1, 1, 400)).is_hit());
    }

    #[test]
    fn optgen_trains_friendly_for_tight_reuse() {
        let mut c = Hawkeye::new(10_000);
        for t in 0..20 {
            c.handle(&req(t, 1, 100));
        }
        assert!(c.is_friendly(1));
        assert_eq!(c.predictor[Hawkeye::predictor_index(1)], 3);
    }

    #[test]
    fn optgen_trains_averse_when_interval_cannot_fit() {
        let mut c = Hawkeye::new(1_000);
        // Interleave object 1 with enough traffic that OPT could not hold
        // it: 20 distinct 1 000-byte objects between touches fills every
        // slot's occupancy.
        let mut t = 0u64;
        for _round in 0..12 {
            c.handle(&req(t, 1, 900));
            t += 1;
            for filler in 0..40u64 {
                c.handle(&req(t, 1_000 + filler, 900));
                t += 1;
            }
        }
        // Fillers are re-seen every round with 40 × 900 B of competing
        // liveness — OPT with 1 000 B cannot keep them all, so most verdicts
        // are misses and the shared-hash counters trend averse for the
        // filler population.
        let averse_fillers = (1_000..1_040u64).filter(|&id| !c.is_friendly(id)).count();
        assert!(
            averse_fillers > 30,
            "only {averse_fillers}/40 trained averse"
        );
    }

    #[test]
    fn averse_objects_evicted_before_friendly() {
        let mut c = Hawkeye::new(300);
        // Train 1 friendly, 900/901 averse.
        for t in 0..10 {
            c.handle(&req(t, 1, 100));
        }
        c.predictor[Hawkeye::predictor_index(900)] = -2;
        c.predictor[Hawkeye::predictor_index(901)] = -2;
        c.handle(&req(20, 900, 100));
        c.handle(&req(21, 901, 100));
        // Cache now holds 1 (friendly) + 900, 901 (averse). Insert another:
        c.handle(&req(22, 902, 100));
        assert!(
            c.contains(1),
            "friendly object was evicted before averse ones"
        );
    }

    #[test]
    fn capacity_respected() {
        let mut c = Hawkeye::new(2_000);
        for i in 0..5_000u64 {
            c.handle(&req(i, i % 61, 150 + (i % 4) * 100));
            assert!(c.used_bytes() <= 2_000);
        }
        assert!(c.evictions() > 0);
    }

    #[test]
    fn ring_advances_without_panic_over_long_traces() {
        let mut c = Hawkeye::new(5_000);
        for i in 0..(REQS_PER_SLOT * SLOTS as u64 * 2) {
            c.handle(&req(i, i % 1_000, 100));
        }
        // last_seen must have been pruned to the window.
        assert!(c.last_seen.len() <= 1_000);
    }
}
