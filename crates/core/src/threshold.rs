//! The auto-tuned admission threshold (§4.2, §5.2.3).
//!
//! Per window `k` with threshold `δ_k`, the estimator evaluates the
//! candidate set `Δ_k = {0, 0.5, δ_k − 0.1, δ_k + 0.1}` by *shadow
//! simulation* over (half of) the window's requests, using the learned
//! admission probabilities and LHR's own eviction rule. The best candidate
//! `δ̂` replaces `δ_k` only when its hit probability improves on `h(δ_k)`
//! by more than β (default 0.2%), which suppresses jitter.

use lhr_trace::{ObjectId, Time};
use lhr_util::hash::FastMap;
use lhr_util::rng::rngs::SmallRng;
use lhr_util::rng::{Rng, SeedableRng};

/// One shadow-simulation input record: a window request annotated with its
/// learned admission probability.
#[derive(Debug, Clone, Copy)]
pub struct ShadowRequest {
    /// Request timestamp.
    pub ts: Time,
    /// Object id.
    pub id: ObjectId,
    /// Object size in bytes.
    pub size: u64,
    /// Learned admission probability `p_i` at this request.
    pub prob: f64,
}

/// The estimator state.
#[derive(Debug, Clone)]
pub struct ThresholdEstimator {
    /// Current threshold δ.
    pub delta: f64,
    /// Minimum improvement required to adopt a new threshold.
    pub beta: f64,
    /// Fraction of the window used for estimation (the paper observes half
    /// suffices).
    pub sample_fraction: f64,
    /// Threshold updates performed.
    pub updates: u64,
}

impl ThresholdEstimator {
    /// An estimator starting from the paper's `δ₀ = 0.5`.
    pub fn new(beta: f64) -> Self {
        ThresholdEstimator {
            delta: 0.5,
            beta,
            sample_fraction: 0.5,
            updates: 0,
        }
    }

    /// The candidate set `Δ_k` (clamped to [0, 1], deduplicated).
    pub fn candidates(&self) -> Vec<f64> {
        let mut c = vec![
            0.0,
            0.5,
            (self.delta - 0.1).max(0.0),
            (self.delta + 0.1).min(1.0),
        ];
        // total_cmp: delta is data-derived; a NaN reaching this sort must
        // not panic the scoring path. (The max/min clamps scrub NaN from
        // the derived candidates, but the sort stays total regardless.)
        c.sort_unstable_by(|a, b| a.total_cmp(b));
        c.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        c
    }

    /// Evaluates the candidates on the window and updates `delta` per the
    /// adoption rule. `initial_cache` seeds each shadow run with the real
    /// cache's current contents so candidate thresholds are judged on the
    /// state they would actually inherit. Returns the (possibly unchanged)
    /// threshold.
    pub fn update(
        &mut self,
        requests: &[ShadowRequest],
        capacity: u64,
        initial_cache: &[(ObjectId, f64, u64, Time)],
    ) -> f64 {
        if requests.is_empty() {
            return self.delta;
        }
        let take = ((requests.len() as f64 * self.sample_fraction) as usize).max(1);
        let sample = &requests[..take.min(requests.len())];
        let current = shadow_hit_ratio_from(sample, capacity, self.delta, initial_cache);
        let mut best = (current, self.delta);
        for cand in self.candidates() {
            if (cand - self.delta).abs() < 1e-12 {
                continue;
            }
            let h = shadow_hit_ratio_from(sample, capacity, cand, initial_cache);
            if h > best.0 {
                best = (h, cand);
            }
        }
        if best.0 > current + self.beta {
            self.delta = best.1;
            self.updates += 1;
        }
        self.delta
    }
}

/// [`shadow_hit_ratio_from`] starting from an empty cache.
pub fn shadow_hit_ratio(requests: &[ShadowRequest], capacity: u64, delta: f64) -> f64 {
    shadow_hit_ratio_from(requests, capacity, delta, &[])
}

/// Shadow-simulates LHR's admission (p ≥ δ) and eviction
/// (min `q = p / (s · IRT₁)`, sampled) over the requests, starting from
/// `initial_cache` (`(id, prob, size, last access)` tuples, truncated to
/// capacity), returning the object hit ratio. Deterministic: the eviction
/// sampler is re-seeded per call.
pub fn shadow_hit_ratio_from(
    requests: &[ShadowRequest],
    capacity: u64,
    delta: f64,
    initial_cache: &[(ObjectId, f64, u64, Time)],
) -> f64 {
    if requests.is_empty() {
        return 0.0;
    }
    let mut cached: FastMap<ObjectId, (f64, u64, Time)> = FastMap::default();
    let mut dense: Vec<ObjectId> = Vec::new();
    let mut positions: FastMap<ObjectId, usize> = FastMap::default();
    let mut used = 0u64;
    let mut hits = 0usize;
    let mut rng = SmallRng::seed_from_u64(0x5AD0);
    for &(id, prob, size, last) in initial_cache {
        if used + size > capacity || cached.contains_key(&id) {
            continue;
        }
        cached.insert(id, (prob, size, last));
        positions.insert(id, dense.len());
        dense.push(id);
        used += size;
    }

    for req in requests {
        if let Some(entry) = cached.get_mut(&req.id) {
            hits += 1;
            entry.0 = req.prob;
            entry.2 = req.ts;
            continue;
        }
        if req.prob < delta || req.size > capacity {
            continue;
        }
        while used + req.size > capacity {
            // Sampled min-q eviction.
            let k = 16.min(dense.len());
            debug_assert!(k > 0);
            let mut victim = dense[rng.gen_range(0..dense.len())];
            let mut victim_q = f64::INFINITY;
            for _ in 0..k {
                let id = dense[rng.gen_range(0..dense.len())];
                let (p, s, last) = cached[&id];
                let irt1 = req.ts.saturating_sub(last).as_secs_f64().max(1e-6);
                let q = p / (s as f64 * irt1);
                if q < victim_q {
                    victim_q = q;
                    victim = id;
                }
            }
            let (_, vsize, _) = cached.remove(&victim).expect("sampled from cache");
            used -= vsize;
            let pos = positions.remove(&victim).expect("indexed");
            dense.swap_remove(pos);
            if pos < dense.len() {
                positions.insert(dense[pos], pos);
            }
        }
        cached.insert(req.id, (req.prob, req.size, req.ts));
        positions.insert(req.id, dense.len());
        dense.push(req.id);
        used += req.size;
    }
    hits as f64 / requests.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reqs(specs: &[(u64, u64, u64, f64)]) -> Vec<ShadowRequest> {
        specs
            .iter()
            .map(|&(t, id, size, prob)| ShadowRequest {
                ts: Time::from_secs(t),
                id,
                size,
                prob,
            })
            .collect()
    }

    #[test]
    fn candidates_match_paper_set() {
        let e = ThresholdEstimator::new(0.002);
        assert_eq!(e.candidates(), vec![0.0, 0.4, 0.5, 0.6]);
        let mut e2 = ThresholdEstimator::new(0.002);
        e2.delta = 0.0;
        assert_eq!(e2.candidates(), vec![0.0, 0.1, 0.5]);
        let mut e3 = ThresholdEstimator::new(0.002);
        e3.delta = 1.0;
        assert_eq!(e3.candidates(), vec![0.0, 0.5, 0.9, 1.0]);
    }

    #[test]
    fn nan_delta_survives_candidates_and_update() {
        // A NaN δ (e.g. from a degenerate shadow ratio upstream) must not
        // panic the candidate sort — pre-fix, partial_cmp().unwrap() did.
        let mut e = ThresholdEstimator::new(0.002);
        e.delta = f64::NAN;
        let c = e.candidates();
        assert!(c.iter().all(|v| v.is_finite()), "clamps scrub NaN: {c:?}");
        assert!(c.contains(&0.0) && c.contains(&0.5));
        assert!(c.windows(2).all(|w| w[0] < w[1]), "sorted: {c:?}");
        // The full update path also carries the NaN through comparisons.
        let r = reqs(&[(0, 1, 10, 1.0), (1, 1, 10, 1.0)]);
        let out = e.update(&r, 100, &[]);
        assert!(out.is_nan() || (0.0..=1.0).contains(&out));
    }

    #[test]
    fn shadow_counts_hits() {
        // Two objects alternating, everything admitted, plenty of room.
        let r = reqs(&[
            (0, 1, 10, 1.0),
            (1, 2, 10, 1.0),
            (2, 1, 10, 1.0),
            (3, 2, 10, 1.0),
        ]);
        assert!((shadow_hit_ratio(&r, 100, 0.5) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn high_threshold_blocks_admission() {
        let r = reqs(&[(0, 1, 10, 0.3), (1, 1, 10, 0.3), (2, 1, 10, 0.3)]);
        assert_eq!(shadow_hit_ratio(&r, 100, 0.5), 0.0);
        assert!((shadow_hit_ratio(&r, 100, 0.0) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn estimator_lowers_threshold_when_admit_all_wins() {
        // All objects have low learned probabilities but re-request heavily:
        // the admit-all candidate (δ = 0) is clearly better, and the
        // estimator must adopt it (§4.2's motivation).
        let mut specs = Vec::new();
        for round in 0..50u64 {
            for id in 0..5u64 {
                specs.push((round * 5 + id, id, 10, 0.2));
            }
        }
        let r = reqs(&specs);
        let mut e = ThresholdEstimator::new(0.002);
        let new_delta = e.update(&r, 1_000, &[]);
        assert!(new_delta < 0.2, "threshold stayed at {new_delta}");
        assert_eq!(e.updates, 1);
    }

    #[test]
    fn estimator_keeps_threshold_on_marginal_difference() {
        // All probabilities 0.9: every candidate ≤ 0.9 behaves identically,
        // so no candidate beats the current δ by more than β.
        let mut specs = Vec::new();
        for round in 0..20u64 {
            for id in 0..3u64 {
                specs.push((round * 3 + id, id, 10, 0.9));
            }
        }
        let r = reqs(&specs);
        let mut e = ThresholdEstimator::new(0.002);
        e.update(&r, 1_000, &[]);
        assert_eq!(e.delta, 0.5);
        assert_eq!(e.updates, 0);
    }

    #[test]
    fn shadow_respects_capacity() {
        // 10 objects of 60 bytes in a 100-byte cache: at most one cached at
        // a time (the second would need eviction) — never more than
        // capacity.
        let mut specs = Vec::new();
        for i in 0..30u64 {
            specs.push((i, i % 10, 60, 1.0));
        }
        let r = reqs(&specs);
        // Just ensure it terminates and produces a sane ratio.
        let h = shadow_hit_ratio(&r, 100, 0.0);
        assert!((0.0..=1.0).contains(&h));
    }

    #[test]
    fn empty_window_is_noop() {
        let mut e = ThresholdEstimator::new(0.002);
        assert_eq!(e.update(&[], 100, &[]), 0.5);
    }
}
