//! Reproduces the paper's Table1 (see DESIGN.md experiment index).
fn main() {
    let options = lhr_bench::harness::Options::from_args();
    println!("{}", lhr_bench::experiments::table1(&options));
    lhr_bench::harness::write_obs(&options);
}
