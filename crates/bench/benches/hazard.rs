//! Cost of computing the HRO bound and its per-window top set — the paper's
//! claim is that HRO is computable online in polynomial time (§3.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lhr::hazard::{hro_top_set, Hro};
use lhr::window::WindowTracker;
use lhr_sim::OfflineBound;
use lhr_trace::synth::{IrmConfig, SizeModel};

fn bench_hro_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("hro_evaluate");
    group.sample_size(10);
    for &n in &[20_000usize, 100_000] {
        let trace = IrmConfig::new(n / 20, n)
            .zipf_alpha(0.9)
            .size_model(SizeModel::BoundedPareto { alpha: 1.3, min: 10_000, max: 5_000_000 })
            .seed(3)
            .generate();
        let capacity = (trace.total_bytes() / 50) as u64;
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &trace, |b, trace| {
            b.iter(|| Hro::default().evaluate(trace, capacity));
        });
    }
    group.finish();
}

fn bench_top_set(c: &mut Criterion) {
    let trace = IrmConfig::new(5_000, 50_000).zipf_alpha(1.0).seed(4).generate();
    let mut tracker = WindowTracker::new(u64::MAX);
    for req in trace.iter() {
        tracker.observe(req);
    }
    let window = tracker.into_partial();
    let capacity = (trace.total_bytes() / 20) as u64;
    let mut group = c.benchmark_group("hro_top_set");
    group.throughput(Throughput::Elements(window.counts.len() as u64));
    group.bench_function("5000_contents", |b| {
        b.iter(|| hro_top_set(&window, capacity));
    });
    group.finish();
}

criterion_group!(benches, bench_hro_bound, bench_top_set);
criterion_main!(benches);
