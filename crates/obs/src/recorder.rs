//! The shared recorder: a cheap-to-clone handle ([`Obs`]) that collects
//! windows, events, counters, gauges, histograms, and spans, then exports
//! them as section-ordered JSONL.
//!
//! The handle is deliberately *not* touched on per-request hot paths —
//! instrumented loops accumulate locally ([`crate::series::SeriesAcc`],
//! [`LogHistogram`]) and submit in bulk at window boundaries or run end.
//! Spans lock the handle on enter/exit, which is fine at their coarse
//! granularity (per run, per training window, per boosting phase).

use crate::event::Event;
use crate::hist::LogHistogram;
use crate::record::ObsRecord;
use crate::series::{ObsWindow, WindowRecord};
use crate::slo::{self, SloObjective};
use crate::span::{SpanRecord, SpanTree};
use crate::trace::{self, TraceRecord};
use lhr_util::json::{Json, ToJson};
use lhr_util::sync::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Recorder configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsConfig {
    /// Windowing rule for the metric series.
    pub window: ObsWindow,
    /// Record span counts but zero all wall-clock readings so fixed-seed
    /// output is byte-identical across runs.
    pub deterministic: bool,
    /// Cap on buffered events; past it events are counted as dropped (the
    /// `obs.events_dropped` counter) instead of growing without bound.
    pub max_events: usize,
    /// Request-path trace sampling: record a [`TraceRecord`] for one
    /// request in `trace_sample` (0 disables tracing). The sampling
    /// decision is a pure function of `(object_id, trace_time)` — see
    /// [`crate::trace::sampled`].
    pub trace_sample: u64,
    /// Service-level objectives evaluated over the merged window series
    /// at export time; breaches/recoveries are appended to the event
    /// section as [`crate::EventKind::SloBreach`] /
    /// [`crate::EventKind::SloRecover`].
    pub slos: Vec<SloObjective>,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            window: ObsWindow::default(),
            deterministic: false,
            max_events: 1_000_000,
            trace_sample: 0,
            slos: Vec::new(),
        }
    }
}

/// A streaming JSONL sink attached by [`Obs::stream_to`]. The meta line is
/// written lazily — just before the first window record — so run metadata
/// set any time before the first window closes still lands on it. Write
/// errors are stashed and surfaced by [`Obs::close_stream`] so the
/// instrumented hot loop never has to handle I/O results.
struct Sink {
    out: BufWriter<File>,
    meta_written: bool,
    /// Windows already written (prefix length of `Inner::windows`).
    streamed: usize,
    error: Option<io::Error>,
}

impl Sink {
    fn write_record(&mut self, record: &ObsRecord) {
        if self.error.is_some() {
            return;
        }
        let mut line = record.to_line();
        line.push('\n');
        if let Err(e) = self.out.write_all(line.as_bytes()) {
            self.error = Some(e);
        }
    }
}

#[derive(Default)]
struct Inner {
    meta: Vec<(String, Json)>,
    windows: Vec<WindowRecord>,
    events: Vec<Event>,
    events_dropped: u64,
    traces: Vec<TraceRecord>,
    traces_dropped: u64,
    spans: SpanTree,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, LogHistogram>,
    sink: Option<Sink>,
}

impl Inner {
    /// Writes any not-yet-streamed windows to the sink, preceded by the
    /// meta line on first use. No-op without a sink or pending windows.
    fn stream_pending(&mut self, config: &ObsConfig) {
        let Inner {
            sink,
            meta,
            windows,
            ..
        } = self;
        let Some(sink) = sink.as_mut() else { return };
        if sink.streamed == windows.len() {
            return;
        }
        if !sink.meta_written {
            sink.write_record(&meta_record(config, meta));
            sink.meta_written = true;
        }
        for w in &windows[sink.streamed..] {
            sink.write_record(&ObsRecord::Window(w.clone()));
        }
        sink.streamed = windows.len();
    }
}

/// The leading `meta` line: recorder config first, then caller metadata in
/// insertion order. Shared by the buffered export and the streaming sink
/// so the two can never drift.
fn meta_record(config: &ObsConfig, meta: &[(String, Json)]) -> ObsRecord {
    let mut m = vec![
        ("window".to_string(), config.window.to_json()),
        ("deterministic".to_string(), config.deterministic.to_json()),
    ];
    if config.trace_sample > 0 {
        m.push(("trace_sample".to_string(), config.trace_sample.to_json()));
    }
    if !config.slos.is_empty() {
        let joined: Vec<String> = config.slos.iter().map(|o| o.to_string()).collect();
        m.push(("slos".to_string(), joined.join(",").to_json()));
    }
    m.extend(meta.iter().cloned());
    ObsRecord::Meta(m)
}

/// Every section that follows the windows, in the fixed export order:
/// events (recorded, then SLO verdict events synthesized from the merged
/// windows), traces (exemplar-marked), counters (plus
/// `obs.events_dropped` / `obs.traces_dropped`), gauges, histograms,
/// spans. Shared by [`Obs::records`] and [`Obs::close_stream`]. Taking
/// the complete `Inner` is what makes the trace/SLO sections pure
/// functions of the *merged* run — never of the thread count that
/// produced it.
fn post_window_records(config: &ObsConfig, inner: &Inner) -> Vec<ObsRecord> {
    let mut out = Vec::new();
    out.extend(inner.events.iter().cloned().map(ObsRecord::Event));
    if !config.slos.is_empty() {
        let latency = slo::pick_latency_hist(&inner.hists);
        let verdicts = slo::evaluate(&config.slos, &inner.windows, latency);
        out.extend(slo::events(&verdicts).into_iter().map(ObsRecord::Event));
    }
    let mut traces = inner.traces.clone();
    trace::mark_exemplars(&mut traces);
    out.extend(traces.into_iter().map(ObsRecord::Trace));
    for (name, &value) in &inner.counters {
        out.push(ObsRecord::Counter {
            name: name.clone(),
            value,
        });
    }
    if inner.events_dropped > 0 {
        out.push(ObsRecord::Counter {
            name: "obs.events_dropped".to_string(),
            value: inner.events_dropped,
        });
    }
    if inner.traces_dropped > 0 {
        out.push(ObsRecord::Counter {
            name: "obs.traces_dropped".to_string(),
            value: inner.traces_dropped,
        });
    }
    for (name, &value) in &inner.gauges {
        out.push(ObsRecord::Gauge {
            name: name.clone(),
            value,
        });
    }
    for (name, hist) in &inner.hists {
        out.push(ObsRecord::Hist {
            name: name.clone(),
            hist: hist.clone(),
        });
    }
    out.extend(inner.spans.records().into_iter().map(ObsRecord::Span));
    out
}

/// The shared observability recorder. Cloning is cheap (one `Arc`); all
/// clones feed the same buffers.
#[derive(Clone)]
pub struct Obs {
    config: ObsConfig,
    inner: Arc<Mutex<Inner>>,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs").field("config", &self.config).finish()
    }
}

impl Obs {
    /// A fresh recorder.
    pub fn new(config: ObsConfig) -> Self {
        Obs {
            config,
            inner: Arc::new(Mutex::new(Inner::default())),
        }
    }

    /// The configured windowing rule (what instrumented loops should feed
    /// their [`crate::series::SeriesAcc`]).
    pub fn window(&self) -> ObsWindow {
        self.config.window
    }

    /// The full recorder configuration — what per-shard child recorders
    /// should be built from so a later [`Obs::absorb_shards`] merges
    /// like-configured data.
    pub fn config(&self) -> &ObsConfig {
        &self.config
    }

    /// Whether wall-clock readings are zeroed for byte-identical output.
    pub fn deterministic(&self) -> bool {
        self.config.deterministic
    }

    /// Sets (or replaces) one run-metadata field, serialized on the
    /// leading `meta` line.
    pub fn set_meta(&self, name: &str, value: impl ToJson) {
        let mut inner = self.inner.lock();
        let value = value.to_json();
        match inner.meta.iter_mut().find(|(k, _)| k == name) {
            Some((_, v)) => *v = value,
            None => inner.meta.push((name.to_string(), value)),
        }
    }

    /// Appends one event (dropped and counted past
    /// [`ObsConfig::max_events`]).
    pub fn emit(&self, event: Event) {
        let mut inner = self.inner.lock();
        if inner.events.len() < self.config.max_events {
            inner.events.push(event);
        } else {
            inner.events_dropped += 1;
        }
    }

    /// Appends one sampled request trace (dropped and counted past
    /// [`ObsConfig::max_events`], like events). Exemplar marks are
    /// applied at export time over the complete set.
    pub fn push_trace(&self, trace: TraceRecord) {
        let mut inner = self.inner.lock();
        if inner.traces.len() < self.config.max_events {
            inner.traces.push(trace);
        } else {
            inner.traces_dropped += 1;
        }
    }

    /// The configured trace-sampling rate as a [`trace::TraceRecorder`]
    /// for an instrumented replay loop.
    pub fn trace_recorder(&self) -> trace::TraceRecorder {
        trace::TraceRecorder::new(self.config.trace_sample)
    }

    /// Sampled traces recorded so far (without exemplar marks — those
    /// are computed at export).
    pub fn traces(&self) -> Vec<TraceRecord> {
        self.inner.lock().traces.clone()
    }

    /// Adds `n` to a named counter.
    pub fn counter_add(&self, name: &str, n: u64) {
        let mut inner = self.inner.lock();
        *inner.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Sets a named gauge to its latest value.
    pub fn gauge_set(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock();
        inner.gauges.insert(name.to_string(), value);
    }

    /// Merges a locally-accumulated histogram into the named one.
    pub fn hist_merge(&self, name: &str, hist: &LogHistogram) {
        let mut inner = self.inner.lock();
        inner
            .hists
            .entry(name.to_string())
            .or_insert_with(LogHistogram::new)
            .merge(hist);
    }

    /// Appends completed windows from a [`crate::series::SeriesAcc`].
    /// When a streaming sink is attached ([`Obs::stream_to`]), each window
    /// is also written to it immediately.
    pub fn push_windows(&self, windows: Vec<WindowRecord>) {
        let mut inner = self.inner.lock();
        inner.windows.extend(windows);
        inner.stream_pending(&self.config);
    }

    /// Starts streaming this recorder's export to `path`. The leading meta
    /// line is written when the first window arrives — run metadata must be
    /// final by then — each completed window is appended as it is pushed,
    /// and [`close_stream`](Obs::close_stream) writes the post-window
    /// sections. The finished file is byte-identical to
    /// [`to_jsonl`](Obs::to_jsonl) at close time.
    pub fn stream_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let file = File::create(path)?;
        self.inner.lock().sink = Some(Sink {
            out: BufWriter::new(file),
            meta_written: false,
            streamed: 0,
            error: None,
        });
        Ok(())
    }

    /// Finishes a streaming export: flushes any pending windows (and the
    /// meta line, for a zero-window run), appends the post-window sections
    /// in the fixed export order, and detaches the sink. Returns the first
    /// write error encountered anywhere in the stream. No-op without an
    /// attached sink.
    pub fn close_stream(&self) -> io::Result<()> {
        let mut inner = self.inner.lock();
        inner.stream_pending(&self.config);
        let post = post_window_records(&self.config, &inner);
        let Some(mut sink) = inner.sink.take() else {
            return Ok(());
        };
        if !sink.meta_written {
            sink.write_record(&meta_record(&self.config, &inner.meta));
            sink.meta_written = true;
        }
        for record in &post {
            sink.write_record(record);
        }
        match sink.error {
            Some(e) => Err(e),
            None => sink.out.flush(),
        }
    }

    /// Merges per-shard recorders into this one **in the order given** —
    /// the caller passes shards in fixed shard order, making the merged
    /// export independent of how many threads produced them (the
    /// determinism contract's merge rule):
    ///
    /// - windows merge by index via [`crate::series::merge_windows`];
    /// - events concatenate in shard order, then stable-sort by trace time,
    ///   so equal-timestamp events keep shard order;
    /// - traces concatenate in shard order, then sort by trace id (the
    ///   global request index — unique across shards, so the order is
    ///   total and independent of the shard layout);
    /// - counters sum; gauges take the last shard's value; histograms and
    ///   span trees merge by name/path; metadata upserts in shard order.
    ///
    /// Shard recorders should be built from this recorder's
    /// [`config`](Obs::config) so windowing and determinism settings agree.
    pub fn absorb_shards(&self, shards: &[Obs]) {
        // Copy shard state out first; each shard lock is released before
        // the master lock is taken.
        let mut windows_per: Vec<Vec<WindowRecord>> = Vec::with_capacity(shards.len());
        let mut events: Vec<Event> = Vec::new();
        let mut dropped = 0u64;
        let mut traces: Vec<TraceRecord> = Vec::new();
        let mut traces_dropped = 0u64;
        let mut counters: Vec<(String, u64)> = Vec::new();
        let mut gauges: Vec<(String, f64)> = Vec::new();
        let mut hists: Vec<(String, LogHistogram)> = Vec::new();
        let mut metas: Vec<(String, Json)> = Vec::new();
        let mut span_records: Vec<SpanRecord> = Vec::new();
        for shard in shards {
            let inner = shard.inner.lock();
            windows_per.push(inner.windows.clone());
            events.extend(inner.events.iter().cloned());
            dropped += inner.events_dropped;
            traces.extend(inner.traces.iter().cloned());
            traces_dropped += inner.traces_dropped;
            for (k, &v) in &inner.counters {
                counters.push((k.clone(), v));
            }
            for (k, &v) in &inner.gauges {
                gauges.push((k.clone(), v));
            }
            for (k, h) in &inner.hists {
                hists.push((k.clone(), h.clone()));
            }
            metas.extend(inner.meta.iter().cloned());
            span_records.extend(inner.spans.records());
        }
        events.sort_by(|a, b| a.t.total_cmp(&b.t));
        traces.sort_by_key(|t| t.id);
        let merged_windows = crate::series::merge_windows(&windows_per);

        let mut inner = self.inner.lock();
        // Metadata upserts first: a streaming sink writes its meta line
        // when the merged windows land below, and shard metadata must
        // already be on it.
        for (k, v) in metas {
            match inner.meta.iter_mut().find(|(mk, _)| *mk == k) {
                Some((_, mv)) => *mv = v,
                None => inner.meta.push((k, v)),
            }
        }
        inner.windows.extend(merged_windows);
        inner.stream_pending(&self.config);
        for e in events {
            if inner.events.len() < self.config.max_events {
                inner.events.push(e);
            } else {
                dropped += 1;
            }
        }
        inner.events_dropped += dropped;
        for t in traces {
            if inner.traces.len() < self.config.max_events {
                inner.traces.push(t);
            } else {
                traces_dropped += 1;
            }
        }
        inner.traces_dropped += traces_dropped;
        for (k, v) in counters {
            *inner.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in gauges {
            inner.gauges.insert(k, v);
        }
        for (k, h) in hists {
            inner
                .hists
                .entry(k)
                .or_insert_with(LogHistogram::new)
                .merge(&h);
        }
        inner.spans.absorb_records(&span_records);
    }

    /// Enters a profiling span; it exits when the guard drops. In
    /// deterministic mode the clock is never read and the span's recorded
    /// duration is zero.
    pub fn span(&self, name: &str) -> SpanGuard {
        let idx = self.inner.lock().spans.enter(name);
        SpanGuard {
            obs: self.clone(),
            idx,
            start: if self.config.deterministic {
                None
            } else {
                Some(Instant::now())
            },
        }
    }

    /// Completed windows recorded so far.
    pub fn windows(&self) -> Vec<WindowRecord> {
        self.inner.lock().windows.clone()
    }

    /// Events recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().events.clone()
    }

    /// Everything recorded, in the fixed export order: meta, windows,
    /// events (recorded then SLO-synthesized), traces, counters, gauges,
    /// histograms, spans.
    pub fn records(&self) -> Vec<ObsRecord> {
        let inner = self.inner.lock();
        let mut out = vec![meta_record(&self.config, &inner.meta)];
        out.extend(inner.windows.iter().cloned().map(ObsRecord::Window));
        out.extend(post_window_records(&self.config, &inner));
        out
    }

    /// The full JSONL export (one record per line, trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in self.records() {
            out.push_str(&r.to_line());
            out.push('\n');
        }
        out
    }

    /// The windowed series as CSV (header plus one row per window).
    pub fn windows_csv(&self) -> String {
        let mut out = String::from(WindowRecord::csv_header());
        out.push('\n');
        for w in self.inner.lock().windows.iter() {
            out.push_str(&w.to_csv_row());
            out.push('\n');
        }
        out
    }
}

/// RAII guard returned by [`Obs::span`]; credits elapsed time on drop.
#[derive(Debug)]
pub struct SpanGuard {
    obs: Obs,
    idx: usize,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed_ns = self.start.map(|s| s.elapsed().as_nanos()).unwrap_or(0);
        self.obs.inner.lock().spans.exit(self.idx, elapsed_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::record::ObsRecord;

    #[test]
    fn export_order_is_fixed_and_parses_back() {
        let obs = Obs::new(ObsConfig {
            deterministic: true,
            ..ObsConfig::default()
        });
        obs.set_meta("policy", "lru");
        obs.counter_add("sim.requests", 10);
        obs.gauge_set("lhr.threshold", 0.5);
        let mut h = LogHistogram::new();
        h.record(7);
        obs.hist_merge("lat", &h);
        obs.emit(Event::new(1.0, EventKind::Detect).field("alpha", 0.8f64));
        obs.push_windows(vec![WindowRecord {
            requests: 10,
            hits: 3,
            ..WindowRecord::default()
        }]);
        obs.push_trace(crate::trace::TraceBuilder::new(3, 42, 500_000, 64).finish(1.5, 0));
        {
            let _outer = obs.span("run");
            let _inner = obs.span("fit");
        }
        let jsonl = obs.to_jsonl();
        let records: Vec<ObsRecord> = jsonl
            .lines()
            .map(|l| ObsRecord::parse_line(l).unwrap())
            .collect();
        let tags: Vec<&str> = records.iter().map(|r| r.tag()).collect();
        assert_eq!(
            tags,
            ["meta", "window", "event", "trace", "counter", "gauge", "hist", "span", "span"]
        );
        // The lone trace of its window carries the exemplar mark.
        match &records[3] {
            ObsRecord::Trace(t) => {
                assert_eq!(t.id, 3);
                assert!(t.exemplar);
            }
            other => panic!("expected trace, got {other:?}"),
        }
        // Deterministic mode: spans exist with counts but zero time.
        match &records[7] {
            ObsRecord::Span(s) => {
                assert_eq!(s.path, "run");
                assert_eq!(s.count, 1);
                assert_eq!(s.total_secs, 0.0);
            }
            other => panic!("expected span, got {other:?}"),
        }
    }

    #[test]
    fn deterministic_exports_are_byte_identical() {
        let run = || {
            let obs = Obs::new(ObsConfig {
                deterministic: true,
                ..ObsConfig::default()
            });
            obs.set_meta("seed", 42u64);
            for i in 0..5u64 {
                obs.counter_add("n", i);
                obs.emit(Event::new(i as f64, EventKind::StaleServe).field("id", i));
            }
            let _g = obs.span("work");
            drop(_g);
            obs.to_jsonl()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn event_cap_counts_drops() {
        let obs = Obs::new(ObsConfig {
            max_events: 2,
            deterministic: true,
            ..ObsConfig::default()
        });
        for i in 0..5u64 {
            obs.emit(Event::new(i as f64, EventKind::Coalesce));
        }
        assert_eq!(obs.events().len(), 2);
        let jsonl = obs.to_jsonl();
        assert!(
            jsonl.contains("{\"record\":\"counter\",\"name\":\"obs.events_dropped\",\"value\":3}"),
            "{jsonl}"
        );
    }

    #[test]
    fn absorb_shards_merges_in_fixed_shard_order() {
        let config = ObsConfig {
            deterministic: true,
            ..ObsConfig::default()
        };
        let master = Obs::new(config.clone());
        let a = Obs::new(config.clone());
        let b = Obs::new(config);

        a.counter_add("sim.requests", 3);
        b.counter_add("sim.requests", 7);
        a.emit(Event::new(2.0, EventKind::Detect).field("shard", 0u64));
        b.emit(Event::new(1.0, EventKind::Detect).field("shard", 1u64));
        b.emit(Event::new(2.0, EventKind::Detect).field("shard", 1u64));
        a.push_windows(vec![WindowRecord {
            index: 0,
            requests: 3,
            hits: 1,
            ..WindowRecord::default()
        }]);
        b.push_windows(vec![WindowRecord {
            index: 0,
            requests: 7,
            hits: 2,
            ..WindowRecord::default()
        }]);
        {
            let _g = a.span("replay");
        }
        {
            let _g = b.span("replay");
        }

        master.absorb_shards(&[a, b]);

        let events = master.events();
        assert_eq!(events.len(), 3);
        // Sorted by time; ties keep shard order (shard 0's t=2 before
        // shard 1's t=2).
        assert_eq!(events[0].t, 1.0);
        assert_eq!(events[1].fields[0].1.to_string(), "0");
        assert_eq!(events[2].fields[0].1.to_string(), "1");

        let windows = master.windows();
        assert_eq!(windows.len(), 1, "same window index merges into one");
        assert_eq!(windows[0].requests, 10);
        assert_eq!(windows[0].hits, 3);

        let jsonl = master.to_jsonl();
        assert!(
            jsonl.contains("\"name\":\"sim.requests\",\"value\":10"),
            "{jsonl}"
        );
        assert!(jsonl.contains("\"path\":\"replay\",\"count\":2"), "{jsonl}");
    }

    #[test]
    fn absorb_shards_sorts_traces_by_global_id() {
        let config = ObsConfig {
            deterministic: true,
            trace_sample: 1,
            ..ObsConfig::default()
        };
        let master = Obs::new(config.clone());
        let a = Obs::new(config.clone());
        let b = Obs::new(config);
        // Shard order a,b but ids interleave: merged export sorts by id.
        a.push_trace(crate::trace::TraceBuilder::new(4, 1, 4_000_000, 10).finish(9.0, 0));
        b.push_trace(crate::trace::TraceBuilder::new(1, 2, 1_000_000, 10).finish(3.0, 0));
        b.push_trace(crate::trace::TraceBuilder::new(7, 3, 7_000_000, 10).finish(1.0, 1));
        master.absorb_shards(&[a, b]);
        let ids: Vec<u64> = master.traces().iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![1, 4, 7]);
        // Exemplars per window over the merged set: id 4 (9ms) beats
        // id 1 (3ms) in window 0; id 7 is alone in window 1.
        let jsonl = master.to_jsonl();
        let marked: Vec<u64> = jsonl
            .lines()
            .filter_map(|l| match ObsRecord::parse_line(l) {
                Ok(ObsRecord::Trace(t)) if t.exemplar => Some(t.id),
                _ => None,
            })
            .collect();
        assert_eq!(marked, vec![4, 7]);
    }

    #[test]
    fn trace_cap_counts_drops() {
        let obs = Obs::new(ObsConfig {
            max_events: 1,
            deterministic: true,
            ..ObsConfig::default()
        });
        for i in 0..3u64 {
            obs.push_trace(crate::trace::TraceBuilder::new(i, i, i, 1).finish(0.0, 0));
        }
        assert_eq!(obs.traces().len(), 1);
        let jsonl = obs.to_jsonl();
        assert!(
            jsonl.contains("{\"record\":\"counter\",\"name\":\"obs.traces_dropped\",\"value\":2}"),
            "{jsonl}"
        );
    }

    #[test]
    fn slo_events_are_synthesized_at_export_from_merged_windows() {
        let config = ObsConfig {
            deterministic: true,
            slos: vec![crate::slo::SloObjective::Availability(99.0)],
            ..ObsConfig::default()
        };
        let obs = Obs::new(config);
        // Every window runs at 50% errors: burns immediately.
        for i in 0..3u64 {
            obs.push_windows(vec![WindowRecord {
                index: i,
                requests: 100,
                errors: 50,
                hits: 40,
                first_secs: i as f64,
                last_secs: i as f64 + 0.9,
                ..WindowRecord::default()
            }]);
        }
        let jsonl = obs.to_jsonl();
        assert!(jsonl.contains("\"kind\":\"SloBreach\""), "{jsonl}");
        assert!(jsonl.contains("\"slos\":\"avail:99\""), "{jsonl}");
        // Export twice: synthesis must not mutate state.
        assert_eq!(jsonl, obs.to_jsonl());
    }

    fn stream_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("lhr-obs-stream-{tag}-{}.jsonl", std::process::id()))
    }

    /// The streaming sink's contract: the file it produces is byte-for-byte
    /// the buffered export, with windows written incrementally as pushed.
    #[test]
    fn streamed_export_is_byte_identical_to_buffered() {
        let obs = Obs::new(ObsConfig {
            deterministic: true,
            ..ObsConfig::default()
        });
        let path = stream_path("basic");
        obs.stream_to(&path).unwrap();
        // Metadata set before the first window closes lands on the lazily
        // written meta line.
        obs.set_meta("policy", "lru");
        obs.set_meta("trace", "t");
        for i in 0..3u64 {
            obs.push_windows(vec![WindowRecord {
                index: i,
                requests: 10 + i,
                hits: i,
                ..WindowRecord::default()
            }]);
        }
        obs.counter_add("server.requests", 33);
        obs.gauge_set("server.replay_wall_secs", 0.0);
        let mut h = LogHistogram::new();
        h.record(12);
        obs.hist_merge("server.latency_us", &h);
        obs.emit(Event::new(1.5, EventKind::Coalesce).field("id", 7u64));
        obs.push_trace(crate::trace::TraceBuilder::new(11, 5, 1_500_000, 12).finish(2.0, 1));
        {
            let _g = obs.span("server.replay");
        }
        obs.close_stream().unwrap();
        let streamed = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(streamed, obs.to_jsonl());
        // And the windows really are on separate leading lines after meta.
        let tags: Vec<&str> = streamed
            .lines()
            .map(|l| ObsRecord::parse_line(l).unwrap().tag().to_string())
            .map(|t| if t == "window" { "window" } else { "other" })
            .collect();
        assert_eq!(&tags[..4], ["other", "window", "window", "window"]);
    }

    /// A run that closes no windows still produces a complete, identical
    /// export (meta line written at close).
    #[test]
    fn streamed_export_without_windows_matches() {
        let obs = Obs::new(ObsConfig {
            deterministic: true,
            ..ObsConfig::default()
        });
        let path = stream_path("empty");
        obs.stream_to(&path).unwrap();
        obs.set_meta("policy", "fifo");
        obs.counter_add("server.requests", 5);
        obs.close_stream().unwrap();
        let streamed = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(streamed, obs.to_jsonl());
    }

    /// Shard-merged windows stream through [`Obs::absorb_shards`] too, with
    /// shard metadata applied before the meta line is written.
    #[test]
    fn streamed_absorb_shards_is_byte_identical() {
        let config = ObsConfig {
            deterministic: true,
            ..ObsConfig::default()
        };
        let master = Obs::new(config.clone());
        let path = stream_path("shards");
        master.stream_to(&path).unwrap();
        master.set_meta("policy", "engine(lru)x2");
        let a = Obs::new(config.clone());
        let b = Obs::new(config);
        a.push_windows(vec![WindowRecord {
            index: 0,
            requests: 3,
            ..WindowRecord::default()
        }]);
        b.push_windows(vec![WindowRecord {
            index: 0,
            requests: 7,
            ..WindowRecord::default()
        }]);
        a.counter_add("server.requests", 3);
        b.counter_add("server.requests", 7);
        master.absorb_shards(&[a, b]);
        master.gauge_set("engine.shard_imbalance", 1.0);
        master.close_stream().unwrap();
        let streamed = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(streamed, master.to_jsonl());
        assert!(streamed.contains("\"requests\":10"), "{streamed}");
    }

    /// `close_stream` without `stream_to` is a no-op, and a second close is
    /// too — callers can close unconditionally.
    #[test]
    fn close_stream_is_idempotent() {
        let obs = Obs::new(ObsConfig::default());
        obs.close_stream().unwrap();
        let path = stream_path("idem");
        obs.stream_to(&path).unwrap();
        obs.close_stream().unwrap();
        obs.close_stream().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn clones_share_buffers() {
        let obs = Obs::new(ObsConfig::default());
        let clone = obs.clone();
        clone.counter_add("x", 1);
        obs.counter_add("x", 2);
        let jsonl = obs.to_jsonl();
        assert!(jsonl.contains("\"name\":\"x\",\"value\":3"), "{jsonl}");
    }
}
