#!/usr/bin/env bash
# Records the per-policy handle() cost baseline into BENCH_policies.json
# (one `policy_ns_per_op` JSON line: mean ns per request for every policy
# in the crate plus LHR, on the fixed-seed small IRM trace). The summary
# records `host_cpus` honestly, as in the other BENCH files — the loop is
# single-threaded, so the figure is per-core cost.
# Re-run after any change to a policy hot path (hashing, object tables,
# eviction sampling) and commit the refreshed file.
#
# Usage: scripts/bench_policies.sh [output-file]
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_policies.json}"

cargo build --release --offline -p lhr-bench --bin policies

: > "$out"
echo "==> policies bench, scale=small"
LHR_BENCH_JSON="$out" \
  cargo run --release --offline -p lhr-bench --bin policies -- --scale small

echo "wrote $out"
