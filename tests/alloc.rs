//! Counting-allocator proof of the alloc-free steady state (PR 8
//! acceptance): after a warm first pass, LRU replay performs **zero**
//! heap allocations per request — including eviction churn, which
//! exercises `ObjectTable`'s in-place tombstone rehash — and LHR
//! allocates only at retrain/window boundaries, never on the per-request
//! serve path.
//!
//! This file is its own test binary because `#[global_allocator]` is
//! process-wide; keeping it out of the other integration suites means
//! their allocation patterns can't pollute the counters (tests here still
//! share the process, so counters are read as deltas around the measured
//! loop, single-threaded).

use lhr_repro::core::cache::{LhrCache, LhrConfig};
use lhr_repro::policies::Lru;
use lhr_repro::sim::CachePolicy;
use lhr_repro::trace::synth::{IrmConfig, SizeModel};
use lhr_repro::trace::Trace;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocator entry point; frees are not counted (a free in
/// steady state is fine, a fresh allocation is the regression).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// A fixed-population Zipf trace: every measured request re-references an
/// object seen during the warm pass, so steady state adds no new keys.
fn fixed_population_trace(seed: u64, n_objects: usize, n_requests: usize) -> Trace {
    IrmConfig::new(n_objects, n_requests)
        .zipf_alpha(0.8)
        .size_model(SizeModel::Fixed { bytes: 4_000 })
        .seed(seed)
        .generate()
}

#[test]
fn lru_steady_state_replay_is_allocation_free() {
    let trace = fixed_population_trace(7, 4_000, 200_000);
    // Capacity holds 1/4 of the population: plenty of hits *and* constant
    // miss→evict churn, so the zero-alloc claim covers the whole handle
    // surface (probe, splice, evict, tombstone reuse, in-place rehash).
    let mut lru = Lru::new(1_000 * 4_000);
    for req in trace.iter() {
        lru.handle(req);
    }
    let hits_before = lru.evictions();

    let before = allocs();
    let mut hits = 0u64;
    for req in trace.iter() {
        if lru.handle(req) == lhr_repro::sim::Outcome::Hit {
            hits += 1;
        }
    }
    let delta = allocs() - before;

    assert!(hits > 0, "sanity: the measured pass must hit");
    assert!(
        lru.evictions() > hits_before,
        "sanity: the measured pass must churn evictions"
    );
    assert_eq!(
        delta,
        0,
        "LRU steady-state replay allocated {delta} times over {} requests",
        trace.len()
    );
}

#[test]
fn lhr_steady_state_allocates_only_at_window_boundaries() {
    let trace = fixed_population_trace(11, 3_000, 60_000);
    // Capacity 400 objects against a 3_000-object population: the 4×
    // unique-bytes window target (6.4 MB) is crossed several times per
    // pass, so the measured pass sees real window edges and retrains.
    let mut lhr = LhrCache::new(
        400 * 4_000,
        LhrConfig {
            seed: 11,
            // Inline retrain pins all training allocations to the window
            // edge itself instead of smearing them over a worker thread.
            background_retrain: false,
            min_window_requests: 2_048,
            ..LhrConfig::default()
        },
    );
    // Warm pass: populate the object metadata, size the recycled window
    // buffers, train the first models.
    for req in trace.iter() {
        lhr.handle(req);
    }

    // Measured pass: per-request allocation deltas. The serve path itself
    // (feature row, prediction, admission, eviction) must be alloc-free;
    // only a window-edge request may allocate (labeling, training,
    // threshold refresh).
    let mut allocating_requests = 0u64;
    let mut clean_requests = 0u64;
    for req in trace.iter() {
        let before = allocs();
        lhr.handle(req);
        if allocs() > before {
            allocating_requests += 1;
        } else {
            clean_requests += 1;
        }
    }

    // Windows close every >= min_window_requests, so the measured pass
    // crosses at most len / min_window_requests edges (plus slack for the
    // first window after the warm pass and a mid-window buffer growth).
    let max_edges = (trace.len() / 2_048 + 4) as u64;
    assert!(
        allocating_requests <= max_edges,
        "{allocating_requests} requests allocated; only ~{max_edges} window edges expected"
    );
    assert!(
        clean_requests >= (trace.len() as u64 / 100) * 99,
        "steady-state serve path must be ≥99% allocation-free \
         ({clean_requests} clean of {})",
        trace.len()
    );
}
