//! A small feed-forward neural network, from scratch.
//!
//! The paper's related work (§8) covers a family of DNN-based caching
//! designs — DeepCache, FNN-Cache, PopCache, PA-Cache — whose common
//! substrate is a modest multi-layer perceptron predicting content
//! popularity. No deep-learning framework is in this workspace's allowed
//! dependency set, so this crate provides that substrate natively:
//!
//! - dense layers with ReLU / sigmoid / identity activations,
//! - mean-squared-error and logistic losses,
//! - minibatch SGD with momentum and Adam,
//! - deterministic Xavier initialization from a seed,
//! - serde-serializable models.
//!
//! Correctness is guarded by analytic-vs-numerical gradient checks in the
//! test suite.
//!
//! # Example
//!
//! ```
//! use lhr_nn::{Activation, Mlp, TrainConfig};
//!
//! // Learn XOR.
//! let mut net = Mlp::new(&[2, 8, 1], Activation::Relu, Activation::Sigmoid, 7);
//! let inputs = [[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]];
//! let targets = [[0.0], [1.0], [1.0], [0.0]];
//! let config = TrainConfig { learning_rate: 0.05, ..TrainConfig::default() };
//! for _ in 0..4000 {
//!     for (x, y) in inputs.iter().zip(targets.iter()) {
//!         net.train_step(x, y, &config);
//!     }
//! }
//! assert!(net.forward(&[1.0, 0.0])[0] > 0.7);
//! assert!(net.forward(&[1.0, 1.0])[0] < 0.3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mlp;

pub use mlp::{Activation, Mlp, TrainConfig};
