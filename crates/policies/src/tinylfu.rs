//! TinyLFU admission (Einziger et al. 2017) and W-TinyLFU — the policy
//! behind Caffeine, the Java cache the paper prototypes against
//! (Appendix A.3).
//!
//! **TinyLFU**: an LRU cache whose admission gate compares the Count-Min
//! estimated frequency of the arriving object against the eviction
//! victim's; the newcomer enters only if it is more popular.
//!
//! **W-TinyLFU**: a small *window* LRU absorbs new arrivals (shielding
//! recency bursts), and its evictees face the TinyLFU gate to enter the
//! main segmented-LRU (probation + protected) region.
//!
//! Both are measured in bytes throughout, since CDN objects vary in size.

use crate::util::{CountMinSketch, Handle, LruList};
use lhr_sim::{CachePolicy, Outcome};
use lhr_trace::{ObjectId, Request};
use lhr_util::hash::FastMap;

/// Plain TinyLFU: LRU eviction + frequency admission gate.
#[derive(Debug)]
pub struct TinyLfu {
    capacity: u64,
    used: u64,
    list: LruList<(ObjectId, u64)>,
    map: FastMap<ObjectId, Handle>,
    sketch: CountMinSketch,
    evictions: u64,
}

impl TinyLfu {
    /// A TinyLFU cache of `capacity` bytes; `expected_objects` sizes the
    /// frequency sketch.
    pub fn new(capacity: u64, expected_objects: u64) -> Self {
        TinyLfu {
            capacity,
            used: 0,
            list: LruList::new(),
            map: FastMap::default(),
            sketch: CountMinSketch::new(expected_objects),
            evictions: 0,
        }
    }
}

impl CachePolicy for TinyLfu {
    fn name(&self) -> &str {
        "TinyLFU"
    }
    fn capacity(&self) -> u64 {
        self.capacity
    }
    fn used_bytes(&self) -> u64 {
        self.used
    }
    fn contains(&self, id: ObjectId) -> bool {
        self.map.contains_key(&id)
    }

    fn handle(&mut self, req: &Request) -> Outcome {
        self.sketch.increment(req.id);
        if let Some(&handle) = self.map.get(&req.id) {
            self.list.move_to_front(handle);
            return Outcome::Hit;
        }
        if req.size > self.capacity {
            return Outcome::MissBypassed;
        }
        // The newcomer must beat every victim it would displace: walk the
        // LRU end without mutating, summing reclaimable bytes, rejecting if
        // any victim is at least as popular.
        let freq_new = self.sketch.estimate(req.id);
        let mut reclaimable = self.capacity - self.used;
        if self.used + req.size > self.capacity {
            let mut victims: Vec<(ObjectId, u64)> = Vec::new();
            for &(id, size) in self.list.iter_lru_first() {
                if reclaimable >= req.size {
                    break;
                }
                if self.sketch.estimate(id) >= freq_new {
                    return Outcome::MissBypassed;
                }
                reclaimable += size;
                victims.push((id, size));
            }
            for (id, size) in victims {
                let handle = self.map.remove(&id).expect("victim cached");
                self.list.remove(handle);
                self.used -= size;
                self.evictions += 1;
            }
        }
        let handle = self.list.push_front((req.id, req.size));
        self.map.insert(req.id, handle);
        self.used += req.size;
        Outcome::MissAdmitted
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }

    fn metadata_overhead_bytes(&self) -> u64 {
        self.map.len() as u64 * 48 + self.sketch.size_bytes()
    }
}

/// Which W-TinyLFU segment an object lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    Window,
    Probation,
    Protected,
}

/// W-TinyLFU: window + segmented-LRU main with TinyLFU admission between.
#[derive(Debug)]
pub struct WTinyLfu {
    capacity: u64,
    window_cap: u64,
    protected_cap: u64,
    window: LruList<(ObjectId, u64)>,
    probation: LruList<(ObjectId, u64)>,
    protected: LruList<(ObjectId, u64)>,
    window_bytes: u64,
    probation_bytes: u64,
    protected_bytes: u64,
    map: FastMap<ObjectId, (Handle, Segment)>,
    sketch: CountMinSketch,
    evictions: u64,
}

impl WTinyLfu {
    /// A W-TinyLFU cache of `capacity` bytes. Caffeine's default split:
    /// 1% window, main region 80% protected / 20% probation. CDN objects
    /// are large relative to the cache, so the window is floored at 10 ×
    /// the largest expected object… which we cannot know; instead we floor
    /// it at 5% of capacity, a common setting for size-heavy workloads.
    pub fn new(capacity: u64, expected_objects: u64) -> Self {
        let window_cap = (capacity / 20).max(1);
        let main = capacity - window_cap;
        WTinyLfu {
            capacity,
            window_cap,
            protected_cap: main * 8 / 10,
            window: LruList::new(),
            probation: LruList::new(),
            protected: LruList::new(),
            window_bytes: 0,
            probation_bytes: 0,
            protected_bytes: 0,
            map: FastMap::default(),
            sketch: CountMinSketch::new(expected_objects),
            evictions: 0,
        }
    }

    fn main_bytes(&self) -> u64 {
        self.probation_bytes + self.protected_bytes
    }

    fn main_cap(&self) -> u64 {
        self.capacity - self.window_cap
    }

    /// Offers `candidate` (just evicted from the window, or an oversized
    /// arrival) to the main region through the TinyLFU gate.
    fn offer_to_main(&mut self, candidate: (ObjectId, u64)) {
        let (cid, csize) = candidate;
        if csize > self.main_cap() {
            self.evictions += 1;
            return; // cannot fit at all — drop
        }
        let freq_new = self.sketch.estimate(cid);
        // Collect victims from probation LRU (then protected LRU) until the
        // candidate fits; reject the candidate if any victim is at least as
        // popular.
        let mut reclaim = self.main_cap() - self.main_bytes();
        let mut victims: Vec<ObjectId> = Vec::new();
        if reclaim < csize {
            let pool: Vec<(ObjectId, u64)> = self
                .probation
                .iter_lru_first()
                .copied()
                .chain(self.protected.iter_lru_first().copied())
                .collect();
            for (vid, vsize) in pool {
                if reclaim >= csize {
                    break;
                }
                if self.sketch.estimate(vid) >= freq_new {
                    self.evictions += 1;
                    return; // candidate loses the duel — dropped
                }
                reclaim += vsize;
                victims.push(vid);
            }
            if reclaim < csize {
                self.evictions += 1;
                return;
            }
        }
        for vid in victims {
            self.remove_from_main(vid);
            self.evictions += 1;
        }
        let h = self.probation.push_front((cid, csize));
        self.probation_bytes += csize;
        self.map.insert(cid, (h, Segment::Probation));
    }

    fn remove_from_main(&mut self, id: ObjectId) {
        let (handle, seg) = self.map.remove(&id).expect("victim cached");
        match seg {
            Segment::Probation => {
                let (_, size) = self.probation.remove(handle);
                self.probation_bytes -= size;
            }
            Segment::Protected => {
                let (_, size) = self.protected.remove(handle);
                self.protected_bytes -= size;
            }
            Segment::Window => unreachable!("main victim cannot be in window"),
        }
    }

    /// Promotes a probation hit into protected, demoting protected overflow
    /// back to probation MRU.
    fn promote(&mut self, id: ObjectId, handle: Handle) {
        let (_, size) = self.probation.remove(handle);
        self.probation_bytes -= size;
        let h = self.protected.push_front((id, size));
        self.protected_bytes += size;
        self.map.insert(id, (h, Segment::Protected));
        while self.protected_bytes > self.protected_cap {
            let (demoted, dsize) = self.protected.pop_back().expect("over cap");
            self.protected_bytes -= dsize;
            let h = self.probation.push_front((demoted, dsize));
            self.probation_bytes += dsize;
            self.map.insert(demoted, (h, Segment::Probation));
        }
    }
}

impl CachePolicy for WTinyLfu {
    fn name(&self) -> &str {
        "W-TinyLFU"
    }
    fn capacity(&self) -> u64 {
        self.capacity
    }
    fn used_bytes(&self) -> u64 {
        self.window_bytes + self.main_bytes()
    }
    fn contains(&self, id: ObjectId) -> bool {
        self.map.contains_key(&id)
    }

    fn handle(&mut self, req: &Request) -> Outcome {
        self.sketch.increment(req.id);
        if let Some(&(handle, seg)) = self.map.get(&req.id) {
            match seg {
                Segment::Window => self.window.move_to_front(handle),
                Segment::Protected => self.protected.move_to_front(handle),
                Segment::Probation => self.promote(req.id, handle),
            }
            return Outcome::Hit;
        }
        if req.size > self.capacity {
            return Outcome::MissBypassed;
        }
        if req.size > self.window_cap {
            // Too big for the window: duel straight into main.
            let was_cached = self.map.contains_key(&req.id);
            self.offer_to_main((req.id, req.size));
            let admitted = self.map.contains_key(&req.id) != was_cached;
            return if admitted {
                Outcome::MissAdmitted
            } else {
                Outcome::MissBypassed
            };
        }
        // Admit into the window unconditionally; window evictees duel.
        while self.window_bytes + req.size > self.window_cap {
            let (vid, vsize) = self.window.pop_back().expect("window over cap");
            self.map.remove(&vid);
            self.window_bytes -= vsize;
            self.offer_to_main((vid, vsize));
        }
        let h = self.window.push_front((req.id, req.size));
        self.window_bytes += req.size;
        self.map.insert(req.id, (h, Segment::Window));
        Outcome::MissAdmitted
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }

    fn metadata_overhead_bytes(&self) -> u64 {
        self.map.len() as u64 * 56 + self.sketch.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhr_trace::Time;

    fn req(t: u64, id: ObjectId, size: u64) -> Request {
        Request::new(Time::from_secs(t), id, size)
    }

    #[test]
    fn tinylfu_rejects_unpopular_newcomer() {
        let mut c = TinyLfu::new(200, 1_000);
        // Make objects 1 and 2 popular.
        for t in 0..5 {
            c.handle(&req(2 * t, 1, 100));
            c.handle(&req(2 * t + 1, 2, 100));
        }
        // A cold newcomer must not displace them.
        assert_eq!(c.handle(&req(100, 3, 100)), Outcome::MissBypassed);
        assert!(c.contains(1) && c.contains(2));
    }

    #[test]
    fn tinylfu_admits_popular_newcomer() {
        let mut c = TinyLfu::new(200, 1_000);
        c.handle(&req(0, 1, 100));
        c.handle(&req(1, 2, 100));
        // Build frequency for 3 while it is bypassed.
        for t in 2..8 {
            c.handle(&req(t, 3, 100));
            if c.contains(3) {
                break;
            }
        }
        assert!(c.contains(3), "popular newcomer never admitted");
    }

    #[test]
    fn wtinylfu_window_absorbs_new_arrivals() {
        let mut c = WTinyLfu::new(10_000, 1_000);
        let out = c.handle(&req(0, 1, 100));
        assert_eq!(out, Outcome::MissAdmitted);
        assert_eq!(c.map[&1].1, Segment::Window);
    }

    #[test]
    fn wtinylfu_probation_hit_promotes() {
        let mut c = WTinyLfu::new(10_000, 1_000);
        // Fill window (cap = 500) so object 1 spills into probation.
        c.handle(&req(0, 1, 400));
        c.handle(&req(1, 2, 400)); // evicts 1 from window → probation duel (main empty → admitted)
        assert_eq!(c.map[&1].1, Segment::Probation);
        c.handle(&req(2, 1, 400));
        assert_eq!(c.map[&1].1, Segment::Protected);
    }

    #[test]
    fn wtinylfu_capacity_respected() {
        let mut c = WTinyLfu::new(5_000, 1_000);
        for i in 0..2_000u64 {
            c.handle(&req(i, i % 53, 100 + (i % 7) * 60));
            assert!(c.used_bytes() <= 5_000, "overflow at {i}");
        }
        assert!(c.evictions() > 0);
    }

    #[test]
    fn wtinylfu_hot_objects_survive_scan() {
        let mut c = WTinyLfu::new(3_000, 10_000);
        for t in 0..30 {
            c.handle(&req(3 * t, 1, 500));
            c.handle(&req(3 * t + 1, 2, 500));
            c.handle(&req(3 * t + 2, 3, 500));
        }
        for i in 0..200u64 {
            c.handle(&req(100 + i, 10_000 + i, 500));
        }
        let survivors = [1, 2, 3].iter().filter(|&&id| c.contains(id)).count();
        assert!(
            survivors >= 2,
            "scan displaced hot objects: {survivors}/3 left"
        );
    }

    #[test]
    fn oversized_bypassed() {
        let mut c = WTinyLfu::new(1_000, 100);
        assert_eq!(c.handle(&req(0, 1, 2_000)), Outcome::MissBypassed);
        let mut t = TinyLfu::new(1_000, 100);
        assert_eq!(t.handle(&req(0, 1, 2_000)), Outcome::MissBypassed);
    }
}
