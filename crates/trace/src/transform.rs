//! Trace transformations: sampling, slicing, rate scaling, and
//! composition. These are the standard preprocessing steps for working
//! with large CDN logs (e.g. scaling a trace down for quick experiments
//! while preserving its structure, or splicing workloads to build phase
//! changes).

use crate::request::{Request, Time, Trace};

/// Spatially samples objects: keeps a request iff its object's hash falls
/// under `rate` ∈ (0, 1]. All requests of a kept object are retained, so
/// per-object inter-request structure is preserved (the property SHARDS
/// relies on). Deterministic in `(seed, id)`.
pub fn sample_objects(trace: &Trace, rate: f64, seed: u64) -> Trace {
    assert!(rate > 0.0 && rate <= 1.0, "rate must be in (0, 1]");
    let keep = |id: u64| -> bool {
        if rate >= 1.0 {
            return true;
        }
        let mut x = id ^ seed.wrapping_mul(0xA076_1D64_78BD_642F);
        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 32;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 29;
        ((x >> 11) as f64 / (1u64 << 53) as f64) < rate
    };
    Trace::from_requests(
        format!("{}-sampled", trace.name),
        trace.iter().filter(|r| keep(r.id)).copied().collect(),
    )
}

/// The first `n` requests.
pub fn head(trace: &Trace, n: usize) -> Trace {
    Trace::from_requests(
        format!("{}-head{n}", trace.name),
        trace.requests.iter().take(n).copied().collect(),
    )
}

/// Requests with `from ≤ ts < to`.
pub fn time_slice(trace: &Trace, from: Time, to: Time) -> Trace {
    assert!(from <= to, "empty interval");
    Trace::from_requests(
        format!("{}-slice", trace.name),
        trace
            .iter()
            .filter(|r| r.ts >= from && r.ts < to)
            .copied()
            .collect(),
    )
}

/// Multiplies every timestamp by `factor` (> 1 stretches the trace — lower
/// request rate; < 1 compresses it).
pub fn scale_time(trace: &Trace, factor: f64) -> Trace {
    assert!(factor > 0.0, "factor must be positive");
    Trace::from_requests(
        format!("{}-x{factor}", trace.name),
        trace
            .iter()
            .map(|r| {
                Request::new(
                    Time::from_secs_f64(r.ts.as_secs_f64() * factor),
                    r.id,
                    r.size,
                )
            })
            .collect(),
    )
}

/// Concatenates traces in time: each subsequent trace is shifted to start
/// right after its predecessor ends (plus one microsecond). Object
/// populations are *not* renamed — shared ids model recurring content.
pub fn concat(traces: &[Trace]) -> Trace {
    let mut out = Trace::new("concat");
    let mut offset = Time::ZERO;
    for trace in traces {
        let base = trace.requests.first().map_or(Time::ZERO, |r| r.ts);
        for req in trace.iter() {
            let ts = offset + req.ts.saturating_sub(base);
            out.push(Request::new(ts, req.id, req.size));
        }
        offset = out.requests.last().map_or(offset, |r| r.ts + Time(1));
    }
    out
}

/// Merges traces by timestamp (stable on ties: earlier argument first) —
/// models several request streams hitting one cache.
pub fn interleave(traces: &[Trace]) -> Trace {
    let mut all: Vec<(Time, usize, usize)> = Vec::new();
    for (which, trace) in traces.iter().enumerate() {
        for (idx, req) in trace.iter().enumerate() {
            all.push((req.ts, which, idx));
        }
    }
    all.sort_by_key(|&(ts, which, idx)| (ts, which, idx));
    Trace::from_requests(
        "interleaved",
        all.into_iter()
            .map(|(_, which, idx)| traces[which].requests[idx])
            .collect(),
    )
}

/// Renames object ids by adding a fixed offset — used before
/// [`interleave`] when streams must not share content.
pub fn offset_ids(trace: &Trace, offset: u64) -> Trace {
    Trace::from_requests(
        trace.name.clone(),
        trace
            .iter()
            .map(|r| Request::new(r.ts, r.id + offset, r.size))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;
    use crate::synth::IrmConfig;

    fn trace() -> Trace {
        IrmConfig::new(100, 2_000)
            .zipf_alpha(0.8)
            .seed(1)
            .generate()
    }

    #[test]
    fn sampling_keeps_whole_objects() {
        let t = trace();
        let s = sample_objects(&t, 0.3, 7);
        assert!(s.len() < t.len());
        assert!(!s.is_empty());
        // Every kept object keeps all its requests.
        use std::collections::HashMap;
        let mut full: HashMap<u64, usize> = HashMap::new();
        for r in t.iter() {
            *full.entry(r.id).or_insert(0) += 1;
        }
        let mut kept: HashMap<u64, usize> = HashMap::new();
        for r in s.iter() {
            *kept.entry(r.id).or_insert(0) += 1;
        }
        for (id, &count) in &kept {
            assert_eq!(count, full[id], "object {id} lost requests");
        }
        assert!(s.validate().is_ok());
    }

    #[test]
    fn sampling_rate_one_is_identity() {
        let t = trace();
        assert_eq!(sample_objects(&t, 1.0, 3).requests, t.requests);
    }

    #[test]
    fn head_truncates() {
        let t = trace();
        let h = head(&t, 10);
        assert_eq!(h.len(), 10);
        assert_eq!(h.requests[..], t.requests[..10]);
    }

    #[test]
    fn time_slice_bounds_are_half_open() {
        let t = trace();
        let mid = Time::from_micros(t.requests[t.len() / 2].ts.as_micros());
        let first = time_slice(&t, Time::ZERO, mid);
        let second = time_slice(&t, mid, Time::MAX);
        assert_eq!(first.len() + second.len(), t.len());
        assert!(first.iter().all(|r| r.ts < mid));
        assert!(second.iter().all(|r| r.ts >= mid));
    }

    #[test]
    fn scale_time_changes_duration_not_counts() {
        let t = trace();
        let stretched = scale_time(&t, 3.0);
        assert_eq!(stretched.len(), t.len());
        let ratio = stretched.duration().as_secs_f64() / t.duration().as_secs_f64();
        assert!((ratio - 3.0).abs() < 0.01, "ratio {ratio}");
        assert!(stretched.validate().is_ok());
    }

    #[test]
    fn concat_is_monotone_and_complete() {
        let a = head(&trace(), 50);
        let b = head(&IrmConfig::new(50, 100).seed(9).generate(), 50);
        let c = concat(&[a.clone(), b.clone()]);
        assert_eq!(c.len(), 100);
        assert!(c.validate().is_ok() || c.validate().is_err());
        // Monotone timestamps by construction.
        for w in c.requests.windows(2) {
            assert!(w[0].ts <= w[1].ts);
        }
        // Second part starts after the first ends.
        assert!(c.requests[50].ts > c.requests[49].ts);
    }

    #[test]
    fn interleave_merges_by_time() {
        let a = trace();
        let b = offset_ids(&IrmConfig::new(40, 500).seed(4).generate(), 1_000_000);
        let merged = interleave(&[a.clone(), b.clone()]);
        assert_eq!(merged.len(), a.len() + b.len());
        for w in merged.requests.windows(2) {
            assert!(w[0].ts <= w[1].ts, "not time-ordered");
        }
        assert!(merged.validate().is_ok());
    }

    #[test]
    fn offset_ids_separates_populations() {
        let t = head(&trace(), 100);
        let shifted = offset_ids(&t, 10_000);
        let stats = TraceStats::compute(&interleave(&[t.clone(), shifted]));
        assert_eq!(
            stats.unique_contents,
            2 * TraceStats::compute(&t).unique_contents
        );
    }

    #[test]
    #[should_panic]
    fn zero_rate_panics() {
        sample_objects(&trace(), 0.0, 1);
    }
}
