//! Reproduces Figure 7: LHR prototype vs unmodified ATS, hit probability
//! over time.
fn main() {
    let options = lhr_bench::harness::Options::from_args();
    let (fig7, _table2) = lhr_bench::experiments::prototype_vs_ats(&options);
    println!("{fig7}");
    lhr_bench::harness::write_obs(&options);
}
