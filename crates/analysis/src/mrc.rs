//! Miss-ratio curves for LRU with variable object sizes.
//!
//! LRU with a byte capacity has the *inclusion property*: the contents of
//! a smaller cache are always a subset of a larger one's. A request
//! therefore hits in every cache at least as large as its **byte-weighted
//! reuse distance** — the total size of the distinct objects touched since
//! the previous request to the same object (inclusive of the object
//! itself). One pass computing all reuse distances (a Mattson stack
//! analysis, here with a Fenwick tree over last-access positions,
//! O(n log n)) yields the *entire* hit-ratio-vs-capacity curve.
//!
//! For very long traces, [`MrcConfig::sample_rate`] enables SHARDS-style
//! spatial sampling (Waldspurger et al., FAST '15): only objects whose
//! hashed id falls under the rate are tracked, and distances are scaled by
//! `1/rate`.

use lhr_trace::{ObjectId, Trace};
use std::collections::HashMap;

/// Configuration for MRC construction.
#[derive(Debug, Clone)]
pub struct MrcConfig {
    /// Spatial sampling rate in (0, 1]; 1.0 = exact.
    pub sample_rate: f64,
    /// Capacities (bytes) at which the curve is evaluated.
    pub capacities: Vec<u64>,
}

impl MrcConfig {
    /// An exact curve over the given capacities.
    pub fn exact(capacities: Vec<u64>) -> Self {
        MrcConfig {
            sample_rate: 1.0,
            capacities,
        }
    }

    /// A SHARDS-sampled curve.
    pub fn sampled(capacities: Vec<u64>, sample_rate: f64) -> Self {
        assert!(sample_rate > 0.0 && sample_rate <= 1.0);
        MrcConfig {
            sample_rate,
            capacities,
        }
    }
}

/// A computed miss-ratio curve.
#[derive(Debug, Clone)]
pub struct MissRatioCurve {
    /// `(capacity bytes, object hit ratio)` pairs, ascending capacity.
    pub points: Vec<(u64, f64)>,
    /// Requests analyzed (after sampling).
    pub sampled_requests: u64,
}

lhr_util::impl_json!(struct MissRatioCurve { points, sampled_requests });

impl MissRatioCurve {
    /// Hit ratio at the closest computed capacity ≤ `capacity` (or the
    /// smallest point).
    pub fn hit_ratio_at(&self, capacity: u64) -> f64 {
        let idx = self.points.partition_point(|&(c, _)| c <= capacity);
        if idx == 0 {
            self.points.first().map_or(0.0, |&(_, h)| h)
        } else {
            self.points[idx - 1].1
        }
    }
}

/// Fenwick tree over request positions; a 1 at position `p` carries the
/// size of the object whose most recent access was at `p`.
struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize, delta: i64) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta) as u64;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum over positions `0..=i`.
    fn prefix(&self, mut i: usize) -> u64 {
        i += 1;
        let mut sum = 0;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }

    fn total(&self) -> u64 {
        self.prefix(self.tree.len() - 2)
    }
}

/// Hash for SHARDS sampling: uniform in [0,1).
fn sample_hash(id: ObjectId) -> f64 {
    let mut x = id.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    x ^= x >> 32;
    x = x.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    x ^= x >> 32;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Computes the LRU miss-ratio curve of `trace` under `config`.
pub fn lru_mrc(trace: &Trace, config: &MrcConfig) -> MissRatioCurve {
    let mut capacities = config.capacities.clone();
    capacities.sort_unstable();
    capacities.dedup();

    let scale = 1.0 / config.sample_rate;
    // Positions of sampled requests only.
    let sampled: Vec<(usize, ObjectId, u64)> = trace
        .iter()
        .enumerate()
        .filter(|(_, r)| config.sample_rate >= 1.0 || sample_hash(r.id) < config.sample_rate)
        .map(|(i, r)| (i, r.id, r.size))
        .collect();

    let mut fenwick = Fenwick::new(sampled.len());
    let mut last_pos: HashMap<ObjectId, usize> = HashMap::new();
    // Histogram of hits per capacity point + beyond-all bucket for cold
    // misses / distances beyond the largest capacity.
    let mut hits_at = vec![0u64; capacities.len()];
    let mut measured = 0u64;

    for (pos, (_, id, size)) in sampled.iter().enumerate() {
        measured += 1;
        match last_pos.insert(*id, pos) {
            None => {
                // Cold miss at every capacity.
            }
            Some(prev) => {
                // Byte-weighted distance: sizes of distinct objects whose
                // last access lies in (prev, pos), plus this object.
                let between = fenwick.total() - fenwick.prefix(prev);
                let distance = ((between + size) as f64 * scale) as u64;
                let first_fit = capacities.partition_point(|&c| c < distance);
                for h in hits_at.iter_mut().skip(first_fit) {
                    *h += 1;
                }
                fenwick.add(prev, -(*size as i64));
            }
        }
        fenwick.add(pos, *size as i64);
    }

    MissRatioCurve {
        points: capacities
            .into_iter()
            .zip(hits_at)
            .map(|(c, h)| {
                (
                    c,
                    if measured == 0 {
                        0.0
                    } else {
                        h as f64 / measured as f64
                    },
                )
            })
            .collect(),
        sampled_requests: measured,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhr_sim::{SimConfig, Simulator};
    use lhr_trace::synth::{IrmConfig, SizeModel};
    use lhr_trace::{Request, Time};

    #[test]
    fn tiny_trace_distances_are_exact() {
        // a b a: a's reuse distance = size(a) + size(b) = 30.
        let t = Trace::from_requests(
            "t",
            vec![
                Request::new(Time::from_secs(0), 1, 10),
                Request::new(Time::from_secs(1), 2, 20),
                Request::new(Time::from_secs(2), 1, 10),
            ],
        );
        let curve = lru_mrc(&t, &MrcConfig::exact(vec![10, 29, 30, 100]));
        // Capacity 29 misses the reuse; 30 catches it.
        assert_eq!(curve.hit_ratio_at(29), 0.0);
        assert!((curve.hit_ratio_at(30) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn curve_is_monotone_in_capacity() {
        let trace = IrmConfig::new(300, 20_000)
            .zipf_alpha(0.9)
            .size_model(SizeModel::BoundedPareto {
                alpha: 1.4,
                min: 100,
                max: 10_000,
            })
            .seed(1)
            .generate();
        let caps: Vec<u64> = (1..=20).map(|k| k * 10_000).collect();
        let curve = lru_mrc(&trace, &MrcConfig::exact(caps));
        for w in curve.points.windows(2) {
            assert!(w[1].1 >= w[0].1, "not monotone: {:?}", w);
        }
    }

    #[test]
    fn exact_mrc_matches_lru_simulation() {
        let trace = IrmConfig::new(400, 40_000)
            .zipf_alpha(0.8)
            .size_model(SizeModel::BoundedPareto {
                alpha: 1.5,
                min: 100,
                max: 5_000,
            })
            .seed(2)
            .generate();
        for capacity in [20_000u64, 60_000, 150_000] {
            let curve = lru_mrc(&trace, &MrcConfig::exact(vec![capacity]));
            let mut lru = lhr_policies::Lru::new(capacity);
            let simulated = Simulator::new(SimConfig::default())
                .run(&mut lru, &trace)
                .metrics
                .object_hit_ratio();
            let analytic = curve.hit_ratio_at(capacity);
            assert!(
                (analytic - simulated).abs() < 0.01,
                "capacity {capacity}: MRC {analytic:.4} vs sim {simulated:.4}"
            );
        }
    }

    #[test]
    fn shards_approximates_exact() {
        // Spatial sampling is accurate when hit mass is spread over many
        // objects (its intended large-trace regime); with a tiny Zipf head
        // the per-object variance dominates, so this test uses a broad
        // population and moderate skew.
        let trace = IrmConfig::new(10_000, 200_000)
            .zipf_alpha(0.5)
            .size_model(SizeModel::BoundedPareto {
                alpha: 1.5,
                min: 100,
                max: 5_000,
            })
            .seed(3)
            .generate();
        let caps: Vec<u64> = vec![200_000, 1_000_000, 4_000_000];
        let exact = lru_mrc(&trace, &MrcConfig::exact(caps.clone()));
        let sampled = lru_mrc(&trace, &MrcConfig::sampled(caps.clone(), 0.25));
        assert!(sampled.sampled_requests < exact.sampled_requests / 2);
        for (&(c, e), &(_, s)) in exact.points.iter().zip(sampled.points.iter()) {
            assert!(
                (e - s).abs() < 0.05,
                "capacity {c}: exact {e:.4} vs SHARDS {s:.4}"
            );
        }
    }

    #[test]
    fn hit_ratio_at_interpolates_downward() {
        let curve = MissRatioCurve {
            points: vec![(100, 0.2), (200, 0.5)],
            sampled_requests: 10,
        };
        assert_eq!(curve.hit_ratio_at(50), 0.2);
        assert_eq!(curve.hit_ratio_at(150), 0.2);
        assert_eq!(curve.hit_ratio_at(999), 0.5);
    }

    #[test]
    fn empty_trace() {
        let curve = lru_mrc(&Trace::new("e"), &MrcConfig::exact(vec![100]));
        assert_eq!(curve.hit_ratio_at(100), 0.0);
    }
}
