//! A DeepCache/PopCache-family baseline: neural popularity prediction
//! driving eviction (§8's "learning content popularities for content
//! eviction via deep neural networks" — DeepCache, FNN-Cache, PopCache,
//! PA-Cache).
//!
//! A small MLP maps per-object request features to the probability that
//! the object is re-requested within a horizon. Labels arrive with delay
//! (re-request ⇒ 1, horizon expiry ⇒ 0) and train the network online, one
//! SGD step per resolved label. Eviction removes the sampled cached object
//! with the lowest predicted popularity; admission is unconditional, as in
//! the cited systems. The paper's critique — DNN popularity models are
//! expensive to keep current and non-robust across workloads — is
//! reproducible directly against this baseline.

use crate::util::{Handle, LruList};
use lhr_nn::{Activation, Mlp, TrainConfig};
use lhr_sim::{CachePolicy, Outcome};
use lhr_trace::{ObjectId, Request, Time};
use lhr_util::hash::FastMap;
use lhr_util::rng::rngs::SmallRng;
use lhr_util::rng::{Rng, SeedableRng};

/// Feature width: ln size, ln(1+count), ln IRT₁, ln IRT₂, ln age.
const N_FEATURES: usize = 5;
/// Value standing in for "missing" (the MLP has no native NaN routing).
/// Expressed on the *scaled* feature axis (see [`SCALE`]).
const MISSING: f32 = -2.0;
/// Log-features are divided by 10 so inputs stay in ≈[−2, 2]; unnormalized
/// log magnitudes (±20) saturate a small ReLU network.
const SCALE: f32 = 0.1;
/// Eviction sample size.
const SAMPLE: usize = 64;

#[derive(Debug, Clone)]
struct ObjectState {
    size: u64,
    count: u64,
    first_seen: Time,
    last_seen: Time,
    prev_gap_secs: f64,
}

impl ObjectState {
    fn features(&self, now: Time) -> [f32; N_FEATURES] {
        let ln = |v: f64| {
            if v > 0.0 {
                (v.max(1e-6)).ln() as f32 * SCALE
            } else {
                MISSING
            }
        };
        [
            (self.size.max(1) as f32).ln() * SCALE,
            (self.count as f32).ln_1p() * SCALE,
            ln(now.saturating_sub(self.last_seen).as_secs_f64()),
            if self.prev_gap_secs > 0.0 {
                ln(self.prev_gap_secs)
            } else {
                MISSING
            },
            ln(now.saturating_sub(self.first_seen).as_secs_f64()),
        ]
    }
}

/// The popularity-prediction policy.
pub struct PopCache {
    capacity: u64,
    used: u64,
    list: LruList<(ObjectId, u64)>,
    map: FastMap<ObjectId, Handle>,
    /// Dense cached-id vector for deterministic O(1) eviction sampling.
    dense: Vec<ObjectId>,
    positions: FastMap<ObjectId, usize>,
    states: FastMap<ObjectId, ObjectState>,
    /// Pending delayed labels: features at the time of the request.
    pending: FastMap<ObjectId, ([f32; N_FEATURES], Time)>,
    net: Mlp,
    train: TrainConfig,
    horizon: Time,
    rng: SmallRng,
    evictions: u64,
    requests: u64,
    /// Online SGD steps taken (observability for tests/benches).
    pub train_steps: u64,
}

impl PopCache {
    /// A PopCache of `capacity` bytes; `horizon_secs` is the
    /// popularity-label window.
    pub fn new(capacity: u64, horizon_secs: f64, seed: u64) -> Self {
        PopCache {
            capacity,
            used: 0,
            list: LruList::new(),
            map: FastMap::default(),
            dense: Vec::new(),
            positions: FastMap::default(),
            states: FastMap::default(),
            pending: FastMap::default(),
            net: Mlp::new(
                &[N_FEATURES, 16, 1],
                Activation::Relu,
                Activation::Sigmoid,
                seed,
            ),
            train: TrainConfig {
                learning_rate: 0.01,
                ..TrainConfig::default()
            },
            horizon: Time::from_secs_f64(horizon_secs.max(1.0)),
            rng: SmallRng::seed_from_u64(seed ^ 0x9C),
            evictions: 0,
            requests: 0,
            train_steps: 0,
        }
    }

    fn resolve_label(&mut self, id: ObjectId, now: Time, rerequested: bool) {
        if let Some((features, then)) = self.pending.remove(&id) {
            let within = now.saturating_sub(then) <= self.horizon;
            let label = if rerequested && within { 1.0 } else { 0.0 };
            self.net.train_step(&features, &[label], &self.train);
            self.train_steps += 1;
        }
    }

    /// Expires stale pending labels as negatives. Negatives are the only
    /// way the network learns what unpopularity looks like, so the sweep
    /// runs on a request cadence, not just under memory pressure.
    fn expire_pending(&mut self, now: Time) {
        if !self.requests.is_multiple_of(1_024) && self.pending.len() < 1 << 15 {
            return;
        }
        let mut expired: Vec<ObjectId> = self
            .pending
            .iter()
            .filter(|(_, (_, then))| now.saturating_sub(*then) > self.horizon)
            .map(|(&id, _)| id)
            .collect();
        // Map iteration order is arbitrary (though now process-stable with
        // FastMap); SGD is order-sensitive, so
        // sort for run-to-run determinism.
        expired.sort_unstable();
        for id in expired {
            self.resolve_label(id, Time::MAX, false);
        }
    }

    fn predict(&self, id: ObjectId, now: Time) -> f32 {
        match self.states.get(&id) {
            Some(s) => self.net.forward(&s.features(now))[0],
            None => 0.5,
        }
    }

    fn evict_one(&mut self, now: Time) {
        // Sampled min-popularity eviction.
        let n = self.dense.len();
        debug_assert!(n > 0);
        let k = SAMPLE.min(n);
        let mut victim: Option<(f32, ObjectId)> = None;
        for _ in 0..k {
            let id = self.dense[self.rng.gen_range(0..n)];
            let p = self.predict(id, now);
            if victim.is_none_or(|(vp, _)| p < vp) {
                victim = Some((p, id));
            }
        }
        let id = victim.expect("k >= 1").1;
        let handle = self.map.remove(&id).expect("sampled");
        let (_, size) = self.list.remove(handle);
        let pos = self.positions.remove(&id).expect("indexed");
        self.dense.swap_remove(pos);
        if pos < self.dense.len() {
            self.positions.insert(self.dense[pos], pos);
        }
        self.used -= size;
        self.evictions += 1;
    }
}

impl CachePolicy for PopCache {
    fn name(&self) -> &str {
        "PopCache"
    }
    fn capacity(&self) -> u64 {
        self.capacity
    }
    fn used_bytes(&self) -> u64 {
        self.used
    }
    fn contains(&self, id: ObjectId) -> bool {
        self.map.contains_key(&id)
    }

    fn handle(&mut self, req: &Request) -> Outcome {
        self.requests += 1;
        self.resolve_label(req.id, req.ts, true);
        self.expire_pending(req.ts);

        // Update state and leave a fresh pending label.
        let state = self.states.entry(req.id).or_insert(ObjectState {
            size: req.size,
            count: 0,
            first_seen: req.ts,
            last_seen: req.ts,
            prev_gap_secs: 0.0,
        });
        if state.count > 0 {
            state.prev_gap_secs = req.ts.saturating_sub(state.last_seen).as_secs_f64();
        }
        state.count += 1;
        state.last_seen = req.ts;
        let snapshot = state.features(req.ts);
        self.pending.insert(req.id, (snapshot, req.ts));
        if self.states.len() > 1 << 20 {
            let horizon = req.ts.saturating_sub(self.horizon);
            self.states.retain(|_, s| s.last_seen >= horizon);
        }

        if let Some(&handle) = self.map.get(&req.id) {
            self.list.move_to_front(handle);
            return Outcome::Hit;
        }
        if req.size > self.capacity {
            return Outcome::MissBypassed;
        }
        while self.used + req.size > self.capacity {
            self.evict_one(req.ts);
        }
        let handle = self.list.push_front((req.id, req.size));
        self.map.insert(req.id, handle);
        self.positions.insert(req.id, self.dense.len());
        self.dense.push(req.id);
        self.used += req.size;
        Outcome::MissAdmitted
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }

    fn metadata_overhead_bytes(&self) -> u64 {
        (self.map.len() * 48
            + self.states.len() * 72
            + self.pending.len() * (N_FEATURES * 4 + 24)
            + self.net.approx_size_bytes()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(t: f64, id: ObjectId, size: u64) -> Request {
        Request::new(Time::from_secs_f64(t), id, size)
    }

    #[test]
    fn basic_flow() {
        let mut c = PopCache::new(1_000, 60.0, 1);
        assert_eq!(c.handle(&req(0.0, 1, 400)), Outcome::MissAdmitted);
        assert!(c.handle(&req(1.0, 1, 400)).is_hit());
        assert!(c.train_steps > 0, "re-request resolved no label");
    }

    #[test]
    fn capacity_respected() {
        let mut c = PopCache::new(2_000, 30.0, 2);
        for i in 0..3_000u64 {
            c.handle(&req(i as f64 * 0.1, i % 41, 150));
            assert!(c.used_bytes() <= 2_000);
        }
        assert!(c.evictions() > 0);
    }

    #[test]
    fn trained_network_protects_hot_objects() {
        let mut c = PopCache::new(1_000_000, 30.0, 3);
        // Train: hot objects every 1s, cold objects never again.
        let mut t = 0.0;
        for round in 0..4_000u64 {
            for hot in 0..4u64 {
                c.handle(&req(t, hot, 1_000));
                t += 0.2;
            }
            c.handle(&req(t, 10_000 + round, 1_000));
            t += 0.2;
        }
        // Predicted popularity of a hot object must exceed a cold one's.
        let now = Time::from_secs_f64(t);
        let hot_p = c.predict(0, now);
        let cold_id = 10_000 + 3_999;
        let cold_p = c.predict(cold_id, now);
        assert!(
            hot_p > cold_p + 0.1,
            "hot {hot_p} vs cold {cold_p}: popularity not learned"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut c = PopCache::new(1_500, 20.0, seed);
            (0..2_000u64)
                .filter(|&i| c.handle(&req(i as f64 * 0.5, i % 23, 200)).is_hit())
                .count()
        };
        assert_eq!(run(7), run(7));
    }
}
