//! Cross-crate integration tests: the relationships the paper's evaluation
//! depends on must hold end-to-end on real simulated workloads.

use lhr_repro::bounds::{Belady, BeladySize, InfiniteCap, PfooLower, PfooUpper};
use lhr_repro::core::cache::{LhrCache, LhrConfig};
use lhr_repro::core::hazard::Hro;
use lhr_repro::policies::{
    s4lru, slru, AdaptSize, Arc, BLru, Fifo, Gdsf, Hawkeye, Hyperbolic, Lfo, LfuDa, Lhd, Lrb, Lru,
    LruK, PopCache, RandomEviction, RlCache, TinyLfu, WTinyLfu,
};
use lhr_repro::sim::{CachePolicy, OfflineBound, SimConfig, Simulator};
use lhr_repro::trace::synth::{markov, IrmConfig, SizeModel};
use lhr_repro::trace::{Request, Time, Trace, TraceStats};

fn zipf_trace(seed: u64, n_objects: usize, n_requests: usize) -> Trace {
    IrmConfig::new(n_objects, n_requests)
        .zipf_alpha(0.9)
        .size_model(SizeModel::BoundedPareto {
            alpha: 1.3,
            min: 5_000,
            max: 2_000_000,
        })
        .seed(seed)
        .generate()
}

fn all_policies(capacity: u64, seed: u64, trace: &Trace) -> Vec<Box<dyn CachePolicy>> {
    let window = (trace.duration().as_secs_f64() / 4.0).max(1.0);
    vec![
        Box::new(Lru::new(capacity)),
        Box::new(Fifo::new(capacity)),
        Box::new(RandomEviction::new(capacity, seed)),
        Box::new(LruK::new(capacity, 4)),
        Box::new(LfuDa::new(capacity)),
        Box::new(Gdsf::new(capacity)),
        Box::new(Arc::new(capacity)),
        Box::new(AdaptSize::new(capacity, seed)),
        Box::new(BLru::new(capacity, 1 << 14)),
        Box::new(TinyLfu::new(capacity, 1 << 14)),
        Box::new(WTinyLfu::new(capacity, 1 << 14)),
        Box::new(slru(capacity)),
        Box::new(s4lru(capacity)),
        Box::new(Hyperbolic::new(capacity, seed)),
        Box::new(Lhd::new(capacity, seed)),
        Box::new(Lfo::new(capacity, 2_048)),
        Box::new(RlCache::new(capacity, window, seed)),
        Box::new(PopCache::new(capacity, window, seed)),
        Box::new(Lrb::new(capacity, window, seed)),
        Box::new(Hawkeye::new(capacity)),
        Box::new(LhrCache::new(
            capacity,
            LhrConfig {
                seed,
                ..LhrConfig::default()
            },
        )),
    ]
}

#[test]
fn every_policy_respects_capacity_and_accounting() {
    let trace = zipf_trace(1, 500, 20_000);
    let capacity = (trace.total_bytes() / 100) as u64;
    for mut policy in all_policies(capacity, 1, &trace) {
        let result = Simulator::new(SimConfig::default()).run(&mut policy, &trace);
        let m = &result.metrics;
        assert_eq!(
            m.hits + m.misses(),
            m.requests,
            "{}: hit/miss accounting broken",
            result.policy
        );
        assert!(m.bytes_hit <= m.bytes_requested, "{}", result.policy);
        assert!(
            policy.used_bytes() <= policy.capacity(),
            "{}",
            result.policy
        );
    }
}

#[test]
fn infinite_cap_dominates_every_bound_and_policy() {
    let trace = zipf_trace(2, 300, 10_000);
    let capacity = (trace.total_bytes() / 50) as u64;
    let ceiling = InfiniteCap.evaluate(&trace, capacity).hits;
    for bound in [
        &Belady as &dyn OfflineBound,
        &BeladySize,
        &PfooUpper,
        &PfooLower,
        &Hro::default(),
    ] {
        let hits = bound.evaluate(&trace, capacity).hits;
        assert!(
            hits <= ceiling,
            "{} exceeded InfiniteCap: {hits} > {ceiling}",
            bound.name()
        );
    }
    for mut policy in all_policies(capacity, 2, &trace) {
        let result = Simulator::new(SimConfig::default()).run(&mut policy, &trace);
        assert!(
            result.metrics.hits <= ceiling,
            "{} exceeded InfiniteCap",
            result.policy
        );
    }
}

#[test]
fn pfoo_upper_dominates_feasible_policies() {
    let trace = zipf_trace(3, 300, 10_000);
    let capacity = (trace.total_bytes() / 80) as u64;
    let bound = PfooUpper.evaluate(&trace, capacity).hits;
    for mut policy in all_policies(capacity, 3, &trace) {
        let result = Simulator::new(SimConfig::default()).run(&mut policy, &trace);
        assert!(
            result.metrics.hits <= bound,
            "{}: {} hits > PFOO-U {}",
            result.policy,
            result.metrics.hits,
            bound
        );
    }
}

#[test]
fn belady_is_optimal_among_policies_on_equal_sizes() {
    // With equal sizes Belady is exact OPT: no feasible policy may beat it.
    let trace = IrmConfig::new(200, 8_000)
        .zipf_alpha(0.7)
        .size_model(SizeModel::Fixed { bytes: 1_000 })
        .seed(4)
        .generate();
    let capacity = 50 * 1_000u64;
    let optimum = Belady.evaluate(&trace, capacity).hits;
    for mut policy in all_policies(capacity, 4, &trace) {
        let result = Simulator::new(SimConfig::default()).run(&mut policy, &trace);
        assert!(
            result.metrics.hits <= optimum,
            "{} beat Belady on equal sizes: {} > {}",
            result.policy,
            result.metrics.hits,
            optimum
        );
    }
}

#[test]
fn lhr_beats_classic_baselines_on_skewed_workload() {
    let trace = zipf_trace(5, 1_000, 60_000);
    let capacity = (trace.total_bytes() / 200) as u64;
    let config = SimConfig {
        warmup_requests: trace.len() / 5,
        series_every: None,
    };
    let run = |mut p: Box<dyn CachePolicy>| {
        Simulator::new(config.clone())
            .run(&mut p, &trace)
            .metrics
            .object_hit_ratio()
    };
    let lhr = run(Box::new(LhrCache::new(
        capacity,
        LhrConfig {
            seed: 5,
            ..LhrConfig::default()
        },
    )));
    let lru = run(Box::new(Lru::new(capacity)));
    let fifo = run(Box::new(Fifo::new(capacity)));
    assert!(lhr > lru, "LHR {lhr} ≤ LRU {lru}");
    assert!(lhr > fifo, "LHR {lhr} ≤ FIFO {fifo}");
}

#[test]
fn lhr_adapts_to_popularity_inversion_better_than_lru() {
    let r = 20_000;
    let trace = markov::syn_one(500, 4 * r, r, 0.9, 6);
    let unique = TraceStats::compute(&trace).unique_bytes_requested;
    let capacity = (unique / 10) as u64;
    let config = SimConfig {
        warmup_requests: r,
        series_every: None,
    };
    let mut lhr = LhrCache::new(
        capacity,
        LhrConfig {
            seed: 6,
            ..LhrConfig::default()
        },
    );
    let lhr_hit = Simulator::new(config.clone())
        .run(&mut lhr, &trace)
        .metrics
        .object_hit_ratio();
    let mut lru = Lru::new(capacity);
    let lru_hit = Simulator::new(config)
        .run(&mut lru, &trace)
        .metrics
        .object_hit_ratio();
    assert!(
        lhr_hit > lru_hit,
        "LHR {lhr_hit} ≤ LRU {lru_hit} on Syn One"
    );
}

#[test]
fn bounds_are_monotone_in_capacity() {
    let trace = zipf_trace(7, 200, 6_000);
    let caps: Vec<u64> = (1..=4)
        .map(|k| (trace.total_bytes() / 100) as u64 * k)
        .collect();
    for bound in [
        &BeladySize as &dyn OfflineBound,
        &PfooUpper,
        &Hro::default(),
    ] {
        let mut prev = 0;
        for &c in &caps {
            let hits = bound.evaluate(&trace, c).hits;
            assert!(
                hits + 50 >= prev, // small slack: HRO windows shift with capacity
                "{} not (approximately) monotone at cap {c}: {hits} < {prev}",
                bound.name()
            );
            prev = hits.max(prev);
        }
    }
}

#[test]
fn server_report_is_consistent_with_simulator_metrics() {
    use lhr_repro::proto::{CdnServer, ServerConfig};
    let trace = zipf_trace(8, 200, 5_000);
    let capacity = (trace.total_bytes() / 20) as u64;

    // Same policy, same trace: the server's hit% must match the simulator's
    // (freshness disabled so the serving path does not diverge).
    let mut sim_policy = Lru::new(capacity);
    let sim_result = Simulator::new(SimConfig::default()).run(&mut sim_policy, &trace);

    let server_config = ServerConfig {
        freshness_secs: None,
        ..ServerConfig::default()
    };
    let mut server = CdnServer::new(Lru::new(capacity), server_config);
    let report = server.replay(&trace);

    let sim_hit = sim_result.metrics.object_hit_ratio() * 100.0;
    assert!(
        (report.content_hit_pct - sim_hit).abs() < 1e-9,
        "server {} vs simulator {}",
        report.content_hit_pct,
        sim_hit
    );
    // WAN bytes must equal miss bytes.
    let wan_bytes = report.wan_gbps * trace.duration().as_secs_f64() * 1e9 / 8.0;
    let expected = (sim_result.metrics.bytes_requested - sim_result.metrics.bytes_hit) as f64;
    assert!(
        (wan_bytes - expected).abs() / expected < 1e-6,
        "WAN {wan_bytes} vs misses {expected}"
    );
}

#[test]
fn hro_tracks_lfu_like_optimum_on_irm() {
    // On an IRM trace with equal sizes, the hazard ordering is the LFU
    // ordering; HRO must therefore be at least as good as what LFU-DA
    // achieves online.
    let trace = IrmConfig::new(300, 20_000)
        .zipf_alpha(1.0)
        .size_model(SizeModel::Fixed { bytes: 1_000 })
        .seed(9)
        .generate();
    let capacity = 60_000u64;
    let hro = Hro::default().evaluate(&trace, capacity).hits;
    let mut lfuda = LfuDa::new(capacity);
    let lfu_hits = Simulator::new(SimConfig::default())
        .run(&mut lfuda, &trace)
        .metrics
        .hits;
    assert!(hro >= lfu_hits, "HRO {hro} < LFU-DA {lfu_hits}");
}

#[test]
fn ablations_expose_their_knobs() {
    let trace = zipf_trace(10, 400, 30_000);
    let capacity = (trace.total_bytes() / 150) as u64;
    let mut d_lhr = LhrCache::new(capacity, LhrConfig::d_lhr());
    Simulator::new(SimConfig::default()).run(&mut d_lhr, &trace);
    assert_eq!(d_lhr.stats().final_threshold, 0.5);

    let mut n_lhr = LhrCache::new(capacity, LhrConfig::n_lhr());
    Simulator::new(SimConfig::default()).run(&mut n_lhr, &trace);
    let stats = n_lhr.stats();
    assert_eq!(stats.trainings, stats.windows);
}

#[test]
fn trace_roundtrip_preserves_simulation_results() {
    use lhr_repro::trace::io;
    let trace = zipf_trace(11, 100, 3_000);
    let mut csv = Vec::new();
    io::write_csv(&trace, &mut csv).expect("serialize");
    let back = io::read_csv(&csv[..], trace.name.clone()).expect("parse");
    let capacity = (trace.total_bytes() / 30) as u64;
    let run = |t: &Trace| {
        let mut p = Lru::new(capacity);
        Simulator::new(SimConfig::default())
            .run(&mut p, t)
            .metrics
            .hits
    };
    assert_eq!(run(&trace), run(&back));
}

#[test]
fn oversized_objects_never_enter_any_policy() {
    let mut trace = Trace::new("oversized");
    for i in 0..100u64 {
        trace.push(Request::new(Time::from_secs(i), i % 5, 10_000));
    }
    let capacity = 5_000u64; // every object is too large
    for mut policy in all_policies(capacity, 12, &trace) {
        let result = Simulator::new(SimConfig::default()).run(&mut policy, &trace);
        assert_eq!(result.metrics.hits, 0, "{}", result.policy);
        assert_eq!(policy.used_bytes(), 0, "{}", result.policy);
    }
}
