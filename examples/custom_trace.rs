//! Work with traces on disk: write a trace as CSV, read it back, print the
//! Table 1 characteristics, and evaluate the offline/online bounds against
//! an actual policy — the workflow a CDN operator would use with their own
//! logs.
//!
//! Pass a CSV path (`timestamp_us,object_id,size_bytes` lines) to analyze
//! your own trace; with no argument, a synthetic trace is generated and
//! round-tripped through a temporary file first.
//!
//! ```text
//! cargo run --release --example custom_trace [trace.csv]
//! ```

use lhr_repro::bounds::{BeladySize, InfiniteCap, PfooUpper};
use lhr_repro::core::hazard::Hro;
use lhr_repro::core::{LhrCache, LhrConfig};
use lhr_repro::policies::Lru;
use lhr_repro::sim::{OfflineBound, SimConfig, Simulator};
use lhr_repro::trace::synth::{IrmConfig, SizeModel};
use lhr_repro::trace::{io, TraceStats};

fn main() {
    let trace = match std::env::args().nth(1) {
        Some(path) => {
            println!("reading {path} ...");
            io::read_csv_file(&path).expect("failed to parse trace CSV")
        }
        None => {
            let generated = IrmConfig::new(1_000, 50_000)
                .name("roundtrip-demo")
                .zipf_alpha(0.9)
                .size_model(SizeModel::LogNormal {
                    median: 1 << 20,
                    sigma: 1.3,
                })
                .seed(3)
                .generate();
            let path = std::env::temp_dir().join("lhr-custom-trace-demo.csv");
            io::write_csv_file(&generated, &path).expect("write temp CSV");
            println!(
                "no trace given; wrote + re-read demo trace at {}",
                path.display()
            );
            io::read_csv_file(&path).expect("re-read demo CSV")
        }
    };
    trace.validate().expect("trace violates invariants");

    let stats = TraceStats::compute(&trace);
    println!(
        "\n{}: {} requests, {} objects, {:.2} h, mean size {:.2} MB, \
         unique bytes {:.2} GB, peak active {:.2} GB",
        stats.name,
        stats.total_requests,
        stats.unique_contents,
        stats.duration_hours,
        stats.mean_content_size / 1e6,
        stats.unique_bytes_requested as f64 / 1e9,
        stats.peak_active_bytes as f64 / 1e9,
    );

    let capacity = (stats.unique_bytes_requested / 20) as u64; // 5% of unique bytes
    println!(
        "\nbounds and policies at cache = {:.2} GB:",
        capacity as f64 / 1e9
    );

    for bound in [
        &InfiniteCap as &dyn OfflineBound,
        &BeladySize,
        &PfooUpper,
        &Hro::default(),
    ] {
        let m = bound.evaluate(&trace, capacity);
        println!(
            "  {:<12} {:5.2}%  (upper bound)",
            bound.name(),
            m.object_hit_ratio() * 100.0
        );
    }

    let sim = Simulator::new(SimConfig::default());
    let mut lhr = LhrCache::new(capacity, LhrConfig::default());
    let lhr_result = sim.run(&mut lhr, &trace);
    let mut lru = Lru::new(capacity);
    let lru_result = sim.run(&mut lru, &trace);
    for r in [&lhr_result, &lru_result] {
        println!(
            "  {:<12} {:5.2}%  (online policy)",
            r.policy,
            r.metrics.object_hit_ratio() * 100.0
        );
    }
}
