#!/usr/bin/env bash
# Records the observability-overhead baseline into BENCH_obs.json (one JSON
# line per bench group plus an `obs_overhead` summary, small + medium
# scales). The obs layer budgets instrumented replays at < 5 % over plain
# ones — re-run after any change to the obs hot path (SeriesAcc, the
# engine/server watermarks) and commit the refreshed file.
#
# Usage: scripts/bench_obs.sh [output-file]
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_obs.json}"

cargo build --release --offline -p lhr-bench --bin obs

: > "$out"
for scale in small medium; do
  echo "==> obs bench, scale=$scale"
  LHR_BENCH_JSON="$out" \
    cargo run --release --offline -p lhr-bench --bin obs -- --scale "$scale"
done

echo "wrote $out"
